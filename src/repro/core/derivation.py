"""Derivation: media objects computed from other media objects (Def. 6).

"The derivation (D) of a media object O1 from a set of media objects O is
a mapping of the form D(O, P_D) -> O1, where P_D is the set of parameters
specific to D. ... The information needed to compute a derived object,
references to the media objects and parameter values used, is called a
derivation object."

Three layers:

* :class:`Derivation` — a registered derivation *kind* (e.g. "video
  edit", "MIDI synthesis"): argument/result types, a category (content /
  timing / type change, §4.2), parameter validation and the expansion
  function.
* :class:`DerivationObject` — one application: input object references
  plus parameter values. Small, storable, queryable.
* :class:`~repro.core.media_object.DerivedMediaObject` — the derived
  object, expanding its derivation object on demand.

Concrete derivations (Table 1: color separation, audio normalization,
video edit, video transition, MIDI synthesis — and more) are registered
by :mod:`repro.edit` and :mod:`repro.media`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.core.descriptors import MediaDescriptor
from repro.core.media_object import DerivedMediaObject, MediaObject
from repro.core.media_types import MediaKind, MediaType
from repro.errors import DerivationError


class DerivationCategory(enum.Enum):
    """The derivation categories of §4.2."""

    CHANGE_OF_CONTENT = "change of content"
    CHANGE_OF_TIMING = "change of timing"
    CHANGE_OF_TYPE = "change of type"


#: Signature of an expansion function: materialize the derived object.
ExpandFunc = Callable[[Sequence[MediaObject], Mapping[str, Any]], MediaObject]

#: Signature of a describe function: compute the derived object's type and
#: descriptor *without* expanding (cheap, used when creating the derived
#: object).
DescribeFunc = Callable[
    [Sequence[MediaObject], Mapping[str, Any]],
    tuple[MediaType, MediaDescriptor],
]


@dataclass(frozen=True)
class Derivation:
    """A registered derivation kind.

    Parameters
    ----------
    name:
        Registry key, e.g. ``"video-edit"``.
    category:
        Primary §4.2 category. ("These groups ... are not exclusive";
        ``also_categories`` lists additional ones.)
    input_kinds:
        Expected kinds of the input objects, in order. A single-kind
        variadic derivation (an edit over N cuts) sets ``variadic=True``
        and lists the kind once.
    result_kind:
        Kind of the derived object.
    expand:
        The mapping ``D(O, P_D) -> O1``.
    describe:
        Optional cheap descriptor computation for the derived object;
        when absent, creating a derived object *without* expanding
        requires an explicit descriptor.
    required_params / optional_params:
        Parameter names of ``P_D``; unexpected parameters are rejected so
        typos fail at derivation-object creation, not at expansion.
    """

    name: str
    category: DerivationCategory
    input_kinds: tuple[MediaKind, ...]
    result_kind: MediaKind
    expand: ExpandFunc
    describe: DescribeFunc | None = None
    variadic: bool = False
    any_kind: bool = False
    required_params: tuple[str, ...] = ()
    optional_params: tuple[str, ...] = ()
    also_categories: tuple[DerivationCategory, ...] = ()
    doc: str = ""

    def categories(self) -> set[DerivationCategory]:
        return {self.category, *self.also_categories}

    def check_inputs(self, inputs: Sequence[MediaObject]) -> None:
        if self.any_kind:
            # Generic derivations ("changing timing ... apply to all
            # time-based media") check arity only.
            if not self.variadic and len(inputs) != len(self.input_kinds):
                raise DerivationError(
                    f"{self.name}: expected {len(self.input_kinds)} inputs, "
                    f"got {len(inputs)}"
                )
            if self.variadic and not inputs:
                raise DerivationError(f"{self.name}: needs at least one input")
            return
        if self.variadic:
            if not inputs:
                raise DerivationError(f"{self.name}: needs at least one input")
            expected = self.input_kinds[0]
            for obj in inputs:
                if obj.kind is not expected:
                    raise DerivationError(
                        f"{self.name}: expected {expected.value} inputs, "
                        f"got {obj.kind.value} ({obj.name})"
                    )
            return
        if len(inputs) != len(self.input_kinds):
            raise DerivationError(
                f"{self.name}: expected {len(self.input_kinds)} inputs, "
                f"got {len(inputs)}"
            )
        for obj, expected in zip(inputs, self.input_kinds):
            if obj.kind is not expected:
                raise DerivationError(
                    f"{self.name}: expected a {expected.value} input, "
                    f"got {obj.kind.value} ({obj.name})"
                )

    def check_params(self, params: Mapping[str, Any]) -> None:
        allowed = set(self.required_params) | set(self.optional_params)
        missing = set(self.required_params) - set(params)
        if missing:
            raise DerivationError(
                f"{self.name}: missing parameters {sorted(missing)}"
            )
        unexpected = set(params) - allowed
        if unexpected:
            raise DerivationError(
                f"{self.name}: unexpected parameters {sorted(unexpected)}; "
                f"allowed: {sorted(allowed)}"
            )

    def __call__(
        self,
        inputs: Sequence[MediaObject],
        params: Mapping[str, Any] | None = None,
        name: str | None = None,
    ) -> DerivedMediaObject:
        """Create (not expand) a derived media object."""
        return DerivationObject(self, inputs, params or {}).derive(name)


class DerivationObject:
    """Definition 6: input references + parameter values for one derivation.

    "Rather than storing the results of derivations it is possible to
    store the specification of each derivation step" — this class is that
    specification. :meth:`storage_size` estimates its stored size so the
    "orders of magnitude smaller" claim can be measured (benchmark E8).
    """

    def __init__(
        self,
        derivation: Derivation,
        inputs: Sequence[MediaObject],
        params: Mapping[str, Any],
    ):
        derivation.check_inputs(inputs)
        derivation.check_params(params)
        self.derivation = derivation
        self.inputs: tuple[MediaObject, ...] = tuple(inputs)
        self.params: dict[str, Any] = dict(params)

    def expand(self) -> MediaObject:
        """Apply the mapping: compute the actual (non-derived) object."""
        result = self.derivation.expand(self.inputs, self.params)
        if not self.derivation.any_kind and result.kind is not self.derivation.result_kind:
            raise DerivationError(
                f"{self.derivation.name}: expansion returned "
                f"{result.kind.value}, declared {self.derivation.result_kind.value}"
            )
        return result

    def derive(self, name: str | None = None,
               descriptor: MediaDescriptor | None = None) -> DerivedMediaObject:
        """Wrap this derivation object as a derived media object.

        The derived object's type/descriptor come from the derivation's
        ``describe`` function, or from ``descriptor`` when the derivation
        has none.
        """
        if self.derivation.describe is not None:
            media_type, described = self.derivation.describe(self.inputs, self.params)
            descriptor = descriptor or described
        elif descriptor is None:
            raise DerivationError(
                f"{self.derivation.name} has no describe function; "
                "pass an explicit descriptor"
            )
        else:
            media_type = self.inputs[0].media_type
        return DerivedMediaObject(media_type, descriptor, self, name=name)

    def storage_size(self) -> int:
        """Approximate stored size in bytes: object refs + parameters.

        16 bytes per input reference (an OID) plus the repr length of
        each parameter value — deliberately generous so benchmark E8's
        size ratios are conservative.
        """
        size = 16 * len(self.inputs)
        for key, value in self.params.items():
            size += len(key) + len(repr(value))
        return size

    def __repr__(self) -> str:
        ins = ", ".join(o.name for o in self.inputs)
        return (
            f"DerivationObject({self.derivation.name}, inputs=[{ins}], "
            f"params={self.params})"
        )


class DerivationRegistry:
    """Registry of derivation kinds, keyed by name."""

    def __init__(self) -> None:
        self._derivations: dict[str, Derivation] = {}

    def register(self, derivation: Derivation, replace: bool = False) -> Derivation:
        if not replace and derivation.name in self._derivations:
            raise DerivationError(
                f"derivation {derivation.name!r} already registered"
            )
        self._derivations[derivation.name] = derivation
        return derivation

    def get(self, name: str) -> Derivation:
        try:
            return self._derivations[name]
        except KeyError:
            raise DerivationError(
                f"unknown derivation {name!r}; registered: "
                f"{', '.join(sorted(self._derivations)) or '(none)'}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._derivations

    def names(self) -> list[str]:
        return sorted(self._derivations)

    def by_category(self, category: DerivationCategory) -> list[Derivation]:
        return [
            d for d in self._derivations.values() if category in d.categories()
        ]

    def table(self) -> list[tuple[str, str, str, str]]:
        """Rows shaped like the paper's Table 1:
        (derivation, argument types, result type, category)."""
        rows = []
        for name in self.names():
            d = self._derivations[name]
            args = ", ".join(k.value for k in d.input_kinds)
            if d.variadic:
                args += "..."
            rows.append((name, args, d.result_kind.value, d.category.value))
        return rows


derivation_registry = DerivationRegistry()
