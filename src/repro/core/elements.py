"""Media elements: the atoms of timed streams.

"The term 'media element' includes such things as video frames, audio
samples and musical notes" (§2.2). The model does not prescribe element
payloads — an element may be raw pixel data, an encoded frame, a note, or
a reference into a BLOB — so :class:`MediaElement` is a small wrapper
pairing a payload with an optional element descriptor and a size.

Size matters to the model (it drives data-rate categories and BLOB
placement), so it is explicit rather than inferred from the payload,
which may be ``None`` for elements that live only in a BLOB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.descriptors import ElementDescriptor
from repro.errors import StreamError


@dataclass(frozen=True, slots=True)
class MediaElement:
    """One media element: payload + size + optional per-element descriptor.

    Parameters
    ----------
    payload:
        The element's value. May be raw data (``bytes``, an array), a
        domain object (a :class:`~repro.media.music.Note`), or ``None``
        when the element's data lives in a BLOB and is reached through an
        interpretation.
    size:
        Element size in bytes. Drives the constant-data-rate and uniform
        stream categories and BLOB placement arithmetic.
    descriptor:
        Per-element descriptor for heterogeneous streams; ``None`` for
        homogeneous streams.
    """

    payload: Any = None
    size: int = 0
    descriptor: ElementDescriptor | None = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise StreamError(f"element size must be non-negative, got {self.size}")

    def with_payload(self, payload: Any, size: int | None = None) -> "MediaElement":
        """Return a copy carrying ``payload`` (e.g. after decoding)."""
        return MediaElement(
            payload=payload,
            size=self.size if size is None else size,
            descriptor=self.descriptor,
        )

    def with_descriptor(self, descriptor: ElementDescriptor | None) -> "MediaElement":
        return MediaElement(payload=self.payload, size=self.size, descriptor=descriptor)

    def __repr__(self) -> str:
        desc = f", descriptor={self.descriptor!r}" if self.descriptor else ""
        payload = "…" if self.payload is not None else "None"
        return f"MediaElement(payload={payload}, size={self.size}{desc})"
