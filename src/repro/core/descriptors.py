"""Media and element descriptors (Definition 1 support).

A *media descriptor* carries the encoding attributes of a media object as
a whole ("the minimum a database system should know about media
objects"): its kind, duration, quality factor, frame geometry or sample
format, data-rate statistics for resource allocation, and so on.

An *element descriptor* carries per-element attributes. Homogeneous
streams have a single constant element descriptor (subsumed by the media
descriptor); heterogeneous streams carry one per element — e.g. ADPCM
blocks with varying predictor state, or mixed-parameter compressed video
frames.

Descriptors are immutable mappings validated against their
:class:`~repro.core.media_types.MediaType` specification.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Iterator, Mapping

from repro.errors import DescriptorError


class _FrozenAttributes(Mapping[str, Any]):
    """Immutable attribute mapping shared by both descriptor classes."""

    __slots__ = ("_attrs",)

    def __init__(self, attributes: Mapping[str, Any] | None = None, **kwargs: Any):
        merged: dict[str, Any] = {}
        if attributes:
            merged.update(attributes)
        merged.update(kwargs)
        for key in merged:
            if not isinstance(key, str) or not key:
                raise DescriptorError(f"attribute names must be non-empty strings: {key!r}")
        self._attrs = MappingProxyType(dict(sorted(merged.items())))

    def __getitem__(self, key: str) -> Any:
        try:
            return self._attrs[key]
        except KeyError:
            raise DescriptorError(
                f"{type(self).__name__} has no attribute {key!r}; "
                f"present: {', '.join(self._attrs) or '(none)'}"
            ) from None

    def __contains__(self, key: object) -> bool:
        # Mapping.__contains__ would probe __getitem__ and expect
        # KeyError; our __getitem__ raises DescriptorError, so membership
        # is answered directly.
        return key in self._attrs

    def __iter__(self) -> Iterator[str]:
        return iter(self._attrs)

    def __len__(self) -> int:
        return len(self._attrs)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _FrozenAttributes):
            return dict(self._attrs) == dict(other._attrs)
        if isinstance(other, Mapping):
            return dict(self._attrs) == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(self._attrs.items())))

    def get(self, key: str, default: Any = None) -> Any:
        return self._attrs.get(key, default)

    def with_updates(self, **kwargs: Any):
        """Return a copy with the given attributes replaced or added."""
        merged = dict(self._attrs)
        merged.update(kwargs)
        return type(self)(merged)

    def without(self, *keys: str):
        """Return a copy with the given attributes removed (if present)."""
        remaining = {k: v for k, v in self._attrs.items() if k not in keys}
        return type(self)(remaining)

    def as_dict(self) -> dict[str, Any]:
        return dict(self._attrs)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in self._attrs.items())
        return f"{type(self).__name__}({body})"


class MediaDescriptor(_FrozenAttributes):
    """Attributes describing a media object as a whole.

    Conventional attribute names used throughout the library (media types
    declare which are required):

    ``kind``
        The media kind name (``"audio"``, ``"video"``, ...).
    ``category``
        The stream category (``"homogeneous, constant frequency"``...).
    ``quality_factor``
        Descriptive quality (``"VHS quality"``, ``"CD quality"``).
    ``duration``
        Total duration in rational seconds.
    ``frame_rate`` / ``sample_rate``
        Element frequency of the underlying time system.
    ``frame_width`` / ``frame_height`` / ``frame_depth`` / ``color_model``
        Video geometry.
    ``sample_size`` / ``channels``
        Audio format.
    ``encoding``
        Encoding chain description (``"YUV 8:2:2, JPEG"``, ``"PCM"``).
    ``average_data_rate`` / ``peak_data_rate``
        Bytes per second, "information that helps allocate resources for
        playback" (§4.1).
    """

    __slots__ = ()

    def describe(self) -> str:
        """Multi-line rendering in the style of the paper's Figure 2 text."""
        lines = [f"{k} = {v}" for k, v in self.items()]
        return "{ " + "\n  ".join(lines) + " }"


class ElementDescriptor(_FrozenAttributes):
    """Attributes describing an individual media element.

    Used by heterogeneous streams where elements differ, e.g. image size
    and compression parameters per frame, or ADPCM predictor/step state
    per audio block. Homogeneous streams use a single shared instance (or
    none, when the media descriptor subsumes it).
    """

    __slots__ = ()
