"""Discrete time systems (Definition 2 of the paper).

A discrete time system ``D_f`` maps integers (*discrete time values*) to
real numbers (*continuous time values*, in seconds)::

    D_f : i -> (1/f) * i

where ``f`` is the *frequency* of the system. The paper's examples are
``D29.97`` for North American (NTSC) video, ``D25`` for European (PAL)
video, ``D24`` for film and ``D44100`` for CD audio.

Frequencies are exact rationals; NTSC is 30000/1001, not 29.97, and the
distinction matters: over one hour the difference is 3.6 frames.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.rational import Rational, as_rational
from repro.errors import TimeSystemError


@dataclass(frozen=True, slots=True)
class DiscreteTimeSystem:
    """A mapping ``i -> i / frequency`` from ticks to seconds.

    Parameters
    ----------
    frequency:
        Ticks per second; a positive exact rational.
    name:
        Optional human-readable label (e.g. ``"NTSC"``).
    """

    frequency: Rational
    name: str = ""

    def __post_init__(self) -> None:
        freq = as_rational(self.frequency)
        if freq <= 0:
            raise TimeSystemError(f"frequency must be positive, got {freq}")
        object.__setattr__(self, "frequency", freq)

    # -- Definition 2 ---------------------------------------------------------

    @property
    def period(self) -> Rational:
        """Seconds per tick: ``1 / frequency``."""
        return Rational(1) / self.frequency

    def to_continuous(self, ticks: int) -> Rational:
        """Map a discrete time value to continuous seconds (``D_f(i)``)."""
        return Rational(ticks) / self.frequency

    def to_discrete(self, seconds) -> int:
        """Map continuous seconds to the discrete value, which must be exact.

        Raises
        ------
        TimeSystemError
            If ``seconds`` does not fall exactly on a tick; use
            :meth:`floor` or :meth:`round` for inexact conversion.
        """
        ticks = as_rational(seconds) * self.frequency
        if ticks.denominator != 1:
            raise TimeSystemError(
                f"{seconds} s is not an integral tick in {self}; "
                "use floor()/round() for inexact conversion"
            )
        return int(ticks)

    def floor(self, seconds) -> int:
        """Largest discrete time value not after ``seconds``."""
        return math.floor(as_rational(seconds) * self.frequency)

    def ceil(self, seconds) -> int:
        """Smallest discrete time value not before ``seconds``."""
        return math.ceil(as_rational(seconds) * self.frequency)

    def round(self, seconds) -> int:
        """Nearest discrete time value to ``seconds`` (ties to even)."""
        return round(as_rational(seconds) * self.frequency)

    # -- conversion between systems -------------------------------------------

    def convert(self, ticks: int, target: "DiscreteTimeSystem") -> Rational:
        """Express ``ticks`` of this system in (possibly fractional) target ticks."""
        return self.to_continuous(ticks) * target.frequency

    def rescale(self, ticks: int, target: "DiscreteTimeSystem") -> int:
        """Convert ``ticks`` to the nearest tick of ``target``."""
        return round(self.convert(ticks, target))

    def is_commensurate(self, other: "DiscreteTimeSystem") -> bool:
        """True if every tick of ``other`` lands on a tick of this system
        or vice versa (their frequency ratio is rational with unit parts).

        Two systems are commensurate when one frequency is an integer
        multiple of the other; synchronized playback of commensurate
        streams never needs resampling.
        """
        ratio = self.frequency / other.frequency
        return ratio.numerator == 1 or ratio.denominator == 1

    def __str__(self) -> str:
        label = self.name or "D"
        if self.frequency.denominator == 1:
            return f"{label}({self.frequency.numerator} Hz)"
        return (
            f"{label}({self.frequency.numerator}/{self.frequency.denominator} Hz)"
        )


#: North American (NTSC) video: 30000/1001 frames per second (the paper's D29.97).
NTSC_TIME = DiscreteTimeSystem(Rational(30000, 1001), "NTSC")

#: European (PAL) video: 25 frames per second (the paper's D25).
PAL_TIME = DiscreteTimeSystem(Rational(25), "PAL")

#: Film: 24 frames per second (the paper's D24).
FILM_TIME = DiscreteTimeSystem(Rational(24), "FILM")

#: CD audio: 44100 samples per second (the paper's D44100).
CD_AUDIO_TIME = DiscreteTimeSystem(Rational(44100), "CD-AUDIO")

#: DAT audio: 48000 samples per second.
DAT_TIME = DiscreteTimeSystem(Rational(48000), "DAT")

#: A convenient high-resolution system for MIDI-style events (960 PPQ at 120 bpm).
MIDI_TIME = DiscreteTimeSystem(Rational(1920), "MIDI")
