"""Timed streams (Definition 3) and their categories (Figure 1).

A timed stream is a finite sequence of tuples ``<e_i, s_i, d_i>`` based on
a media type ``T`` and a discrete time system ``D``: the ``e_i`` are media
elements of ``T``, and ``s_i`` (start time) and ``d_i`` (duration) are
discrete time values measured in ``D``, satisfying ``s_{i+1} >= s_i`` and
``d_i >= 0``.

The categories of Figure 1:

===================  =========================================================
homogeneous          element descriptors are constant
heterogeneous        element descriptors vary
continuous           ``s_{i+1} = s_i + d_i`` — a unique element for every time
non-continuous       gaps and/or overlaps among elements
event-based          ``d_i = 0`` for all ``i``
constant frequency   continuous and element duration is constant
constant data rate   continuous and size/duration ratio is constant
uniform              continuous and both element size and duration constant
===================  =========================================================
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.elements import MediaElement
from repro.core.intervals import Interval
from repro.core.media_types import MediaType
from repro.core.rational import Rational
from repro.core.time_system import DiscreteTimeSystem
from repro.errors import StreamConstraintError, StreamError


@dataclass(frozen=True, slots=True)
class TimedTuple:
    """One ``<element, start, duration>`` tuple of Definition 3.

    ``start`` and ``duration`` are discrete time values (ticks) of the
    stream's time system.
    """

    element: MediaElement
    start: int
    duration: int

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise StreamError(f"duration must be non-negative, got {self.duration}")

    @property
    def end(self) -> int:
        """First tick after the element: ``start + duration``."""
        return self.start + self.duration


class StreamCategory(enum.Enum):
    """The stream categories of Figure 1."""

    HOMOGENEOUS = "homogeneous"
    HETEROGENEOUS = "heterogeneous"
    CONTINUOUS = "continuous"
    NON_CONTINUOUS = "non-continuous"
    EVENT_BASED = "event-based"
    CONSTANT_FREQUENCY = "constant frequency"
    CONSTANT_DATA_RATE = "constant data rate"
    UNIFORM = "uniform"


class TimedStream:
    """Definition 3: a finite sequence of ``<e_i, s_i, d_i>`` over ``T`` and ``D``.

    Streams are immutable; the timing operations in
    :mod:`repro.core.stream_ops` return new streams.

    Parameters
    ----------
    media_type:
        The media type ``T`` the elements belong to.
    time_system:
        The discrete time system ``D``; defaults to the type's system.
    tuples:
        The ``<element, start, duration>`` tuples, already ordered by
        start time (``s_{i+1} >= s_i``); a :class:`StreamError` is raised
        otherwise.
    validate_constraints:
        When True (default), also enforce the constraints the media type
        imposes (continuity, fixed element duration, event-basedness) —
        "generally a media type imposes restrictions on the form of timed
        streams based on that type".
    """

    __slots__ = ("media_type", "time_system", "_tuples", "_starts")

    def __init__(
        self,
        media_type: MediaType,
        tuples: Iterable[TimedTuple],
        time_system: DiscreteTimeSystem | None = None,
        validate_constraints: bool = True,
    ):
        self.media_type = media_type
        system = time_system or media_type.time_system
        if system is None:
            raise StreamError(
                f"media type {media_type.name!r} is not time-based and has "
                "no time system; pass one explicitly"
            )
        self.time_system = system
        self._tuples: tuple[TimedTuple, ...] = tuple(tuples)
        for prev, cur in zip(self._tuples, self._tuples[1:]):
            if cur.start < prev.start:
                raise StreamError(
                    f"start times must be non-decreasing: "
                    f"{cur.start} after {prev.start}"
                )
        self._starts = [t.start for t in self._tuples]
        if validate_constraints:
            self.validate_type_constraints()

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_elements(
        cls,
        media_type: MediaType,
        elements: Sequence[MediaElement],
        start: int = 0,
        duration: int = 1,
        time_system: DiscreteTimeSystem | None = None,
    ) -> "TimedStream":
        """Build a continuous constant-frequency stream from ``elements``.

        Each element gets duration ``duration`` and consecutive start
        times beginning at ``start`` — the common case for sampled audio
        and fixed-rate video.
        """
        tuples = [
            TimedTuple(element, start + i * duration, duration)
            for i, element in enumerate(elements)
        ]
        return cls(media_type, tuples, time_system=time_system)

    # -- sequence protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[TimedTuple]:
        return iter(self._tuples)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TimedStream(
                self.media_type,
                self._tuples[index],
                time_system=self.time_system,
                validate_constraints=False,
            )
        return self._tuples[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimedStream):
            return NotImplemented
        return (
            self.media_type.name == other.media_type.name
            and self.time_system == other.time_system
            and self._tuples == other._tuples
        )

    def __hash__(self) -> int:
        return hash((self.media_type.name, self.time_system, self._tuples))

    @property
    def tuples(self) -> tuple[TimedTuple, ...]:
        return self._tuples

    def elements(self) -> Iterator[MediaElement]:
        for t in self._tuples:
            yield t.element

    # -- extent -------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self._tuples

    @property
    def start(self) -> int:
        """``s_1`` (ticks); 0 for the empty stream."""
        return self._tuples[0].start if self._tuples else 0

    @property
    def end(self) -> int:
        """``max(s_i + d_i)`` (ticks); 0 for the empty stream.

        With overlaps the last tuple need not end last, so the maximum is
        taken over all tuples.
        """
        return max((t.end for t in self._tuples), default=0)

    @property
    def span_ticks(self) -> int:
        """Ticks from first start to last end."""
        return self.end - self.start if self._tuples else 0

    def duration_seconds(self) -> Rational:
        """Continuous duration of the span, ``D(end) - D(start)``."""
        return self.time_system.to_continuous(self.span_ticks)

    def interval(self) -> Interval:
        """The stream's span as a continuous-time interval."""
        return Interval(
            self.time_system.to_continuous(self.start),
            self.time_system.to_continuous(self.end),
        )

    def total_size(self) -> int:
        """Total element bytes."""
        return sum(t.element.size for t in self._tuples)

    def average_data_rate(self) -> Rational:
        """Mean bytes per second over the span (0 for empty/instant spans)."""
        seconds = self.duration_seconds()
        if seconds == 0:
            return Rational(0)
        return Rational(self.total_size()) / seconds

    # -- element lookup -----------------------------------------------------------

    def at_tick(self, tick: int) -> list[TimedTuple]:
        """All tuples whose span covers ``tick`` (events match exactly).

        Non-continuous streams may return zero (a gap) or several (an
        overlap, e.g. a chord) tuples.
        """
        result = []
        # All candidates start at or before `tick`; scan back from the
        # insertion point. Overlaps force the scan to continue past
        # non-matching tuples, but only while starts remain <= tick.
        hi = bisect.bisect_right(self._starts, tick)
        for t in self._tuples[:hi]:
            if t.start == tick and t.duration == 0:
                result.append(t)
            elif t.start <= tick < t.end:
                result.append(t)
        return result

    def at_time(self, seconds) -> list[TimedTuple]:
        """Tuples covering continuous time ``seconds`` (floored to a tick)."""
        return self.at_tick(self.time_system.floor(seconds))

    def index_at_tick(self, tick: int) -> int | None:
        """Index of the first tuple covering ``tick``, or None in a gap."""
        covering = self.at_tick(tick)
        if not covering:
            return None
        return self._tuples.index(covering[0])

    # -- categories (Figure 1) ------------------------------------------------------

    def is_homogeneous(self) -> bool:
        """Element descriptors are constant."""
        descriptors = {t.element.descriptor for t in self._tuples}
        return len(descriptors) <= 1

    def is_heterogeneous(self) -> bool:
        """Element descriptors vary."""
        return not self.is_homogeneous()

    def is_continuous(self) -> bool:
        """``s_{i+1} = s_i + d_i`` for all consecutive tuples.

        The empty stream and singleton streams are trivially continuous.
        """
        return all(
            cur.start == prev.end
            for prev, cur in zip(self._tuples, self._tuples[1:])
        )

    def is_non_continuous(self) -> bool:
        """There are gaps and/or overlaps among elements."""
        return not self.is_continuous()

    def has_gaps(self) -> bool:
        """Some consecutive pair leaves uncovered time."""
        return any(
            cur.start > prev.end
            for prev, cur in zip(self._tuples, self._tuples[1:])
        )

    def has_overlaps(self) -> bool:
        """Some tuple begins before a predecessor ends (e.g. a chord)."""
        latest_end = None
        for t in self._tuples:
            if latest_end is not None and t.start < latest_end:
                return True
            latest_end = t.end if latest_end is None else max(latest_end, t.end)
        return False

    def is_event_based(self) -> bool:
        """``d_i = 0`` for all ``i`` (and the stream is non-empty)."""
        return bool(self._tuples) and all(t.duration == 0 for t in self._tuples)

    def is_constant_frequency(self) -> bool:
        """Continuous with constant element duration."""
        if not self.is_continuous() or not self._tuples:
            return False
        durations = {t.duration for t in self._tuples}
        return len(durations) == 1 and 0 not in durations

    def is_constant_data_rate(self) -> bool:
        """Continuous with constant size/duration ratio."""
        if not self.is_continuous() or not self._tuples:
            return False
        ratios = set()
        for t in self._tuples:
            if t.duration == 0:
                return False
            ratios.add(Rational(t.element.size, t.duration))
        return len(ratios) == 1

    def is_uniform(self) -> bool:
        """Continuous with constant element size and duration."""
        if not self.is_constant_frequency():
            return False
        sizes = {t.element.size for t in self._tuples}
        return len(sizes) == 1

    def categories(self) -> set[StreamCategory]:
        """All Figure 1 categories this stream belongs to."""
        result: set[StreamCategory] = set()
        if self.is_homogeneous():
            result.add(StreamCategory.HOMOGENEOUS)
        else:
            result.add(StreamCategory.HETEROGENEOUS)
        if self.is_continuous():
            result.add(StreamCategory.CONTINUOUS)
        else:
            result.add(StreamCategory.NON_CONTINUOUS)
        if self.is_event_based():
            result.add(StreamCategory.EVENT_BASED)
        if self.is_constant_frequency():
            result.add(StreamCategory.CONSTANT_FREQUENCY)
        if self.is_constant_data_rate():
            result.add(StreamCategory.CONSTANT_DATA_RATE)
        if self.is_uniform():
            result.add(StreamCategory.UNIFORM)
        return result

    def category_label(self) -> str:
        """Compact label like the descriptors in Figure 2.

        >>> # a CD-audio stream renders as "homogeneous, uniform"
        """
        cats = self.categories()
        parts = []
        parts.append(
            "homogeneous"
            if StreamCategory.HOMOGENEOUS in cats
            else "heterogeneous"
        )
        if StreamCategory.UNIFORM in cats:
            parts.append("uniform")
        elif StreamCategory.CONSTANT_DATA_RATE in cats:
            parts.append("constant data rate")
        elif StreamCategory.CONSTANT_FREQUENCY in cats:
            parts.append("constant frequency")
        elif StreamCategory.EVENT_BASED in cats:
            parts.append("event-based")
        elif StreamCategory.CONTINUOUS in cats:
            parts.append("continuous")
        else:
            parts.append("non-continuous")
        return ", ".join(parts)

    # -- media-type constraints -------------------------------------------------------

    def validate_type_constraints(self) -> None:
        """Enforce the restrictions the media type imposes (Definition 3).

        Raises
        ------
        StreamConstraintError
            If the stream violates the type's continuity, fixed-duration
            or event-based constraints, or an element descriptor is
            missing/invalid for a heterogeneous type.
        """
        mt = self.media_type
        if mt.continuous and not self.is_continuous():
            raise StreamConstraintError(
                f"{mt.name} requires continuous streams "
                "(s_{i+1} = s_i + d_i)"
            )
        if mt.event_based and self._tuples and not self.is_event_based():
            raise StreamConstraintError(
                f"{mt.name} requires event-based streams (d_i = 0)"
            )
        if mt.fixed_duration is not None:
            bad = [t for t in self._tuples if t.duration != mt.fixed_duration]
            if bad:
                raise StreamConstraintError(
                    f"{mt.name} requires element duration "
                    f"{mt.fixed_duration}, found {bad[0].duration}"
                )
        if mt.element_attributes:
            for i, t in enumerate(self._tuples):
                if t.element.descriptor is None:
                    if mt.has_element_descriptors:
                        raise StreamConstraintError(
                            f"{mt.name} requires element descriptors; "
                            f"element {i} lacks one"
                        )
                else:
                    mt.validate_element_descriptor(t.element.descriptor)

    def __repr__(self) -> str:
        return (
            f"TimedStream({self.media_type.name}, {len(self)} elements, "
            f"span={self.duration_seconds().to_timestamp()}, "
            f"{self.category_label()})"
        )
