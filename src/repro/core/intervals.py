"""Time intervals and Allen's interval algebra.

Temporal composition (Definition 7) expresses "relative timing during
presentation". The classical vocabulary for qualitative relations between
intervals is Allen's thirteen relations; compositions in
:mod:`repro.core.composition` can be queried in these terms, and the
temporal query layer (:mod:`repro.query.temporal`) builds predicates on
them.

Intervals are half-open ``[start, end)`` over exact rational seconds,
matching the convention that an element with start ``s`` and duration
``d`` occupies ``[s, s + d)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.core.rational import Rational, as_rational
from repro.errors import MediaModelError


class IntervalRelation(enum.Enum):
    """Allen's thirteen qualitative relations between two intervals."""

    BEFORE = "before"
    AFTER = "after"
    MEETS = "meets"
    MET_BY = "met_by"
    OVERLAPS = "overlaps"
    OVERLAPPED_BY = "overlapped_by"
    STARTS = "starts"
    STARTED_BY = "started_by"
    DURING = "during"
    CONTAINS = "contains"
    FINISHES = "finishes"
    FINISHED_BY = "finished_by"
    EQUAL = "equal"

    @property
    def inverse(self) -> "IntervalRelation":
        """The relation that holds with arguments swapped."""
        return _INVERSES[self]


_INVERSES = {
    IntervalRelation.BEFORE: IntervalRelation.AFTER,
    IntervalRelation.AFTER: IntervalRelation.BEFORE,
    IntervalRelation.MEETS: IntervalRelation.MET_BY,
    IntervalRelation.MET_BY: IntervalRelation.MEETS,
    IntervalRelation.OVERLAPS: IntervalRelation.OVERLAPPED_BY,
    IntervalRelation.OVERLAPPED_BY: IntervalRelation.OVERLAPS,
    IntervalRelation.STARTS: IntervalRelation.STARTED_BY,
    IntervalRelation.STARTED_BY: IntervalRelation.STARTS,
    IntervalRelation.DURING: IntervalRelation.CONTAINS,
    IntervalRelation.CONTAINS: IntervalRelation.DURING,
    IntervalRelation.FINISHES: IntervalRelation.FINISHED_BY,
    IntervalRelation.FINISHED_BY: IntervalRelation.FINISHES,
    IntervalRelation.EQUAL: IntervalRelation.EQUAL,
}


@dataclass(frozen=True, slots=True)
class Interval:
    """A half-open time interval ``[start, end)`` in rational seconds."""

    start: Rational
    end: Rational

    def __post_init__(self) -> None:
        start = as_rational(self.start)
        end = as_rational(self.end)
        if end < start:
            raise MediaModelError(f"interval end {end} precedes start {start}")
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "end", end)

    @classmethod
    def of(cls, start, duration) -> "Interval":
        """Build from a start and a non-negative duration."""
        start = as_rational(start)
        return cls(start, start + as_rational(duration))

    @property
    def duration(self) -> Rational:
        return self.end - self.start

    @property
    def is_instant(self) -> bool:
        """True for zero-duration intervals (event-based elements)."""
        return self.start == self.end

    def contains_time(self, t) -> bool:
        """Whether time ``t`` lies in ``[start, end)``.

        An instant interval contains only its own start time, so
        duration-less events are still locatable.
        """
        t = as_rational(t)
        if self.is_instant:
            return t == self.start
        return self.start <= t < self.end

    def intersects(self, other: "Interval") -> bool:
        """Whether the two intervals share any time (instants included)."""
        if self.is_instant:
            return other.contains_time(self.start) or self == other
        if other.is_instant:
            return self.contains_time(other.start)
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "Interval") -> "Interval | None":
        if not self.intersects(other):
            return None
        return Interval(max(self.start, other.start), min(self.end, other.end))

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval covering both."""
        return Interval(min(self.start, other.start), max(self.end, other.end))

    def translate(self, offset) -> "Interval":
        offset = as_rational(offset)
        return Interval(self.start + offset, self.end + offset)

    def scale(self, factor) -> "Interval":
        """Scale both endpoints about time zero by a positive factor."""
        factor = as_rational(factor)
        if factor <= 0:
            raise MediaModelError(f"scale factor must be positive, got {factor}")
        return Interval(self.start * factor, self.end * factor)

    def __str__(self) -> str:
        return f"[{self.start.to_timestamp()}, {self.end.to_timestamp()})"


def relate(a: Interval, b: Interval) -> IntervalRelation:
    """Return the unique Allen relation holding between ``a`` and ``b``.

    The thirteen relations are jointly exhaustive and pairwise disjoint
    over pairs of (possibly zero-length) intervals, and the
    classification agrees with :meth:`Interval.intersects`: a pair lands
    on ``BEFORE``/``AFTER``/``MEETS``/``MET_BY`` exactly when the two
    intervals share no time. Under the half-open convention an instant
    ``[t, t)`` shares time with ``[t, e)`` (it is presented at ``t``),
    so it *starts* that interval; an instant sitting strictly inside is
    ``DURING``; an instant at ``[s, t)``'s end shares nothing and is
    adjacent, hence ``MET_BY``. ``relate(a, b).inverse`` always equals
    ``relate(b, a)``.
    """
    if not a.intersects(b):
        if a.end < b.start:
            return IntervalRelation.BEFORE
        if b.end < a.start:
            return IntervalRelation.AFTER
        if a.end == b.start:
            return IntervalRelation.MEETS
        # Only adjacency at a's start remains: b.end == a.start.
        return IntervalRelation.MET_BY
    if a.start == b.start and a.end == b.end:
        return IntervalRelation.EQUAL
    if a.start == b.start:
        return IntervalRelation.STARTS if a.end < b.end else IntervalRelation.STARTED_BY
    if a.end == b.end:
        return IntervalRelation.FINISHES if a.start > b.start else IntervalRelation.FINISHED_BY
    if b.start < a.start and a.end < b.end:
        return IntervalRelation.DURING
    if a.start < b.start and b.end < a.end:
        return IntervalRelation.CONTAINS
    if a.start < b.start:
        return IntervalRelation.OVERLAPS
    return IntervalRelation.OVERLAPPED_BY


def span(intervals: Iterable[Interval]) -> Interval | None:
    """Smallest interval covering all of ``intervals`` (None if empty)."""
    result: Interval | None = None
    for interval in intervals:
        result = interval if result is None else result.hull(interval)
    return result


def total_covered(intervals: Iterable[Interval]) -> Rational:
    """Total time covered by the union of ``intervals`` (overlaps counted once)."""
    ordered = sorted(intervals, key=lambda iv: (iv.start, iv.end))
    covered = Rational(0)
    cursor: Rational | None = None
    for interval in ordered:
        if cursor is None or interval.start > cursor:
            covered += interval.duration
            cursor = interval.end
        elif interval.end > cursor:
            covered += interval.end - cursor
            cursor = interval.end
    return covered
