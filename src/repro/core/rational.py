"""Exact rational arithmetic for media timing.

Media time must be exact: NTSC video runs at 30000/1001 frames per second
and rounding to 29.97 accumulates visible drift within minutes. The model
therefore measures all continuous time values as rationals.

:class:`Rational` is a thin subclass of :class:`fractions.Fraction` that

* keeps arithmetic closed over ``Rational`` (Fraction arithmetic returns
  plain ``Fraction``; we re-wrap so helper methods stay available),
* refuses inexact ``float`` construction unless explicitly requested via
  :meth:`Rational.from_float`, because silently rationalizing binary
  floats is the classic source of timing drift bugs, and
* adds media-oriented helpers (``to_seconds``, ``to_timestamp``).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from repro.errors import RationalConversionError

RationalLike = Union["Rational", Fraction, int, str, tuple]


class Rational(Fraction):
    """An exact rational number used for continuous time values.

    Examples
    --------
    >>> Rational(30000, 1001) * Rational(1001, 30000)
    Rational(1, 1)
    >>> Rational("29.97")
    Rational(2997, 100)
    """

    __slots__ = ()

    def __new__(cls, numerator: RationalLike = 0, denominator: int | None = None):
        if isinstance(numerator, float) or isinstance(denominator, float):
            raise RationalConversionError(
                "refusing to construct Rational from float; "
                "use Rational.from_float() if the rounding is intended"
            )
        if isinstance(numerator, tuple):
            if denominator is not None:
                raise RationalConversionError(
                    "cannot pass denominator with tuple numerator"
                )
            numerator, denominator = numerator
        return super().__new__(cls, numerator, denominator)

    @classmethod
    def from_float(cls, value: float) -> "Rational":
        """Construct from a float, limiting the denominator sensibly.

        The denominator is limited to 10**9 which is ample for any media
        rate while avoiding the pathological exact binary expansions of
        ``Fraction(float)``.
        """
        return cls(Fraction(value).limit_denominator(10**9))

    # -- closure of arithmetic over Rational ---------------------------------

    def _wrap(self, value):
        if isinstance(value, Fraction) and not isinstance(value, Rational):
            return Rational(value)
        return value

    def __add__(self, other):
        return self._wrap(super().__add__(other))

    def __radd__(self, other):
        return self._wrap(super().__radd__(other))

    def __sub__(self, other):
        return self._wrap(super().__sub__(other))

    def __rsub__(self, other):
        return self._wrap(super().__rsub__(other))

    def __mul__(self, other):
        return self._wrap(super().__mul__(other))

    def __rmul__(self, other):
        return self._wrap(super().__rmul__(other))

    def __truediv__(self, other):
        return self._wrap(super().__truediv__(other))

    def __rtruediv__(self, other):
        return self._wrap(super().__rtruediv__(other))

    def __mod__(self, other):
        return self._wrap(super().__mod__(other))

    def __neg__(self):
        return self._wrap(super().__neg__())

    def __pos__(self):
        return self._wrap(super().__pos__())

    def __abs__(self):
        return self._wrap(super().__abs__())

    def __pow__(self, other):
        return self._wrap(super().__pow__(other))

    # -- media helpers --------------------------------------------------------

    def to_seconds(self) -> float:
        """Return the value as float seconds (for display only)."""
        return self.numerator / self.denominator

    def to_timestamp(self) -> str:
        """Render as ``H:MM:SS.mmm`` (or ``M:SS.mmm`` under an hour).

        >>> Rational(130).to_timestamp()
        '2:10.000'
        """
        total_ms = round(self * 1000)
        sign = "-" if total_ms < 0 else ""
        total_ms = abs(total_ms)
        ms = total_ms % 1000
        total_s = total_ms // 1000
        seconds = total_s % 60
        minutes = (total_s // 60) % 60
        hours = total_s // 3600
        if hours:
            return f"{sign}{hours}:{minutes:02d}:{seconds:02d}.{ms:03d}"
        return f"{sign}{minutes}:{seconds:02d}.{ms:03d}"

    def __repr__(self) -> str:
        return f"Rational({self.numerator}, {self.denominator})"


#: Zero as a Rational, shared to avoid repeated construction.
ZERO = Rational(0)

#: One as a Rational.
ONE = Rational(1)


def as_rational(value: RationalLike | float) -> Rational:
    """Coerce ``value`` to :class:`Rational`.

    Unlike the constructor this accepts floats (via
    :meth:`Rational.from_float`) because it is the explicit conversion
    point for user-facing APIs.
    """
    if isinstance(value, Rational):
        return value
    if isinstance(value, float):
        return Rational.from_float(value)
    return Rational(value)
