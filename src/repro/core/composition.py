"""Composition: assembling multimedia objects (Definition 7).

"Composition is the specification of temporal and/or spatial
relationships between a group of media objects. The result of composition
is called a multimedia object, the spatiotemporally related objects are
called its components."

Temporal composition places a component at an offset on the multimedia
object's timeline; spatial composition places it in a 2D/3D presentation
space. A component may itself be a multimedia object, so complex
assemblies nest ("complex multimedia structures are built up from
simpler, perhaps 'single-media', components").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.core.intervals import Interval, IntervalRelation, relate, span
from repro.core.media_object import MediaObject
from repro.core.rational import Rational, as_rational
from repro.errors import CompositionError

Component = Union[MediaObject, "MultimediaObject"]


def _component_duration(component: Component) -> Rational:
    """Duration of a component in seconds.

    Media objects report the ``duration`` descriptor attribute when
    present (so derived objects need not expand), falling back to their
    stream's span; multimedia objects report their composed timeline
    length. Still media (images, text) have zero intrinsic duration and
    rely on an explicit duration in the composition relationship.
    """
    if isinstance(component, MultimediaObject):
        return component.duration()
    declared = component.descriptor.get("duration")
    if declared is not None:
        return as_rational(declared)
    if component.media_type.kind.is_time_based:
        return component.stream().duration_seconds()
    return Rational(0)


@dataclass(frozen=True, slots=True)
class SpatialPlacement:
    """Position (and stacking order) of a component in presentation space."""

    x: Rational
    y: Rational
    z: int = 0
    scale: Rational = Rational(1)

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", as_rational(self.x))
        object.__setattr__(self, "y", as_rational(self.y))
        scale = as_rational(self.scale)
        if scale <= 0:
            raise CompositionError(f"scale must be positive, got {scale}")
        object.__setattr__(self, "scale", scale)


class CompositionRelationship:
    """One instance of a composition relationship (a diamond in Figure 4a).

    Carries the component, an optional temporal placement (start offset
    and optional explicit duration on the parent's timeline) and an
    optional spatial placement.
    """

    def __init__(
        self,
        component: Component,
        start_offset=None,
        duration=None,
        placement: SpatialPlacement | None = None,
        label: str | None = None,
    ):
        if start_offset is None and placement is None:
            raise CompositionError(
                "a composition relationship must be temporal (start_offset), "
                "spatial (placement), or both"
            )
        self.component = component
        self.start_offset = (
            None if start_offset is None else as_rational(start_offset)
        )
        if self.start_offset is not None and self.start_offset < 0:
            raise CompositionError("start offset must be non-negative")
        self.explicit_duration = None if duration is None else as_rational(duration)
        if self.explicit_duration is not None and self.explicit_duration < 0:
            raise CompositionError("duration must be non-negative")
        self.placement = placement
        self.label = label or getattr(component, "name", "component")

    @property
    def is_temporal(self) -> bool:
        return self.start_offset is not None

    @property
    def is_spatial(self) -> bool:
        return self.placement is not None

    def duration(self) -> Rational:
        if self.explicit_duration is not None:
            return self.explicit_duration
        return _component_duration(self.component)

    def interval(self) -> Interval:
        """The component's interval on the parent timeline (temporal only)."""
        if not self.is_temporal:
            raise CompositionError(
                f"component {self.label!r} has no temporal placement"
            )
        return Interval.of(self.start_offset, self.duration())

    def __repr__(self) -> str:
        parts = [repr(self.label)]
        if self.is_temporal:
            parts.append(f"at {self.start_offset.to_timestamp()}")
        if self.is_spatial:
            parts.append(f"xy=({self.placement.x},{self.placement.y})")
        return f"CompositionRelationship({', '.join(parts)})"


class TemporalComposition(CompositionRelationship):
    """Pure temporal composition: "relative timing during presentation"."""

    def __init__(self, component: Component, start_offset, duration=None,
                 label: str | None = None):
        super().__init__(component, start_offset=start_offset,
                         duration=duration, label=label)


class SpatialComposition(CompositionRelationship):
    """Pure spatial composition: "relative positioning during presentation".

    Spatial-only components still appear for the full presentation, so a
    start offset of 0 is implied when the parent timeline is queried.
    """

    def __init__(self, component: Component, x, y, z: int = 0, scale=1,
                 label: str | None = None):
        super().__init__(
            component,
            placement=SpatialPlacement(as_rational(x), as_rational(y), z,
                                       as_rational(scale)),
            label=label,
        )


class MultimediaObject:
    """Definition 7's result: a group of spatiotemporally related components."""

    def __init__(self, name: str = "multimedia-object"):
        self.name = name
        self._relationships: list[CompositionRelationship] = []
        self._labels: set[str] = set()
        self._version = 0

    # -- construction -------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic edit counter, bumped on every :meth:`add`.

        Index layers (:mod:`repro.query.index`) snapshot this to detect
        compositions mutated after they were indexed and re-encode them
        lazily, keeping indexed timelines write-through consistent.
        """
        return self._version

    def add(self, relationship: CompositionRelationship) -> CompositionRelationship:
        if relationship.label in self._labels:
            raise CompositionError(
                f"{self.name!r} already has a component labelled "
                f"{relationship.label!r}"
            )
        self._relationships.append(relationship)
        self._labels.add(relationship.label)
        self._version += 1
        return relationship

    def add_temporal(self, component: Component, at, duration=None,
                     label: str | None = None) -> CompositionRelationship:
        """Place ``component`` on the timeline starting at ``at`` seconds."""
        return self.add(TemporalComposition(component, at, duration, label))

    def add_spatial(self, component: Component, x, y, z: int = 0,
                    label: str | None = None) -> CompositionRelationship:
        """Place ``component`` at position (x, y) with stacking order z."""
        return self.add(SpatialComposition(component, x, y, z, label=label))

    # -- access --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._relationships)

    def __iter__(self):
        return iter(self._relationships)

    @property
    def relationships(self) -> list[CompositionRelationship]:
        return list(self._relationships)

    def component(self, label: str) -> CompositionRelationship:
        for r in self._relationships:
            if r.label == label:
                return r
        raise CompositionError(
            f"{self.name!r} has no component {label!r}; have: "
            f"{', '.join(r.label for r in self._relationships) or '(none)'}"
        )

    def components(self) -> list[Component]:
        return [r.component for r in self._relationships]

    def flatten(self) -> list[tuple[str, MediaObject, Interval]]:
        """All leaf media objects with absolute intervals, nesting resolved."""
        result: list[tuple[str, MediaObject, Interval]] = []
        for r in self._relationships:
            offset = r.start_offset if r.is_temporal else Rational(0)
            if isinstance(r.component, MultimediaObject):
                for label, obj, interval in r.component.flatten():
                    result.append((
                        f"{r.label}/{label}", obj, interval.translate(offset)
                    ))
            else:
                result.append((r.label, r.component, Interval.of(offset, r.duration())))
        return result

    # -- timeline ------------------------------------------------------------------

    def timeline(self) -> list[tuple[str, Interval]]:
        """Per-component intervals, ordered by start then label."""
        entries = [
            (r.label, r.interval() if r.is_temporal
             else Interval.of(0, r.duration()))
            for r in self._relationships
        ]
        return sorted(entries, key=lambda item: (item[1].start, item[0]))

    def duration(self) -> Rational:
        """End of the latest component (0 for an empty object)."""
        hull = span(interval for _, interval in self.timeline())
        return hull.end if hull else Rational(0)

    def relation(self, label_a: str, label_b: str) -> IntervalRelation:
        """Allen relation between two components' timeline intervals."""
        a = self.component(label_a)
        b = self.component(label_b)
        interval_a = a.interval() if a.is_temporal else Interval.of(0, a.duration())
        interval_b = b.interval() if b.is_temporal else Interval.of(0, b.duration())
        return relate(interval_a, interval_b)

    def simultaneous_at(self, t) -> list[str]:
        """Labels of components presented at time ``t``."""
        t = as_rational(t)
        return [
            label for label, interval in self.timeline()
            if interval.contains_time(t)
        ]

    def timeline_diagram(self, width: int = 60) -> str:
        """ASCII timeline in the style of Figure 4(b)."""
        entries = self.timeline()
        if not entries:
            return f"{self.name}: (empty)"
        total = self.duration()
        if total == 0:
            total = Rational(1)
        label_width = max(len(label) for label, _ in entries)
        lines = [f"{self.name} — {total.to_timestamp()}"]
        for label, interval in entries:
            begin = int(round((interval.start / total).to_seconds() * width))
            length = max(1, int(round((interval.duration / total).to_seconds() * width)))
            bar = " " * begin + "#" * min(length, width - begin)
            lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}|")
        ruler = (
            " " * label_width
            + f"  0:00{'':{max(0, width - 12)}}{total.to_timestamp():>6}"
        )
        lines.append(ruler)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"MultimediaObject({self.name!r}, {len(self)} components, "
            f"duration={self.duration().to_timestamp()})"
        )
