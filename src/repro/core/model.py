"""Schema layer: entities with media-valued attributes.

§4's framing: "Suppose we can construct multimedia objects using
attributes that take media objects as their values. For instance, a
VideoClip object could possess, in addition to character-valued
attributes such as the title and name of the director, a video-valued
attribute containing the actual content of a video clip."

This module provides that construct: an :class:`EntityType` declares
attributes whose domains are scalar types, media kinds (optionally
constrained to a quality floor), or multimedia objects; an
:class:`Entity` is a validated instance. The media-valued attributes hold
*references* to media objects — derived or not — so entities stay small
and the derivation machinery keeps working underneath.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.core.composition import MultimediaObject
from repro.core.media_object import MediaObject
from repro.core.media_types import MediaKind
from repro.core.quality import QualityLadder
from repro.errors import MediaModelError


class ScalarKind(enum.Enum):
    """Scalar attribute domains."""

    CHAR = "char"
    INT = "int"
    FLOAT = "float"
    BOOL = "bool"


_SCALAR_TYPES = {
    ScalarKind.CHAR: str,
    ScalarKind.INT: int,
    ScalarKind.FLOAT: (int, float),
    ScalarKind.BOOL: bool,
}


@dataclass(frozen=True)
class AttributeType:
    """One attribute declaration.

    Exactly one of ``scalar``, ``media_kind``, ``multimedia`` defines the
    domain. Media-valued attributes may require a minimum quality factor
    ("a particular video-valued attribute might be of 'broadcast
    quality'", §2.2) checked against a quality ladder.
    """

    name: str
    scalar: ScalarKind | None = None
    media_kind: MediaKind | None = None
    multimedia: bool = False
    required: bool = True
    min_quality: str | None = None
    quality_ladder: QualityLadder | None = None

    def __post_init__(self) -> None:
        domains = sum((
            self.scalar is not None,
            self.media_kind is not None,
            self.multimedia,
        ))
        if domains != 1:
            raise MediaModelError(
                f"attribute {self.name!r}: declare exactly one of "
                "scalar / media_kind / multimedia"
            )
        if self.min_quality is not None:
            if self.media_kind is None:
                raise MediaModelError(
                    f"attribute {self.name!r}: min_quality applies only "
                    "to media-valued attributes"
                )
            if self.quality_ladder is None:
                raise MediaModelError(
                    f"attribute {self.name!r}: min_quality needs a "
                    "quality ladder"
                )
            self.quality_ladder.get(self.min_quality)  # validate the name

    def check(self, value: Any) -> None:
        """Raise :class:`MediaModelError` if ``value`` is outside the domain."""
        if self.scalar is not None:
            expected = _SCALAR_TYPES[self.scalar]
            if not isinstance(value, expected) or isinstance(value, bool) != (
                self.scalar is ScalarKind.BOOL
            ):
                raise MediaModelError(
                    f"attribute {self.name!r}: expected {self.scalar.value}, "
                    f"got {type(value).__name__}"
                )
            return
        if self.multimedia:
            if not isinstance(value, MultimediaObject):
                raise MediaModelError(
                    f"attribute {self.name!r}: expected a multimedia "
                    f"object, got {type(value).__name__}"
                )
            return
        if not isinstance(value, MediaObject):
            raise MediaModelError(
                f"attribute {self.name!r}: expected a media object, "
                f"got {type(value).__name__}"
            )
        if value.kind is not self.media_kind:
            raise MediaModelError(
                f"attribute {self.name!r}: expected {self.media_kind.value}, "
                f"got {value.kind.value}"
            )
        if self.min_quality is not None:
            declared = value.descriptor.get("quality_factor")
            if declared is None:
                raise MediaModelError(
                    f"attribute {self.name!r}: media object "
                    f"{value.name!r} declares no quality factor "
                    f"(needs at least {self.min_quality!r})"
                )
            floor = self.quality_ladder.get(self.min_quality)
            actual = self.quality_ladder.get(declared)
            if actual < floor:
                raise MediaModelError(
                    f"attribute {self.name!r}: {value.name!r} is "
                    f"{declared!r}, below the required {self.min_quality!r}"
                )


class EntityType:
    """A named schema of attribute declarations."""

    def __init__(self, name: str, attributes: list[AttributeType]):
        if not name:
            raise MediaModelError("entity type name must be non-empty")
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise MediaModelError(f"duplicate attribute names in {name!r}")
        self.name = name
        self.attributes: dict[str, AttributeType] = {
            a.name: a for a in attributes
        }

    def attribute(self, name: str) -> AttributeType:
        try:
            return self.attributes[name]
        except KeyError:
            raise MediaModelError(
                f"{self.name} has no attribute {name!r}; has: "
                f"{', '.join(sorted(self.attributes))}"
            ) from None

    def media_attributes(self) -> list[AttributeType]:
        """The media- and multimedia-valued attribute declarations."""
        return [
            a for a in self.attributes.values()
            if a.media_kind is not None or a.multimedia
        ]

    def new(self, **values: Any) -> "Entity":
        """Construct a validated entity."""
        return Entity(self, values)

    def __repr__(self) -> str:
        return f"EntityType({self.name!r}, {len(self.attributes)} attributes)"


class Entity:
    """A validated instance of an :class:`EntityType`."""

    def __init__(self, entity_type: EntityType, values: dict[str, Any]):
        unknown = set(values) - set(entity_type.attributes)
        if unknown:
            raise MediaModelError(
                f"{entity_type.name}: unknown attributes {sorted(unknown)}"
            )
        for name, spec in entity_type.attributes.items():
            if name not in values:
                if spec.required:
                    raise MediaModelError(
                        f"{entity_type.name}: missing required attribute "
                        f"{name!r}"
                    )
                continue
            spec.check(values[name])
        self.entity_type = entity_type
        self._values = dict(values)

    def __getitem__(self, name: str) -> Any:
        self.entity_type.attribute(name)  # validates the name
        try:
            return self._values[name]
        except KeyError:
            raise MediaModelError(
                f"{self.entity_type.name}: attribute {name!r} not set"
            ) from None

    def get(self, name: str, default: Any = None) -> Any:
        self.entity_type.attribute(name)
        return self._values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def with_value(self, name: str, value: Any) -> "Entity":
        """A copy with one attribute replaced (entities are immutable)."""
        self.entity_type.attribute(name).check(value)
        merged = dict(self._values)
        merged[name] = value
        return Entity(self.entity_type, merged)

    def media_values(self) -> dict[str, MediaObject | MultimediaObject]:
        """The media-valued attribute bindings actually present."""
        return {
            spec.name: self._values[spec.name]
            for spec in self.entity_type.media_attributes()
            if spec.name in self._values
        }

    def __repr__(self) -> str:
        scalars = {
            k: v for k, v in self._values.items()
            if not isinstance(v, (MediaObject, MultimediaObject))
        }
        return f"Entity({self.entity_type.name}, {scalars})"


def video_clip_type(quality_ladder: QualityLadder | None = None) -> EntityType:
    """The paper's VideoClip example, ready to use.

    >>> clip_type = video_clip_type()
    >>> # clip_type.new(title="...", director="...", content=<video object>)
    """
    from repro.core.quality import VIDEO_QUALITY

    ladder = quality_ladder or VIDEO_QUALITY
    return EntityType("VideoClip", [
        AttributeType("title", scalar=ScalarKind.CHAR),
        AttributeType("director", scalar=ScalarKind.CHAR),
        AttributeType("year", scalar=ScalarKind.INT, required=False),
        AttributeType("content", media_kind=MediaKind.VIDEO,
                      min_quality="VHS quality", quality_ladder=ladder),
        AttributeType("soundtrack", media_kind=MediaKind.AUDIO,
                      required=False),
    ])
