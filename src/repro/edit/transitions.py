"""Video transitions: fades, wipes, dissolves, chroma keying.

"In video editing, instead of directly concatenating two video objects
often an intermediate video effect is used, as for example, a fade or
wipe. These transitions produce video frames that consist of data
stemming from both video objects ... The parameters for this kind of
derivation specify the type of transition, its duration and the start
time in both video objects." (§4.2)

Chroma keying ("of one video sequence over another ... the content of
the first video sequence is partially replaced with that of the second")
is the two-input content-changing example of §4.2.

In the paper these run on dedicated DVE hardware in real time; here they
are numpy pixel arithmetic, and the resource model
(:mod:`repro.engine.resources`) decides whether expansion is real-time
feasible.
"""

from __future__ import annotations

import numpy as np

from repro.core.derivation import (
    Derivation,
    DerivationCategory,
    derivation_registry,
)
from repro.core.media_types import MediaKind
from repro.errors import DerivationError

TRANSITION_KINDS = ("fade", "wipe-left", "wipe-right", "wipe-down", "iris")


def fade_frames(a: np.ndarray, b: np.ndarray, progress: float) -> np.ndarray:
    """Cross-fade: ``(1 - progress) * a + progress * b``."""
    _check_pair(a, b)
    mixed = a.astype(np.float32) * (1.0 - progress) + b.astype(np.float32) * progress
    return np.clip(np.rint(mixed), 0, 255).astype(np.uint8)


#: A dissolve is a cross-fade under another name (kept for EDL parity).
dissolve_frames = fade_frames


def wipe_frames(a: np.ndarray, b: np.ndarray, progress: float,
                direction: str = "left") -> np.ndarray:
    """Wipe: ``b`` replaces ``a`` behind a moving edge.

    "one scene ends and its image is gradually wiped away to reveal the
    following scene" (§2.2).
    """
    _check_pair(a, b)
    height, width = a.shape[:2]
    out = a.copy()
    if direction == "left":
        edge = int(round(width * progress))
        out[:, :edge] = b[:, :edge]
    elif direction == "right":
        edge = int(round(width * (1.0 - progress)))
        out[:, edge:] = b[:, edge:]
    elif direction == "down":
        edge = int(round(height * progress))
        out[:edge, :] = b[:edge, :]
    else:
        raise DerivationError(f"unknown wipe direction {direction!r}")
    return out


def iris_frames(a: np.ndarray, b: np.ndarray, progress: float) -> np.ndarray:
    """Iris: ``b`` grows from the center in an expanding circle."""
    _check_pair(a, b)
    height, width = a.shape[:2]
    yy, xx = np.mgrid[0:height, 0:width]
    cy, cx = height / 2.0, width / 2.0
    radius = progress * np.hypot(cy, cx)
    mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= radius * radius
    out = a.copy()
    out[mask] = b[mask]
    return out


def chroma_key(foreground: np.ndarray, background: np.ndarray,
               key_color: tuple[int, int, int] = (0, 255, 0),
               tolerance: float = 60.0) -> np.ndarray:
    """Replace pixels near ``key_color`` in the foreground with background."""
    _check_pair(foreground, background)
    distance = np.linalg.norm(
        foreground.astype(np.float32) - np.array(key_color, dtype=np.float32),
        axis=-1,
    )
    mask = distance <= tolerance
    out = foreground.copy()
    out[mask] = background[mask]
    return out


def transition_frame(kind: str, a: np.ndarray, b: np.ndarray,
                     progress: float) -> np.ndarray:
    """Dispatch one transition frame by kind name."""
    if kind == "fade":
        return fade_frames(a, b, progress)
    if kind.startswith("wipe-"):
        return wipe_frames(a, b, progress, kind.split("-", 1)[1])
    if kind == "iris":
        return iris_frames(a, b, progress)
    raise DerivationError(
        f"unknown transition {kind!r}; known: {TRANSITION_KINDS}"
    )


def _expand_video_transition(inputs, params):
    a_obj, b_obj = inputs
    kind = params.get("kind", "fade")
    duration = params["duration_ticks"]
    a_start = params.get("a_start", 0)
    b_start = params.get("b_start", 0)
    if duration <= 0:
        raise DerivationError("transition duration must be positive")

    a_stream = a_obj.stream()
    b_stream = b_obj.stream()
    if a_start + duration > a_stream.end or b_start + duration > b_stream.end:
        raise DerivationError(
            "transition span exceeds a source: "
            f"needs {duration} ticks from a@{a_start} (have {a_stream.end}) "
            f"and b@{b_start} (have {b_stream.end})"
        )
    frames = []
    a_tuples = a_stream.tuples
    b_tuples = b_stream.tuples
    for i in range(duration):
        progress = i / max(duration - 1, 1)
        a_frame = a_tuples[a_start + i].element.payload
        b_frame = b_tuples[b_start + i].element.payload
        frames.append(transition_frame(kind, a_frame, b_frame, progress))

    from repro.media.objects import video_object

    return video_object(
        frames,
        f"{a_obj.name}-{kind}-{b_obj.name}",
        media_type_name=a_obj.media_type.name,
        quality_factor=a_obj.descriptor.get("quality_factor",
                                            "production quality"),
    )


def _describe_video_transition(inputs, params):
    a_obj = inputs[0]
    duration = params["duration_ticks"]
    system = a_obj.media_type.time_system
    descriptor = a_obj.descriptor.with_updates(
        duration=system.to_continuous(duration),
    )
    return a_obj.media_type, descriptor


VIDEO_TRANSITION = derivation_registry.register(Derivation(
    name="video-transition",
    category=DerivationCategory.CHANGE_OF_CONTENT,
    input_kinds=(MediaKind.VIDEO, MediaKind.VIDEO),
    result_kind=MediaKind.VIDEO,
    expand=_expand_video_transition,
    describe=_describe_video_transition,
    required_params=("duration_ticks",),
    optional_params=("kind", "a_start", "b_start"),
    doc="Table 1: (video, video) -> video; fades, wipes, iris.",
))


def _expand_chroma_key(inputs, params):
    fg_obj, bg_obj = inputs
    key_color = tuple(params.get("key_color", (0, 255, 0)))
    tolerance = params.get("tolerance", 60.0)
    fg = fg_obj.stream().tuples
    bg = bg_obj.stream().tuples
    count = min(len(fg), len(bg))
    frames = [
        chroma_key(fg[i].element.payload, bg[i].element.payload,
                   key_color, tolerance)
        for i in range(count)
    ]
    from repro.media.objects import video_object

    return video_object(
        frames, f"{fg_obj.name}-keyed",
        media_type_name=fg_obj.media_type.name,
        quality_factor=fg_obj.descriptor.get("quality_factor",
                                             "production quality"),
    )


def _describe_chroma_key(inputs, params):
    fg_obj, bg_obj = inputs
    duration = min(
        fg_obj.descriptor.get("duration", 0),
        bg_obj.descriptor.get("duration", 0),
    )
    descriptor = fg_obj.descriptor.with_updates(duration=duration)
    return fg_obj.media_type, descriptor


CHROMA_KEY = derivation_registry.register(Derivation(
    name="chroma-key",
    category=DerivationCategory.CHANGE_OF_CONTENT,
    input_kinds=(MediaKind.VIDEO, MediaKind.VIDEO),
    result_kind=MediaKind.VIDEO,
    expand=_expand_chroma_key,
    describe=_describe_chroma_key,
    optional_params=("key_color", "tolerance"),
    doc="§4.2: chroma keying of one video sequence over another.",
))


def _check_pair(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise DerivationError(
            f"transition frames must match: {a.shape} vs {b.shape}"
        )
