"""Temporal composition, rendered for audio: the mixdown.

"Narrating a video sequence by combining it with an audio sequence is an
example of temporal composition" (§4.3). The mixdown makes the audio side
executable: every audio component of a multimedia object is placed at its
temporal offset and summed into one signal — music under narration, both
aligned to the composition's timeline.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.pcm import dequantize_samples
from repro.core.composition import MultimediaObject
from repro.core.media_types import MediaKind
from repro.errors import CompositionError


def _component_signal(obj) -> tuple[np.ndarray, int]:
    """(float mono signal, sample_rate) of an audio media object."""
    descriptor = obj.descriptor
    sample_rate = descriptor.get("sample_rate")
    if sample_rate is None:
        raise CompositionError(f"{obj.name} declares no sample rate")
    blocks = [t.element.payload for t in obj.stream()]
    if not blocks:
        return np.zeros(0), sample_rate
    samples = np.concatenate(blocks)
    if samples.ndim == 2:
        samples = samples.mean(axis=1)
    signal = dequantize_samples(samples, descriptor.get("sample_size", 16))
    return signal, sample_rate


def mixdown(
    multimedia: MultimediaObject,
    sample_rate: int = 44100,
    gain: float | None = None,
) -> np.ndarray:
    """Mix all audio components onto one timeline; returns float mono.

    Components are resampled to ``sample_rate`` by nearest-neighbour
    index mapping (adequate for the integer-ratio rates used here) and
    summed at their temporal offsets. ``gain`` scales the mix; when
    omitted, the mix is normalized only if it clips.
    """
    duration = multimedia.duration()
    total = np.zeros(int(duration * sample_rate) + 1)
    found_audio = False
    for label, obj, interval in multimedia.flatten():
        if obj.kind is not MediaKind.AUDIO:
            continue
        found_audio = True
        signal, source_rate = _component_signal(obj)
        if source_rate != sample_rate and len(signal):
            positions = np.arange(
                0, len(signal), source_rate / sample_rate
            )
            indexes = np.minimum(
                positions.astype(np.int64), len(signal) - 1
            )
            signal = signal[indexes]
        begin = int(interval.start * sample_rate)
        end = min(begin + len(signal), len(total))
        total[begin:end] += signal[:end - begin]
    if not found_audio:
        raise CompositionError(
            f"{multimedia.name!r} has no audio components to mix"
        )
    if gain is not None:
        total = total * gain
    peak = np.abs(total).max()
    if gain is None and peak > 1.0:
        total /= peak
    return total


def channel_activity(
    multimedia: MultimediaObject,
    at,
) -> dict[str, bool]:
    """Which audio components are sounding at time ``at`` (for meters)."""
    from repro.core.rational import as_rational

    t = as_rational(at)
    result = {}
    for label, obj, interval in multimedia.flatten():
        if obj.kind is MediaKind.AUDIO:
            result[label] = interval.contains_time(t)
    return result
