"""Color separation: the image->image derivation of Table 1.

"Printing a color image often requires a change in the color model as
when images are converted from an RGB format to a CMYK format. Since the
mapping from RGB into the CMYK color model is not unique, additional
information must be provided as parameters." (§4.2)

The parameter here is ``black_generation`` — how aggressively common ink
is moved to the K plate — standing in for the paper's separation tables.
The derivation's result is a CMYK still image whose four plates can also
be extracted individually (Figure 3a shows red/green/blue going to
cyan/magenta/yellow/black).
"""

from __future__ import annotations

import numpy as np

from repro.codecs.color import cmyk_to_rgb, rgb_to_cmyk
from repro.core.derivation import (
    Derivation,
    DerivationCategory,
    derivation_registry,
)
from repro.core.media_types import MediaKind
from repro.errors import DerivationError

PLATES = ("cyan", "magenta", "yellow", "black")


def separate(image: np.ndarray, black_generation: float = 1.0) -> np.ndarray:
    """RGB -> CMYK separation (thin wrapper for discoverability)."""
    return rgb_to_cmyk(image, black_generation)


def plate(cmyk: np.ndarray, name: str) -> np.ndarray:
    """Extract one ink plate as a float32 plane in [0, 1]."""
    try:
        index = PLATES.index(name)
    except ValueError:
        raise DerivationError(
            f"unknown plate {name!r}; plates: {PLATES}"
        ) from None
    return cmyk[..., index]


def _expand_color_separation(inputs, params):
    from repro.media.objects import image_object

    source = inputs[0]
    if source.descriptor["color_model"] != "RGB":
        raise DerivationError(
            f"color separation expects an RGB image, got "
            f"{source.descriptor['color_model']}"
        )
    cmyk = separate(source.value(), params.get("black_generation", 1.0))
    obj = image_object(cmyk, f"{source.name}-cmyk", color_model="CMYK")
    return obj


def _describe_color_separation(inputs, params):
    source = inputs[0]
    descriptor = source.descriptor.with_updates(color_model="CMYK", depth=32)
    return source.media_type, descriptor


COLOR_SEPARATION = derivation_registry.register(Derivation(
    name="color-separation",
    category=DerivationCategory.CHANGE_OF_CONTENT,
    input_kinds=(MediaKind.IMAGE,),
    result_kind=MediaKind.IMAGE,
    expand=_expand_color_separation,
    describe=_describe_color_separation,
    optional_params=("black_generation",),
    doc="Table 1: image -> image; RGB to CMYK with separation parameters.",
))


def roundtrip_error(image: np.ndarray, black_generation: float = 1.0) -> float:
    """Mean absolute RGB error after separate + recombine (sanity metric)."""
    recombined = cmyk_to_rgb(rgb_to_cmyk(image, black_generation))
    return float(np.mean(np.abs(
        recombined.astype(np.int32) - image.astype(np.int32)
    )))
