"""Content filters: audio normalization and image filtering.

"The enhancement of sound files with too little amplitude or uneven
volume is done by a scaling operation called 'normalization'. The
parameters needed are the start and end points of the audio sequence to
be normalized. If no parameters are specified, normalization is performed
for the whole audio object." (§4.2, Table 1's "audio normalization")

Image filters ("digital filters for images") are the single-input
content-changing examples of §4.2.
"""

from __future__ import annotations

import numpy as np

from repro.core.derivation import (
    Derivation,
    DerivationCategory,
    derivation_registry,
)
from repro.core.media_types import MediaKind
from repro.errors import DerivationError


def normalize_signal(samples: np.ndarray, start: int | None = None,
                     end: int | None = None,
                     target_peak: float = 0.98) -> np.ndarray:
    """Scale ``samples[start:end]`` so its peak hits ``target_peak``.

    ``samples`` are integer PCM (any shape with samples along axis 0);
    the untouched regions are returned unchanged. With no start/end the
    whole signal is normalized, matching the paper's default.
    """
    if not 0 < target_peak <= 1.0:
        raise DerivationError(f"target_peak must be in (0, 1], got {target_peak}")
    samples = np.asarray(samples)
    begin = 0 if start is None else start
    stop = len(samples) if end is None else end
    if not 0 <= begin <= stop <= len(samples):
        raise DerivationError(
            f"normalization range [{begin}, {stop}) outside signal "
            f"of {len(samples)} samples"
        )
    region = samples[begin:stop]
    if region.size == 0:
        return samples.copy()
    info = np.iinfo(samples.dtype)
    peak = np.abs(region.astype(np.float64)).max()
    if peak == 0:
        return samples.copy()
    gain = (target_peak * info.max) / peak
    out = samples.copy()
    scaled = np.clip(region.astype(np.float64) * gain, info.min, info.max)
    out[begin:stop] = np.rint(scaled).astype(samples.dtype)
    return out


def _expand_audio_normalization(inputs, params):
    from repro.media.objects import audio_object, signal_of
    from repro.codecs.pcm import dequantize_samples

    source = inputs[0]
    samples = signal_of(source)
    normalized = normalize_signal(
        samples,
        start=params.get("start"),
        end=params.get("end"),
        target_peak=params.get("target_peak", 0.98),
    )
    descriptor = source.descriptor
    return audio_object(
        dequantize_samples(normalized, descriptor["sample_size"]),
        f"{source.name}-normalized",
        sample_rate=descriptor["sample_rate"],
        sample_size=descriptor["sample_size"],
        block_samples=descriptor.get("block_samples", 1764),
        quality_factor=descriptor.get("quality_factor", "CD quality"),
    )


def _describe_audio_normalization(inputs, params):
    source = inputs[0]
    return source.media_type, source.descriptor


AUDIO_NORMALIZATION = derivation_registry.register(Derivation(
    name="audio-normalization",
    category=DerivationCategory.CHANGE_OF_CONTENT,
    input_kinds=(MediaKind.AUDIO,),
    result_kind=MediaKind.AUDIO,
    expand=_expand_audio_normalization,
    describe=_describe_audio_normalization,
    optional_params=("start", "end", "target_peak"),
    doc="Table 1: audio -> audio; scale a region to a target peak.",
))


# -- image filters -------------------------------------------------------------


def box_blur(image: np.ndarray, radius: int = 1) -> np.ndarray:
    """Box blur with edge padding; ``radius`` in pixels."""
    if radius < 1:
        raise DerivationError("blur radius must be >= 1")
    size = 2 * radius + 1
    padded = np.pad(
        image.astype(np.float32),
        ((radius, radius), (radius, radius), (0, 0)),
        mode="edge",
    )
    # Separable: average rows, then columns, via cumulative sums.
    csum = np.cumsum(padded, axis=0)
    rows = (csum[size - 1:] - np.concatenate(
        [np.zeros_like(csum[:1]), csum[:-size]], axis=0
    )) / size
    csum = np.cumsum(rows, axis=1)
    cols = (csum[:, size - 1:] - np.concatenate(
        [np.zeros_like(csum[:, :1]), csum[:, :-size]], axis=1
    )) / size
    return np.clip(np.rint(cols), 0, 255).astype(np.uint8)


def sharpen(image: np.ndarray, amount: float = 1.0) -> np.ndarray:
    """Unsharp mask: original + amount * (original - blurred)."""
    blurred = box_blur(image, radius=1).astype(np.float32)
    sharp = image.astype(np.float32) * (1 + amount) - blurred * amount
    return np.clip(np.rint(sharp), 0, 255).astype(np.uint8)


def _expand_image_filter(inputs, params):
    from repro.media.objects import image_object

    source = inputs[0]
    image = source.value()
    kind = params.get("kind", "blur")
    if kind == "blur":
        result = box_blur(image, radius=params.get("radius", 1))
    elif kind == "sharpen":
        result = sharpen(image, amount=params.get("amount", 1.0))
    else:
        raise DerivationError(f"unknown image filter {kind!r}")
    return image_object(result, f"{source.name}-{kind}",
                        color_model=source.descriptor["color_model"])


def _describe_image_filter(inputs, params):
    source = inputs[0]
    return source.media_type, source.descriptor


IMAGE_FILTER = derivation_registry.register(Derivation(
    name="image-filter",
    category=DerivationCategory.CHANGE_OF_CONTENT,
    input_kinds=(MediaKind.IMAGE,),
    result_kind=MediaKind.IMAGE,
    expand=_expand_image_filter,
    describe=_describe_image_filter,
    optional_params=("kind", "radius", "amount"),
    doc="§4.2: digital filters for images (blur, sharpen).",
))
