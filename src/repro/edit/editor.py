"""A high-level non-destructive editor over derivations.

The paper argues editing should manipulate "references to structures
within the data" rather than the data (§1.2), and that "sequences of
derivations can be changed and reused, this is useful in multimedia
authoring environments" (§4.2). :class:`MediaEditor` is that authoring
surface: every operation creates a *derived* media object; nothing is
expanded until the user asks, and the whole derivation chain is
registered in a provenance graph.
"""

from __future__ import annotations

from repro.core.derivation import derivation_registry
from repro.core.media_object import DerivedMediaObject, MediaObject
from repro.core.provenance import ProvenanceGraph
from repro.edit.edl import EditDecisionList
from repro.errors import DerivationError


class MediaEditor:
    """Builds derivation chains; expansion is explicit and separate."""

    def __init__(self) -> None:
        self.provenance = ProvenanceGraph()

    def _derive(self, derivation_name: str, inputs: list[MediaObject],
                params: dict, name: str | None) -> DerivedMediaObject:
        derivation = derivation_registry.get(derivation_name)
        derived = derivation(inputs, params, name=name)
        self.provenance.register(derived)
        return derived

    # -- video -------------------------------------------------------------------

    def cut(self, video: MediaObject, in_tick: int, out_tick: int,
            name: str | None = None) -> DerivedMediaObject:
        """Select ``[in_tick, out_tick)`` of a video (a one-decision EDL)."""
        edl = EditDecisionList().select(0, in_tick, out_tick)
        return self._derive("video-edit", [video],
                            {"edit_list": edl.as_params()}, name)

    def edit(self, sources: list[MediaObject], edl: EditDecisionList,
             name: str | None = None) -> DerivedMediaObject:
        """Apply a multi-source edit decision list."""
        return self._derive("video-edit", list(sources),
                            {"edit_list": edl.as_params()}, name)

    def concat(self, *videos: MediaObject,
               name: str | None = None) -> DerivedMediaObject:
        """Concatenate whole videos (an EDL selecting each fully)."""
        if not videos:
            raise DerivationError("concat needs at least one video")
        edl = EditDecisionList()
        for index, video in enumerate(videos):
            end = video.media_type.time_system.to_discrete(
                video.descriptor["duration"]
            )
            edl.select(index, 0, end)
        return self._derive("video-edit", list(videos),
                            {"edit_list": edl.as_params()}, name)

    def transition(self, a: MediaObject, b: MediaObject, duration_ticks: int,
                   kind: str = "fade", a_start: int = 0, b_start: int = 0,
                   name: str | None = None) -> DerivedMediaObject:
        """A fade/wipe/iris between two videos (Table 1's video transition)."""
        return self._derive("video-transition", [a, b], {
            "duration_ticks": duration_ticks, "kind": kind,
            "a_start": a_start, "b_start": b_start,
        }, name)

    def chroma_key(self, foreground: MediaObject, background: MediaObject,
                   key_color: tuple[int, int, int] = (0, 255, 0),
                   tolerance: float = 60.0,
                   name: str | None = None) -> DerivedMediaObject:
        return self._derive("chroma-key", [foreground, background], {
            "key_color": key_color, "tolerance": tolerance,
        }, name)

    def reverse(self, video: MediaObject,
                name: str | None = None) -> DerivedMediaObject:
        """Reverse playback order (§2.1: cheap for intra-coded video)."""
        return self._derive("video-reverse", [video], {}, name)

    # -- audio -------------------------------------------------------------------

    def normalize(self, audio: MediaObject, start: int | None = None,
                  end: int | None = None, target_peak: float = 0.98,
                  name: str | None = None) -> DerivedMediaObject:
        params: dict = {"target_peak": target_peak}
        if start is not None:
            params["start"] = start
        if end is not None:
            params["end"] = end
        return self._derive("audio-normalization", [audio], params, name)

    # -- music / animation ----------------------------------------------------------

    def synthesize(self, music: MediaObject, sample_rate: int = 44100,
                   instrument: str = "piano",
                   name: str | None = None) -> DerivedMediaObject:
        return self._derive("midi-synthesis", [music], {
            "sample_rate": sample_rate, "instrument": instrument,
        }, name)

    def render(self, animation: MediaObject, frame_count: int | None = None,
               name: str | None = None) -> DerivedMediaObject:
        params: dict = {}
        if frame_count is not None:
            params["frame_count"] = frame_count
        return self._derive("animation-render", [animation], params, name)

    # -- generic timing -----------------------------------------------------------

    def translate(self, obj: MediaObject, offset_ticks: int,
                  name: str | None = None) -> DerivedMediaObject:
        return self._derive("temporal-translate", [obj],
                            {"offset_ticks": offset_ticks}, name)

    def scale(self, obj: MediaObject, factor,
              name: str | None = None) -> DerivedMediaObject:
        return self._derive("temporal-scale", [obj], {"factor": factor}, name)

    # -- inspection ------------------------------------------------------------------

    def steps(self, obj: MediaObject) -> list[str]:
        """The production steps leading to ``obj`` (§4.2 provenance)."""
        return self.provenance.derivation_steps(obj)

    def total_derivation_bytes(self, obj: MediaObject) -> int:
        """Stored size of the whole derivation chain behind ``obj``."""
        total = 0
        for node in [*self.provenance.lineage(obj), obj]:
            if isinstance(node, DerivedMediaObject):
                total += node.derivation_object.storage_size()
        return total
