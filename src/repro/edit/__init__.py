"""Non-destructive editing: the Table 1 derivations, implemented.

"Editing systems for digital audio and digital video take great care to
perform non-destructive modifications: rather than reading and writing
vast amounts of data in order to accomplish a modification, references to
structures within the data are manipulated." (§1.2)

Importing this package registers the concrete derivations in
:data:`repro.core.derivation.derivation_registry`:

================== ================ ========== ====================
derivation          argument types   result     category
================== ================ ========== ====================
color-separation    image            image      change of content
audio-normalization audio            audio      change of content
video-edit          video...         video      change of timing
video-transition    video, video     video      change of content
temporal-translate  any time-based   same       change of timing
temporal-scale      any time-based   same       change of timing
================== ================ ========== ====================

(plus ``midi-synthesis`` and ``animation-render`` from
:mod:`repro.media`, completing Table 1.)
"""

from repro.edit.edl import EditDecision, EditDecisionList, VIDEO_EDIT
from repro.edit.transitions import (
    VIDEO_TRANSITION,
    chroma_key,
    dissolve_frames,
    fade_frames,
    wipe_frames,
)
from repro.edit.filters import AUDIO_NORMALIZATION, normalize_signal
from repro.edit.separation import COLOR_SEPARATION
from repro.edit.timing import TEMPORAL_SCALE, TEMPORAL_TRANSLATE, VIDEO_REVERSE
from repro.edit.editor import MediaEditor
from repro.edit.compositor import compose_frame, compose_sequence
from repro.edit.mixdown import channel_activity, mixdown

__all__ = [
    "EditDecision",
    "EditDecisionList",
    "VIDEO_EDIT",
    "VIDEO_TRANSITION",
    "chroma_key",
    "dissolve_frames",
    "fade_frames",
    "wipe_frames",
    "AUDIO_NORMALIZATION",
    "normalize_signal",
    "COLOR_SEPARATION",
    "TEMPORAL_SCALE",
    "TEMPORAL_TRANSLATE",
    "VIDEO_REVERSE",
    "MediaEditor",
    "compose_frame",
    "compose_sequence",
    "channel_activity",
    "mixdown",
]
