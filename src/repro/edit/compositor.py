"""Spatial composition, rendered.

Definition 7's spatial side: "positioning objects in a 2D or 3D space.
An example would be placing an image within a page of text or placing
graphical objects in a scene." The compositor makes that executable: it
rasterizes a multimedia object's components at a given presentation time
into one output frame, honoring (x, y) placement, z stacking order, and
integer scaling.

Components contribute a frame when they are visual and presented at the
requested time: still images always, video objects via the element their
stream presents at that instant.
"""

from __future__ import annotations

import numpy as np

from repro.core.composition import (
    CompositionRelationship,
    MultimediaObject,
)
from repro.core.media_types import MediaKind
from repro.core.rational import Rational, as_rational
from repro.errors import CompositionError


def _frame_of(relationship: CompositionRelationship, at) -> np.ndarray | None:
    """The component's pixel content at presentation time ``at``."""
    component = relationship.component
    if isinstance(component, MultimediaObject):
        raise CompositionError(
            "nested multimedia objects must be flattened before "
            "spatial rendering"
        )
    if component.kind is MediaKind.IMAGE:
        return component.value()
    if component.kind is MediaKind.VIDEO:
        stream = component.stream()
        offset = (relationship.start_offset
                  if relationship.is_temporal else Rational(0))
        local = as_rational(at) - offset
        if local < 0:
            return None
        matches = stream.at_time(local)
        if not matches:
            return None
        frame = matches[0].element.payload
        if not isinstance(frame, np.ndarray):
            raise CompositionError(
                f"component {relationship.label!r} holds non-pixel payloads"
            )
        return frame
    return None


def _scaled(frame: np.ndarray, scale: Rational) -> np.ndarray:
    if scale == 1:
        return frame
    if scale.denominator == 1:
        factor = int(scale)
        return np.repeat(np.repeat(frame, factor, axis=0), factor, axis=1)
    inverse = 1 / scale
    if inverse.denominator == 1:
        step = int(inverse)
        return frame[::step, ::step]
    raise CompositionError(
        f"only integer scales and their reciprocals are supported, got {scale}"
    )


def compose_frame(
    multimedia: MultimediaObject,
    at,
    width: int,
    height: int,
    background: tuple[int, int, int] = (0, 0, 0),
) -> np.ndarray:
    """Rasterize the spatially composed components at time ``at``.

    Components with a spatial placement are drawn back-to-front by z
    order; components without one are skipped (they are audio, or purely
    temporal). Pixels falling outside the canvas are clipped.
    """
    canvas = np.empty((height, width, 3), dtype=np.uint8)
    canvas[:] = np.array(background, dtype=np.uint8)
    spatial = sorted(
        (r for r in multimedia if r.is_spatial),
        key=lambda r: r.placement.z,
    )
    for relationship in spatial:
        frame = _frame_of(relationship, at)
        if frame is None:
            continue
        frame = _scaled(frame, relationship.placement.scale)
        x = int(relationship.placement.x)
        y = int(relationship.placement.y)
        fh, fw = frame.shape[:2]
        x0, y0 = max(0, x), max(0, y)
        x1, y1 = min(width, x + fw), min(height, y + fh)
        if x1 <= x0 or y1 <= y0:
            continue
        canvas[y0:y1, x0:x1] = frame[y0 - y:y1 - y, x0 - x:x1 - x]
    return canvas


def compose_sequence(
    multimedia: MultimediaObject,
    width: int,
    height: int,
    fps: int = 25,
    duration=None,
    background: tuple[int, int, int] = (0, 0, 0),
) -> list[np.ndarray]:
    """Rasterize the presentation as a frame sequence at ``fps``."""
    total = as_rational(duration) if duration is not None else multimedia.duration()
    count = int(total * fps)
    return [
        compose_frame(multimedia, Rational(i, fps), width, height, background)
        for i in range(count)
    ]
