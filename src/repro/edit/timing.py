"""Generic timing derivations.

"Derivations involving changes in timing are generic in the sense that
they apply to all time-based media. For instance, temporally translating
a sequence (i.e., uniformly incrementing element start times) can be
performed on video sequences, audio sequences or any other time-based
value. Another example is scaling (i.e., uniformly scaling element
durations and start times)." (§4.2)

Both derivations are registered with ``any_kind=True``: the result type
equals the input type, whatever it is.
"""

from __future__ import annotations

from repro.core import stream_ops
from repro.core.derivation import (
    Derivation,
    DerivationCategory,
    derivation_registry,
)
from repro.core.media_object import StreamMediaObject
from repro.core.media_types import MediaKind
from repro.core.rational import as_rational


def _expand_translate(inputs, params):
    source = inputs[0]
    offset = params["offset_ticks"]
    translated = stream_ops.translate(source.stream(), offset)
    return StreamMediaObject(
        source.media_type, source.descriptor, translated,
        name=f"{source.name}-translated",
    )


def _describe_translate(inputs, params):
    source = inputs[0]
    return source.media_type, source.descriptor


TEMPORAL_TRANSLATE = derivation_registry.register(Derivation(
    name="temporal-translate",
    category=DerivationCategory.CHANGE_OF_TIMING,
    input_kinds=(MediaKind.VIDEO,),  # nominal; any_kind bypasses the check
    result_kind=MediaKind.VIDEO,
    expand=_expand_translate,
    describe=_describe_translate,
    any_kind=True,
    required_params=("offset_ticks",),
    doc="§4.2: uniformly increment element start times (any time-based type).",
))


def _expand_scale(inputs, params):
    source = inputs[0]
    factor = as_rational(params["factor"])
    scaled = stream_ops.scale(source.stream(), factor)
    duration = source.descriptor.get("duration")
    descriptor = source.descriptor
    if duration is not None:
        descriptor = descriptor.with_updates(
            duration=as_rational(duration) * factor
        )
    return StreamMediaObject(
        source.media_type, descriptor, scaled, name=f"{source.name}-scaled",
    )


def _describe_scale(inputs, params):
    source = inputs[0]
    factor = as_rational(params["factor"])
    duration = source.descriptor.get("duration")
    descriptor = source.descriptor
    if duration is not None:
        descriptor = descriptor.with_updates(
            duration=as_rational(duration) * factor
        )
    return source.media_type, descriptor


TEMPORAL_SCALE = derivation_registry.register(Derivation(
    name="temporal-scale",
    category=DerivationCategory.CHANGE_OF_TIMING,
    input_kinds=(MediaKind.VIDEO,),  # nominal; any_kind bypasses the check
    result_kind=MediaKind.VIDEO,
    expand=_expand_scale,
    describe=_describe_scale,
    any_kind=True,
    required_params=("factor",),
    doc="§4.2: uniformly scale element durations and start times.",
))


def _expand_reverse(inputs, params):
    source = inputs[0]
    stream = source.stream()
    tuples = stream.tuples
    reversed_tuples = []
    cursor = 0
    for original in reversed(tuples):
        from repro.core.streams import TimedTuple

        reversed_tuples.append(
            TimedTuple(original.element, cursor, original.duration)
        )
        cursor += original.duration
    from repro.core.streams import TimedStream

    reversed_stream = TimedStream(
        source.media_type, reversed_tuples,
        time_system=stream.time_system, validate_constraints=False,
    )
    return StreamMediaObject(
        source.media_type, source.descriptor, reversed_stream,
        name=f"{source.name}-reversed",
    )


def _describe_reverse(inputs, params):
    source = inputs[0]
    return source.media_type, source.descriptor


VIDEO_REVERSE = derivation_registry.register(Derivation(
    name="video-reverse",
    category=DerivationCategory.CHANGE_OF_TIMING,
    input_kinds=(MediaKind.VIDEO,),
    result_kind=MediaKind.VIDEO,
    expand=_expand_reverse,
    describe=_describe_reverse,
    doc=(
        "§2.1: independently compressed (JPEG-style) frames make it "
        "'easier to rearrange the order of the frames and to playback "
        "in reverse'. Inter-coded sources must be expanded first."
    ),
))
