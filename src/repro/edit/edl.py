"""Edit decision lists: the "video edit" derivation of Table 1.

"Editing video involves the selection and ordering of sequences that are
combined to produce a new video object. The list of start and stop times
of these selections is called an edit list. Edit lists are derivation
objects, while edited video sequences are derived objects." (§4.2)

An :class:`EditDecisionList` is a sequence of :class:`EditDecision`
``(source, in, out)`` selections over one or more source video objects.
It is tiny — benchmark E8 measures "many orders of magnitude smaller than
a video object" directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core import stream_ops
from repro.core.derivation import (
    Derivation,
    DerivationCategory,
    derivation_registry,
)
from repro.core.media_object import MediaObject, StreamMediaObject
from repro.core.media_types import MediaKind
from repro.errors import DerivationError


@dataclass(frozen=True, slots=True)
class EditDecision:
    """One selection: ticks ``[in_tick, out_tick)`` of ``source_index``."""

    source_index: int
    in_tick: int
    out_tick: int

    def __post_init__(self) -> None:
        if self.source_index < 0:
            raise DerivationError("source_index must be non-negative")
        if not 0 <= self.in_tick < self.out_tick:
            raise DerivationError(
                f"need 0 <= in < out, got [{self.in_tick}, {self.out_tick})"
            )

    @property
    def length(self) -> int:
        return self.out_tick - self.in_tick


class EditDecisionList:
    """An ordered list of edit decisions (the derivation object's P_D)."""

    def __init__(self, decisions: Sequence[EditDecision] = ()):
        self.decisions: list[EditDecision] = list(decisions)

    def select(self, source_index: int, in_tick: int,
               out_tick: int) -> "EditDecisionList":
        self.decisions.append(EditDecision(source_index, in_tick, out_tick))
        return self

    def __len__(self) -> int:
        return len(self.decisions)

    def __iter__(self):
        return iter(self.decisions)

    def total_ticks(self) -> int:
        return sum(d.length for d in self.decisions)

    def as_params(self) -> list[tuple[int, int, int]]:
        """Serializable parameter form for the derivation object."""
        return [(d.source_index, d.in_tick, d.out_tick) for d in self.decisions]

    @classmethod
    def from_params(cls, params: Sequence[tuple[int, int, int]]) -> "EditDecisionList":
        return cls([EditDecision(*entry) for entry in params])

    def __repr__(self) -> str:
        return f"EditDecisionList({len(self.decisions)} decisions, {self.total_ticks()} ticks)"


def apply_edl(sources: Sequence[MediaObject],
              edl: EditDecisionList) -> "StreamMediaObject":
    """Materialize an edit: select and concatenate the chosen ranges."""
    if not sources:
        raise DerivationError("an edit needs at least one source")
    streams = [obj.stream() for obj in sources]
    pieces = []
    for decision in edl:
        if decision.source_index >= len(sources):
            raise DerivationError(
                f"edit references source {decision.source_index}, "
                f"only {len(sources)} given"
            )
        stream = streams[decision.source_index]
        if decision.out_tick > stream.end:
            raise DerivationError(
                f"selection [{decision.in_tick}, {decision.out_tick}) "
                f"exceeds source span {stream.end}"
            )
        pieces.append(
            stream_ops.select_range(stream, decision.in_tick, decision.out_tick)
        )
    edited = stream_ops.concat(*pieces)
    first = sources[0]
    system = edited.time_system
    descriptor = first.descriptor.with_updates(
        duration=system.to_continuous(edited.span_ticks),
    )
    return StreamMediaObject(first.media_type, descriptor, edited,
                             name=f"{first.name}-edit")


def _expand_video_edit(inputs, params):
    edl = EditDecisionList.from_params(params["edit_list"])
    return apply_edl(inputs, edl)


def _describe_video_edit(inputs, params):
    edl = EditDecisionList.from_params(params["edit_list"])
    first = inputs[0]
    system = first.media_type.time_system
    descriptor = first.descriptor.with_updates(
        duration=system.to_continuous(edl.total_ticks()),
    )
    return first.media_type, descriptor


VIDEO_EDIT = derivation_registry.register(Derivation(
    name="video-edit",
    category=DerivationCategory.CHANGE_OF_TIMING,
    input_kinds=(MediaKind.VIDEO,),
    result_kind=MediaKind.VIDEO,
    expand=_expand_video_edit,
    describe=_describe_video_edit,
    variadic=True,
    required_params=("edit_list",),
    doc="Table 1: video -> video via an edit decision list.",
))
