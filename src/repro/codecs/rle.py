"""Byte-level run-length encoding.

The simplest compression substrate: used on its own for synthetic flat
imagery and as a building block elsewhere. The format is a sequence of
``(count, byte)`` pairs with ``count`` in 1..255 — decodable without any
side information, and never worse than 2x expansion.
"""

from __future__ import annotations

from repro.errors import CodecError


def rle_encode(data: bytes) -> bytes:
    """Encode ``data`` as ``(count, byte)`` pairs."""
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        byte = data[i]
        run = 1
        while run < 255 and i + run < n and data[i + run] == byte:
            run += 1
        out.append(run)
        out.append(byte)
        i += run
    return bytes(out)


def rle_decode(data: bytes) -> bytes:
    """Invert :func:`rle_encode`."""
    if len(data) % 2:
        raise CodecError(f"RLE data has odd length {len(data)}")
    out = bytearray()
    for i in range(0, len(data), 2):
        count = data[i]
        if count == 0:
            raise CodecError(f"zero run length at offset {i}")
        out.extend(data[i + 1:i + 2] * count)
    return bytes(out)


def rle_ratio(data: bytes) -> float:
    """Compression ratio achieved on ``data`` (original/encoded)."""
    if not data:
        return 1.0
    return len(data) / len(rle_encode(data))
