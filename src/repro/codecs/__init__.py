"""Codec substrates for time-based media.

The paper's media representations (JPEG/MPEG/DVI video, PCM/ADPCM audio,
MIDI) came from hardware platforms and standards bodies; here each is
replaced by a real, simplified software implementation that preserves the
properties the data model cares about:

* :mod:`repro.codecs.jpeg_like` — intra-frame DCT compression with a
  quality factor; variable-size encoded frames (drives heterogeneous
  placement tables).
* :mod:`repro.codecs.mpeg_like` — inter-frame compression with I/P/B
  frames and decode order != display order ("out-of-order elements").
* :mod:`repro.codecs.scalable` — layered resolution ("scalability").
* :mod:`repro.codecs.pcm` / :mod:`repro.codecs.adpcm` — audio; ADPCM's
  per-block state yields genuinely heterogeneous streams.
* :mod:`repro.codecs.midi` — event-based music encoding.
* :mod:`repro.codecs.color`, :mod:`repro.codecs.dct`,
  :mod:`repro.codecs.rle`, :mod:`repro.codecs.huffman` — shared
  primitives.
"""

from repro.codecs.base import Codec, EncodedFrame
from repro.codecs.registry import codec_registry

__all__ = ["Codec", "EncodedFrame", "codec_registry"]
