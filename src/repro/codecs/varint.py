"""Variable-length integer coding (LEB128 + zigzag sign folding).

Shared by the JPEG-like and MPEG-like coefficient serializers and the
MIDI delta-time encoder.
"""

from __future__ import annotations

from repro.errors import CodecError


def zigzag_int(value: int) -> int:
    """Fold a signed int to unsigned: 0,-1,1,-2,2 -> 0,1,2,3,4."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def unzigzag_int(value: int) -> int:
    """Invert :func:`zigzag_int`."""
    return (value >> 1) if value % 2 == 0 else -((value + 1) >> 1)


def write_uvarint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise CodecError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Read an unsigned varint at ``offset``; return (value, new_offset)."""
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("varint stream exhausted")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 63:
            raise CodecError("varint too long")


def write_svarint(out: bytearray, value: int) -> None:
    """Append a signed (zigzag-folded) varint."""
    write_uvarint(out, zigzag_int(value))


def read_svarint(data: bytes, offset: int) -> tuple[int, int]:
    """Read a signed (zigzag-folded) varint."""
    value, offset = read_uvarint(data, offset)
    return unzigzag_int(value), offset
