"""Bit-stream reader and writer.

Entropy coders (Huffman, ADPCM nibble packing) need sub-byte I/O. Bits
are written most-significant first within each byte, matching the JPEG
and MPEG conventions.
"""

from __future__ import annotations

from repro.errors import CodecError


class BitWriter:
    """Accumulates bits MSB-first into a growing byte buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._bit_count = 0

    def write_bit(self, bit: int) -> None:
        self._accumulator = (self._accumulator << 1) | (bit & 1)
        self._bit_count += 1
        if self._bit_count == 8:
            self._buffer.append(self._accumulator)
            self._accumulator = 0
            self._bit_count = 0

    def write_bits(self, value: int, width: int) -> None:
        """Write the ``width`` low bits of ``value``, MSB first."""
        if width < 0:
            raise CodecError(f"negative bit width {width}")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """Write ``value`` ones followed by a zero (for small integers)."""
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    @property
    def bit_length(self) -> int:
        return len(self._buffer) * 8 + self._bit_count

    def getvalue(self) -> bytes:
        """Flush (zero-padding the final byte) and return the bytes."""
        result = bytearray(self._buffer)
        if self._bit_count:
            result.append(self._accumulator << (8 - self._bit_count))
        return bytes(result)


class BitReader:
    """Reads bits MSB-first from a byte buffer."""

    def __init__(self, data: bytes):
        self._data = data
        self._position = 0  # bit position

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._position

    def read_bit(self) -> int:
        if self._position >= len(self._data) * 8:
            raise CodecError("bit stream exhausted")
        byte_index, bit_index = divmod(self._position, 8)
        self._position += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        value = 0
        while self.read_bit():
            value += 1
        return value
