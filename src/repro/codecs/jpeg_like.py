"""JPEG-like intra-frame image/video compression.

A real (simplified) implementation of the pipeline the paper's Figure 2
describes — "The YUV frames are then JPEG compressed using a quality
factor resulting in about 0.5 bits per pixel (this will give VHS
quality)":

1. RGB -> YUV (BT.601), chroma subsampled (default 4:2:2, the paper's
   "YUV 8:2:2");
2. per plane: 8x8 blocks, level-shifted, orthonormal DCT;
3. quantization with Annex-K tables scaled by an IJG-style quality
   factor (this is the hidden parameter a descriptive quality factor
   maps to — see :mod:`repro.core.quality`);
4. DC delta coding + AC (run, level) coding in zigzag order;
5. canonical Huffman entropy coding.

Because frames are compressed independently, encoded sizes vary frame to
frame — exactly the property that forces Figure 2's explicit placement
table ("the encoded video frames are variable sized ... the mapping from
element number to BLOB placement is not a simple multiplication").

Frame format (big-endian)::

    magic 'RJ1\\0' | width u16 | height u16 | quality u8 | scheme u8
    then per plane (Y, U, V): payload length u32 | huffman blob
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs import dct
from repro.codecs.base import Codec
from repro.codecs.color import (
    SUBSAMPLING,
    rgb_to_yuv,
    subsample_yuv,
    upsample_yuv,
    yuv_to_rgb,
)
from repro.codecs.huffman import huffman_compress, huffman_decompress
from repro.codecs.varint import read_svarint, write_svarint
from repro.errors import CodecError

_MAGIC = b"RJ1\x00"
_HEADER = struct.Struct(">4sHHBB")
_SCHEMES = sorted(SUBSAMPLING)

#: End-of-block marker in the (run, level) token stream. Runs are at most
#: 62, so 255 is unambiguous where a run byte is expected.
_EOB = 255


def encode_plane_coefficients(quantized: np.ndarray) -> bytes:
    """Serialize quantized ``(n, 8, 8)`` blocks as a symbol byte stream.

    Per block: signed varint of the DC delta (vs the previous block's
    DC), then (run, level) pairs over the 63 AC coefficients in zigzag
    order, terminated by an end-of-block byte.
    """
    vectors = dct.zigzag_scan(quantized)
    block_count = vectors.shape[0]
    # Vectorize the sparse structure once: DC deltas and the global
    # (block, position, value) triplets of nonzero AC coefficients.
    dc = vectors[:, 0].astype(np.int64)
    dc_delta = np.diff(dc, prepend=0)
    block_index, position = np.nonzero(vectors[:, 1:])
    values = vectors[:, 1:][block_index, position]
    block_index = block_index.tolist()
    position = position.tolist()
    values = values.tolist()
    dc_delta = dc_delta.tolist()

    out = bytearray()
    pointer = 0
    total = len(block_index)
    for block in range(block_count):
        write_svarint(out, dc_delta[block])
        previous = -1
        while pointer < total and block_index[pointer] == block:
            pos = position[pointer]
            out.append(pos - previous - 1)
            previous = pos
            write_svarint(out, values[pointer])
            pointer += 1
        out.append(_EOB)
    return bytes(out)


def decode_plane_coefficients(data: bytes, block_count: int) -> np.ndarray:
    """Invert :func:`encode_plane_coefficients`."""
    vectors = np.zeros((block_count, 64), dtype=np.int16)
    offset = 0
    previous_dc = 0
    for index in range(block_count):
        delta, offset = read_svarint(data, offset)
        previous_dc += delta
        vectors[index, 0] = previous_dc
        position = 0
        while True:
            if offset >= len(data):
                raise CodecError("coefficient stream exhausted mid-block")
            run = data[offset]
            offset += 1
            if run == _EOB:
                break
            position += run + 1
            if position > 63:
                raise CodecError(f"AC position {position} out of range")
            level, offset = read_svarint(data, offset)
            vectors[index, position] = level
    return dct.zigzag_unscan(vectors)


def _encode_plane(plane: np.ndarray, table: np.ndarray) -> bytes:
    blocks, shape = dct.to_blocks(plane - 128.0)
    coefficients = dct.forward_dct(blocks)
    quantized = dct.quantize(coefficients, table)
    symbols = encode_plane_coefficients(quantized)
    return huffman_compress(symbols)


def _decode_plane(data: bytes, shape: tuple[int, int],
                  table: np.ndarray) -> np.ndarray:
    h, w = shape
    rows = (h + dct.BLOCK - 1) // dct.BLOCK
    cols = (w + dct.BLOCK - 1) // dct.BLOCK
    symbols = huffman_decompress(data)
    quantized = decode_plane_coefficients(symbols, rows * cols)
    coefficients = dct.dequantize(quantized, table)
    blocks = dct.inverse_dct(coefficients)
    return dct.from_blocks(blocks, shape) + 128.0


class JpegLikeCodec(Codec):
    """Intra-frame codec over uint8 RGB frames.

    Parameters
    ----------
    quality:
        1..100 IJG-style quality (the hidden parameter behind the
        descriptive quality factors of :mod:`repro.core.quality`).
    subsampling:
        Chroma scheme; the paper's example uses ``"4:2:2"``.
    """

    name = "jpeg-like"

    def __init__(self, quality: int = 50, subsampling: str = "4:2:2"):
        if subsampling not in SUBSAMPLING:
            raise CodecError(f"unknown subsampling {subsampling!r}")
        self.quality = quality
        self.subsampling = subsampling
        self._luma_table = dct.scale_quant_table(dct.LUMA_QUANT, quality)
        self._chroma_table = dct.scale_quant_table(dct.CHROMA_QUANT, quality)

    @property
    def is_lossy(self) -> bool:
        return True

    def encode(self, payload: np.ndarray) -> bytes:
        """Encode one ``(h, w, 3)`` uint8 RGB frame."""
        y, u, v = subsample_yuv(*rgb_to_yuv(payload), self.subsampling)
        h, w = payload.shape[:2]
        scheme_code = _SCHEMES.index(self.subsampling)
        parts = [_HEADER.pack(_MAGIC, w, h, self.quality, scheme_code)]
        for plane, table in ((y, self._luma_table),
                             (u, self._chroma_table),
                             (v, self._chroma_table)):
            blob = _encode_plane(plane, table)
            parts.append(struct.pack(">I", len(blob)))
            parts.append(blob)
        return b"".join(parts)

    def decode(self, data: bytes) -> np.ndarray:
        """Decode back to a uint8 RGB frame."""
        if len(data) < _HEADER.size:
            raise CodecError("frame too short for header")
        magic, w, h, quality, scheme_code = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise CodecError(f"bad magic {magic!r}")
        if scheme_code >= len(_SCHEMES):
            raise CodecError(f"bad subsampling code {scheme_code}")
        scheme = _SCHEMES[scheme_code]
        fy, fx = SUBSAMPLING[scheme]
        luma_table = dct.scale_quant_table(dct.LUMA_QUANT, quality)
        chroma_table = dct.scale_quant_table(dct.CHROMA_QUANT, quality)
        chroma_shape = ((h + fy - 1) // fy, (w + fx - 1) // fx)
        offset = _HEADER.size
        planes = []
        for shape, table in (((h, w), luma_table),
                             (chroma_shape, chroma_table),
                             (chroma_shape, chroma_table)):
            (length,) = struct.unpack_from(">I", data, offset)
            offset += 4
            planes.append(_decode_plane(data[offset:offset + length], shape, table))
            offset += length
        y, u, v = upsample_yuv(*planes, scheme)
        return yuv_to_rgb(y, u, v)

    def bits_per_pixel(self, frame: np.ndarray) -> float:
        """Measured encoded bits per pixel for ``frame``."""
        encoded = self.encode(frame)
        h, w = frame.shape[:2]
        return len(encoded) * 8 / (h * w)


def psnr(original: np.ndarray, decoded: np.ndarray) -> float:
    """Peak signal-to-noise ratio (dB) between two uint8 images."""
    diff = original.astype(np.float64) - decoded.astype(np.float64)
    mse = float(np.mean(diff * diff))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0 * 255.0 / mse)
