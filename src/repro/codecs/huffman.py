"""Canonical Huffman coding over byte symbols.

The entropy-coding substrate for the JPEG-like and MPEG-like codecs. The
code is *canonical*: only the per-symbol code lengths need to be stored
(256 bytes of header), and both encoder and decoder rebuild identical
codebooks from them.

Code lengths are capped at 15 bits by flattening the frequency
distribution when needed (the classic JPEG-style length limit), so the
header stays one byte per symbol.
"""

from __future__ import annotations

import heapq
from collections import Counter

from repro.errors import CodecError

MAX_CODE_LENGTH = 15


def code_lengths(data: bytes) -> list[int]:
    """Per-symbol (0..255) code lengths for ``data``.

    Symbols absent from ``data`` get length 0. A single-symbol input gets
    length 1 (a zero-length code cannot be emitted).
    """
    counts = Counter(data)
    if not counts:
        return [0] * 256
    if len(counts) == 1:
        lengths = [0] * 256
        lengths[next(iter(counts))] = 1
        return lengths

    frequencies = dict(counts)
    while True:
        lengths = _huffman_lengths(frequencies)
        if max(lengths.values()) <= MAX_CODE_LENGTH:
            break
        # Flatten the distribution and retry; guaranteed to terminate
        # because in the limit all frequencies are equal (length <= 8).
        frequencies = {
            s: max(1, f // 2) for s, f in frequencies.items()
        }
        if all(f == 1 for f in frequencies.values()):
            lengths = _huffman_lengths(frequencies)
            break

    result = [0] * 256
    for symbol, length in lengths.items():
        result[symbol] = length
    return result


def _huffman_lengths(frequencies: dict[int, int]) -> dict[int, int]:
    """Standard Huffman tree construction returning code lengths."""
    heap: list[tuple[int, int, list[int]]] = [
        (freq, symbol, [symbol]) for symbol, freq in frequencies.items()
    ]
    heapq.heapify(heap)
    lengths = {symbol: 0 for symbol in frequencies}
    counter = 256  # tie-break id beyond symbol range
    while len(heap) > 1:
        fa, _, symbols_a = heapq.heappop(heap)
        fb, _, symbols_b = heapq.heappop(heap)
        for s in symbols_a + symbols_b:
            lengths[s] += 1
        heapq.heappush(heap, (fa + fb, counter, symbols_a + symbols_b))
        counter += 1
    return lengths


def canonical_codes(lengths: list[int]) -> dict[int, tuple[int, int]]:
    """Canonical ``symbol -> (code, length)`` assignment from lengths.

    Codes are assigned in (length, symbol) order, the canonical rule that
    lets the decoder reconstruct the table from lengths alone.
    """
    ordered = sorted(
        (length, symbol) for symbol, length in enumerate(lengths) if length
    )
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for length, symbol in ordered:
        code <<= (length - previous_length)
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


class HuffmanCodec:
    """Encode/decode byte strings with a canonical Huffman code."""

    def __init__(self, lengths: list[int]):
        if len(lengths) != 256:
            raise CodecError(f"need 256 code lengths, got {len(lengths)}")
        self.lengths = list(lengths)
        self.codes = canonical_codes(self.lengths)
        # Decoding table: (length, code) -> symbol.
        self._decode_table = {
            (length, code): symbol
            for symbol, (code, length) in self.codes.items()
        }

    @classmethod
    def for_data(cls, data: bytes) -> "HuffmanCodec":
        return cls(code_lengths(data))

    def encode(self, data: bytes) -> bytes:
        """Encode; the result is framed with the original length.

        Bits are accumulated in a Python int and flushed a byte at a
        time — roughly an order of magnitude faster than per-bit calls,
        which matters because every video frame passes through here.
        """
        codes = self.codes
        out = bytearray()
        accumulator = 0
        bit_count = 0
        try:
            for byte in data:
                code, length = codes[byte]
                accumulator = (accumulator << length) | code
                bit_count += length
                while bit_count >= 8:
                    bit_count -= 8
                    out.append((accumulator >> bit_count) & 0xFF)
                accumulator &= (1 << bit_count) - 1
        except KeyError:
            raise CodecError(f"symbol {byte} not in codebook") from None
        if bit_count:
            out.append((accumulator << (8 - bit_count)) & 0xFF)
        return len(data).to_bytes(4, "big") + bytes(out)

    def decode(self, data: bytes) -> bytes:
        if len(data) < 4:
            raise CodecError("huffman frame too short")
        count = int.from_bytes(data[:4], "big")
        payload = data[4:]
        table = self._decode_table
        out = bytearray()
        max_length = max(self.lengths) if any(self.lengths) else 0
        total_bits = len(payload) * 8
        bit_position = 0
        get = table.get
        for _ in range(count):
            code = 0
            length = 0
            while True:
                if bit_position >= total_bits:
                    raise CodecError("bit stream exhausted")
                bit = (payload[bit_position >> 3]
                       >> (7 - (bit_position & 7))) & 1
                bit_position += 1
                code = (code << 1) | bit
                length += 1
                symbol = get((length, code))
                if symbol is not None:
                    out.append(symbol)
                    break
                if length > max_length:
                    raise CodecError("invalid huffman bit stream")
        return bytes(out)

    def header(self) -> bytes:
        """The 256-byte code-length header."""
        return bytes(self.lengths)

    @classmethod
    def from_header(cls, header: bytes) -> "HuffmanCodec":
        if len(header) != 256:
            raise CodecError(f"huffman header must be 256 bytes, got {len(header)}")
        return cls(list(header))


#: Mode bytes for the one-shot container: raw passthrough or Huffman
#: with an RLE-compacted code-length header.
_MODE_RAW = 0
_MODE_HUFFMAN = 1


def huffman_compress(data: bytes) -> bytes:
    """One-shot container: whichever of raw / Huffman-coded is smaller.

    The Huffman form stores the 256 code lengths RLE-compressed (sparse
    alphabets shrink to a few dozen bytes), so small payloads — all-zero
    P-frame residuals, for instance — don't pay a fixed 256-byte tax.
    """
    from repro.codecs.rle import rle_encode

    codec = HuffmanCodec.for_data(data)
    header = rle_encode(codec.header())
    framed = (
        bytes([_MODE_HUFFMAN])
        + len(header).to_bytes(2, "big")
        + header
        + codec.encode(data)
    )
    raw = bytes([_MODE_RAW]) + data
    return raw if len(raw) <= len(framed) else framed


def huffman_decompress(data: bytes) -> bytes:
    """Invert :func:`huffman_compress`."""
    from repro.codecs.rle import rle_decode

    if not data:
        raise CodecError("empty huffman container")
    mode = data[0]
    if mode == _MODE_RAW:
        return data[1:]
    if mode != _MODE_HUFFMAN:
        raise CodecError(f"unknown huffman container mode {mode}")
    if len(data) < 3:
        raise CodecError("huffman container too short")
    header_length = int.from_bytes(data[1:3], "big")
    header_end = 3 + header_length
    if header_end > len(data):
        raise CodecError("huffman container header truncated")
    header = rle_decode(data[3:header_end])
    codec = HuffmanCodec.from_header(header)
    return codec.decode(data[header_end:])
