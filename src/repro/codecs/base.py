"""Codec interfaces.

A codec maps an element payload to bytes and back. The data model never
calls codecs directly — interpretations hand a codec's ``decode`` to
:meth:`~repro.core.interpretation.Interpretation.materialize`, and
recording paths call ``encode`` before appending to a BLOB — so the
interface is deliberately tiny.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any


class Codec(ABC):
    """Encode element payloads to bytes and back.

    Attributes
    ----------
    name:
        Registry key, also recorded in media descriptors' ``encoding``
        attribute so an interpretation can name its decoder.
    """

    name: str = "identity"

    @abstractmethod
    def encode(self, payload: Any) -> bytes:
        """Serialize one element payload."""

    @abstractmethod
    def decode(self, data: bytes) -> Any:
        """Invert :meth:`encode` (up to loss for lossy codecs)."""

    @property
    def is_lossy(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass(frozen=True, slots=True)
class EncodedFrame:
    """An encoded video frame with ordering metadata.

    Inter-frame codecs place key frames "in storage units prior to the
    intermediate elements" (§2.2), so each encoded frame carries both its
    display position and its decode (storage) position.
    """

    data: bytes
    kind: str = "I"
    display_index: int = 0
    decode_index: int = 0

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def is_key(self) -> bool:
        return self.kind == "I"
