"""IMA ADPCM audio compression (real algorithm).

"Adaptive Differential Pulse Code Modulation (ADPCM), a form of audio
compression used in CD-I and other multimedia environments. Some versions
... involve a set of encoding parameters that vary over an audio
sequence. These parameters would be part of element descriptors." (§3.3)

This is the standard IMA/DVI ADPCM: 4 bits per sample, an adaptive step
size walked through an 89-entry table. Audio is encoded in fixed-length
blocks; each block's initial predictor and step index are its *element
descriptor* — making ADPCM streams the paper's canonical heterogeneous
stream.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs.base import Codec
from repro.errors import CodecError

STEP_TABLE = (
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
)

INDEX_TABLE = (-1, -1, -1, -1, 2, 4, 6, 8)


def _encode_sample(sample: int, state: list[int]) -> int:
    """Encode one sample against ``state = [predictor, step_index]``."""
    predictor, step_index = state
    step = STEP_TABLE[step_index]
    diff = sample - predictor
    nibble = 0
    if diff < 0:
        nibble = 8
        diff = -diff
    delta = step >> 3
    if diff >= step:
        nibble |= 4
        diff -= step
        delta += step
    step >>= 1
    if diff >= step:
        nibble |= 2
        diff -= step
        delta += step
    step >>= 1
    if diff >= step:
        nibble |= 1
        delta += step
    if nibble & 8:
        predictor -= delta
    else:
        predictor += delta
    predictor = max(-32768, min(32767, predictor))
    step_index += INDEX_TABLE[nibble & 7]
    step_index = max(0, min(88, step_index))
    state[0] = predictor
    state[1] = step_index
    return nibble


def _decode_nibble(nibble: int, state: list[int]) -> int:
    """Decode one 4-bit code against ``state = [predictor, step_index]``."""
    predictor, step_index = state
    step = STEP_TABLE[step_index]
    delta = step >> 3
    if nibble & 4:
        delta += step
    if nibble & 2:
        delta += step >> 1
    if nibble & 1:
        delta += step >> 2
    if nibble & 8:
        predictor -= delta
    else:
        predictor += delta
    predictor = max(-32768, min(32767, predictor))
    step_index += INDEX_TABLE[nibble & 7]
    step_index = max(0, min(88, step_index))
    state[0] = predictor
    state[1] = step_index
    return predictor


def encode_block(samples: np.ndarray, predictor: int, step_index: int) -> bytes:
    """Encode one mono int16 block; returns packed nibbles (2 per byte)."""
    state = [int(predictor), int(step_index)]
    nibbles = []
    for sample in samples:
        nibbles.append(_encode_sample(int(sample), state))
    out = bytearray()
    for i in range(0, len(nibbles) - 1, 2):
        out.append(nibbles[i] | (nibbles[i + 1] << 4))
    if len(nibbles) % 2:
        out.append(nibbles[-1])
    return bytes(out)


def decode_block(data: bytes, count: int, predictor: int, step_index: int) -> np.ndarray:
    """Decode ``count`` samples from packed nibbles."""
    state = [int(predictor), int(step_index)]
    samples = np.empty(count, dtype=np.int16)
    for i in range(count):
        byte = data[i // 2]
        nibble = (byte >> 4) if i % 2 else (byte & 0x0F)
        samples[i] = _decode_nibble(nibble, state)
    return samples


class AdpcmBlock:
    """One encoded block: the element of an ADPCM timed stream.

    The header ``(predictor, step_index, count)`` is exactly the varying
    per-element state the paper assigns to element descriptors.
    """

    _HEADER = struct.Struct("<hBxH")

    def __init__(self, predictor: int, step_index: int, count: int, data: bytes):
        self.predictor = predictor
        self.step_index = step_index
        self.count = count
        self.data = data

    def to_bytes(self) -> bytes:
        return self._HEADER.pack(self.predictor, self.step_index, self.count) + self.data

    @classmethod
    def from_bytes(cls, raw: bytes) -> "AdpcmBlock":
        if len(raw) < cls._HEADER.size:
            raise CodecError("ADPCM block too short for header")
        predictor, step_index, count = cls._HEADER.unpack_from(raw)
        expected = (count + 1) // 2
        data = raw[cls._HEADER.size:]
        if len(data) != expected:
            raise CodecError(
                f"ADPCM block holds {len(data)} payload bytes, expected {expected}"
            )
        return cls(predictor, step_index, count, data)

    def decode(self) -> np.ndarray:
        return decode_block(self.data, self.count, self.predictor, self.step_index)


class AdpcmCodec(Codec):
    """Block-based IMA ADPCM over mono int16 sample arrays.

    ``encode`` produces a concatenation of self-describing blocks;
    :meth:`encode_blocks` exposes the per-block structure (with the
    varying state for element descriptors) for stream construction.
    """

    name = "ima-adpcm"

    def __init__(self, block_samples: int = 505):
        if block_samples < 1:
            raise CodecError("block_samples must be >= 1")
        self.block_samples = block_samples

    @property
    def is_lossy(self) -> bool:
        return True

    def encode_blocks(self, samples: np.ndarray) -> list[AdpcmBlock]:
        """Encode into blocks, carrying the adaptive state across them."""
        samples = np.asarray(samples)
        if samples.ndim != 1:
            raise CodecError(f"AdpcmCodec is mono; got shape {samples.shape}")
        samples = samples.astype(np.int16)
        blocks = []
        state = [0, 0]
        for begin in range(0, len(samples), self.block_samples):
            chunk = samples[begin:begin + self.block_samples]
            predictor, step_index = state
            # encode_block mutates a copy of the running state; carry it on.
            running = [predictor, step_index]
            nibbles = bytearray()
            pair = []
            for sample in chunk:
                pair.append(_encode_sample(int(sample), running))
                if len(pair) == 2:
                    nibbles.append(pair[0] | (pair[1] << 4))
                    pair = []
            if pair:
                nibbles.append(pair[0])
            blocks.append(AdpcmBlock(predictor, step_index, len(chunk), bytes(nibbles)))
            state = running
        return blocks

    def encode(self, payload: np.ndarray) -> bytes:
        return b"".join(block.to_bytes() for block in self.encode_blocks(payload))

    def decode(self, data: bytes) -> np.ndarray:
        chunks = []
        offset = 0
        header_size = AdpcmBlock._HEADER.size
        while offset < len(data):
            if offset + header_size > len(data):
                raise CodecError("trailing bytes do not form an ADPCM block")
            predictor, step_index, count = AdpcmBlock._HEADER.unpack_from(data, offset)
            payload_size = (count + 1) // 2
            end = offset + header_size + payload_size
            block = AdpcmBlock.from_bytes(data[offset:end])
            chunks.append(block.decode())
            offset = end
        if not chunks:
            return np.empty(0, dtype=np.int16)
        return np.concatenate(chunks)

    def compression_ratio(self) -> float:
        """Nominal ratio vs 16-bit PCM (~4:1, less block headers)."""
        pcm_bytes = self.block_samples * 2
        adpcm_bytes = AdpcmBlock._HEADER.size + (self.block_samples + 1) // 2
        return pcm_bytes / adpcm_bytes
