"""MIDI event encoding: the event-based stream substrate.

"An example is MIDI where elements are musical events of the form 'Start
Note X' and 'Stop Note Y'" (§3.3). Events are duration-less, so MIDI
streams are the paper's event-based category.

The wire format follows Standard MIDI File track data: variable-length
delta times between events, then a status byte (note-on ``0x9c``,
note-off ``0x8c``, program change ``0xCc`` with ``c`` the channel) and
its data bytes. Running status is not used — one status byte per event —
to keep the decoder obvious.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codecs.varint import read_uvarint, write_uvarint
from repro.errors import CodecError

NOTE_OFF = 0x80
NOTE_ON = 0x90
PROGRAM_CHANGE = 0xC0


@dataclass(frozen=True, slots=True)
class MidiEvent:
    """One MIDI event: the media element of an event-based stream.

    ``tick`` is the event's discrete start time (its ``s_i``); its
    duration is always zero.
    """

    tick: int
    status: int
    channel: int
    data1: int
    data2: int = 0

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise CodecError("event tick must be non-negative")
        if self.status not in (NOTE_OFF, NOTE_ON, PROGRAM_CHANGE):
            raise CodecError(f"unsupported status 0x{self.status:02X}")
        if not 0 <= self.channel < 16:
            raise CodecError(f"channel must be 0..15, got {self.channel}")
        for value in (self.data1, self.data2):
            if not 0 <= value < 128:
                raise CodecError(f"data byte out of range: {value}")

    @classmethod
    def note_on(cls, tick: int, pitch: int, velocity: int = 64,
                channel: int = 0) -> "MidiEvent":
        return cls(tick, NOTE_ON, channel, pitch, velocity)

    @classmethod
    def note_off(cls, tick: int, pitch: int, channel: int = 0) -> "MidiEvent":
        return cls(tick, NOTE_OFF, channel, pitch, 0)

    @classmethod
    def program_change(cls, tick: int, program: int, channel: int = 0) -> "MidiEvent":
        return cls(tick, PROGRAM_CHANGE, channel, program)

    @property
    def is_note_on(self) -> bool:
        """True for a note-on with nonzero velocity (velocity 0 = off)."""
        return self.status == NOTE_ON and self.data2 > 0

    @property
    def is_note_off(self) -> bool:
        return self.status == NOTE_OFF or (self.status == NOTE_ON and self.data2 == 0)

    def encoded_size(self) -> int:
        """Size of this event in the wire format (with its delta time)."""
        return len(encode_events([self]))


def encode_events(events: list[MidiEvent]) -> bytes:
    """Encode time-ordered events with delta-time prefixes."""
    out = bytearray()
    previous_tick = 0
    for event in events:
        if event.tick < previous_tick:
            raise CodecError(
                f"events out of order: tick {event.tick} after {previous_tick}"
            )
        write_uvarint(out, event.tick - previous_tick)
        previous_tick = event.tick
        out.append(event.status | event.channel)
        out.append(event.data1)
        if event.status != PROGRAM_CHANGE:
            out.append(event.data2)
    return bytes(out)


def decode_events(data: bytes) -> list[MidiEvent]:
    """Invert :func:`encode_events`."""
    events = []
    offset = 0
    tick = 0
    while offset < len(data):
        delta, offset = read_uvarint(data, offset)
        tick += delta
        if offset >= len(data):
            raise CodecError("truncated event after delta time")
        status_byte = data[offset]
        offset += 1
        status = status_byte & 0xF0
        channel = status_byte & 0x0F
        if status == PROGRAM_CHANGE:
            if offset + 1 > len(data):
                raise CodecError("truncated program change")
            data1, data2 = data[offset], 0
            offset += 1
        else:
            if offset + 2 > len(data):
                raise CodecError("truncated note event")
            data1, data2 = data[offset], data[offset + 1]
            offset += 2
        events.append(MidiEvent(tick, status, channel, data1, data2))
    return events
