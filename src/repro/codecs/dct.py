"""Blockwise 8x8 DCT, quantization and zigzag scan.

The transform substrate shared by the JPEG-like and MPEG-like codecs:

* split a plane into padded 8x8 blocks and run a type-II DCT on each
  (vectorized via :func:`scipy.fft.dctn` over a stacked block array);
* quantize with a table scaled from a quality factor using the IJG
  convention (quality 50 = reference table, 100 ~ lossless-ish);
* serialize coefficients in the JPEG zigzag order so runs of trailing
  zeros compress well.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn, idctn

from repro.errors import CodecError

BLOCK = 8

#: Standard JPEG (Annex K) luminance quantization table.
LUMA_QUANT = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
], dtype=np.float32)

#: Standard JPEG (Annex K) chrominance quantization table.
CHROMA_QUANT = np.array([
    [17, 18, 24, 47, 99, 99, 99, 99],
    [18, 21, 26, 66, 99, 99, 99, 99],
    [24, 26, 56, 99, 99, 99, 99, 99],
    [47, 66, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
], dtype=np.float32)


def _zigzag_order() -> np.ndarray:
    """Index order of the classic JPEG zigzag scan over an 8x8 block."""
    order = sorted(
        ((i, j) for i in range(BLOCK) for j in range(BLOCK)),
        key=lambda ij: (
            ij[0] + ij[1],
            ij[1] if (ij[0] + ij[1]) % 2 == 0 else ij[0],
        ),
    )
    return np.array([i * BLOCK + j for i, j in order])


ZIGZAG = _zigzag_order()
UNZIGZAG = np.argsort(ZIGZAG)


def scale_quant_table(table: np.ndarray, quality: int) -> np.ndarray:
    """Scale a quantization table for ``quality`` in [1, 100] (IJG rule)."""
    if not 1 <= quality <= 100:
        raise CodecError(f"quality must be in [1, 100], got {quality}")
    if quality < 50:
        scale = 5000 / quality
    else:
        scale = 200 - 2 * quality
    scaled = np.floor((table * scale + 50) / 100)
    return np.clip(scaled, 1, 255).astype(np.float32)


def to_blocks(plane: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
    """Split a 2D plane into an ``(n, 8, 8)`` block stack, edge-padding.

    Returns the stack and the original ``(height, width)`` so
    :func:`from_blocks` can crop the padding back off.
    """
    if plane.ndim != 2:
        raise CodecError(f"expected a 2D plane, got shape {plane.shape}")
    h, w = plane.shape
    pad_y = (-h) % BLOCK
    pad_x = (-w) % BLOCK
    if pad_y or pad_x:
        plane = np.pad(plane, ((0, pad_y), (0, pad_x)), mode="edge")
    ph, pw = plane.shape
    blocks = (
        plane.reshape(ph // BLOCK, BLOCK, pw // BLOCK, BLOCK)
        .swapaxes(1, 2)
        .reshape(-1, BLOCK, BLOCK)
    )
    return np.ascontiguousarray(blocks, dtype=np.float32), (h, w)


def from_blocks(blocks: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Reassemble an ``(n, 8, 8)`` block stack into a plane of ``shape``."""
    h, w = shape
    ph = h + ((-h) % BLOCK)
    pw = w + ((-w) % BLOCK)
    rows = ph // BLOCK
    cols = pw // BLOCK
    if blocks.shape[0] != rows * cols:
        raise CodecError(
            f"{blocks.shape[0]} blocks cannot tile a {ph}x{pw} plane"
        )
    plane = (
        blocks.reshape(rows, cols, BLOCK, BLOCK)
        .swapaxes(1, 2)
        .reshape(ph, pw)
    )
    return plane[:h, :w]


def forward_dct(blocks: np.ndarray) -> np.ndarray:
    """Orthonormal type-II DCT over the last two axes of a block stack."""
    return dctn(blocks, type=2, norm="ortho", axes=(-2, -1))


def inverse_dct(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`forward_dct`."""
    return idctn(coefficients, type=2, norm="ortho", axes=(-2, -1))


def quantize(coefficients: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Quantize DCT coefficients to int16 with the given table."""
    return np.rint(coefficients / table).astype(np.int16)


def quantize_deadzone(coefficients: np.ndarray, table: np.ndarray,
                      deadzone: float = 0.6) -> np.ndarray:
    """Quantize residuals: round, but zero everything inside a deadzone.

    Intra coding leaves per-coefficient error of at most half a step, so
    a residual coefficient under ``deadzone`` steps is almost certainly
    the previous frame's own quantization noise — re-coding it wastes
    bits without adding fidelity (the H.263-style deadzone rationale).
    Genuine content beyond the deadzone is rounded normally.
    """
    scaled = coefficients / table
    quantized = np.rint(scaled)
    quantized[np.abs(scaled) < deadzone] = 0
    return quantized.astype(np.int16)


def dequantize(quantized: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Invert :func:`quantize` (up to quantization loss)."""
    return quantized.astype(np.float32) * table


def zigzag_scan(blocks: np.ndarray) -> np.ndarray:
    """Reorder each ``(n, 8, 8)`` block into ``(n, 64)`` zigzag vectors."""
    return blocks.reshape(-1, BLOCK * BLOCK)[:, ZIGZAG]


def zigzag_unscan(vectors: np.ndarray) -> np.ndarray:
    """Invert :func:`zigzag_scan`."""
    return vectors[:, UNZIGZAG].reshape(-1, BLOCK, BLOCK)
