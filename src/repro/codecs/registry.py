"""Codec registry.

Media descriptors record an ``encoding`` name; the registry resolves that
name to a codec instance so interpretations can decode elements without
applications wiring codecs by hand (QuickTime's "components", in spirit).
"""

from __future__ import annotations

from typing import Callable

from repro.codecs.base import Codec
from repro.errors import CodecError


class CodecRegistry:
    """Named codec factories; instances are created per ``get`` call so
    stateful codecs never leak state across users."""

    def __init__(self) -> None:
        self._factories: dict[str, Callable[..., Codec]] = {}

    def register(self, name: str, factory: Callable[..., Codec],
                 replace: bool = False) -> None:
        if not replace and name in self._factories:
            raise CodecError(f"codec {name!r} already registered")
        self._factories[name] = factory

    def get(self, name: str, **params) -> Codec:
        try:
            factory = self._factories[name]
        except KeyError:
            raise CodecError(
                f"unknown codec {name!r}; registered: "
                f"{', '.join(sorted(self._factories)) or '(none)'}"
            ) from None
        return factory(**params)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def names(self) -> list[str]:
        return sorted(self._factories)


codec_registry = CodecRegistry()


def _register_builtins() -> None:
    """Register built-in codecs lazily to avoid import cycles."""
    from repro.codecs.adpcm import AdpcmCodec
    from repro.codecs.dvi_like import DviLikeCodec
    from repro.codecs.jpeg_like import JpegLikeCodec
    from repro.codecs.pcm import PcmCodec
    from repro.codecs.scalable import ScalableVideoCodec

    codec_registry.register("jpeg-like", JpegLikeCodec)
    codec_registry.register("pcm", PcmCodec)
    codec_registry.register("ima-adpcm", AdpcmCodec)
    codec_registry.register("dvi-like", DviLikeCodec)
    codec_registry.register("scalable", ScalableVideoCodec)


# Registration happens on first import of the package's public API; the
# imports inside _register_builtins are safe because those modules only
# import base/dct/etc., never this registry.
_register_builtins()
