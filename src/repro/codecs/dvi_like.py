"""DVI-like asymmetric codec presets: PLV and RTV.

§2.1: "DVI is based on two digital video formats: Production-Level Video
(PLV) and Real-Time Video (RTV). PLV uses a proprietary compression
algorithm allowing VHS quality video to be produced ... The RTV format
results in data rates similar to those of PLV, however the video quality
is poorer and the frame rate may be reduced. Applications can playback
both the RTV and PLV formats, and record in the RTV format."

The asymmetry is the point: PLV encoding is expensive offline work, RTV
is what a live capture path can afford. Here both are presets over the
JPEG-like codec:

* **PLV** — full resolution, 4:2:0, quality 60 (the "VHS quality from
  ~1 Mbit/sec" regime);
* **RTV** — half resolution (encoded small, upsampled on decode),
  4:2:0, quality 35, optional frame-rate reduction at the sequence
  level.

Both decode through the same :meth:`DviLikeCodec.decode`, reproducing
"applications can playback both ... formats".
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs.base import Codec
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.errors import CodecError

_WRAPPER = struct.Struct(">4sBHH")
_MAGIC = b"RD1\x00"
_FORMAT_PLV = 1
_FORMAT_RTV = 2


class DviLikeCodec(Codec):
    """Two-format codec: encode as PLV or RTV, decode either."""

    name = "dvi-like"

    def __init__(self, video_format: str = "RTV"):
        if video_format not in ("PLV", "RTV"):
            raise CodecError(
                f"format must be 'PLV' or 'RTV', got {video_format!r}"
            )
        self.video_format = video_format
        self._plv = JpegLikeCodec(quality=60, subsampling="4:2:0")
        self._rtv = JpegLikeCodec(quality=35, subsampling="4:2:0")

    @property
    def is_lossy(self) -> bool:
        return True

    # -- encoding ----------------------------------------------------------------

    def encode(self, payload: np.ndarray) -> bytes:
        if self.video_format == "PLV":
            return self.encode_plv(payload)
        return self.encode_rtv(payload)

    def encode_plv(self, frame: np.ndarray) -> bytes:
        """Production-level encode: full resolution, higher quality."""
        h, w = frame.shape[:2]
        inner = self._plv.encode(frame)
        return _WRAPPER.pack(_MAGIC, _FORMAT_PLV, w, h) + inner

    def encode_rtv(self, frame: np.ndarray) -> bytes:
        """Real-time encode: half resolution, lower quality.

        The decoder upsamples back to the original geometry, so RTV and
        PLV material intercut freely (same frame dimensions after
        decode).
        """
        h, w = frame.shape[:2]
        small = frame[::2, ::2]
        inner = self._rtv.encode(np.ascontiguousarray(small))
        return _WRAPPER.pack(_MAGIC, _FORMAT_RTV, w, h) + inner

    # -- decoding ----------------------------------------------------------------

    def decode(self, data: bytes) -> np.ndarray:
        """Decode either format to the original geometry."""
        if len(data) < _WRAPPER.size:
            raise CodecError("DVI-like frame too short")
        magic, format_code, w, h = _WRAPPER.unpack_from(data)
        if magic != _MAGIC:
            raise CodecError(f"bad DVI-like magic {magic!r}")
        inner = data[_WRAPPER.size:]
        if format_code == _FORMAT_PLV:
            return self._plv.decode(inner)
        if format_code == _FORMAT_RTV:
            small = self._rtv.decode(inner)
            up = np.repeat(np.repeat(small, 2, axis=0), 2, axis=1)
            return up[:h, :w]
        raise CodecError(f"unknown DVI-like format code {format_code}")

    @staticmethod
    def format_of(data: bytes) -> str:
        """Which format a frame was encoded in (for descriptors)."""
        if len(data) < _WRAPPER.size:
            raise CodecError("DVI-like frame too short")
        magic, format_code, _, _ = _WRAPPER.unpack_from(data)
        if magic != _MAGIC:
            raise CodecError(f"bad DVI-like magic {magic!r}")
        return "PLV" if format_code == _FORMAT_PLV else "RTV"

    def reduce_frame_rate(self, frames: list[np.ndarray],
                          keep_every: int = 2) -> list[np.ndarray]:
        """RTV's "frame rate may be reduced": keep every n-th frame."""
        if keep_every < 1:
            raise CodecError("keep_every must be >= 1")
        return frames[::keep_every]
