"""MPEG-like inter-frame video compression with out-of-order placement.

"Some compression techniques, such as MPEG, exploit similarities between
consecutive elements. 'Key' elements are identified from which
intermediate elements can be constructed by interpolation. Because key
elements are needed at an early stage during decoding, they may be placed
in storage units prior to the intermediate elements. For example, with a
sequence of four elements where the first and last are 'keys,' the
placement order could be 1, 4, 2, 3." (§2.2)

This codec reproduces that structure faithfully without motion
estimation:

* **I frames** — intra-coded with the JPEG-like pipeline;
* **P frames** — the residual against the previous reference's
  reconstruction, DCT-quantized and entropy coded;
* **B frames** — the residual against the *average* of the previous and
  next references ("constructed by interpolation"), which forces the
  next reference to be decoded first — hence decode order differs from
  display order, exactly the paper's 1, 4, 2, 3 example for a GOP
  pattern ``IBBP``-style group.

The group-of-pictures pattern is configurable (e.g. ``"IBBP"``,
``"IPPP"``); ``encode_sequence`` returns frames in *decode order*, each
tagged with both orders, and ``decode_sequence`` restores display order.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs import dct
from repro.codecs.base import EncodedFrame
from repro.codecs.color import (
    rgb_to_yuv,
    subsample_yuv,
    upsample_yuv,
    yuv_to_rgb,
)
from repro.codecs.huffman import huffman_compress, huffman_decompress
from repro.codecs.jpeg_like import (
    JpegLikeCodec,
    decode_plane_coefficients,
    encode_plane_coefficients,
)
from repro.errors import CodecError

_RESIDUAL_HEADER = struct.Struct(">4sHHB")
_RESIDUAL_MAGIC = b"RM1\x00"


def decode_order(pattern: list[str]) -> list[int]:
    """Map a display-order frame-kind pattern to decode (storage) order.

    Every B frame needs the *next* reference (I or P) decoded first, so
    references are pulled ahead of the B frames they bracket:

    >>> decode_order(["I", "B", "B", "P"])
    [0, 3, 1, 2]
    """
    order: list[int] = []
    pending_b: list[int] = []
    for index, kind in enumerate(pattern):
        if kind == "B":
            pending_b.append(index)
        elif kind in ("I", "P"):
            order.append(index)
            order.extend(pending_b)
            pending_b = []
        else:
            raise CodecError(f"unknown frame kind {kind!r}")
    if pending_b:
        # Trailing B frames have no following reference; decode them
        # against the last reference alone (they are demoted to P-like
        # prediction but keep their storage position after it).
        order.extend(pending_b)
    return order


class MpegLikeCodec:
    """Inter-frame codec over sequences of uint8 RGB frames.

    Parameters
    ----------
    quality:
        IJG-style quality for both intra frames and residuals.
    gop_pattern:
        Frame-kind pattern repeated over the sequence; must start with
        ``"I"``. ``"IBBP"`` reproduces the paper's 1, 4, 2, 3 placement.
    subsampling:
        Chroma scheme for intra frames.
    """

    name = "mpeg-like"

    def __init__(self, quality: int = 50, gop_pattern: str = "IBBP",
                 subsampling: str = "4:2:0"):
        if not gop_pattern or gop_pattern[0] != "I":
            raise CodecError("GOP pattern must start with an I frame")
        if any(kind not in "IPB" for kind in gop_pattern):
            raise CodecError(f"bad GOP pattern {gop_pattern!r}")
        self.quality = quality
        self.gop_pattern = gop_pattern
        self.subsampling = subsampling
        self._intra = JpegLikeCodec(quality=quality, subsampling=subsampling)
        self._residual_table = dct.scale_quant_table(dct.LUMA_QUANT, quality)

    # -- residual coding -----------------------------------------------------------
    #
    # Residuals are coded in the same color space as intra frames —
    # subsampled YUV — with a deadzone quantizer, so P/B frames pay for
    # genuinely new content, not for re-coding chroma the intra path
    # already threw away.

    def _planes(self, frame: np.ndarray) -> tuple[np.ndarray, ...]:
        return subsample_yuv(*rgb_to_yuv(frame), self.subsampling)

    def _plane_tables(self):
        chroma = dct.scale_quant_table(dct.CHROMA_QUANT, self.quality)
        return (self._residual_table, chroma, chroma)

    def _encode_predicted(self, frame: np.ndarray,
                          prediction: np.ndarray) -> bytes:
        """Code ``frame`` as a YUV residual against ``prediction``."""
        h, w = frame.shape[:2]
        frame_planes = self._planes(frame)
        predicted_planes = self._planes(prediction)
        parts = [_RESIDUAL_HEADER.pack(_RESIDUAL_MAGIC, w, h, self.quality)]
        for plane, predicted, table in zip(frame_planes, predicted_planes,
                                           self._plane_tables()):
            blocks, _ = dct.to_blocks(plane - predicted)
            quantized = dct.quantize_deadzone(dct.forward_dct(blocks), table)
            blob = huffman_compress(encode_plane_coefficients(quantized))
            parts.append(struct.pack(">I", len(blob)))
            parts.append(blob)
        return b"".join(parts)

    def _decode_predicted(self, data: bytes,
                          prediction: np.ndarray) -> np.ndarray:
        """Invert :meth:`_encode_predicted` given the same prediction."""
        magic, w, h, quality = _RESIDUAL_HEADER.unpack_from(data)
        if magic != _RESIDUAL_MAGIC:
            raise CodecError(f"bad residual magic {magic!r}")
        luma_table = dct.scale_quant_table(dct.LUMA_QUANT, quality)
        chroma_table = dct.scale_quant_table(dct.CHROMA_QUANT, quality)
        predicted_planes = self._planes(prediction)
        offset = _RESIDUAL_HEADER.size
        planes = []
        for predicted, table in zip(predicted_planes,
                                    (luma_table, chroma_table, chroma_table)):
            ph, pw = predicted.shape
            rows = (ph + dct.BLOCK - 1) // dct.BLOCK
            cols = (pw + dct.BLOCK - 1) // dct.BLOCK
            (length,) = struct.unpack_from(">I", data, offset)
            offset += 4
            symbols = huffman_decompress(data[offset:offset + length])
            offset += length
            quantized = decode_plane_coefficients(symbols, rows * cols)
            blocks = dct.inverse_dct(dct.dequantize(quantized, table))
            planes.append(predicted + dct.from_blocks(blocks, (ph, pw)))
        y, u, v = upsample_yuv(*planes, self.subsampling)
        return yuv_to_rgb(y, u, v)

    # -- sequence coding ------------------------------------------------------------

    def _pattern_for(self, count: int) -> list[str]:
        pattern = []
        while len(pattern) < count:
            pattern.extend(self.gop_pattern)
        return pattern[:count]

    def encode_sequence(self, frames: list[np.ndarray]) -> list[EncodedFrame]:
        """Encode ``frames``; the result list is in decode (storage) order."""
        if not frames:
            return []
        pattern = self._pattern_for(len(frames))
        order = decode_order(pattern)

        # References must be reconstructed the way the decoder will see
        # them, so encoding follows decode order too.
        reconstructed: dict[int, np.ndarray] = {}
        encoded: dict[int, EncodedFrame] = {}
        last_reference: int | None = None
        references: list[int] = [
            i for i, kind in enumerate(pattern) if kind in "IP"
        ]

        for decode_index, display_index in enumerate(order):
            kind = pattern[display_index]
            frame = frames[display_index]
            if kind == "I":
                data = self._intra.encode(frame)
                reconstructed[display_index] = self._intra.decode(data)
            else:
                if kind == "P":
                    previous = self._previous_reference(
                        references, display_index, reconstructed
                    )
                    prediction = reconstructed[previous]
                else:  # B frame: interpolate bracketing references
                    prediction = self._interpolate(references, display_index,
                                                   reconstructed)
                data = self._encode_predicted(frame, prediction)
                reconstructed[display_index] = self._decode_predicted(
                    data, prediction
                )
            encoded[display_index] = EncodedFrame(
                data=data, kind=kind,
                display_index=display_index, decode_index=decode_index,
            )
        return [encoded[i] for i in order]

    def _previous_reference(self, references: list[int], index: int,
                            reconstructed: dict[int, np.ndarray]) -> int:
        candidates = [r for r in references if r < index and r in reconstructed]
        if not candidates:
            raise CodecError(f"no decoded reference before frame {index}")
        return max(candidates)

    def _interpolate(self, references: list[int], index: int,
                     reconstructed: dict[int, np.ndarray]) -> np.ndarray:
        previous = self._previous_reference(references, index, reconstructed)
        following = [r for r in references if r > index and r in reconstructed]
        if following:
            nxt = min(following)
            average = (
                reconstructed[previous].astype(np.float32)
                + reconstructed[nxt].astype(np.float32)
            ) / 2.0
            return np.clip(np.rint(average), 0, 255).astype(np.uint8)
        # Trailing B with no later reference: predict from previous only.
        return reconstructed[previous]

    def decode_sequence(self, encoded: list[EncodedFrame]) -> list[np.ndarray]:
        """Decode frames given in decode order; returns display order."""
        reconstructed: dict[int, np.ndarray] = {}
        references: list[int] = [
            f.display_index for f in encoded if f.kind in "IP"
        ]
        for frame in encoded:
            if frame.kind == "I":
                reconstructed[frame.display_index] = self._intra.decode(frame.data)
            else:
                if frame.kind == "P":
                    prediction = reconstructed[
                        self._previous_reference(references, frame.display_index,
                                                 reconstructed)
                    ]
                else:
                    prediction = self._interpolate(references, frame.display_index,
                                                   reconstructed)
                reconstructed[frame.display_index] = self._decode_predicted(
                    frame.data, prediction
                )
        return [reconstructed[i] for i in sorted(reconstructed)]

    def placement_order(self, frame_count: int) -> list[int]:
        """Display indices in storage order (the paper's "1, 4, 2, 3")."""
        return decode_order(self._pattern_for(frame_count))
