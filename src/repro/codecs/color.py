"""Color model conversion and chroma subsampling.

The paper's Figure 2 pipeline converts RGB frames to YUV, subsamples the
chrominance planes, and compresses ("The RGB values are then converted to
YUV, Y is given 8 bits per pixel, U and V are subsampled"). Color
separation (Table 1) converts RGB to CMYK for printing.

Conventions: images are ``numpy`` arrays, ``(height, width, 3)`` uint8
for RGB, and plane tuples ``(y, u, v)`` of float32 arrays for YUV.
The RGB<->YUV matrices follow BT.601; U and V are centered on 128.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError

# BT.601 luma coefficients.
_KR, _KG, _KB = 0.299, 0.587, 0.114


def rgb_to_yuv(rgb: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convert ``(h, w, 3)`` uint8 RGB to float32 (y, u, v) planes.

    Y is in [0, 255]; U and V are centered on 128.
    """
    _check_rgb(rgb)
    r = rgb[..., 0].astype(np.float32)
    g = rgb[..., 1].astype(np.float32)
    b = rgb[..., 2].astype(np.float32)
    y = _KR * r + _KG * g + _KB * b
    u = (b - y) * (0.5 / (1.0 - _KB)) + 128.0
    v = (r - y) * (0.5 / (1.0 - _KR)) + 128.0
    return y, u, v


def yuv_to_rgb(y: np.ndarray, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Invert :func:`rgb_to_yuv`, clipping to uint8 range."""
    u = u - 128.0
    v = v - 128.0
    r = y + v * ((1.0 - _KR) / 0.5)
    b = y + u * ((1.0 - _KB) / 0.5)
    g = (y - _KR * r - _KB * b) / _KG
    rgb = np.stack([r, g, b], axis=-1)
    return np.clip(np.rint(rgb), 0, 255).astype(np.uint8)


def subsample(plane: np.ndarray, factor_y: int, factor_x: int) -> np.ndarray:
    """Box-average downsampling by integer factors (pads edges by repeat)."""
    if factor_y < 1 or factor_x < 1:
        raise CodecError("subsampling factors must be >= 1")
    if factor_y == 1 and factor_x == 1:
        return plane.copy()
    h, w = plane.shape
    pad_y = (-h) % factor_y
    pad_x = (-w) % factor_x
    if pad_y or pad_x:
        plane = np.pad(plane, ((0, pad_y), (0, pad_x)), mode="edge")
    h2, w2 = plane.shape
    view = plane.reshape(h2 // factor_y, factor_y, w2 // factor_x, factor_x)
    return view.mean(axis=(1, 3))


def upsample(plane: np.ndarray, factor_y: int, factor_x: int,
             height: int, width: int) -> np.ndarray:
    """Nearest-neighbour upsampling to exactly ``(height, width)``."""
    up = np.repeat(np.repeat(plane, factor_y, axis=0), factor_x, axis=1)
    return up[:height, :width]


#: Chroma subsampling schemes as (vertical, horizontal) factors, in the
#: J:a:b notation used by the paper ("YUV 8:2:2").
SUBSAMPLING = {
    "4:4:4": (1, 1),
    "4:2:2": (1, 2),
    "4:2:0": (2, 2),
    "4:1:1": (1, 4),
}


def subsample_yuv(
    y: np.ndarray, u: np.ndarray, v: np.ndarray, scheme: str = "4:2:2",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Subsample the chroma planes according to ``scheme``."""
    try:
        fy, fx = SUBSAMPLING[scheme]
    except KeyError:
        raise CodecError(
            f"unknown subsampling {scheme!r}; known: {sorted(SUBSAMPLING)}"
        ) from None
    return y, subsample(u, fy, fx), subsample(v, fy, fx)


def upsample_yuv(
    y: np.ndarray, u: np.ndarray, v: np.ndarray, scheme: str = "4:2:2",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Restore subsampled chroma planes to luma resolution."""
    fy, fx = SUBSAMPLING[scheme]
    h, w = y.shape
    return y, upsample(u, fy, fx, h, w), upsample(v, fy, fx, h, w)


def bits_per_pixel(scheme: str, bits: int = 8) -> float:
    """Average bits per pixel of a YUV image under ``scheme``.

    The paper's "YUV 8:2:2" example: Y at 8 bpp plus two chroma planes at
    2 bpp each = 12 bpp.
    """
    fy, fx = SUBSAMPLING[scheme]
    return bits * (1 + 2 / (fy * fx))


# -- CMYK separation (Table 1, "color separation") ---------------------------


def rgb_to_cmyk(rgb: np.ndarray, black_generation: float = 1.0) -> np.ndarray:
    """Separate ``(h, w, 3)`` uint8 RGB into ``(h, w, 4)`` float32 CMYK.

    ``black_generation`` scales how much common ink is moved to the K
    plate (the paper notes the RGB->CMYK mapping "is not unique" and is
    governed by separation parameters). Values are in [0, 1].
    """
    _check_rgb(rgb)
    if not 0.0 <= black_generation <= 1.0:
        raise CodecError("black_generation must be in [0, 1]")
    scaled = rgb.astype(np.float32) / 255.0
    c = 1.0 - scaled[..., 0]
    m = 1.0 - scaled[..., 1]
    y = 1.0 - scaled[..., 2]
    k = np.minimum(np.minimum(c, m), y) * black_generation
    denom = np.where(k < 1.0, 1.0 - k, 1.0)
    c = (c - k) / denom
    m = (m - k) / denom
    y = (y - k) / denom
    return np.stack([c, m, y, k], axis=-1).astype(np.float32)


def cmyk_to_rgb(cmyk: np.ndarray) -> np.ndarray:
    """Recombine CMYK plates into uint8 RGB."""
    if cmyk.ndim != 3 or cmyk.shape[-1] != 4:
        raise CodecError(f"expected (h, w, 4) CMYK, got {cmyk.shape}")
    c, m, y, k = (cmyk[..., i] for i in range(4))
    r = (1.0 - np.minimum(1.0, c * (1.0 - k) + k)) * 255.0
    g = (1.0 - np.minimum(1.0, m * (1.0 - k) + k)) * 255.0
    b = (1.0 - np.minimum(1.0, y * (1.0 - k) + k)) * 255.0
    return np.clip(np.rint(np.stack([r, g, b], axis=-1)), 0, 255).astype(np.uint8)


def _check_rgb(rgb: np.ndarray) -> None:
    if rgb.ndim != 3 or rgb.shape[-1] != 3:
        raise CodecError(f"expected (h, w, 3) RGB, got shape {rgb.shape}")
    if rgb.dtype != np.uint8:
        raise CodecError(f"expected uint8 RGB, got dtype {rgb.dtype}")
