"""Scalable (layered) video coding.

"Certain representations for time-based media, in particular proposals
for digital video [Lippman], allow presentation at different levels of
detail. ... bandwidth can be saved and processing reduced if the video
sequence is 'scaled' to a lower resolution by ignoring parts of the
storage unit." (§2.2)

This codec encodes a frame as a resolution pyramid: a small base layer
plus residual enhancement layers, each doubling resolution. A decoder
reads only the layers up to its target level and ignores the rest of the
storage unit — the fidelity-selection query of §1.2 ("retrieve frames at
a specific visual fidelity") exercises exactly this.

Layer 0 is the base (smallest); layer ``levels - 1`` restores full
resolution.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs import dct
from repro.codecs.base import Codec
from repro.codecs.huffman import huffman_compress, huffman_decompress
from repro.codecs.jpeg_like import (
    JpegLikeCodec,
    decode_plane_coefficients,
    encode_plane_coefficients,
)
from repro.errors import CodecError

_HEADER = struct.Struct(">4sHHB")
_MAGIC = b"RS1\x00"


def _downsample2(frame: np.ndarray) -> np.ndarray:
    """Halve resolution by 2x2 box averaging (pads odd edges)."""
    h, w = frame.shape[:2]
    pad_y, pad_x = h % 2, w % 2
    if pad_y or pad_x:
        frame = np.pad(frame, ((0, pad_y), (0, pad_x), (0, 0)), mode="edge")
    h2, w2 = frame.shape[:2]
    view = frame.reshape(h2 // 2, 2, w2 // 2, 2, 3).astype(np.float32)
    return view.mean(axis=(1, 3))


def _upsample2(frame: np.ndarray, height: int, width: int) -> np.ndarray:
    """Double resolution by pixel replication, cropped to (height, width)."""
    up = np.repeat(np.repeat(frame, 2, axis=0), 2, axis=1)
    return up[:height, :width]


class ScalableVideoCodec(Codec):
    """Layered-resolution intra codec over uint8 RGB frames.

    Parameters
    ----------
    levels:
        Number of layers (>= 1). Level ``k`` has resolution
        ``full / 2**(levels - 1 - k)``.
    quality:
        IJG-style quality for the base layer and residuals.
    """

    name = "scalable"

    def __init__(self, levels: int = 3, quality: int = 75):
        if levels < 1:
            raise CodecError("levels must be >= 1")
        self.levels = levels
        self.quality = quality
        self._intra = JpegLikeCodec(quality=quality, subsampling="4:2:0")
        self._residual_table = dct.scale_quant_table(dct.LUMA_QUANT, quality)

    @property
    def is_lossy(self) -> bool:
        return True

    # -- encoding ---------------------------------------------------------------

    def encode(self, payload: np.ndarray) -> bytes:
        """Encode a frame as base + enhancement layers."""
        h, w = payload.shape[:2]
        # Build the pyramid top-down: full, half, quarter, ...
        pyramid = [payload.astype(np.float32)]
        for _ in range(self.levels - 1):
            pyramid.append(_downsample2(pyramid[-1].astype(np.uint8)))
        pyramid.reverse()  # pyramid[0] is now the base

        parts = [_HEADER.pack(_MAGIC, w, h, self.levels)]
        base = np.clip(np.rint(pyramid[0]), 0, 255).astype(np.uint8)
        base_blob = self._intra.encode(base)
        parts.append(struct.pack(">I", len(base_blob)))
        parts.append(base_blob)

        reconstruction = self._intra.decode(base_blob).astype(np.float32)
        for level in range(1, self.levels):
            target = pyramid[level]
            th, tw = target.shape[:2]
            predicted = _upsample2(reconstruction, th, tw)
            residual = target - predicted
            blob = self._encode_residual(residual)
            parts.append(struct.pack(">I", len(blob)))
            parts.append(blob)
            reconstruction = np.clip(
                predicted + self._decode_residual(blob, (th, tw)), 0, 255
            )
        return b"".join(parts)

    def _encode_residual(self, residual: np.ndarray) -> bytes:
        parts = []
        for channel in range(3):
            blocks, _ = dct.to_blocks(residual[..., channel])
            quantized = dct.quantize_deadzone(dct.forward_dct(blocks), self._residual_table)
            blob = huffman_compress(encode_plane_coefficients(quantized))
            parts.append(struct.pack(">I", len(blob)))
            parts.append(blob)
        return b"".join(parts)

    def _decode_residual(self, data: bytes, shape: tuple[int, int]) -> np.ndarray:
        h, w = shape
        rows = (h + dct.BLOCK - 1) // dct.BLOCK
        cols = (w + dct.BLOCK - 1) // dct.BLOCK
        offset = 0
        channels = []
        for _ in range(3):
            (length,) = struct.unpack_from(">I", data, offset)
            offset += 4
            symbols = huffman_decompress(data[offset:offset + length])
            offset += length
            quantized = decode_plane_coefficients(symbols, rows * cols)
            blocks = dct.inverse_dct(dct.dequantize(quantized, self._residual_table))
            channels.append(dct.from_blocks(blocks, (h, w)))
        return np.stack(channels, axis=-1)

    # -- decoding ---------------------------------------------------------------

    def decode(self, data: bytes) -> np.ndarray:
        """Decode at full resolution."""
        return self.decode_at_level(data, None)

    def decode_at_level(self, data: bytes, level: int | None) -> np.ndarray:
        """Decode reading only layers ``0..level`` (None = all).

        Lower levels return lower-resolution frames and *read fewer
        bytes* — the storage-unit-skipping behaviour the paper describes.
        """
        magic, w, h, levels = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise CodecError(f"bad magic {magic!r}")
        if level is None:
            level = levels - 1
        if not 0 <= level < levels:
            raise CodecError(f"level must be in [0, {levels}), got {level}")

        shapes = self.layer_shapes((h, w), levels)
        offset = _HEADER.size
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        reconstruction = self._intra.decode(
            data[offset:offset + length]
        ).astype(np.float32)
        offset += length
        for current in range(1, level + 1):
            (length,) = struct.unpack_from(">I", data, offset)
            offset += 4
            th, tw = shapes[current]
            predicted = _upsample2(reconstruction, th, tw)
            residual = self._decode_residual(data[offset:offset + length], (th, tw))
            offset += length
            reconstruction = np.clip(predicted + residual, 0, 255)
        return np.clip(np.rint(reconstruction), 0, 255).astype(np.uint8)

    def bytes_at_level(self, data: bytes, level: int | None = None) -> int:
        """Bytes a decoder must read to reach ``level`` (bandwidth saved)."""
        magic, w, h, levels = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise CodecError(f"bad magic {magic!r}")
        if level is None:
            level = levels - 1
        offset = _HEADER.size
        for current in range(level + 1):
            (length,) = struct.unpack_from(">I", data, offset)
            offset += 4 + length
        return offset

    @staticmethod
    def layer_shapes(full: tuple[int, int], levels: int) -> list[tuple[int, int]]:
        """Per-level shapes, base first. Halving uses ceil (pad-by-edge)."""
        shapes = [full]
        for _ in range(levels - 1):
            h, w = shapes[-1]
            shapes.append(((h + 1) // 2, (w + 1) // 2))
        shapes.reverse()
        return shapes
