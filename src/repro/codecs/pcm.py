"""Linear PCM audio coding.

"Pulse Code Modulation (PCM), a simple encoding scheme for sample data"
— the paper's CD-audio example: 44.1 kHz, 16-bit, two channels, with
stereo sample pairs as the media elements.

Signals are float arrays in [-1, 1] with shape ``(n,)`` (mono) or
``(n, channels)``; encoded form is little-endian interleaved integers.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.base import Codec
from repro.errors import CodecError

_DTYPES = {8: np.int8, 16: np.int16, 24: np.int32, 32: np.int32}


def quantize_samples(signal: np.ndarray, sample_size: int = 16) -> np.ndarray:
    """Quantize a float signal in [-1, 1] to integer samples."""
    if sample_size not in _DTYPES:
        raise CodecError(f"unsupported sample size {sample_size}")
    peak = float(2 ** (sample_size - 1) - 1)
    clipped = np.clip(signal, -1.0, 1.0)
    return np.rint(clipped * peak).astype(_DTYPES[sample_size])


def dequantize_samples(samples: np.ndarray, sample_size: int = 16) -> np.ndarray:
    """Invert :func:`quantize_samples` back to float in [-1, 1]."""
    peak = float(2 ** (sample_size - 1) - 1)
    return samples.astype(np.float64) / peak


class PcmCodec(Codec):
    """Interleaved little-endian linear PCM.

    ``encode`` accepts integer sample arrays (``(n,)`` or
    ``(n, channels)``) or float signals (quantized first). ``decode``
    returns the integer array with the configured channel count.
    """

    name = "pcm"

    def __init__(self, sample_size: int = 16, channels: int = 2):
        if sample_size not in (8, 16):
            raise CodecError(
                f"PcmCodec packs 8- or 16-bit samples, got {sample_size}"
            )
        if channels < 1:
            raise CodecError(f"channels must be >= 1, got {channels}")
        self.sample_size = sample_size
        self.channels = channels
        self._dtype = np.dtype(_DTYPES[sample_size]).newbyteorder("<")

    @property
    def bytes_per_frame(self) -> int:
        """Bytes per sample frame (one sample across all channels)."""
        return self.sample_size // 8 * self.channels

    def encode(self, payload: np.ndarray) -> bytes:
        samples = np.asarray(payload)
        if samples.dtype.kind == "f":
            samples = quantize_samples(samples, self.sample_size)
        if samples.ndim == 1:
            samples = samples[:, np.newaxis]
        if samples.ndim != 2 or samples.shape[1] != self.channels:
            raise CodecError(
                f"expected (n, {self.channels}) samples, got {samples.shape}"
            )
        return samples.astype(self._dtype).tobytes()

    def decode(self, data: bytes) -> np.ndarray:
        if len(data) % self.bytes_per_frame:
            raise CodecError(
                f"{len(data)} bytes is not a whole number of "
                f"{self.bytes_per_frame}-byte sample frames"
            )
        flat = np.frombuffer(data, dtype=self._dtype)
        return flat.reshape(-1, self.channels).astype(_DTYPES[self.sample_size])

    def data_rate(self, sample_rate: int) -> int:
        """Bytes per second at ``sample_rate`` (Figure 2: 172 KiB/s for CD)."""
        return sample_rate * self.bytes_per_frame
