"""Legacy setup shim.

The normal install path is ``pip install -e .`` (PEP 660). On machines
without the ``wheel`` package (as in this offline environment),
``python setup.py develop`` provides the equivalent editable install.
"""

from setuptools import setup

setup()
