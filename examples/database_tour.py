"""Database tour: schema, catalog, rights, provenance, activities.

The "database" side of the data model in one walkthrough:

1. typed entities with media-valued attributes (§4's VideoClip example);
2. the catalog with domain-attribute queries;
3. rights that follow derivation — a licensee can cut footage they may
   derive from, but cannot present the cut until the raw material's
   holder grants presentation (no license laundering);
4. provenance queries over the production;
5. a §6-style activity pipeline transforming a stream as a dataflow.

Run:  python examples/database_tour.py
"""

from repro.bench.reporting import print_table
from repro.core.elements import MediaElement
from repro.core.model import video_clip_type
from repro.engine.activities import pipeline
from repro.media import frames
from repro.media.objects import video_object
from repro.query.authorization import (
    AuthorizationError,
    Operation,
    RightsRegistry,
)
from repro.query.database import MediaDatabase


def main() -> None:
    db = MediaDatabase("studio")
    rights = RightsRegistry()

    # -- 1. raw material with rights ---------------------------------------
    footage = video_object(frames.scene(96, 72, 50, "orbit"), "footage-A",
                           quality_factor="production quality")
    broll = video_object(frames.scene(96, 72, 50, "cut"), "footage-B",
                         quality_factor="VHS quality")
    db.add_object(footage, title="Main unit day 1", unit="main")
    db.add_object(broll, title="Second unit day 1", unit="second")
    rights.register(footage, holder="studio", notice="(c) Studio")
    rights.register(broll, holder="agency", notice="(c) Agency B-roll")

    # -- 2. typed entities (the paper's VideoClip) ---------------------------
    clip_type = video_clip_type()
    clip = clip_type.new(
        title="Opening shot", director="Gibbs", year=1994, content=footage,
    )
    print(f"entity: {clip!r}")
    print(f"  content attribute -> media object {clip['content'].name} "
          f"({clip['content'].descriptor['quality_factor']})")

    # -- 3. rights-checked derivation ----------------------------------------
    rights.grant(footage, "editor", Operation.DERIVE)
    rights.grant(broll, "editor", Operation.DERIVE)
    cut = rights.derive_checked(
        "editor", "video-edit", [footage],
        {"edit_list": [(0, 0, 30)]}, name="opening-cut",
    )
    db.add_object(cut, title="Opening shot (cut)")
    print(f"\neditor derived {cut.name!r} "
          f"({cut.derivation_object.storage_size()} bytes)")

    try:
        rights.check("editor", cut, Operation.PRESENT)
    except AuthorizationError as exc:
        print(f"presentation blocked as expected: {exc}")
    rights.grant(footage, "editor", Operation.PRESENT)
    rights.check("editor", cut, Operation.PRESENT)
    print("after studio grants PRESENT on the footage: allowed")
    print(f"copyright notices travelling with the cut: {rights.notices(cut)}")

    # -- 4. provenance queries ------------------------------------------------
    lineage = [obj.name for obj in db.lineage("opening-cut")]
    print(f"\nlineage of opening-cut: {lineage}")
    rows = [
        (o.name, "derived" if o.is_derived else "raw",
         db.attributes_of(o.name).get("title", "-"))
        for o in db.objects()
    ]
    print_table(("object", "kind", "title"), rows, title="\ncatalog")

    # -- 5. activities: a transform flow over the stream ----------------------
    def watermark(element: MediaElement) -> MediaElement:
        frame = element.payload.copy()
        frame[:4, :4] = 255  # a corner mark
        return MediaElement(payload=frame, size=element.size)

    consumer = pipeline(footage.stream(), watermark)
    print(f"\nactivity pipeline watermarked {consumer.count} frames "
          f"({consumer.bytes:,} bytes through the flow)")
    marked = consumer.collected[0].element.payload
    print(f"corner after watermark: {marked[0, 0].tolist()}")


if __name__ == "__main__":
    main()
