"""Animation pipeline: rendering, inter-frame coding, out-of-order storage.

An animation scene (sprites, moves, a rest period) is a non-continuous
timed stream. Rendering derives video from it (§6), the MPEG-like codec
exploits inter-frame similarity, and the encoded frames land in the BLOB
in *decode order* — the paper's "1, 4, 2, 3" out-of-order placement —
with a composition-offset index mapping display time back to placement.

Run:  python examples/animation_pipeline.py
"""

from repro.bench.reporting import format_bytes, print_table
from repro.blob import MemoryBlob
from repro.codecs.mpeg_like import MpegLikeCodec
from repro.core.interpretation import Interpretation, PlacementEntry
from repro.core.stream_ops import gaps
from repro.core.media_types import media_type_registry
from repro.edit import MediaEditor
from repro.media.animation import demo_scene
from repro.media.objects import animation_object, frames_of
from repro.storage.indexes import CompositionOffsetTable, SyncSampleTable


def main() -> None:
    scene = demo_scene(160, 120)
    anim = animation_object(scene, "bounce")
    stream = anim.stream()
    print(f"animation stream: {len(stream)} ops over "
          f"{scene.span_ticks()} ticks — {stream.category_label()}")
    print(f"rest periods (no elements): {gaps(stream)}")

    # -- derive video by rendering (change of type) -------------------------
    editor = MediaEditor()
    video = editor.render(anim, frame_count=16, name="bounce-video")
    frames = frames_of(video.expand())
    raw_bytes = sum(f.nbytes for f in frames)
    print(f"\nrendered {len(frames)} frames, {format_bytes(raw_bytes)} raw")

    # -- inter-frame coding with IBBP groups --------------------------------
    codec = MpegLikeCodec(quality=60, gop_pattern="IBBP")
    encoded = codec.encode_sequence(frames)
    total = sum(f.size for f in encoded)
    print(f"MPEG-like: {format_bytes(total)} "
          f"({raw_bytes / total:.0f}x compression)")

    rows = [
        (f.decode_index, f.display_index, f.kind, f.size)
        for f in encoded[:8]
    ]
    print_table(
        ("storage pos", "display pos", "kind", "bytes"), rows,
        title="\nout-of-order placement (first two GOPs) — the paper's 1,4,2,3",
    )

    # -- store in a BLOB, placement table in decode order ---------------------
    blob = MemoryBlob()
    video_type = media_type_registry.get("pal-video")
    entries = []
    for frame in encoded:
        offset = blob.append(frame.data)
        descriptor = video_type.make_element_descriptor(frame_kind=frame.kind)
        entries.append(PlacementEntry(
            element_number=frame.display_index,
            start=frame.display_index, duration=1,
            size=frame.size, blob_offset=offset,
            element_descriptor=descriptor,
        ))
    media_descriptor = video_type.make_media_descriptor(
        frame_rate=25, frame_width=160, frame_height=120, frame_depth=24,
        color_model="RGB", encoding="mpeg-like IBBP",
    )
    interpretation = Interpretation(blob, "bounce-movie")
    interpretation.add("video", video_type, media_descriptor, entries)
    interpretation.validate()
    print(f"\n{interpretation.describe()}")

    # -- the indexes that make seeking work -----------------------------------
    composition = CompositionOffsetTable(
        [f.display_index for f in encoded]
    )
    sync = SyncSampleTable(
        [f.display_index for f in encoded if f.is_key]
    )
    print(f"\nreorder buffer needed: {composition.max_reorder_distance()} frames")
    for display in (0, 2, 6):
        first, last = sync.decode_span(display)
        print(f"seek to frame {display}: decode frames {first}..{last} "
              f"({last - first + 1} elements)")

    decoded = codec.decode_sequence(encoded)
    print(f"\ndecoded {len(decoded)} frames back in display order")


if __name__ == "__main__":
    main()
