"""Quickstart: the timed-stream data model in five minutes.

Builds one second of synthetic video and audio, records both into a
single interleaved BLOB (building the interpretation as it writes, per
the paper's §4.1 recommendation), then reads elements back through the
interpretation and simulates playback.

Run:  python examples/quickstart.py
"""

from repro.blob import MemoryBlob
from repro.bench.reporting import format_rate, print_table
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.codecs.pcm import PcmCodec
from repro.engine import CostModel, Player, Recorder
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object


def main() -> None:
    # -- 1. Capture: synthetic footage and a test tone --------------------
    video = video_object(
        frames.scene(160, 120, 25, "orbit"), "video1",
        quality_factor="VHS quality",
    )
    audio = audio_object(
        signals.to_stereo(signals.sine(440, 1.0, 44100)), "audio1",
        sample_rate=44100, block_samples=1764,  # one block per frame
    )
    print(f"captured {video.name}: {video.descriptor['frame_width']}x"
          f"{video.descriptor['frame_height']} @ 25 fps, "
          f"{video.descriptor['quality_factor']}")
    print(f"captured {audio.name}: 44.1 kHz stereo, "
          f"{len(audio.stream())} blocks")

    # -- 2. Record into one interleaved BLOB ------------------------------
    blob = MemoryBlob()
    recorder = Recorder(blob, interleave=True)
    interpretation = recorder.record(
        [video, audio],
        encoders={
            "video1": JpegLikeCodec(quality=35, subsampling="4:2:2").encode,
            "audio1": PcmCodec(16, 2).encode,
        },
    )
    print()
    print(interpretation.describe())

    # -- 3. The placement tables of Definition 5 --------------------------
    video_seq = interpretation.sequence("video1")
    print_table(
        video_seq.table_columns(),
        video_seq.table()[:5],
        title="\nvideo1 placement table (first 5 rows)",
    )

    # -- 4. Read an element back through the interpretation ---------------
    raw = interpretation.read_element("video1", 10)
    frame = JpegLikeCodec().decode(raw)
    print(f"\nframe 10: {len(raw)} encoded bytes -> {frame.shape} pixels")

    # -- 5. Simulated playback against a bandwidth budget -----------------
    for bandwidth in (2_000_000, 150_000):
        player = Player(CostModel(bandwidth=bandwidth), prefetch_depth=4)
        report = player.play(interpretation)
        print(f"\nplayback at {format_rate(bandwidth)}: {report.summary()}")


if __name__ == "__main__":
    main()
