"""Fleet failover: a shard dies mid-serve and nobody loses a session.

Builds a three-shard :class:`~repro.api.Fleet` over a durable
checkpoint medium, publishes one title, and arms a crash injector on
the shard that owns it — the simulated process dies at its third
session boundary. The fleet absorbs the death: sessions that finished
before the crash carry over from the durable checkpoint as *recovered*,
the rest resume on a rendezvous-chosen survivor, and the merged report
plus the fleet health rollup account every displaced session exactly
once, with the deadline-miss SLO still green.

Run::

    python examples/fleet_failover.py
"""

from repro.api import (
    CrashInjector,
    Fleet,
    MemoryBlob,
    Observability,
    Recorder,
    SessionRequest,
    SimulatedMedium,
)
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.faults.crash import CrashSite
from repro.media import frames
from repro.media.objects import video_object


def record_feature():
    """A tiny synthetic movie, recorded into an interpretation."""
    video = video_object(frames.scene(48, 36, 20, "orbit"), "feature")
    return Recorder(MemoryBlob()).record(
        [video], encoders={"feature": JpegLikeCodec(quality=40).encode},
    )


def main() -> None:
    movie = record_feature()

    # Routing is a pure function of the names, so a throwaway fleet
    # tells us which shard will own the title — the one to kill.
    probe = Fleet(bandwidth=2_000_000, shards=3)
    probe.publish("feature", movie)
    owner = probe.route("feature")
    print(f"rendezvous routing places 'feature' on {owner}\n")

    fleet = Fleet(
        bandwidth=2_000_000,
        shards=3,
        obs=Observability(),
        checkpoint_fs=SimulatedMedium(),  # arms checkpoint-backed failover
        crash={owner: CrashInjector(CrashSite("vod.serve.session", 2))},
    )
    fleet.publish("feature", movie)

    clients = 5
    print(f"serving {clients} sessions; {owner} dies at its third "
          f"session boundary...\n")
    report = fleet.serve([
        SessionRequest(client=f"client-{i}", title="feature")
        for i in range(clients)
    ])

    print(f"dead shards        : {fleet.dead_shards}")
    print(f"recovered (durable): {report.recovered}")
    print(f"resumed on survivor: {report.admitted_count}")
    print(f"failed             : {len(report.failed)}")
    total = report.recovered + report.admitted_count + len(report.failed)
    print(f"accounted          : {total} of {clients} — exactly once\n")

    print(fleet.health().summary())


if __name__ == "__main__":
    main()
