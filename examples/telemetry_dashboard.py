"""Telemetry tour: clock-driven scrapes, burn-rate alerts, the dashboard.

An overloaded VOD serve — six staggered sessions against bandwidth
sized for two — watched live by the telemetry pipeline:

1. A ``Telemetry`` scraper rides the serve's own event loop, sampling
   every metric into a ``TelemetryStore`` at an exact rational cadence
   (quarter-second simulated time).
2. Multi-window burn-rate rules evaluate at each scrape and drive a
   deterministic alert lifecycle — pending while the short window runs
   hot, firing once the long window agrees, resolved when the burn
   cools — visible in ``health()`` *while the serve runs*.
3. Windowed rollups (``rate``/``delta``/``quantile``) answer "what was
   the underrun rate in the last simulated second?" after the fact.
4. ``render_dashboard`` draws the whole store — sparklines, the alert
   timeline, the shard heat row — as deterministic text.

Run:  python examples/telemetry_dashboard.py
"""

from repro.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.core.rational import Rational
from repro.engine import Recorder
from repro.engine.vod import SessionRequest, VodServer
from repro.media import frames
from repro.media.objects import video_object
from repro.obs import Observability
from repro.obs.telemetry import Telemetry
from repro.tools.dashboard import render_dashboard


def main() -> None:
    # -- 1. An overloaded serve with the scraper attached -----------------
    movie = Recorder(MemoryBlob()).record(
        [video_object(frames.scene(48, 36, 20, "orbit"), "feature")],
        encoders={"feature": JpegLikeCodec(quality=40).encode},
    )
    telemetry = Telemetry()          # 1/4 s scrapes, default burn rules
    server = VodServer(bandwidth=21_000, obs=Observability(),
                       telemetry=telemetry)
    server.publish("feature", movie)

    transitions = []

    def watch(alert, at):
        health = server.health()
        transitions.append((at, alert.name, alert.state, health.status))

    telemetry.alerts.on_transition = watch
    server.serve(
        [SessionRequest(client=f"client-{i}", title="feature",
                        arrival_time=Rational(i, 8))
         for i in range(6)],
        enforce_admission=False,
    )

    # -- 2. The alert lifecycle, as health() saw it mid-serve -------------
    print("alert transitions observed mid-serve:")
    for at, name, state, status in transitions:
        print(f"  t={str(at):>4}  {name:<20} -> {state:<9} "
              f"(health: {status})")

    # -- 3. Windowed rollups over the scraped series ----------------------
    store = telemetry.store
    print(f"\n{store.scrape_count} scrapes, latest t={store.latest_time()}")
    print(f"underruns in the last simulated second: "
          f"{store.delta('engine.play.underruns', window=1):g}")
    print(f"underrun rate over the whole run:       "
          f"{store.rate('engine.play.underruns', window=4):g}/s")
    print(f"p95 lateness, trailing second:          "
          f"{store.quantile('engine.play.lateness_seconds', 0.95, window=1):.3f}s")

    # -- 4. The dashboard -------------------------------------------------
    print()
    print(render_dashboard(store, alerts=telemetry.alerts))

    # -- 5. Determinism: the store replays byte-identically ---------------
    telemetry2 = Telemetry()
    server2 = VodServer(bandwidth=21_000, obs=Observability(),
                        telemetry=telemetry2)
    server2.publish("feature", movie)
    server2.serve(
        [SessionRequest(client=f"client-{i}", title="feature",
                        arrival_time=Rational(i, 8))
         for i in range(6)],
        enforce_admission=False,
    )
    identical = (telemetry2.store.dump() == store.dump()
                 and telemetry2.store.alert_rows() == store.alert_rows())
    print(f"\nsame-seed rerun reproduces store and alert log: {identical}")


if __name__ == "__main__":
    main()
