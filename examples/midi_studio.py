"""MIDI studio: event-based streams and type-changing derivation.

A small score (melody, rest, chords) is viewed three ways — as a
non-continuous note stream, as an event-based MIDI stream, and as the
audio derived from it by the synthesizer (Table 1's "MIDI synthesis",
music -> audio). The derived audio is then normalized (Table 1's "audio
normalization") and the whole chain is queried from provenance.

Run:  python examples/midi_studio.py
"""

import numpy as np

from repro.bench.reporting import print_table
from repro.codecs.midi import encode_events
from repro.edit import MediaEditor
from repro.media.music import demo_score
from repro.media.objects import score_object, signal_of


def main() -> None:
    score = demo_score()
    print(f"score: {score}")

    # -- three views of the same music -------------------------------------
    note_stream = score.to_stream()
    event_stream = score.to_event_stream()
    print(f"\nnote stream : {note_stream.category_label()} "
          f"(gaps={note_stream.has_gaps()}, overlaps={note_stream.has_overlaps()})")
    print(f"event stream: {event_stream.category_label()} "
          f"({len(event_stream)} duration-less events)")

    wire = encode_events(score.to_midi_events())
    print(f"MIDI wire format: {len(wire)} bytes for "
          f"{len(score)} notes")

    rows = [
        (t.start, t.duration,
         t.element.descriptor["pitch"], round(t.element.payload.frequency, 1))
        for t in note_stream.tuples[:6]
    ]
    print_table(("start", "duration", "pitch", "Hz"), rows,
                title="\nfirst six notes (ticks at 960 PPQ)")

    # -- derive audio from music (change of type) ---------------------------
    editor = MediaEditor()
    music = score_object(score, "score1")
    quiet = editor.synthesize(music, sample_rate=22050, instrument="piano",
                              name="audio-raw")
    loud = editor.normalize(quiet, target_peak=0.95, name="audio-master")

    print("\nproduction chain:")
    for step in editor.steps(loud):
        print(f"  {step}")

    mastered = loud.expand()
    samples = signal_of(mastered)
    duration = mastered.descriptor["duration"]
    print(f"\nmastered audio: {len(samples)} samples, "
          f"{duration.to_timestamp()}, peak "
          f"{np.abs(samples).max() / 32767:.2f} of full scale")

    # The same score, transposed — derivations are reusable specifications.
    transposed = score.transpose(-12)
    low = editor.synthesize(score_object(transposed, "score1-low"),
                            sample_rate=22050, name="audio-low")
    print(f"transposed copy derives {len(signal_of(low.expand()))} samples "
          "from a one-octave-down score")


if __name__ == "__main__":
    main()
