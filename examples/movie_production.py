"""Movie production: the paper's Figure 4 example, end to end.

Reconstructs the worked example of §4.3: two video shots and two audio
tracks are refined through derivations (cut, cut, fade, concatenate) and
assembled into a multimedia object whose timeline matches Figure 4(b) —
music under everything, narration entering at the one-minute mark,
picture = cut1 + 10 s fade + cut2.

Everything before the final expansion is non-destructive: only derivation
objects (a few hundred bytes) are created.

Run:  python examples/movie_production.py
"""

from repro.bench.reporting import format_bytes, print_table
from repro.bench.workloads import figure4_production
from repro.engine import CostModel, Player


def main() -> None:
    # Scale 0.1 -> a 13-second production with the paper's proportions.
    production = figure4_production(width=120, height=90, scale=0.1)
    multimedia = production.multimedia
    editor = production.editor

    # -- the instance diagram of Figure 4(a), as provenance ----------------
    print("production steps (derivation objects only, nothing expanded):")
    for step in editor.steps(production.video3):
        print(f"  {step}")

    chain_bytes = editor.total_derivation_bytes(production.video3)
    print(f"\nwhole derivation chain: {format_bytes(chain_bytes)}")

    # -- the timeline of Figure 4(b) ----------------------------------------
    print()
    print(multimedia.timeline_diagram(width=56))

    rows = [
        (label, interval.start.to_timestamp(), interval.end.to_timestamp())
        for label, interval in multimedia.timeline()
    ]
    print_table(("component", "start", "end"), rows, title="\ncomposition")

    print("\nAllen relations:")
    print(f"  audio2 vs audio1: {multimedia.relation('audio2', 'audio1').value}")
    print(f"  video3 vs audio1: {multimedia.relation('video3', 'audio1').value}")

    # -- expansion: the derived picture becomes actual frames ----------------
    expanded = production.video3.expand()
    stream = expanded.stream()
    print(f"\nexpanded video3: {len(stream)} frames, "
          f"{format_bytes(stream.total_size())} "
          f"({stream.total_size() // max(chain_bytes, 1)}x the derivation chain)")

    # -- play the composition -------------------------------------------------
    report = Player(CostModel(bandwidth=80_000_000)).play_multimedia(multimedia)
    print(f"\nplayback: {report.summary()}")


if __name__ == "__main__":
    main()
