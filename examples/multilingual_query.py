"""The §1.2 queries: sound track, duration, visual fidelity.

"Consider a digital movie with audio tracks in different languages. If
the movie is represented structurally, rather than as a long
uninterpreted byte sequence, it is possible to issue queries which select
a specific sound track, or select a specific duration, or perhaps
retrieve frames at a specific visual fidelity."

This example builds that movie — one picture track, three language
tracks, a scalable-coded copy of the picture — catalogs it, and runs all
three queries.

Run:  python examples/multilingual_query.py
"""

from repro.bench.reporting import format_bytes, print_table
from repro.bench.workloads import multilingual_movie
from repro.codecs.scalable import ScalableVideoCodec
from repro.core.elements import MediaElement
from repro.core.media_types import MediaKind, media_type_registry
from repro.core.media_object import StreamMediaObject
from repro.core.rational import Rational
from repro.core.streams import TimedStream
from repro.media import frames
from repro.query import frames_at_fidelity, select_duration, select_track


def scalable_copy(name: str, codec: ScalableVideoCodec) -> StreamMediaObject:
    """Encode the picture with the scalable codec for fidelity queries."""
    shot = frames.scene(160, 120, 25, "pan")
    video_type = media_type_registry.get("pal-video")
    elements = []
    for frame in shot:
        data = codec.encode(frame)
        elements.append(MediaElement(payload=data, size=len(data)))
    stream = TimedStream.from_elements(video_type, elements)
    descriptor = video_type.make_media_descriptor(
        frame_rate=25, frame_width=160, frame_height=120, frame_depth=24,
        color_model="RGB", encoding="scalable", duration=Rational(1),
    )
    return StreamMediaObject(video_type, descriptor, stream, name)


def main() -> None:
    db, movie = multilingual_movie(seconds=2.0)

    print(f"catalog: {len(db)} objects; movies: {db.multimedia()}")
    soundtracks = db.objects(kind=MediaKind.AUDIO, role="soundtrack")
    print_table(
        ("object", "language"),
        [(o.name, db.attributes_of(o.name)["language"]) for o in soundtracks],
        title="\nsound tracks",
    )

    # -- query 1: select a specific sound track ---------------------------
    french = select_track(db, "feature", "fr")
    print(f"\nselect_track(feature, 'fr') -> {french.name} "
          f"({french.descriptor['duration'].to_timestamp()})")

    # -- query 2: select a specific duration (non-destructively) -----------
    picture = db.get_object("feature-video")
    clip = select_duration(picture, Rational(1, 2), Rational(3, 2))
    print(f"\nselect_duration(0.5s, 1.5s) -> {clip.name}")
    print(f"  derived: {clip.is_derived}; derivation object "
          f"{clip.derivation_object.storage_size()} bytes "
          f"vs {format_bytes(picture.stream().total_size())} of frames")
    print(f"  expands to {len(clip.stream())} frames")

    # -- query 3: retrieve frames at a specific visual fidelity -------------
    codec = ScalableVideoCodec(levels=3, quality=60)
    scalable = scalable_copy("feature-video-scalable", codec)
    db.add_object(scalable, title="The Timed Stream", role="proxy")

    rows = []
    for level, label in ((0, "preview"), (1, "half"), (2, "full")):
        decoded, read, total = frames_at_fidelity(
            scalable, level, codec, frame_indices=[0, 12, 24],
        )
        rows.append((
            label,
            f"{decoded[0].shape[1]}x{decoded[0].shape[0]}",
            format_bytes(read),
            f"{read / total:.0%}",
        ))
    print_table(
        ("fidelity", "resolution", "bytes read", "of full"),
        rows,
        title="\nframes_at_fidelity(frames 0, 12, 24)",
    )


if __name__ == "__main__":
    main()
