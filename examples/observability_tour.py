"""Observability tour: health, flight recorder, SLOs and Chrome traces.

A faulted VOD serve, inspected four ways. The stack's simulated clocks
make every observability artifact deterministic — run this twice and
the health report, the event log and the exported trace are identical
byte for byte.

1. ``VodServer.health()`` — one call answering "is serving OK?":
   status, per-objective SLO verdicts (burn-rate style), cache hit
   ratios, the pipeline stage responsible for the time, and the tail of
   severe flight-recorder events.
2. The flight recorder — the bounded ring of structured events (every
   fault, retry, skip, SLO violation) that explains *why*.
3. The stage profiler — where the simulated time went, per pipeline
   stage, with deterministic p50/p99.
4. A Chrome ``trace_event`` export — open the written JSON file in
   chrome://tracing or https://ui.perfetto.dev to see the sessions as
   nested spans with fault events pinned to their tracks.

Run:  python examples/observability_tour.py
"""

import os
import tempfile

from repro.engine import Recorder, RetryPolicy
from repro.engine.vod import VodServer
from repro.blob import MemoryBlob
from repro.faults import FaultPlan
from repro.media import frames
from repro.media.objects import video_object
from repro.obs import (
    Observability,
    Severity,
    events_to_table,
    profile_stages,
    to_chrome_trace,
)

def main() -> None:
    # -- 1. A faulted, bandwidth-starved serve, fully instrumented --------
    movie = Recorder(MemoryBlob()).record(
        [video_object(frames.scene(64, 48, 25, "orbit"), "feature")],
    )
    plan = FaultPlan(seed=7, transient_rate=0.5, bad_page_rate=0.3,
                     corruption_rate=0.1, degraded_fraction=1.0)
    obs = Observability()
    server = VodServer(bandwidth=15_000, prefetch_depth=8, obs=obs)
    server.publish("feature", movie)
    server.serve(
        [(f"client-{i}", "feature") for i in range(3)],
        enforce_admission=False, fault_plan=plan,
        retry_policy=RetryPolicy(max_retries=3, abort_skip_fraction=0.5),
    )

    # -- 2. One call: is serving healthy, and if not, why? ----------------
    health = server.health()
    print("server health")
    print("-------------")
    print(health.summary())

    # -- 3. The flight recorder: what happened, in order ------------------
    recorder = obs.events
    print(f"\nflight recorder: {len(recorder)} events retained "
          f"(capacity {recorder.capacity}, {recorder.dropped} dropped)")
    print(events_to_table(obs, title="last 12 WARNING+ events",
                          min_severity=Severity.WARNING, limit=12))

    # -- 4. The stage profiler: where the simulated time went -------------
    print()
    print(profile_stages(obs).table())

    # -- 5. Chrome trace: sessions as nested spans ------------------------
    trace = to_chrome_trace(obs)
    descriptor, trace_path = tempfile.mkstemp(
        prefix="observability_tour_", suffix=".json")
    with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
        handle.write(trace)
    print(f"\nwrote {len(trace):,} bytes of trace_event JSON to "
          f"{trace_path} — load it in chrome://tracing or Perfetto")

    # -- 6. Determinism: the whole record replays byte-identically --------
    obs2 = Observability()
    server2 = VodServer(bandwidth=15_000, prefetch_depth=8, obs=obs2)
    server2.publish("feature", movie)
    server2.serve(
        [(f"client-{i}", "feature") for i in range(3)],
        enforce_admission=False, fault_plan=plan,
        retry_policy=RetryPolicy(max_retries=3, abort_skip_fraction=0.5),
    )
    identical = (to_chrome_trace(obs2) == trace
                 and obs2.events.export() == recorder.export())
    print(f"same-seed rerun reproduces trace and event log: {identical}")


if __name__ == "__main__":
    main()
