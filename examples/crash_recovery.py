"""Crash recovery: the durability layer surviving a simulated power cut.

The paper's interpretations are "permanently associated" with their
BLOBs (§4.1) — this example makes "permanent" literal. It runs three
acts on a :class:`~repro.faults.SimulatedMedium` (an in-memory disk
with real crash semantics: unsynced writes die, renames roll back
without a directory fsync):

1. a WAL-backed page store is killed after its commit was acknowledged
   but before the data file was updated — redo recovery replays the
   committed full-page images and nothing acknowledged is lost;
2. an RMF container is killed mid-replacement — the atomic-commit
   protocol (shadow write + fsync barrier + rename) leaves a complete
   old version, never a torn hybrid;
3. a VOD server is killed mid-batch — a restored server resumes from
   its checkpoint, carrying finished sessions over as ``recovered`` and
   re-serving the rest marked ``resumed``.

Finally the crash matrix sweeps *every* crash point in the small
scenario set, proving the sequence above was not luck.

Run:  python examples/crash_recovery.py
"""

from repro.durability import (
    CrashMatrix,
    DurablePageStore,
    WriteAheadLog,
    default_scenarios,
    read_bytes,
    recover_page_store,
)
from repro.engine.vod import VodServer
from repro.errors import SimulatedCrash
from repro.faults import CrashInjector, CrashSite, SimulatedMedium

PAGE = 256


def act_one_page_store() -> None:
    print("=== 1. page store: acknowledged commit survives the crash ===")
    fs = SimulatedMedium()
    # Arm the injector one instruction after the WAL fsync: the commit
    # is acknowledged, the data file not yet touched.
    crash = CrashInjector(CrashSite("store.commit.acknowledged"))

    from repro.blob.pages import FilePager

    pager = FilePager("/data/store.pg", page_size=PAGE, fs=fs)
    wal = WriteAheadLog("/data/wal", fs=fs, crash=crash)
    store = DurablePageStore(pager, wal, checksums=True, crash=crash)
    page = store.allocate()
    store.write(page, b"precious frame bytes".ljust(PAGE, b"."))
    try:
        store.commit()
    except SimulatedCrash as exc:
        print(f"  power cut: {exc}")
    fs.crash()

    pager = FilePager("/data/store.pg", page_size=PAGE, fs=fs, repair=True)
    wal = WriteAheadLog("/data/wal", fs=fs)
    recovered, report = recover_page_store(pager, wal, checksums=True)
    print(f"  {report.summary()}")
    print(f"  page {page} after recovery: "
          f"{recovered.read(page)[:20].decode()!r}")
    assert recovered.verify_page(page)
    recovered.close()
    print()


def act_two_container() -> None:
    print("=== 2. container: atomic replacement, old or new, never torn ===")
    from repro.durability.atomic import atomic_write_bytes, remove_stale_temp

    fs = SimulatedMedium()
    fs.makedirs("/media")
    atomic_write_bytes("/media/title.rmf", b"version-1 (complete)", fs=fs)
    crash = CrashInjector(CrashSite("atomic.after_sync"))
    try:
        atomic_write_bytes("/media/title.rmf", b"version-2 (complete)",
                           fs=fs, crash=crash)
    except SimulatedCrash as exc:
        print(f"  power cut mid-replacement: {exc}")
    fs.crash()
    stale = remove_stale_temp("/media/title.rmf", fs=fs)
    survivor = read_bytes("/media/title.rmf", fs=fs)
    print(f"  after reboot: {survivor.decode()!r} "
          f"(stale temp removed: {stale})")
    assert survivor in (b"version-1 (complete)", b"version-2 (complete)")
    print()


def act_three_vod_failover() -> None:
    print("=== 3. VOD server: checkpoint, restore, resume ===")
    from repro.blob.blob import MemoryBlob
    from repro.codecs.jpeg_like import JpegLikeCodec
    from repro.engine.recorder import Recorder
    from repro.media import frames
    from repro.media.objects import video_object

    video = video_object(frames.scene(16, 12, 6, "orbit"), "feature")
    title = Recorder(MemoryBlob()).record(
        [video], encoders={"feature": JpegLikeCodec(quality=40).encode},
    )
    fs = SimulatedMedium()
    fs.makedirs("/srv")
    # Die at the start of the second session.
    crash = CrashInjector(CrashSite("vod.serve.session", 1))
    server = VodServer(bandwidth=50_000_000, crash=crash)
    server.publish("feature", title)
    requests = [(f"client-{i}", "feature") for i in range(3)]
    try:
        server.serve(requests, checkpoint_to="/srv/vod.ckpt",
                     checkpoint_fs=fs)
    except SimulatedCrash as exc:
        print(f"  server died mid-batch: {exc}")
    fs.crash()

    restored = VodServer.restore("/srv/vod.ckpt", fs=fs)
    report = restored.resume()
    print(f"  after failover: {report.recovered} recovered from "
          f"checkpoint, {len(report.admitted)} re-served (resumed), "
          f"{len(report.failed)} failed")
    print(f"  health: {restored.health().status} "
          f"(failover counts as degraded service)")
    print()


def finale_crash_matrix() -> None:
    print("=== 4. the crash matrix: every site, recovered and verified ===")
    for scenario in default_scenarios(small=True):
        print(f"  {CrashMatrix(scenario).run().summary()}")


def main() -> None:
    act_one_page_store()
    act_two_container()
    act_three_vod_failover()
    finale_crash_matrix()


if __name__ == "__main__":
    main()
