"""Faulted playback: graceful degradation across the storage stack.

The paper's scalable streams exist so "the number of elements per
second can be varied" when resources degrade (§4.1), and quality
factors exist to trade fidelity for feasibility. This example injects a
deterministic storm of storage faults — transient read errors, bad
pages, bit flips, degraded-bandwidth windows — and shows the stack
absorbing it at every layer: checksums detect corruption, the player
retries/skips/adapts (charging recovery as simulated time), and the
VOD server re-admits aborted sessions at degraded quality instead of
dropping them.

Run:  python examples/faulted_playback.py
"""

from repro.blob import MemoryPager, PagedBlob, PageStore
from repro.bench.reporting import print_table
from repro.codecs.scalable import ScalableVideoCodec
from repro.core.rational import Rational
from repro.engine import AdaptationPolicy, CostModel, Player, Recorder, RetryPolicy
from repro.engine.vod import VodServer
from repro.errors import BlobCorruptionError, TransientBlobError
from repro.faults import FaultPlan, FaultyPager
from repro.media import frames
from repro.media.objects import video_object

PAGE = 512


def main() -> None:
    # -- 1. Record a scalable title onto a checksummed, fault-prone disk --
    plan = FaultPlan(
        seed=2026, page_size=PAGE,
        transient_rate=0.08, bad_page_rate=0.04, corruption_rate=0.05,
        degraded_fraction=0.5, degradation_span=8,
        degraded_bandwidth_factor=Rational(1, 3),
        degraded_latency=Rational(1, 100),
    )
    print(plan.describe())

    codec = ScalableVideoCodec(levels=3, quality=50)
    pager = FaultyPager(MemoryPager(page_size=PAGE), plan)
    store = PageStore(pager, checksums=True)
    blob = PagedBlob(store)
    video = video_object(frames.scene(64, 48, 50, "orbit"), "movie")
    interpretation = Recorder(blob).record(
        [video], encoders={"movie": codec.encode},
    )
    sequence = interpretation.sequence("movie")
    print(f"recorded {len(sequence)} scalable elements, "
          f"{len(blob)} bytes over {len(blob.pages)} pages\n")

    # -- 2. The blob layer: typed faults, detected corruption -------------
    outcomes = {"ok": 0, "transient": 0, "corrupt": 0}
    for entry in sequence:
        try:
            blob.read(entry.blob_offset, entry.size)
            outcomes["ok"] += 1
        except TransientBlobError:
            outcomes["transient"] += 1
        except BlobCorruptionError:
            outcomes["corrupt"] += 1
    print(f"raw element reads: {outcomes['ok']} clean, "
          f"{outcomes['transient']} transient errors, "
          f"{outcomes['corrupt']} permanent (bad page or checksum) "
          f"(pager injected {dict(pager.fault_counts)})\n")

    # -- 3. Adaptation fractions measured from the encoding itself --------
    sample = codec.encode(video.stream()[0].element.payload)
    fractions = tuple(
        Rational(codec.bytes_at_level(sample, level), len(sample))
        for level in range(codec.levels - 1)
    ) + (Rational(1),)
    adaptation = AdaptationPolicy(levels=codec.levels, fractions=fractions)
    print("layer byte fractions:",
          ", ".join(f"L{i}={float(f):.0%}" for i, f in enumerate(fractions)))

    # -- 4. Resilient playback: recovery charged as simulated time --------
    cost = CostModel(bandwidth=120_000)
    clean = Player(cost).play(interpretation)
    print(f"\nclean playback : {clean.summary()}")
    faulted = Player(
        cost, fault_plan=plan,
        retry_policy=RetryPolicy(max_retries=3, backoff=Rational(1, 250)),
        adaptation=adaptation,
    ).play(interpretation)
    print(f"faulted playback: {faulted.summary()}")
    again = Player(
        cost, fault_plan=plan,
        retry_policy=RetryPolicy(max_retries=3, backoff=Rational(1, 250)),
        adaptation=adaptation,
    ).play(interpretation)
    print(f"reproducible   : same-seed rerun identical = {faulted == again}\n")

    # -- 5. VOD failover: degraded service, never dropped sessions --------
    server = VodServer(bandwidth=600_000, prefetch_depth=8)
    server.publish("movie", interpretation)
    requests = [(f"client-{i}", "movie") for i in range(3)]
    report = server.serve(
        requests, fault_plan=plan,
        retry_policy=RetryPolicy(max_retries=3, abort_skip_fraction=0.1),
        adaptation=adaptation,
    )
    rows = [
        (s.client,
         s.report.retries,
         s.report.skipped_elements,
         s.report.glitches,
         f"{float(s.report.delivered_quality):.0%}",
         "degraded (re-admitted)" if s.degraded else "served")
        for s in report.admitted
    ] + [(client, "-", "-", "-", "-", f"failed: {reason[:30]}")
         for client, title, reason in report.failed]
    print_table(
        ("client", "retries", "skipped", "glitches", "quality", "outcome"),
        rows,
        title=f"VOD under faults: {report.clean_sessions()} clean, "
              f"{report.underrun_sessions()} underrun, "
              f"{report.degraded_sessions()} degraded, "
              f"{report.failed_sessions()} failed",
    )


if __name__ == "__main__":
    main()
