"""Tests for the inspector CLI, edit views, and per-stream sync."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.pcm import PcmCodec
from repro.core.rational import Rational
from repro.engine import CostModel, Player, Recorder
from repro.engine.sync import measure_sync
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object
from repro.storage.container import write_container
from repro.tools.inspect import main as inspect_main


@pytest.fixture
def recorded():
    video = video_object(frames.scene(24, 16, 10, "orbit"), "v")
    audio = audio_object(signals.sine(440, 0.4, 8000), "a",
                         sample_rate=8000, block_samples=320)
    return Recorder(MemoryBlob()).record(
        [video, audio], encoders={"a": PcmCodec(16, 1).encode},
    )


@pytest.fixture
def container_path(recorded, tmp_path):
    path = tmp_path / "movie.rmf"
    write_container(recorded, path)
    return str(path)


class TestInspectCli:
    def test_summary(self, container_path, capsys):
        assert inspect_main([container_path]) == 0
        output = capsys.readouterr().out
        assert "v:" in output and "a:" in output
        assert "category" in output
        assert "elements" in output

    def test_table_option(self, container_path, capsys):
        assert inspect_main([container_path, "--table", "v"]) == 0
        output = capsys.readouterr().out
        assert "placement table" in output
        assert "blobPlacement" in output

    def test_play_option(self, container_path, capsys):
        assert inspect_main([container_path, "--play", "1000000"]) == 0
        output = capsys.readouterr().out
        assert "playback at" in output
        assert "underruns" in output

    def test_missing_file(self, tmp_path, capsys):
        assert inspect_main([str(tmp_path / "nope.rmf")]) == 1
        assert "error" in capsys.readouterr().err


class TestEditViews:
    def test_cut_and_reorder(self, recorded):
        """§4.1: a second interpretation formed from the first table."""
        view = recorded.edit_view("v", keep=[5, 6, 7, 0, 1])
        sequence = view.sequence("v")
        assert len(sequence) == 5
        assert [e.element_number for e in sequence] == [0, 1, 2, 3, 4]
        # The view reads the same underlying bytes, reordered.
        assert view.read_element("v", 0) == recorded.read_element("v", 5)
        assert view.read_element("v", 3) == recorded.read_element("v", 0)

    def test_retimed_back_to_back(self, recorded):
        view = recorded.edit_view("v", keep=[9, 0])
        stream = view.materialize("v", read_payloads=False)
        assert stream.is_continuous()
        assert stream.start == 0
        assert stream.span_ticks == 2

    def test_original_untouched(self, recorded):
        before = len(recorded.sequence("v"))
        recorded.edit_view("v", keep=[0])
        assert len(recorded.sequence("v")) == before

    def test_view_is_playable(self, recorded):
        view = recorded.edit_view("v", keep=[2, 4, 6])
        report = Player(CostModel(bandwidth=10_000_000)).play(view)
        assert report.element_count == 3


class TestPerStreamSync:
    def test_streams_in_sync_with_ample_bandwidth(self, recorded):
        report = Player(CostModel(bandwidth=10_000_000)).play(recorded)
        video_late, video_deadlines = report.stream_lateness("v[")
        audio_late, audio_deadlines = report.stream_lateness("a[")
        assert len(video_late) == 10
        assert len(audio_late) == 10
        sync = measure_sync(video_late, video_deadlines,
                            audio_late, audio_deadlines)
        # Conventional lip-sync tolerance is ~80 ms.
        assert sync.within_tolerance(Rational(8, 100))

    def test_per_read_records_complete(self, recorded):
        report = Player(CostModel(bandwidth=10_000_000)).play(recorded)
        assert len(report.per_read) == report.element_count
        labels = {label.split("[")[0] for label, _, _ in report.per_read}
        assert labels == {"v", "a"}
