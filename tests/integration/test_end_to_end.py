"""End-to-end integration: the full Figure 5 stack.

BLOB -> interpretation -> (derivation) -> composition -> playback,
through the database catalog and a container-file roundtrip.
"""

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.codecs.pcm import PcmCodec
from repro.core.composition import MultimediaObject
from repro.core.rational import Rational
from repro.edit import MediaEditor
from repro.engine.player import CostModel, Player
from repro.engine.recorder import Recorder
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object
from repro.query.database import MediaDatabase
from repro.storage.container import deserialize_container, serialize_container


@pytest.fixture(scope="module")
def stack():
    """Capture raw material, interpret, derive, compose, catalog."""
    db = MediaDatabase("studio")

    # 1. Raw material (the "capture operation").
    shot1 = video_object(frames.scene(48, 32, 20, "orbit"), "shot1")
    shot2 = video_object(frames.scene(48, 32, 20, "cut"), "shot2")
    # Music spans exactly the final video: 36 frames = 1.44 s.
    music = audio_object(
        signals.sine(330, Rational(36, 25).to_seconds(), 8000),
        "music", sample_rate=8000, block_samples=320,
    )

    # 2. Record into one BLOB with interleaving (Figure 2 mechanics).
    blob = MemoryBlob()
    recorder = Recorder(blob)
    interpretation = recorder.record(
        [shot1, shot2],
        encoders={
            "shot1": JpegLikeCodec(quality=40).encode,
            "shot2": JpegLikeCodec(quality=40).encode,
        },
        interpretation_name="tape1",
    )
    db.add_interpretation(interpretation)
    db.add_object(music, role="music")

    # 3. Non-destructive production (Figure 4 mechanics).
    editor = MediaEditor()
    cut1 = editor.cut(shot1, 0, 16, name="cut1")
    fade = editor.transition(shot1, shot2, 4, a_start=16, b_start=0,
                             name="fade")
    cut2 = editor.cut(shot2, 4, 20, name="cut2")
    final = editor.concat(cut1, fade, cut2, name="final")
    db.add_object(final, role="picture")

    # 4. Temporal composition (Definition 7).
    movie = MultimediaObject("movie")
    movie.add_temporal(final, at=0, label="picture")
    movie.add_temporal(music, at=0, label="music")
    db.add_multimedia(movie)
    return db, interpretation, editor, movie, final


class TestStack:
    def test_catalog_contents(self, stack):
        db, *_ = stack
        assert set(db.multimedia()) == {"movie"}
        assert "shot1" in db and "final" in db

    def test_final_video_timing(self, stack):
        db, _, _, movie, final = stack
        stream = final.expand().stream()
        assert len(stream) == 36
        assert movie.duration() == Rational(36, 25)

    def test_playback_of_composition(self, stack):
        *_, movie, _ = stack
        report = Player(CostModel(bandwidth=50_000_000)).play_multimedia(movie)
        assert report.underruns == 0
        assert report.element_count > 0

    def test_playback_of_interpretation(self, stack):
        _, interpretation, *_ = stack
        report = Player(CostModel(bandwidth=5_000_000)).play(interpretation)
        assert report.element_count == 40
        assert report.seeks == 0  # interleaved by presentation time

    def test_container_roundtrip_preserves_playability(self, stack):
        _, interpretation, *_ = stack
        restored = deserialize_container(serialize_container(interpretation))
        report = Player(CostModel(bandwidth=5_000_000)).play(restored)
        assert report.element_count == 40

    def test_lineage_spans_production(self, stack):
        db, _, editor, _, final = stack
        names = {o.name for o in db.lineage("final")}
        assert {"cut1", "fade", "cut2", "shot1", "shot2"} <= names

    def test_rederiving_after_materialization_discard(self, stack):
        *_, final = stack
        final.materialize()
        assert final.is_materialized
        final.discard_materialization()
        assert not final.is_materialized
        assert len(final.stream()) == 36  # recomputed from the chain

    def test_figure5_layering(self, stack):
        """BLOB -> interpretation -> non-derived -> derived -> multimedia."""
        db, interpretation, editor, movie, final = stack
        # Layer 1: the BLOB is uninterpreted bytes.
        assert len(interpretation.blob) > 0
        # Layer 2: interpretation yields non-derived media objects.
        shot1 = db.get_object("shot1")
        assert not shot1.is_derived
        # Layer 3: derivation yields derived media objects.
        assert final.is_derived
        # Layer 4: temporal composition yields the multimedia object.
        assert {r.label for r in movie} == {"picture", "music"}
