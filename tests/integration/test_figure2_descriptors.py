"""The Figure 2 media descriptors, field by field.

The paper prints both descriptors in §4.1; this test reproduces every
attribute the text shows (at reduced duration) from a real capture.
"""

import pytest

from repro.bench.workloads import figure2_capture
from repro.core.rational import Rational


@pytest.fixture(scope="module")
def capture():
    return figure2_capture(width=640, height=480, seconds=0.4)


class TestVideo1Descriptor:
    """paper: category = homogeneous, constant frequency;
    quality factor = "VHS quality"; duration = 10 minutes;
    frame rate = 25; frame width = 640; frame height = 480;
    frame depth = 24; color model = RGB; encoding = YUV 8:2:2, JPEG."""

    def test_all_paper_fields(self, capture):
        descriptor = capture.interpretation.sequence("video1").media_descriptor
        assert descriptor["category"] == "homogeneous, constant frequency"
        assert descriptor["quality_factor"] == "VHS quality"
        assert descriptor["duration"] == Rational(2, 5)
        assert descriptor["frame_rate"] == 25
        assert descriptor["frame_width"] == 640
        assert descriptor["frame_height"] == 480
        assert descriptor["frame_depth"] == 24
        assert descriptor["color_model"] == "RGB"
        assert descriptor["encoding"] == "YUV 8:2:2, JPEG"

    def test_resource_attributes_present(self, capture):
        """"The descriptors should also contain information that helps
        allocate resources for playback" — average and peak rates."""
        descriptor = capture.interpretation.sequence("video1").media_descriptor
        assert descriptor["average_data_rate"] > 0
        assert descriptor["peak_data_rate"] >= descriptor["average_data_rate"]


class TestAudio1Descriptor:
    """paper: category = homogeneous, uniform;
    quality factor = "CD quality"; duration = 10 minutes;
    sample rate = 44100; sample size = 16; number of channels = 2;
    encoding = PCM."""

    def test_all_paper_fields(self, capture):
        descriptor = capture.interpretation.sequence("audio1").media_descriptor
        assert descriptor["category"] == "homogeneous, uniform"
        assert descriptor["quality_factor"] == "CD quality"
        assert descriptor["duration"] == Rational(2, 5)
        assert descriptor["sample_rate"] == 44100
        assert descriptor["sample_size"] == 16
        assert descriptor["channels"] == 2
        assert descriptor["encoding"] == "PCM"

    def test_uniform_because_blocks_equal(self, capture):
        # 0.4 s at 44100 = 17640 samples = exactly 10 blocks of 1764.
        sequence = capture.interpretation.sequence("audio1")
        assert len(sequence) == 10
        assert not sequence.is_variable_size()


class TestDescribeRendering:
    def test_figure2_text_shape(self, capture):
        text = capture.interpretation.sequence(
            "video1"
        ).media_descriptor.describe()
        assert "category = homogeneous, constant frequency" in text
        assert 'quality_factor = VHS quality' in text
        assert "encoding = YUV 8:2:2, JPEG" in text
