"""Failure injection: corruption and inconsistency must fail loudly.

The paper's warning (§4.1): if an interpretation and its BLOB drift
apart, "media elements within the BLOB may be effectively lost". These
tests corrupt real captures and check that every layer raises a typed
error instead of returning garbage.
"""

import numpy as np
import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.adpcm import AdpcmCodec
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.codecs.pcm import PcmCodec
from repro.core.interpretation import Interpretation, PlacementEntry
from repro.engine.recorder import Recorder
from repro.errors import (
    BlobBoundsError,
    CodecError,
    ContainerFormatError,
    InterpretationError,
)
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object
from repro.storage.container import deserialize_container, serialize_container


@pytest.fixture
def capture():
    video = video_object(frames.scene(32, 24, 6, "orbit"), "v")
    audio = audio_object(signals.sine(440, 0.24, 8000), "a",
                         sample_rate=8000, block_samples=320)
    codec = JpegLikeCodec(quality=50)
    blob = MemoryBlob()
    interpretation = Recorder(blob).record(
        [video, audio],
        encoders={"v": codec.encode, "a": PcmCodec(16, 1).encode},
    )
    return blob, interpretation, codec


class TestTruncatedBlob:
    def test_interpretation_over_short_blob_detected(self, capture):
        blob, interpretation, _ = capture
        truncated = MemoryBlob(blob.read(0, len(blob) - 100))
        orphan = Interpretation(truncated, "orphan")
        for name in interpretation.names():
            sequence = interpretation.sequence(name)
            orphan.add(name, sequence.media_type, sequence.media_descriptor,
                       sequence.entries, time_system=sequence.time_system)
        with pytest.raises(InterpretationError, match="beyond BLOB"):
            orphan.validate()

    def test_read_past_end_is_bounds_error(self, capture):
        blob, interpretation, _ = capture
        last = interpretation.sequence("v").entries[-1]
        bad = PlacementEntry(
            element_number=last.element_number + 1,
            start=last.end, duration=1,
            size=last.size, blob_offset=len(blob) - 10,
        )
        with pytest.raises(BlobBoundsError):
            blob.read(bad.blob_offset, bad.size)


class TestCorruptedElements:
    def test_corrupt_frame_fails_cleanly(self, capture):
        blob, interpretation, codec = capture
        entry = interpretation.sequence("v").entry(2)
        raw = bytearray(blob.read(entry.blob_offset, entry.size))
        raw[0] ^= 0xFF  # destroy the magic
        with pytest.raises(CodecError):
            codec.decode(bytes(raw))

    def test_other_frames_unaffected(self, capture):
        """Intra coding localizes damage: frame 2 dying leaves 3 intact."""
        blob, interpretation, codec = capture
        good = interpretation.read_element("v", 3)
        frame = codec.decode(good)
        assert frame.shape == (24, 32, 3)

    def test_truncated_frame_payload(self, capture):
        _, interpretation, codec = capture
        raw = interpretation.read_element("v", 0)
        with pytest.raises(CodecError):
            codec.decode(raw[:len(raw) // 2])

    def test_bitflip_in_entropy_stream(self, capture):
        """A flipped bit inside the Huffman payload either decodes to
        wrong-but-bounded data or raises; it never crashes outside the
        codec error type."""
        _, interpretation, codec = capture
        raw = bytearray(interpretation.read_element("v", 1))
        raw[len(raw) // 2] ^= 0x10
        try:
            frame = codec.decode(bytes(raw))
            assert frame.dtype == np.uint8
            assert frame.shape == (24, 32, 3)
        except CodecError:
            pass

    def test_adpcm_garbage(self):
        with pytest.raises(CodecError):
            AdpcmCodec().decode(b"\x01\x02\x03")


class TestTamperedContainer:
    def test_header_length_overflow(self, capture):
        _, interpretation, _ = capture
        data = bytearray(serialize_container(interpretation))
        data[4:8] = (2**31).to_bytes(4, "big")
        with pytest.raises(ContainerFormatError):
            deserialize_container(bytes(data))

    def test_placement_tampering_caught_on_load(self, capture):
        """A container whose table points past its BLOB fails validation
        at deserialization time, not at first read.

        The tamper recomputes both CRCs, modeling an attacker (or a
        tool bug) producing a checksum-valid file — the placement
        bounds check must still reject it."""
        import json
        import struct
        import zlib

        _, interpretation, _ = capture
        data = serialize_container(interpretation)
        header_length, _ = struct.unpack_from(">II", data, 4)
        header = json.loads(data[12:12 + header_length].decode())
        header["sequences"][0]["entries"][0][4] = 10**9  # blob offset
        new_header = json.dumps(header, separators=(",", ":")).encode()
        tampered = (
            data[:4]
            + struct.pack(">II", len(new_header), zlib.crc32(new_header))
            + new_header + data[12 + header_length:]
        )
        with pytest.raises(ContainerFormatError, match="overflows"):
            deserialize_container(tampered)

    def test_blob_truncation_caught(self, capture):
        _, interpretation, _ = capture
        data = serialize_container(interpretation)
        with pytest.raises(ContainerFormatError, match="mismatch"):
            deserialize_container(data[:-1])


class TestRateStress:
    def test_double_speed_doubles_required_bandwidth(self, capture):
        from repro.engine.player import CostModel, Player

        _, interpretation, _ = capture
        # Bandwidth that comfortably sustains 1x.
        normal = Player(CostModel(bandwidth=400_000), rate=1)
        assert normal.play(interpretation).underruns == 0
        # The same bandwidth at 2x starves.
        fast = Player(CostModel(bandwidth=400_000), rate=2,
                      prefetch_depth=1)
        assert fast.play(interpretation).underruns > 0
        # Doubling bandwidth restores 2x.
        fast_fat = Player(CostModel(bandwidth=900_000), rate=2)
        assert fast_fat.play(interpretation).underruns == 0

    def test_slow_motion_relaxes(self, capture):
        from repro.engine.player import CostModel, Player
        from repro.core.rational import Rational

        _, interpretation, _ = capture
        starved = Player(CostModel(bandwidth=150_000), rate=1,
                         prefetch_depth=1)
        slow = Player(CostModel(bandwidth=150_000), rate=Rational(1, 4),
                      prefetch_depth=1)
        assert slow.play(interpretation).underruns <= \
            starved.play(interpretation).underruns

    def test_invalid_rate(self):
        from repro.engine.player import Player
        from repro.errors import EngineError

        with pytest.raises(EngineError):
            Player(rate=0)
        with pytest.raises(EngineError):
            Player(rate=-1)
