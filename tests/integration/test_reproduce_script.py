"""Tests for the one-command reproduction script."""

import pytest

from repro.bench.reproduce import (
    figure1_table,
    figure2_tables,
    figure4_tables,
    main,
    table1_table,
)


class TestReproduceScript:
    def test_main_fast(self, capsys):
        assert main(["--fast"]) == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "Figure 2" in output
        assert "Table 1" in output
        assert "Figure 4" in output

    def test_figure1_rows(self):
        text = figure1_table()
        for row in ("homogeneous", "event-based", "uniform"):
            assert row in text

    def test_figure2_numbers(self):
        text = figure2_tables(fast=True)
        assert "21.97 MiB/s" in text
        assert "172.27 KiB/s" in text
        assert "1764" in text

    def test_table1_complete(self):
        text = table1_table()
        for name in ("color-separation", "audio-normalization", "video-edit",
                     "video-transition", "midi-synthesis"):
            assert name in text

    def test_figure4_structure(self):
        text = figure4_tables(fast=True)
        assert "video3 = video-edit(videoc1, videoF, videoc2)" in text
        assert "derivation chain" in text
