"""Smoke tests: every example script runs to completion.

Examples are part of the public surface; they must keep working. Each is
imported as a module and its ``main()`` executed with output captured.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = [
    "quickstart",
    "movie_production",
    "multilingual_query",
    "midi_studio",
    "animation_pipeline",
    "database_tour",
    "observability_tour",
    "crash_recovery",
    "fleet_failover",
]


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    output = capsys.readouterr().out
    assert len(output) > 100  # produced a real report


def test_quickstart_mentions_placement_table(capsys):
    load_example("quickstart").main()
    output = capsys.readouterr().out
    assert "placement table" in output
    assert "playback" in output


def test_movie_production_shows_figure4_structure(capsys):
    load_example("movie_production").main()
    output = capsys.readouterr().out
    assert "video3 = video-edit(videoc1, videoF, videoc2)" in output
    assert "audio2" in output


def test_multilingual_query_selects_french(capsys):
    load_example("multilingual_query").main()
    output = capsys.readouterr().out
    assert "feature-audio-fr" in output
    assert "fidelity" in output


def test_animation_pipeline_shows_out_of_order(capsys):
    load_example("animation_pipeline").main()
    output = capsys.readouterr().out
    assert "storage pos" in output
    assert "decoded 16 frames" in output


def test_observability_tour_reports_health_and_trace(capsys):
    load_example("observability_tour").main()
    output = capsys.readouterr().out
    assert "status: critical" in output
    assert "slo startup-latency" in output
    assert "pipeline stage profile" in output
    assert "trace_event JSON" in output
    assert "reproduces trace and event log: True" in output
