"""Figure 4 with the paper's exact storage layout.

§4.3: "The two audio sequences contain music and narration and are
intended to be presented simultaneously. For this reason they are
interleaved in a single BLOB. Suppose the two video sequences result
from a single capture operation ... and so also reside in a single
BLOB."

This test builds that storage state for real — two BLOBs, four
sequences — and runs the whole production (cuts, fade, concat,
composition) *through the interpretations*: derivation expansion reads
encoded frames from the BLOB and decodes them on the way.
"""

import numpy as np
import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.codecs.pcm import PcmCodec
from repro.core.composition import MultimediaObject
from repro.core.media_object import InterpretedMediaObject
from repro.core.rational import Rational
from repro.edit import MediaEditor
from repro.engine.recorder import Recorder
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object


FPS = 25
CUT_TICKS = 20   # scaled stand-in for the paper's 1:00 sections
FADE_TICKS = 5   # scaled stand-in for the 10 s fade


@pytest.fixture(scope="module")
def storage():
    """Two BLOBs exactly as §4.3 describes."""
    codec = JpegLikeCodec(quality=45)
    pcm = PcmCodec(16, 1)

    # One capture operation -> one video BLOB with both shots.
    shot1 = video_object(
        frames.scene(48, 32, CUT_TICKS + FADE_TICKS, "orbit"), "video1",
    )
    shot2 = video_object(
        frames.scene(48, 32, CUT_TICKS + FADE_TICKS, "cut"), "video2",
    )
    video_blob = MemoryBlob()
    video_interpretation = Recorder(video_blob).record(
        [shot1, shot2],
        encoders={"video1": codec.encode, "video2": codec.encode},
        interpretation_name="video-tape",
    )

    # Music and narration interleaved in a single audio BLOB.
    total_seconds = (2 * CUT_TICKS + FADE_TICKS) / FPS
    music = audio_object(
        signals.sine(220, total_seconds, 8000) * 0.4, "audio1",
        sample_rate=8000, block_samples=320,
    )
    narration = audio_object(
        signals.chirp(200, 500, total_seconds - CUT_TICKS / FPS, 8000) * 0.4,
        "audio2", sample_rate=8000, block_samples=320,
    )
    audio_blob = MemoryBlob()
    audio_interpretation = Recorder(audio_blob).record(
        [music, narration],
        encoders={"audio1": pcm.encode, "audio2": pcm.encode},
        interpretation_name="audio-tape",
    )
    return video_interpretation, audio_interpretation, codec, pcm


@pytest.fixture(scope="module")
def production(storage):
    video_interpretation, audio_interpretation, codec, pcm = storage

    def decode_frame(raw, entry):
        return codec.decode(raw)

    def decode_audio(raw, entry):
        return pcm.decode(raw)

    video1 = InterpretedMediaObject(video_interpretation, "video1",
                                    decode=decode_frame)
    video2 = InterpretedMediaObject(video_interpretation, "video2",
                                    decode=decode_frame)
    audio1 = InterpretedMediaObject(audio_interpretation, "audio1",
                                    decode=decode_audio)
    audio2 = InterpretedMediaObject(audio_interpretation, "audio2",
                                    decode=decode_audio)

    editor = MediaEditor()
    cut1 = editor.cut(video1, 0, CUT_TICKS, name="videoc1")
    cut2 = editor.cut(video2, FADE_TICKS, FADE_TICKS + CUT_TICKS,
                      name="videoc2")
    fade = editor.transition(video1, video2, FADE_TICKS, kind="fade",
                             a_start=CUT_TICKS, b_start=0, name="videoF")
    video3 = editor.concat(cut1, fade, cut2, name="video3")

    multimedia = MultimediaObject("m")
    multimedia.add_temporal(video3, at=0, label="video3")
    multimedia.add_temporal(audio1, at=0, label="audio1")
    multimedia.add_temporal(audio2, at=Rational(CUT_TICKS, FPS),
                            label="audio2")
    return editor, video3, multimedia


class TestStorageState:
    def test_both_videos_one_blob(self, storage):
        video_interpretation, _, _, _ = storage
        assert video_interpretation.names() == ["video1", "video2"]

    def test_both_audios_one_blob_interleaved(self, storage):
        _, audio_interpretation, _, _ = storage
        assert audio_interpretation.names() == ["audio1", "audio2"]
        offsets1 = [e.blob_offset for e in audio_interpretation.sequence("audio1")]
        offsets2 = [e.blob_offset for e in audio_interpretation.sequence("audio2")]
        # Interleaved: each stream's elements are not contiguous.
        assert offsets2[0] < offsets1[-1]


class TestProductionOverBlobs:
    def test_expansion_decodes_from_blob(self, production):
        _, video3, _ = production
        stream = video3.expand().stream()
        assert len(stream) == 2 * CUT_TICKS + FADE_TICKS
        frame = stream.tuples[0].element.payload
        assert isinstance(frame, np.ndarray)
        assert frame.shape == (32, 48, 3)

    def test_fade_blends_both_sources(self, production):
        _, video3, _ = production
        stream = video3.expand().stream()
        mid_fade = stream.tuples[CUT_TICKS + FADE_TICKS // 2].element.payload
        before = stream.tuples[CUT_TICKS - 1].element.payload
        after = stream.tuples[CUT_TICKS + FADE_TICKS].element.payload
        assert not np.array_equal(mid_fade, before)
        assert not np.array_equal(mid_fade, after)

    def test_timeline_matches_figure(self, production):
        _, _, multimedia = production
        timeline = dict(multimedia.timeline())
        assert timeline["audio2"].start == Rational(CUT_TICKS, FPS)
        assert multimedia.duration() == Rational(2 * CUT_TICKS + FADE_TICKS,
                                                 FPS)

    def test_provenance_reaches_interpreted_objects(self, production):
        editor, video3, _ = production
        roots = {o.name for o in editor.provenance.roots()}
        assert roots == {"video1", "video2"}
        assert all(
            isinstance(o, InterpretedMediaObject)
            for o in editor.provenance.roots()
        )
