"""Tests for the shared bench utilities (reporting + workloads)."""

import pytest

from repro.bench.reporting import format_bytes, format_rate, table_text
from repro.bench.workloads import (
    figure1_streams,
    figure2_capture,
    figure2_paper_arithmetic,
    figure4_production,
    multilingual_movie,
)
from repro.core.rational import Rational


class TestReporting:
    def test_format_bytes_units(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert format_bytes(3 * 2**20) == "3.00 MiB"
        assert format_bytes(5 * 2**30) == "5.00 GiB"

    def test_format_rate(self):
        assert format_rate(1024) == "1.00 KiB/s"

    def test_table_alignment(self):
        text = table_text(("a", "long header"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        # All rows share the same width.
        assert len(set(len(line) for line in lines)) == 1

    def test_table_title(self):
        text = table_text(("x",), [(1,)], title="caption")
        assert text.splitlines()[0] == "caption"


class TestWorkloadDeterminism:
    def test_figure1_deterministic(self):
        first = figure1_streams()
        second = figure1_streams()
        for name in first:
            assert first[name].category_label() == second[name].category_label()
            assert len(first[name]) == len(second[name])

    def test_figure2_capture_deterministic(self):
        a = figure2_capture(width=48, height=32, seconds=0.2)
        b = figure2_capture(width=48, height=32, seconds=0.2)
        assert a.measured_video_bpp == b.measured_video_bpp
        assert a.interpretation.blob.read_all() == \
            b.interpretation.blob.read_all()

    def test_figure2_arithmetic_constants(self):
        arithmetic = figure2_paper_arithmetic()
        assert arithmetic.width == 640
        assert arithmetic.duration_seconds == 600


class TestFigure4Scaling:
    @pytest.mark.parametrize("scale", [0.05, 0.1])
    def test_proportions_invariant_under_scale(self, scale):
        production = figure4_production(width=32, height=24, scale=scale)
        timeline = dict(production.multimedia.timeline())
        total = production.multimedia.duration()
        # audio2 always enters at 60/130 of the presentation.
        ratio = timeline["audio2"].start / total
        assert ratio == Rational(60, 130)

    def test_video3_matches_timeline(self):
        production = figure4_production(width=32, height=24, scale=0.05)
        stream = production.video3.expand().stream()
        declared = production.video3.descriptor["duration"]
        assert stream.duration_seconds() == declared


class TestMultilingualMovie:
    def test_languages_cataloged(self):
        db, movie = multilingual_movie(seconds=0.2)
        languages = {
            db.attributes_of(o.name).get("language")
            for o in db.objects(role="soundtrack")
        }
        assert languages == {"en", "fr", "de"}

    def test_movie_components(self):
        _, movie = multilingual_movie(seconds=0.2)
        labels = {r.label for r in movie}
        assert labels == {"picture", "audio-en", "audio-fr", "audio-de"}
