"""Disk-backed storage integration and full-scale placement tables."""

import pytest

from repro.blob.blob import PagedBlob
from repro.blob.pages import FilePager, PageStore
from repro.blob.store import BlobStore
from repro.codecs.pcm import PcmCodec
from repro.core.interpretation import Interpretation, PlacementEntry
from repro.core.media_types import media_type_registry
from repro.core.rational import Rational
from repro.core.time_system import CD_AUDIO_TIME
from repro.engine.player import CostModel, Player
from repro.engine.recorder import Recorder
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object
from repro.storage.container import read_container, write_container
from repro.storage.indexes import index_for_sequence


class TestDiskBackedCapture:
    def test_capture_to_file_pager_and_back(self, tmp_path):
        """Capture into a file-backed paged BLOB, survive a reopen."""
        store_path = tmp_path / "store.dat"
        pager = FilePager(store_path, page_size=1024)
        blob = PagedBlob(PageStore(pager))

        video = video_object(frames.scene(24, 16, 5, "pan"), "v")
        interpretation = Recorder(blob).record([video])
        expected = interpretation.read_element("v", 3)
        pager.close()

        # Reopen the pager; the same page chain reads the same bytes.
        with FilePager(store_path, page_size=1024) as reopened:
            fresh = PagedBlob(PageStore(reopened), pages=blob.pages,
                              length=len(blob))
            recovered = Interpretation(fresh, "reopened")
            sequence = interpretation.sequence("v")
            recovered.add("v", sequence.media_type,
                          sequence.media_descriptor, sequence.entries)
            assert recovered.read_element("v", 3) == expected

    def test_container_on_disk_plays(self, tmp_path):
        video = video_object(frames.scene(24, 16, 8, "orbit"), "v")
        audio = audio_object(signals.sine(440, 0.32, 8000), "a",
                             sample_rate=8000, block_samples=320)
        store = BlobStore.file_backed(tmp_path / "media.dat")
        blob = store.create("tape1")
        interpretation = Recorder(blob).record(
            [video, audio], encoders={"a": PcmCodec(16, 1).encode},
        )
        path = tmp_path / "movie.rmf"
        write_container(interpretation, path)

        restored = read_container(path)
        report = Player(CostModel(bandwidth=10_000_000)).play(restored)
        assert report.element_count == 16
        assert report.underruns == 0


class TestSectorPaddedRecording:
    def test_recorder_honors_sector_size(self):
        from repro.blob.blob import MemoryBlob

        video = video_object(frames.scene(24, 16, 4, "pan"), "v")
        recorder = Recorder(MemoryBlob(), sector_size=512)
        interpretation = recorder.record([video])
        for entry in interpretation.sequence("v"):
            assert entry.blob_offset % 512 == 0
        # Padding bytes exist but are never referenced.
        assert interpretation.coverage() < 1.0
        interpretation.validate()


class TestFullScalePlacement:
    """The paper's actual 10-minute geometry, placement tables only.

    15,000 video frames + 15,000 audio blocks = 30,000 rows, no real
    encoding — exactly what a database catalog holds for the Figure 2
    movie. Lookup must stay fast at this size.
    """

    @pytest.fixture(scope="class")
    def movie(self):
        video_type = media_type_registry.get("pal-video")
        audio_type = media_type_registry.get("block-audio")
        frame_count = 15_000  # 10 min at 25 fps
        video_rows = []
        audio_rows = []
        offset = 0
        for i in range(frame_count):
            video_size = 18_000 + (i * 197) % 6_000  # ~0.5 bpp, bursty
            video_rows.append(PlacementEntry(i, i, 1, video_size, offset))
            offset += video_size
            audio_rows.append(PlacementEntry(
                i, i * 1764, 1764, 7056, offset,
            ))
            offset += 7056
        from repro.blob.blob import Blob

        class PhantomBlob(Blob):
            """Length-only blob: placement validation without 400 MB."""

            def __init__(self, length):
                self._length = length

            def __len__(self):
                return self._length

            def read(self, offset, size):
                self._check_span(offset, size)
                return b"\x00" * size

            def append(self, data):
                raise NotImplementedError

        interpretation = Interpretation(PhantomBlob(offset), "figure2-full")
        video_descriptor = video_type.make_media_descriptor(
            frame_rate=25, frame_width=640, frame_height=480,
            frame_depth=24, color_model="RGB", encoding="YUV 8:2:2, JPEG",
            quality_factor="VHS quality",
            duration=Rational(600),
        )
        audio_descriptor = audio_type.make_media_descriptor(
            sample_rate=44100, sample_size=16, channels=2, encoding="PCM",
            quality_factor="CD quality", duration=Rational(600),
        )
        interpretation.add("video1", video_type, video_descriptor, video_rows)
        interpretation.add("audio1", audio_type, audio_descriptor, audio_rows,
                           time_system=CD_AUDIO_TIME)
        return interpretation

    def test_scale(self, movie):
        movie.validate()
        assert len(movie.sequence("video1")) == 15_000
        assert movie.coverage() == 1.0

    def test_blob_size_matches_paper(self, movie):
        # ~0.5 MB/s video + 172 KiB/s audio over 600 s => ~400 MB.
        total = len(movie.blob)
        assert 300 * 2**20 < total < 500 * 2**20

    def test_lookup_at_scale(self, movie):
        video = movie.sequence("video1")
        # The element at 5 minutes.
        entries = video.entries_at_tick(7_500)
        assert entries[0].element_number == 7_500
        audio = movie.sequence("audio1")
        assert audio.entries_at_tick(7_500 * 1764)[0].element_number == 7_500

    def test_index_at_scale(self, movie):
        index = index_for_sequence(movie.sequence("video1"))
        assert index.sample_count == 15_000
        offset, size = index.placement_at_time(7_500)
        expected = movie.sequence("video1").entry(7_500)
        assert (offset, size) == (expected.blob_offset, expected.size)

    def test_paper_data_rates_recoverable(self, movie):
        video = movie.sequence("video1")
        rate = video.total_size() / 600
        assert 0.4 * 2**20 < rate < 0.6 * 2**20  # "roughly 0.5 Mbyte/sec"
        audio = movie.sequence("audio1")
        assert audio.total_size() / 600 == 7056 * 25  # 176,400 B/s exact
