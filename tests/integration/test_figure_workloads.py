"""Integration tests: the paper's figure workloads end-to-end."""

import pytest

from repro.bench.workloads import (
    figure1_streams,
    figure2_capture,
    figure2_paper_arithmetic,
    figure4_production,
)
from repro.core.intervals import IntervalRelation
from repro.core.rational import Rational
from repro.core.streams import StreamCategory


class TestFigure1:
    """Every category row of Figure 1 is realizable and classified."""

    @pytest.fixture(scope="class")
    def streams(self):
        return figure1_streams()

    EXPECTED = {
        "homogeneous": StreamCategory.HOMOGENEOUS,
        "heterogeneous": StreamCategory.HETEROGENEOUS,
        "continuous": StreamCategory.CONTINUOUS,
        "non-continuous": StreamCategory.NON_CONTINUOUS,
        "event-based": StreamCategory.EVENT_BASED,
        "constant frequency": StreamCategory.CONSTANT_FREQUENCY,
        "constant data rate": StreamCategory.CONSTANT_DATA_RATE,
        "uniform": StreamCategory.UNIFORM,
    }

    @pytest.mark.parametrize("label", sorted(EXPECTED))
    def test_category_realized(self, streams, label):
        assert self.EXPECTED[label] in streams[label].categories()

    def test_event_based_is_non_continuous(self, streams):
        """§3.3: 'a special case of non-continuous streams'."""
        categories = streams["event-based"].categories()
        assert StreamCategory.NON_CONTINUOUS in categories

    def test_uniform_subsumes_cbr(self, streams):
        categories = streams["uniform"].categories()
        assert StreamCategory.CONSTANT_DATA_RATE in categories
        assert StreamCategory.CONSTANT_FREQUENCY in categories


class TestFigure2Arithmetic:
    """§4.1's numbers reproduced exactly."""

    @pytest.fixture(scope="class")
    def arithmetic(self):
        return figure2_paper_arithmetic()

    def test_raw_rate_22_mb_per_s(self, arithmetic):
        assert arithmetic.raw_video_rate / 2 ** 20 == pytest.approx(21.97, abs=0.01)

    def test_yuv_rate_halved(self, arithmetic):
        assert arithmetic.yuv_video_rate == arithmetic.raw_video_rate / 2

    def test_compressed_rate_half_mb(self, arithmetic):
        assert arithmetic.compressed_video_rate / 2 ** 20 == pytest.approx(
            0.458, abs=0.01,  # "roughly 0.5 Mbyte/sec"
        )

    def test_audio_rate_172_kb(self, arithmetic):
        assert arithmetic.audio_data_rate / 1024 == pytest.approx(172.3, abs=0.1)

    def test_1764_sample_pairs_per_frame(self, arithmetic):
        assert arithmetic.samples_per_frame == 1764


class TestFigure2Capture:
    """The pipeline run for real at reduced scale."""

    @pytest.fixture(scope="class")
    def capture(self):
        return figure2_capture(width=96, height=64, seconds=0.6)

    def test_interleaved_blob_complete(self, capture):
        interpretation = capture.interpretation
        interpretation.validate()
        assert interpretation.coverage() == 1.0
        assert interpretation.names() == ["audio1", "video1"]

    def test_table_shapes_match_paper(self, capture):
        video = capture.interpretation.sequence("video1")
        audio = capture.interpretation.sequence("audio1")
        assert video.table_columns() == (
            "elementNumber", "elementSize", "blobPlacement",
        )
        assert audio.table_columns() == ("elementNumber", "blobPlacement")

    def test_video_compressed_well_below_raw(self, capture):
        raw_rate = capture.width * capture.height * 3 * 25
        assert capture.measured_video_rate < raw_rate / 5

    def test_audio_rate_is_pcm_rate(self, capture):
        assert capture.measured_audio_rate == pytest.approx(44100 * 4, rel=0.01)

    def test_frames_decodable(self, capture):
        codec = capture.video_codec
        raw = capture.interpretation.read_element("video1", 0)
        frame = codec.decode(raw)
        assert frame.shape == (64, 96, 3)


class TestFigure4:
    """The composed multimedia object of Figure 4."""

    @pytest.fixture(scope="class")
    def production(self):
        return figure4_production(width=48, height=32, scale=0.05)

    def test_timeline_proportions(self, production):
        """0:00 / 1:00 / 1:10 / 2:10 scaled by 0.05 -> 0 / 3 / 3.5 / 6.5."""
        timeline = dict(production.multimedia.timeline())
        assert timeline["video3"].start == 0
        assert timeline["audio1"].start == 0
        assert timeline["audio2"].start == 3
        assert production.multimedia.duration() == Rational(13, 2)

    def test_video3_is_cut_fade_cut(self, production):
        steps = production.editor.steps(production.video3)
        assert steps[-1].startswith("video3 = video-edit(")
        assert any("videoF = video-transition" in s for s in steps)

    def test_expanded_length(self, production):
        stream = production.video3.expand().stream()
        # 75 + 12 + 75 frames within rounding of scale.
        assert len(stream) == 75 + 12 + 75
        assert stream.is_continuous()

    def test_narration_during_music(self, production):
        relation = production.multimedia.relation("audio2", "audio1")
        assert relation in (IntervalRelation.FINISHES, IntervalRelation.DURING)

    def test_provenance_roots_are_raw_material(self, production):
        roots = {o.name for o in production.editor.provenance.roots()}
        assert roots == {"video1", "video2"}

    def test_derivation_objects_tiny(self, production):
        total = production.editor.total_derivation_bytes(production.video3)
        expanded = production.video3.expand().stream().total_size()
        assert expanded / total > 1000
