"""Corruption round-trips: a damaged container parses or raises, only.

Satellite of the durability PR: truncate a serialized container at
every byte boundary and flip bits across every region (magic, length
field, CRC fields, header JSON, BLOB). Each mutation must yield either
a typed :class:`~repro.errors.ContainerFormatError` (or another
taxonomy error) or a correct parse — never a crash outside the
taxonomy and never silently wrong data. The RMF2 format checksums every
byte (header CRC + BLOB CRC), which is what makes "never silently
wrong" checkable at all.
"""

import struct
import zlib

import pytest

from repro.blob.blob import MemoryBlob
from repro.core.interpretation import Interpretation, PlacementEntry
from repro.core.media_types import media_type_registry
from repro.errors import ContainerFormatError, MediaModelError
from repro.storage.container import (
    deserialize_container,
    serialize_container,
)


def tiny_interpretation():
    """A deliberately small container so exhaustive sweeps stay fast."""
    video_type = media_type_registry.get("pal-video")
    descriptor = video_type.make_media_descriptor(
        frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
        color_model="RGB", encoding="raw",
    )
    blob = MemoryBlob()
    entries = []
    for index in range(3):
        payload = bytes([index * 31 + 5]) * (12 + index)
        offset = blob.append(payload)
        entries.append(PlacementEntry(index, index, 1, len(payload), offset))
    interpretation = Interpretation(blob, "tiny")
    interpretation.add("video", video_type, descriptor, entries)
    return interpretation


@pytest.fixture(scope="module")
def container_bytes():
    return serialize_container(tiny_interpretation())


def parse_or_typed_error(data):
    """Parse ``data``; the only acceptable failure is a taxonomy error.

    Returns the interpretation on success, None on a typed error. Any
    other exception propagates and fails the test."""
    try:
        return deserialize_container(data)
    except MediaModelError:
        return None


class TestTruncation:
    def test_every_byte_boundary(self, container_bytes):
        """No prefix of a valid container crashes the parser or parses
        to something other than the original."""
        for end in range(len(container_bytes)):
            result = parse_or_typed_error(container_bytes[:end])
            # A strict prefix can never checksum-validate end to end.
            assert result is None, f"truncation at {end} parsed"

    def test_full_container_parses(self, container_bytes):
        restored = deserialize_container(container_bytes)
        assert restored.names() == ["video"]
        baseline = tiny_interpretation()
        for index in range(3):
            assert restored.read_element("video", index) == \
                baseline.read_element("video", index)

    def test_one_extra_byte_detected(self, container_bytes):
        assert parse_or_typed_error(container_bytes + b"\x00") is None


class TestBitFlips:
    def test_single_bit_flip_in_every_byte(self, container_bytes):
        """Flip one bit in each byte of the container: every flip is
        detected (checksums cover every region), never misparsed."""
        for index in range(len(container_bytes)):
            mutated = bytearray(container_bytes)
            mutated[index] ^= 1 << (index % 8)
            result = parse_or_typed_error(bytes(mutated))
            assert result is None, f"bit flip at byte {index} undetected"

    def test_magic_damage_is_format_error(self, container_bytes):
        mutated = b"XXXX" + container_bytes[4:]
        with pytest.raises(ContainerFormatError, match="magic"):
            deserialize_container(mutated)

    def test_header_crc_catches_header_damage(self, container_bytes):
        header_length, _ = struct.unpack_from(">II", container_bytes, 4)
        mutated = bytearray(container_bytes)
        mutated[12 + header_length // 2] ^= 0x01
        with pytest.raises(ContainerFormatError, match="checksum"):
            deserialize_container(bytes(mutated))

    def test_blob_crc_catches_blob_damage(self, container_bytes):
        mutated = bytearray(container_bytes)
        mutated[-1] ^= 0x80
        with pytest.raises(ContainerFormatError, match="checksum"):
            deserialize_container(bytes(mutated))


class TestHostileHeaders:
    """Attacker-style headers with *valid* CRCs: the structural checks
    behind the checksum must still hold the line."""

    def rebuild(self, container_bytes, mutate):
        import json

        header_length, _ = struct.unpack_from(">II", container_bytes, 4)
        header = json.loads(container_bytes[12:12 + header_length].decode())
        mutate(header)
        raw = json.dumps(header, separators=(",", ":")).encode()
        return (
            container_bytes[:4]
            + struct.pack(">II", len(raw), zlib.crc32(raw))
            + raw + container_bytes[12 + header_length:]
        )

    def test_negative_offset_rejected(self, container_bytes):
        def mutate(header):
            header["sequences"][0]["entries"][0][4] = -1

        with pytest.raises(ContainerFormatError):
            deserialize_container(self.rebuild(container_bytes, mutate))

    def test_overflowing_placement_rejected(self, container_bytes):
        def mutate(header):
            header["sequences"][0]["entries"][0][3] = 2**40

        with pytest.raises(ContainerFormatError, match="overflows"):
            deserialize_container(self.rebuild(container_bytes, mutate))

    def test_wrong_blob_length_rejected(self, container_bytes):
        def mutate(header):
            header["blob_length"] += 1

        with pytest.raises(ContainerFormatError, match="mismatch"):
            deserialize_container(self.rebuild(container_bytes, mutate))

    def test_non_dict_header_rejected(self, container_bytes):
        raw = b"[1,2]"
        data = (container_bytes[:4]
                + struct.pack(">II", len(raw), zlib.crc32(raw)) + raw)
        with pytest.raises(ContainerFormatError):
            deserialize_container(data)

    def test_boolean_fields_rejected(self, container_bytes):
        """Bools are ints in Python; the decoder must not accept
        ``true`` where a placement size belongs."""

        def mutate(header):
            header["sequences"][0]["entries"][0][3] = True

        with pytest.raises(ContainerFormatError):
            deserialize_container(self.rebuild(container_bytes, mutate))

    def test_sequences_not_a_list_rejected(self, container_bytes):
        def mutate(header):
            header["sequences"] = {"video": []}

        with pytest.raises(ContainerFormatError):
            deserialize_container(self.rebuild(container_bytes, mutate))
