"""Tests for building MediaIndex from interpreted sequences."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.pcm import PcmCodec
from repro.engine.recorder import Recorder
from repro.errors import StorageError
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object
from repro.storage.indexes import index_for_sequence


@pytest.fixture
def recorded():
    video = video_object(frames.scene(24, 16, 12, "orbit"), "v")
    audio = audio_object(signals.sine(440, 0.48, 8000), "a",
                         sample_rate=8000, block_samples=320)
    return Recorder(MemoryBlob()).record(
        [video, audio], encoders={"a": PcmCodec(16, 1).encode},
    )


class TestIndexForSequence:
    def test_placement_matches_table(self, recorded):
        sequence = recorded.sequence("v")
        index = index_for_sequence(sequence)
        for entry in sequence:
            offset, size = index.placement(entry.element_number)
            assert (offset, size) == (entry.blob_offset, entry.size)

    def test_time_lookup_matches_table(self, recorded):
        sequence = recorded.sequence("v")
        index = index_for_sequence(sequence)
        for tick in range(12):
            expected = sequence.entries_at_tick(tick)[0]
            assert index.sample_at_time(tick) == expected.element_number

    def test_interleaving_yields_one_chunk_per_element(self, recorded):
        # Video elements are separated by audio blocks in the BLOB, so
        # every element is its own chunk.
        index = index_for_sequence(recorded.sequence("v"))
        assert index.chunk_offsets.chunk_count == 12

    def test_sequential_layout_collapses_chunks(self):
        video = video_object(frames.scene(24, 16, 6, "pan"), "solo")
        interpretation = Recorder(MemoryBlob()).record([video])
        index = index_for_sequence(interpretation.sequence("solo"))
        # Contiguous placement: one chunk covers everything; the stts is
        # one run (constant duration); stsz is constant (raw frames).
        assert index.chunk_offsets.chunk_count == 1
        assert index.time_to_sample.entry_count() == 1
        assert index.sample_sizes.is_constant

    def test_audio_track_indexed(self, recorded):
        sequence = recorded.sequence("a")
        index = index_for_sequence(sequence)
        assert index.sample_count == len(sequence)
        assert index.sample_at_time(320) == 1

    def test_non_continuous_rejected(self):
        from repro.core.interpretation import (
            InterpretedSequence, PlacementEntry,
        )
        from repro.core.media_types import media_type_registry

        video_type = media_type_registry.get("pal-video")
        descriptor = video_type.make_media_descriptor(
            frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
            color_model="RGB",
        )
        gapped = InterpretedSequence("g", video_type, descriptor, [
            PlacementEntry(0, 0, 1, 10, 0),
            PlacementEntry(1, 5, 1, 10, 10),
        ])
        with pytest.raises(StorageError, match="continuous"):
            index_for_sequence(gapped)

    def test_empty_rejected(self):
        from repro.core.interpretation import InterpretedSequence
        from repro.core.media_types import media_type_registry

        video_type = media_type_registry.get("pal-video")
        descriptor = video_type.make_media_descriptor(
            frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
            color_model="RGB",
        )
        empty = InterpretedSequence("e", video_type, descriptor, [])
        with pytest.raises(StorageError, match="empty"):
            index_for_sequence(empty)
