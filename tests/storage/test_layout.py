"""Tests for physical layout: interleaving, padding, read costs."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.core.time_system import CD_AUDIO_TIME, PAL_TIME
from repro.errors import StorageError
from repro.storage.layout import (
    CD_SECTOR_SIZE,
    StorageWriter,
    TrackSpec,
    playback_schedule,
    read_cost_model,
    write_interleaved,
    write_sequential,
)


@pytest.fixture
def tracks():
    """A video track and an audio track covering the same second."""
    video = TrackSpec("video", PAL_TIME)
    for i in range(5):
        video.add(bytes([0x10 + i]) * 100, i, 1)
    audio = TrackSpec("audio", CD_AUDIO_TIME)
    for i in range(5):
        audio.add(bytes([0x80 + i]) * 50, i * 1764, 1764)
    return [video, audio]


class TestTrackSpec:
    def test_start_seconds(self, tracks):
        video, audio = tracks
        assert video.start_seconds(1) == audio.start_seconds(1)

    def test_total_bytes(self, tracks):
        assert tracks[0].total_bytes() == 500


class TestStorageWriter:
    def test_no_padding_without_sectors(self):
        writer = StorageWriter(MemoryBlob())
        writer.write_element(b"abc")
        writer.write_element(b"defg")
        assert writer.padding_bytes == 0
        assert len(writer.blob) == 7

    def test_sector_alignment(self):
        blob = MemoryBlob()
        writer = StorageWriter(blob, sector_size=16)
        writer.write_element(b"abc")       # offset 0
        offset = writer.write_element(b"x")  # padded to 16
        assert offset == 16
        assert writer.padding_bytes == 13

    def test_no_pad_on_exact_boundary(self):
        blob = MemoryBlob()
        writer = StorageWriter(blob, sector_size=4)
        writer.write_element(b"abcd")
        offset = writer.write_element(b"e")
        assert offset == 4
        assert writer.padding_bytes == 0

    def test_cd_sector_constant(self):
        assert CD_SECTOR_SIZE == 2324

    def test_bad_sector_size(self):
        with pytest.raises(StorageError):
            StorageWriter(MemoryBlob(), sector_size=0)


class TestInterleaved:
    def test_figure2_order(self, tracks):
        """Audio elements follow the associated video frame."""
        blob = MemoryBlob()
        placements = write_interleaved(blob, tracks)
        video_offsets = [e.blob_offset for e in placements["video"]]
        audio_offsets = [e.blob_offset for e in placements["audio"]]
        # Pairwise: video frame i sits just before audio block i.
        for v, a in zip(video_offsets, audio_offsets):
            assert a == v + 100

    def test_placements_in_element_order(self, tracks):
        placements = write_interleaved(MemoryBlob(), tracks)
        numbers = [e.element_number for e in placements["audio"]]
        assert numbers == sorted(numbers)

    def test_blob_holds_everything(self, tracks):
        blob = MemoryBlob()
        write_interleaved(blob, tracks)
        assert len(blob) == 5 * 150

    def test_data_integrity(self, tracks):
        blob = MemoryBlob()
        placements = write_interleaved(blob, tracks)
        entry = placements["audio"][3]
        assert blob.read(entry.blob_offset, entry.size) == bytes([0x83]) * 50

    def test_padding(self, tracks):
        blob = MemoryBlob()
        placements = write_interleaved(blob, tracks, sector_size=256)
        for rows in placements.values():
            for entry in rows:
                assert entry.blob_offset % 256 == 0

    def test_duplicate_names_rejected(self, tracks):
        dup = [tracks[0], TrackSpec("video", PAL_TIME)]
        with pytest.raises(StorageError):
            write_interleaved(MemoryBlob(), dup)

    def test_empty_track_list_rejected(self):
        with pytest.raises(StorageError):
            write_interleaved(MemoryBlob(), [])


class TestSequential:
    def test_tracks_contiguous(self, tracks):
        placements = write_sequential(MemoryBlob(), tracks)
        video_offsets = [e.blob_offset for e in placements["video"]]
        assert video_offsets == [0, 100, 200, 300, 400]
        audio_offsets = [e.blob_offset for e in placements["audio"]]
        assert audio_offsets == [500, 550, 600, 650, 700]


class TestReadCost:
    def test_interleaved_cheaper_for_synchronized_playback(self, tracks):
        """The paper's rationale for interleaving, quantified."""
        schedule = playback_schedule(tracks)
        interleaved = write_interleaved(MemoryBlob(), tracks)
        sequential = write_sequential(MemoryBlob(), tracks)
        cost_interleaved = read_cost_model(interleaved, schedule)
        cost_sequential = read_cost_model(sequential, schedule)
        assert cost_interleaved < cost_sequential

    def test_interleaved_is_seek_free(self, tracks):
        schedule = playback_schedule(tracks)
        placements = write_interleaved(MemoryBlob(), tracks)
        bytes_only = sum(e.size for rows in placements.values() for e in rows)
        assert read_cost_model(placements, schedule) == bytes_only

    def test_unknown_schedule_entry(self, tracks):
        placements = write_interleaved(MemoryBlob(), tracks)
        with pytest.raises(StorageError):
            read_cost_model(placements, [("video", 99)])

    def test_schedule_orders_by_time(self, tracks):
        schedule = playback_schedule(tracks)
        assert schedule[0] == ("video", 0)
        assert schedule[1] == ("audio", 0)
        assert len(schedule) == 10
