"""Tests for the RMF container format."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.core.interpretation import Interpretation, PlacementEntry
from repro.core.media_types import media_type_registry
from repro.core.rational import Rational
from repro.core.time_system import CD_AUDIO_TIME
from repro.errors import ContainerFormatError
from repro.storage.container import (
    deserialize_container,
    read_container,
    serialize_container,
    write_container,
)


@pytest.fixture
def interpretation():
    blob = MemoryBlob()
    video_type = media_type_registry.get("pal-video")
    adpcm_type = media_type_registry.get("adpcm-audio")
    video_descriptor = video_type.make_media_descriptor(
        frame_rate=Rational(25), frame_width=16, frame_height=16,
        frame_depth=24, color_model="RGB", encoding="JPEG",
        quality_factor="VHS quality", duration=Rational(2, 25),
    )
    audio_descriptor = adpcm_type.make_media_descriptor(
        sample_rate=44100, channels=1, encoding="IMA-ADPCM",
        block_samples=505,
    )
    interp = Interpretation(blob, "movie")
    video_rows = []
    for i in range(2):
        offset = blob.append(bytes([i]) * (20 + i))
        video_rows.append(PlacementEntry(i, i, 1, 20 + i, offset))
    audio_rows = []
    for i in range(2):
        descriptor = adpcm_type.make_element_descriptor(
            predictor=i * 10, step_index=i,
        )
        offset = blob.append(bytes([0xA0 + i]) * 15)
        audio_rows.append(PlacementEntry(
            i, i * 505, 505, 15, offset, element_descriptor=descriptor,
        ))
    interp.add("video1", video_type, video_descriptor, video_rows)
    interp.add("audio1", adpcm_type, audio_descriptor, audio_rows,
               time_system=CD_AUDIO_TIME)
    return interp


class TestRoundtrip:
    def test_bytes_roundtrip(self, interpretation):
        restored = deserialize_container(serialize_container(interpretation))
        assert restored.names() == ["audio1", "video1"]
        assert restored.blob.read_all() == interpretation.blob.read_all()

    def test_descriptors_survive(self, interpretation):
        restored = deserialize_container(serialize_container(interpretation))
        descriptor = restored.sequence("video1").media_descriptor
        assert descriptor["quality_factor"] == "VHS quality"
        assert descriptor["duration"] == Rational(2, 25)
        assert isinstance(descriptor["duration"], Rational)

    def test_element_descriptors_survive(self, interpretation):
        restored = deserialize_container(serialize_container(interpretation))
        entry = restored.sequence("audio1").entry(1)
        assert entry.element_descriptor["predictor"] == 10
        assert entry.element_descriptor["step_index"] == 1

    def test_time_systems_survive(self, interpretation):
        restored = deserialize_container(serialize_container(interpretation))
        assert restored.sequence("audio1").time_system.frequency == 44100
        assert restored.sequence("video1").time_system.frequency == 25

    def test_materialization_identical(self, interpretation):
        restored = deserialize_container(serialize_container(interpretation))
        original = interpretation.materialize("video1")
        recovered = restored.materialize("video1")
        assert [t.element.payload for t in original] == \
            [t.element.payload for t in recovered]

    def test_file_roundtrip(self, interpretation, tmp_path):
        path = tmp_path / "movie.rmf"
        written = write_container(interpretation, path)
        assert path.stat().st_size == written
        restored = read_container(path)
        assert restored.names() == ["audio1", "video1"]


class TestFormatErrors:
    def test_bad_magic(self, interpretation):
        data = bytearray(serialize_container(interpretation))
        data[0] = 0x00
        with pytest.raises(ContainerFormatError, match="magic"):
            deserialize_container(bytes(data))

    def test_truncated_header(self, interpretation):
        data = serialize_container(interpretation)
        with pytest.raises(ContainerFormatError):
            deserialize_container(data[:10])

    def test_truncated_blob(self, interpretation):
        data = serialize_container(interpretation)
        with pytest.raises(ContainerFormatError, match="mismatch"):
            deserialize_container(data[:-5])

    def test_corrupt_json(self, interpretation):
        data = bytearray(serialize_container(interpretation))
        data[8] = 0xFF
        with pytest.raises(ContainerFormatError):
            deserialize_container(bytes(data))

    def test_tiny_input(self):
        with pytest.raises(ContainerFormatError):
            deserialize_container(b"RM")

    def test_unserializable_descriptor_value(self):
        blob = MemoryBlob(b"x")
        video_type = media_type_registry.get("pal-video")
        descriptor = video_type.make_media_descriptor(
            frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
            color_model="RGB", encoding=object(),
        )
        interp = Interpretation(blob)
        interp.add("v", video_type, descriptor,
                   [PlacementEntry(0, 0, 1, 1, 0)])
        with pytest.raises(ContainerFormatError, match="serialize"):
            serialize_container(interp)
