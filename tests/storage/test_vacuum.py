"""Tests for BLOB compaction."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.pcm import PcmCodec
from repro.engine.recorder import Recorder
from repro.errors import StorageError
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object
from repro.storage.vacuum import compact, referenced_spans


@pytest.fixture
def recorded():
    video = video_object(frames.scene(24, 16, 10, "orbit"), "v")
    audio = audio_object(signals.sine(440, 0.4, 8000), "a",
                         sample_rate=8000, block_samples=320)
    blob = MemoryBlob()
    interpretation = Recorder(blob).record(
        [video, audio], encoders={"a": PcmCodec(16, 1).encode},
    )
    return blob, interpretation


class TestReferencedSpans:
    def test_full_coverage_merges_to_one_span(self, recorded):
        blob, interpretation = recorded
        spans = referenced_spans([interpretation])
        assert spans == [(0, len(blob))]

    def test_view_leaves_holes(self, recorded):
        blob, interpretation = recorded
        view = interpretation.edit_view("v", keep=[0, 5, 9])
        spans = referenced_spans([view])
        assert len(spans) == 3
        total = sum(end - begin for begin, end in spans)
        assert total == sum(e.size for e in view.sequence("v"))

    def test_overlapping_views_counted_once(self, recorded):
        blob, interpretation = recorded
        a = interpretation.edit_view("v", keep=[0, 1, 2], view_name="a")
        b = interpretation.edit_view("v", keep=[2, 3], view_name="b")
        spans = referenced_spans([a, b])
        total = sum(end - begin for begin, end in spans)
        sizes = {e.blob_offset: e.size for v in (a, b)
                 for e in v.sequence("v")}
        assert total == sum(sizes.values())


class TestCompact:
    def test_full_interpretation_compacts_losslessly(self, recorded):
        blob, interpretation = recorded
        new_blob, rebuilt, stats = compact(blob, [interpretation])
        assert stats.reclaimed_bytes == 0
        assert len(new_blob) == len(blob)
        assert rebuilt[0].materialize("v").tuples[3].element.payload == \
            interpretation.materialize("v").tuples[3].element.payload

    def test_edit_view_reclaims_cut_material(self, recorded):
        blob, interpretation = recorded
        view = interpretation.edit_view("v", keep=[0, 1, 2])
        new_blob, rebuilt, stats = compact(blob, [view])
        assert stats.reclaimed_fraction > 0.5
        assert len(new_blob) < len(blob)
        # The surviving elements read identical bytes.
        for i in range(3):
            assert rebuilt[0].read_element("v", i) == view.read_element("v", i)

    def test_rebuilt_timing_preserved(self, recorded):
        blob, interpretation = recorded
        view = interpretation.edit_view("v", keep=[4, 2, 0])
        _, rebuilt, _ = compact(blob, [view])
        old_stream = view.materialize("v", read_payloads=False)
        new_stream = rebuilt[0].materialize("v", read_payloads=False)
        assert [t.start for t in new_stream] == [t.start for t in old_stream]
        assert [t.element.size for t in new_stream] == \
            [t.element.size for t in old_stream]

    def test_multiple_interpretations_share_bytes(self, recorded):
        blob, interpretation = recorded
        a = interpretation.edit_view("v", keep=[0, 1], view_name="view-a")
        b = interpretation.edit_view("v", keep=[1, 0], view_name="view-b")
        new_blob, rebuilt, stats = compact(blob, [a, b])
        # Shared elements copied once: compacted size is two elements.
        expected = sum(e.size for e in a.sequence("v"))
        assert len(new_blob) == expected
        assert rebuilt[0].read_element("v", 0) == rebuilt[1].read_element("v", 1)

    def test_original_untouched(self, recorded):
        blob, interpretation = recorded
        before = blob.read_all()
        view = interpretation.edit_view("v", keep=[0])
        compact(blob, [view])
        assert blob.read_all() == before
        interpretation.validate()

    def test_wrong_blob_rejected(self, recorded):
        blob, interpretation = recorded
        with pytest.raises(StorageError, match="different BLOB"):
            compact(MemoryBlob(b"xx"), [interpretation])

    def test_needs_interpretations(self, recorded):
        blob, _ = recorded
        with pytest.raises(StorageError):
            compact(blob, [])

    def test_stats_fields(self, recorded):
        blob, interpretation = recorded
        view = interpretation.edit_view("v", keep=[0, 1])
        _, _, stats = compact(blob, [view])
        assert stats.original_bytes == len(blob)
        assert stats.compacted_bytes == stats.referenced_bytes
        assert stats.sequences == 1
        assert 0 < stats.reclaimed_fraction < 1

    def test_compact_into_paged_blob(self, recorded):
        from repro.blob.blob import PagedBlob
        from repro.blob.pages import MemoryPager, PageStore

        blob, interpretation = recorded
        target = PagedBlob(PageStore(MemoryPager(page_size=512)))
        view = interpretation.edit_view("v", keep=[0, 1, 2])
        new_blob, rebuilt, _ = compact(blob, [view], target=target)
        assert new_blob is target
        assert rebuilt[0].read_element("v", 2) == view.read_element("v", 2)
