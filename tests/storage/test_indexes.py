"""Tests for the QuickTime-style index structures."""

import pytest

from repro.errors import StorageError
from repro.storage.indexes import (
    ChunkOffsetTable,
    CompositionOffsetTable,
    EditListTable,
    EditSegment,
    MediaIndex,
    SampleSizeTable,
    SampleToChunkTable,
    SyncSampleTable,
    TimeToSampleTable,
)


class TestTimeToSample:
    def test_constant_rate_compacts_to_one_run(self):
        table = TimeToSampleTable.from_durations([2] * 100)
        assert table.entry_count() == 1
        assert table.sample_count == 100
        assert table.total_ticks == 200

    def test_time_of(self):
        table = TimeToSampleTable([(3, 10), (2, 5)])
        assert table.time_of(0) == 0
        assert table.time_of(2) == 20
        assert table.time_of(3) == 30
        assert table.time_of(4) == 35

    def test_duration_of(self):
        table = TimeToSampleTable([(3, 10), (2, 5)])
        assert table.duration_of(0) == 10
        assert table.duration_of(4) == 5

    def test_sample_at(self):
        table = TimeToSampleTable([(3, 10), (2, 5)])
        assert table.sample_at(0) == 0
        assert table.sample_at(9) == 0
        assert table.sample_at(10) == 1
        assert table.sample_at(30) == 3
        assert table.sample_at(39) == 4

    def test_sample_at_out_of_range(self):
        table = TimeToSampleTable([(2, 10)])
        with pytest.raises(StorageError):
            table.sample_at(20)
        with pytest.raises(StorageError):
            table.sample_at(-1)

    def test_inverse_property(self):
        table = TimeToSampleTable([(5, 3), (4, 7), (2, 1)])
        for sample in range(table.sample_count):
            t = table.time_of(sample)
            assert table.sample_at(t) == sample

    def test_invalid_runs(self):
        with pytest.raises(StorageError):
            TimeToSampleTable([(0, 5)])
        with pytest.raises(StorageError):
            TimeToSampleTable([(1, -1)])


class TestSampleSize:
    def test_constant_collapse(self):
        table = SampleSizeTable.from_sizes([100] * 50)
        assert table.is_constant
        assert table.size_of(33) == 100
        assert table.total_bytes() == 5000

    def test_variable(self):
        table = SampleSizeTable.from_sizes([10, 20, 30])
        assert not table.is_constant
        assert table.size_of(1) == 20
        assert table.total_bytes() == 60

    def test_bounds(self):
        table = SampleSizeTable.from_sizes([10, 20])
        with pytest.raises(StorageError):
            table.size_of(2)

    def test_exactly_one_form(self):
        with pytest.raises(StorageError):
            SampleSizeTable(sizes=[1], constant_size=1)
        with pytest.raises(StorageError):
            SampleSizeTable()


class TestSampleToChunk:
    def test_uniform(self):
        table = SampleToChunkTable.uniform(5, 4)
        assert table.sample_count == 20
        assert table.chunk_of(0) == (0, 0)
        assert table.chunk_of(7) == (1, 2)
        assert table.first_sample_of(3) == 15
        assert table.samples_in_chunk(3) == 5

    def test_varying_runs(self):
        # chunks 0-1 hold 3 samples, chunks 2+ hold 1.
        table = SampleToChunkTable([(0, 3), (2, 1)], chunk_count=4)
        assert table.sample_count == 3 + 3 + 1 + 1
        assert table.chunk_of(5) == (1, 2)
        assert table.chunk_of(6) == (2, 0)
        assert table.chunk_of(7) == (3, 0)

    def test_validation(self):
        with pytest.raises(StorageError):
            SampleToChunkTable([(1, 3)], chunk_count=2)
        with pytest.raises(StorageError):
            SampleToChunkTable([(0, 3), (0, 1)], chunk_count=2)
        with pytest.raises(StorageError):
            SampleToChunkTable([(0, 0)], chunk_count=1)
        with pytest.raises(StorageError):
            SampleToChunkTable([(0, 3), (5, 1)], chunk_count=3)


class TestSyncSamples:
    def test_sync_before(self):
        table = SyncSampleTable([0, 12, 24])
        assert table.sync_before(0) == 0
        assert table.sync_before(11) == 0
        assert table.sync_before(12) == 12
        assert table.sync_before(30) == 24

    def test_is_sync(self):
        table = SyncSampleTable([0, 12])
        assert table.is_sync(12)
        assert not table.is_sync(5)

    def test_decode_span(self):
        table = SyncSampleTable([0, 12])
        assert table.decode_span(15) == (12, 15)

    def test_no_sync_before(self):
        table = SyncSampleTable([10])
        with pytest.raises(StorageError):
            table.sync_before(5)


class TestCompositionOffsets:
    def test_paper_placement(self):
        """Decode order I P B B displaying as I B B P — 1, 4, 2, 3."""
        table = CompositionOffsetTable([0, 3, 1, 2])
        assert table.display_index(1) == 3
        assert table.decode_index(3) == 1
        assert not table.is_identity()
        assert table.max_reorder_distance() == 2

    def test_identity(self):
        table = CompositionOffsetTable([0, 1, 2])
        assert table.is_identity()
        assert table.max_reorder_distance() == 0

    def test_must_be_permutation(self):
        with pytest.raises(StorageError):
            CompositionOffsetTable([0, 0, 2])

    def test_bounds(self):
        table = CompositionOffsetTable([0, 1])
        with pytest.raises(StorageError):
            table.display_index(2)


class TestEditList:
    def test_identity(self):
        table = EditListTable.identity(100)
        assert table.total_ticks == 100
        assert table.media_time(42) == 42

    def test_segments_remap(self):
        table = EditListTable([
            EditSegment(10, 50),   # movie 0-9 -> media 50-59
            EditSegment(5, 0),     # movie 10-14 -> media 0-4
        ])
        assert table.media_time(0) == 50
        assert table.media_time(9) == 59
        assert table.media_time(10) == 0
        assert table.media_time(14) == 4

    def test_empty_segment(self):
        table = EditListTable([EditSegment(5, -1), EditSegment(5, 0)])
        assert table.media_time(2) is None
        assert table.media_time(7) == 2

    def test_out_of_range(self):
        table = EditListTable.identity(10)
        with pytest.raises(StorageError):
            table.media_time(10)

    def test_segment_validation(self):
        with pytest.raises(StorageError):
            EditSegment(0, 0)
        with pytest.raises(StorageError):
            EditSegment(5, -2)


class TestMediaIndex:
    @pytest.fixture
    def index(self):
        """Ten variable-size samples, 2 per chunk, IBBP-style reorder on
        the first GOP (decode order 0,3,1,2)."""
        sizes = [100, 50, 60, 70, 110, 55, 65, 75, 120, 80]
        chunk_offsets = []
        offset = 0
        for chunk in range(5):
            chunk_offsets.append(offset)
            offset += sizes[2 * chunk] + sizes[2 * chunk + 1]
        return MediaIndex(
            time_to_sample=TimeToSampleTable([(10, 4)]),
            sample_sizes=SampleSizeTable.from_sizes(sizes),
            sample_to_chunk=SampleToChunkTable.uniform(2, 5),
            chunk_offsets=ChunkOffsetTable(chunk_offsets),
            sync_samples=SyncSampleTable([0, 4, 8]),
            composition=CompositionOffsetTable([0, 3, 1, 2, 4, 7, 5, 6, 8, 9]),
        )

    def test_placement_first_in_chunk(self, index):
        assert index.placement(0) == (0, 100)

    def test_placement_second_in_chunk(self, index):
        assert index.placement(1) == (100, 50)

    def test_placement_later_chunk(self, index):
        # chunk 2 starts at 100+50+60+70 = 280.
        assert index.placement(4) == (280, 110)
        assert index.placement(5) == (390, 55)

    def test_sample_at_time(self, index):
        assert index.sample_at_time(0) == 0
        assert index.sample_at_time(4) == 1
        assert index.sample_at_time(39) == 9

    def test_placement_at_time_applies_reorder(self, index):
        # Display sample 1 was stored at decode position 2.
        assert index.placement_at_time(4) == index.placement(2)
        # Display sample 3 was stored at decode position 1.
        assert index.placement_at_time(12) == index.placement(1)

    def test_seek_decode_work(self, index):
        assert index.seek_decode_work(0) == 1       # on a key
        assert index.seek_decode_work(12) == 4      # 3 after key 0
        assert index.seek_decode_work(16) == 1      # key at 4

    def test_consistency_checks(self, index):
        with pytest.raises(StorageError):
            MediaIndex(
                time_to_sample=TimeToSampleTable([(9, 4)]),
                sample_sizes=SampleSizeTable.from_sizes([1] * 10),
                sample_to_chunk=SampleToChunkTable.uniform(2, 5),
                chunk_offsets=ChunkOffsetTable([0] * 5),
            )

    def test_edit_list_integration(self, index):
        from repro.storage.indexes import EditListTable, EditSegment

        edited = MediaIndex(
            time_to_sample=index.time_to_sample,
            sample_sizes=index.sample_sizes,
            sample_to_chunk=index.sample_to_chunk,
            chunk_offsets=index.chunk_offsets,
            edit_list=EditListTable([EditSegment(8, 20)]),
        )
        # Movie tick 0 maps to media tick 20 = sample 5.
        assert edited.sample_at_time(0) == 5
