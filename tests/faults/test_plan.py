"""Tests for the deterministic fault plan."""

import pytest

from repro.core.rational import Rational
from repro.errors import EngineError
from repro.faults import FaultPlan


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultPlan(seed=99, transient_rate=0.3, bad_page_rate=0.1,
                      corruption_rate=0.2, degraded_fraction=0.4)
        b = FaultPlan(seed=99, transient_rate=0.3, bad_page_rate=0.1,
                      corruption_rate=0.2, degraded_fraction=0.4)
        for page in range(200):
            assert a.is_bad_page(page) == b.is_bad_page(page)
            for visit in range(4):
                assert a.is_transient(page, visit) == b.is_transient(page, visit)
                assert a.is_corrupted(page, visit) == b.is_corrupted(page, visit)
        for index in range(500):
            assert a.bandwidth_factor(index) == b.bandwidth_factor(index)

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, transient_rate=0.5)
        b = FaultPlan(seed=2, transient_rate=0.5)
        draws_a = [a.is_transient(p, 0) for p in range(200)]
        draws_b = [b.is_transient(p, 0) for p in range(200)]
        assert draws_a != draws_b

    def test_rates_are_respected_roughly(self):
        plan = FaultPlan(seed=5, bad_page_rate=0.25)
        hits = sum(plan.is_bad_page(p) for p in range(4000))
        assert 0.18 < hits / 4000 < 0.32

    def test_zero_rates_never_fault(self):
        plan = FaultPlan(seed=3)
        assert not any(plan.is_bad_page(p) for p in range(100))
        assert not any(plan.is_transient(p, 0) for p in range(100))
        assert not any(plan.is_corrupted(p, 0) for p in range(100))
        assert not plan.is_degraded(0)
        assert plan.bandwidth_factor(17) == 1
        assert plan.extra_latency(17) == 0

    def test_fork_is_deterministic_and_independent(self):
        plan = FaultPlan(seed=11, transient_rate=0.5)
        assert plan.fork(1) == plan.fork(1)
        assert plan.fork(1).seed != plan.fork(2).seed
        assert plan.fork(1).transient_rate == 0.5


class TestCorruption:
    def test_corrupt_flips_exactly_one_bit(self):
        plan = FaultPlan(seed=21, corruption_rate=1.0)
        data = bytes(64)
        corrupted = plan.corrupt(data, page_no=3, visit=0)
        assert len(corrupted) == 64
        diff = [a ^ b for a, b in zip(data, corrupted)]
        changed = [d for d in diff if d]
        assert len(changed) == 1
        assert bin(changed[0]).count("1") == 1

    def test_corrupt_is_deterministic(self):
        plan = FaultPlan(seed=21, corruption_rate=1.0)
        data = bytes(range(256))
        assert plan.corrupt(data, 0, 0) == plan.corrupt(data, 0, 0)
        assert plan.corrupt(data, 0, 0) != plan.corrupt(data, 0, 1)

    def test_corrupt_empty_page_is_noop(self):
        plan = FaultPlan(seed=21, corruption_rate=1.0)
        assert plan.corrupt(b"", 0, 0) == b""


class TestDegradation:
    def test_windows_span_consecutive_reads(self):
        plan = FaultPlan(seed=8, degraded_fraction=0.5, degradation_span=16,
                         degraded_bandwidth_factor=Rational(1, 4),
                         degraded_latency=Rational(1, 100))
        for window in range(20):
            states = {plan.is_degraded(window * 16 + i) for i in range(16)}
            assert len(states) == 1  # whole window agrees
        degraded = [i for i in range(1600) if plan.is_degraded(i)]
        assert degraded  # 50% of windows should hit some
        index = degraded[0]
        assert plan.bandwidth_factor(index) == Rational(1, 4)
        assert plan.extra_latency(index) == Rational(1, 100)


class TestGeometry:
    def test_pages_of(self):
        plan = FaultPlan(seed=0, page_size=100)
        assert list(plan.pages_of(0, 100)) == [0]
        assert list(plan.pages_of(0, 101)) == [0, 1]
        assert list(plan.pages_of(250, 100)) == [2, 3]
        assert list(plan.pages_of(250, 0)) == []


class TestValidation:
    def test_bad_rates_rejected(self):
        with pytest.raises(EngineError, match="transient_rate"):
            FaultPlan(seed=0, transient_rate=1.5)
        with pytest.raises(EngineError, match="bad_page_rate"):
            FaultPlan(seed=0, bad_page_rate=-0.1)

    def test_bad_geometry_rejected(self):
        with pytest.raises(EngineError, match="page_size"):
            FaultPlan(seed=0, page_size=0)
        with pytest.raises(EngineError, match="degradation_span"):
            FaultPlan(seed=0, degradation_span=0)

    def test_bad_degradation_rejected(self):
        with pytest.raises(EngineError, match="bandwidth_factor"):
            FaultPlan(seed=0, degraded_bandwidth_factor=Rational(3, 2))
        with pytest.raises(EngineError, match="bandwidth_factor"):
            FaultPlan(seed=0, degraded_bandwidth_factor=Rational(0))
        with pytest.raises(EngineError, match="latency"):
            FaultPlan(seed=0, degraded_latency=Rational(-1))


class TestWriteFaultDraws:
    def test_write_outcome_partitions_the_unit_interval(self):
        plan = FaultPlan(seed=5, torn_write_rate=0.3,
                         unsynced_survival_rate=0.3)
        fates = {plan.write_outcome(i) for i in range(200)}
        assert fates == {"kept", "torn", "lost"}

    def test_write_outcome_deterministic(self):
        plan = FaultPlan(seed=5, torn_write_rate=0.5)
        again = FaultPlan(seed=5, torn_write_rate=0.5)
        assert [plan.write_outcome(i) for i in range(50)] == \
            [again.write_outcome(i) for i in range(50)]

    def test_default_plan_loses_everything(self):
        plan = FaultPlan(seed=5)
        assert all(plan.write_outcome(i) == "lost" for i in range(50))

    def test_torn_length_strictly_partial(self):
        plan = FaultPlan(seed=5, torn_write_rate=1.0)
        for index in range(50):
            length = plan.torn_length(4096, index)
            assert 1 <= length <= 4095
        assert plan.torn_length(1, 0) == 1

    def test_short_write_draws(self):
        plan = FaultPlan(seed=5, short_write_rate=1.0)
        assert plan.is_short_write(0, 0)
        for index in range(20):
            assert 1 <= plan.short_length(256, 3, index) <= 255
        assert plan.short_length(1, 0, 0) == 1

    def test_lying_fsync_rate_zero_never_lies(self):
        plan = FaultPlan(seed=5)
        assert not any(plan.is_lying_fsync(i) for i in range(50))

    def test_fate_rates_must_not_exceed_one(self):
        with pytest.raises(EngineError, match="must not"):
            FaultPlan(seed=0, torn_write_rate=0.6,
                      unsynced_survival_rate=0.6)

    def test_write_rates_validated(self):
        with pytest.raises(EngineError, match="short_write_rate"):
            FaultPlan(seed=0, short_write_rate=2.0)
        with pytest.raises(EngineError, match="lying_fsync_rate"):
            FaultPlan(seed=0, lying_fsync_rate=-0.5)
