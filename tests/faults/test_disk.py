"""Tests for the crashable simulated medium."""

import pytest

from repro.errors import DurabilityError
from repro.faults import FaultPlan, SimulatedMedium


def write_file(fs, path, data, sync=True, sync_dir=True):
    with fs.open(path, "wb") as handle:
        handle.write(data)
        if sync:
            fs.fsync(handle)
    if sync_dir:
        fs.fsync_dir(path.rsplit("/", 1)[0])


class TestFileInterface:
    def test_write_read_roundtrip(self):
        fs = SimulatedMedium()
        write_file(fs, "/d/f", b"hello")
        with fs.open("/d/f", "rb") as handle:
            assert handle.read() == b"hello"

    def test_seek_tell_append(self):
        fs = SimulatedMedium()
        write_file(fs, "/d/f", b"abcdef")
        with fs.open("/d/f", "ab") as handle:
            assert handle.tell() == 6
            handle.write(b"gh")
        with fs.open("/d/f", "rb") as handle:
            handle.seek(4)
            assert handle.read() == b"efgh"

    def test_text_mode_rejected(self):
        fs = SimulatedMedium()
        with pytest.raises(DurabilityError, match="binary-only"):
            fs.open("/d/f", "w")

    def test_missing_file_rejected(self):
        fs = SimulatedMedium()
        with pytest.raises(DurabilityError, match="no such"):
            fs.open("/d/absent", "rb")

    def test_exclusive_create(self):
        fs = SimulatedMedium()
        fs.open("/d/f", "xb").close()
        with pytest.raises(DurabilityError, match="exists"):
            fs.open("/d/f", "xb")

    def test_listdir_getsize_remove(self):
        fs = SimulatedMedium()
        write_file(fs, "/d/a", b"12345")
        write_file(fs, "/d/b", b"6")
        assert fs.listdir("/d") == ["a", "b"]
        assert fs.getsize("/d/a") == 5
        fs.remove("/d/a")
        assert fs.listdir("/d") == ["b"]

    def test_closed_handle_rejected(self):
        fs = SimulatedMedium()
        handle = fs.open("/d/f", "wb")
        handle.close()
        with pytest.raises(DurabilityError, match="closed"):
            handle.write(b"x")


class TestCrashSemantics:
    def test_unsynced_write_lost_by_default(self):
        fs = SimulatedMedium()
        write_file(fs, "/d/f", b"base")
        with fs.open("/d/f", "ab") as handle:
            handle.write(b"-unsynced")  # no fsync
        fs.crash()
        with fs.open("/d/f", "rb") as handle:
            assert handle.read() == b"base"

    def test_fsynced_content_survives(self):
        fs = SimulatedMedium()
        write_file(fs, "/d/f", b"durable")
        fs.crash()
        with fs.open("/d/f", "rb") as handle:
            assert handle.read() == b"durable"

    def test_name_needs_directory_fsync(self):
        """Content fsync alone is not enough: a created file's *name*
        survives only after fsync_dir of its parent (the POSIX rule)."""
        fs = SimulatedMedium()
        write_file(fs, "/d/f", b"content", sync=True, sync_dir=False)
        fs.crash()
        assert not fs.exists("/d/f")

    def test_rename_rolls_back_without_dir_fsync(self):
        fs = SimulatedMedium()
        write_file(fs, "/d/old", b"v1")
        write_file(fs, "/d/new", b"v2")
        fs.replace("/d/new", "/d/old")  # no fsync_dir
        fs.crash()
        with fs.open("/d/old", "rb") as handle:
            assert handle.read() == b"v1"

    def test_crash_invalidates_open_handles(self):
        fs = SimulatedMedium()
        handle = fs.open("/d/f", "wb")
        fs.crash()
        with pytest.raises(DurabilityError, match="closed"):
            handle.write(b"x")

    def test_crashes_are_reproducible(self):
        """Same plan, same workload, same surviving bytes."""

        def run():
            fs = SimulatedMedium(
                plan=FaultPlan(seed=9, torn_write_rate=0.5,
                               unsynced_survival_rate=0.3)
            )
            write_file(fs, "/d/f", b"base-", sync=True, sync_dir=True)
            with fs.open("/d/f", "ab") as handle:
                handle.write(b"pending-one")
                handle.write(b"pending-two")
            fs.crash()
            with fs.open("/d/f", "rb") as handle:
                return handle.read()

        assert run() == run()


class TestWriteFates:
    def test_torn_write_keeps_a_strict_prefix(self):
        fs = SimulatedMedium(plan=FaultPlan(seed=3, torn_write_rate=1.0))
        write_file(fs, "/d/f", b"", sync=True, sync_dir=True)
        with fs.open("/d/f", "ab") as handle:
            handle.write(b"A" * 100)
        fs.crash()
        survived = fs.durable_bytes("/d/f")
        assert 1 <= len(survived) <= 99
        assert survived == b"A" * len(survived)
        assert fs.writes_torn >= 1

    def test_surviving_unsynced_write_kept_intact(self):
        fs = SimulatedMedium(
            plan=FaultPlan(seed=3, unsynced_survival_rate=1.0)
        )
        write_file(fs, "/d/f", b"", sync=True, sync_dir=True)
        with fs.open("/d/f", "ab") as handle:
            handle.write(b"B" * 64)
        fs.crash()
        assert fs.durable_bytes("/d/f") == b"B" * 64

    def test_lying_fsync_promotes_nothing(self):
        fs = SimulatedMedium(plan=FaultPlan(seed=3, lying_fsync_rate=1.0))
        write_file(fs, "/d/f", b"", sync=True, sync_dir=True)
        with fs.open("/d/f", "ab") as handle:
            handle.write(b"C" * 16)
            fs.fsync(handle)  # acknowledged, but a lie
        assert fs.lying_fsyncs >= 1
        fs.crash()
        assert fs.durable_bytes("/d/f") == b""

    def test_stats_shape(self):
        fs = SimulatedMedium()
        write_file(fs, "/d/f", b"x")
        stats = fs.stats()
        assert stats["files"] == 1
        assert stats["crashes"] == 0
        assert set(stats) >= {"fsyncs", "writes_kept", "writes_lost"}
