"""Tests for deterministic crash-point injection."""

import pytest

from repro.errors import DurabilityError, SimulatedCrash
from repro.faults import NULL_CRASH, CrashInjector, CrashSite


class TestCrashSite:
    def test_str(self):
        assert str(CrashSite("wal.commit", 2)) == "wal.commit#2"

    def test_ordering_is_deterministic(self):
        sites = [CrashSite("b", 0), CrashSite("a", 1), CrashSite("a", 0)]
        assert sorted(sites) == [
            CrashSite("a", 0), CrashSite("a", 1), CrashSite("b", 0),
        ]

    def test_negative_occurrence_rejected(self):
        with pytest.raises(DurabilityError, match=">= 0"):
            CrashInjector(CrashSite("x", -1))


class TestRecording:
    def test_unarmed_injector_records(self):
        injector = CrashInjector()
        injector.point("a")
        injector.point("b")
        injector.point("a")
        assert injector.sites() == [
            CrashSite("a", 0), CrashSite("a", 1), CrashSite("b", 0),
        ]
        assert injector.fired is None

    def test_null_crash_is_inert(self):
        NULL_CRASH.point("anything")
        assert NULL_CRASH.fired is None


class TestArmed:
    def test_fires_at_exact_occurrence(self):
        injector = CrashInjector(CrashSite("p", 1))
        injector.point("p")  # occurrence 0: survives
        with pytest.raises(SimulatedCrash, match="p#1"):
            injector.point("p")
        assert injector.fired == CrashSite("p", 1)

    def test_fires_at_most_once(self):
        """Recovery reuses the injector; the armed site must not
        re-fire once its occurrence has passed."""
        injector = CrashInjector(CrashSite("p", 0))
        with pytest.raises(SimulatedCrash):
            injector.point("p")
        injector.point("p")  # occurrence 1: no crash

    def test_other_points_unaffected(self):
        injector = CrashInjector(CrashSite("p", 0))
        injector.point("q")
        injector.point("r")
        assert injector.fired is None

    def test_simulated_crash_is_a_media_model_error(self):
        from repro.errors import MediaModelError

        assert issubclass(SimulatedCrash, MediaModelError)
