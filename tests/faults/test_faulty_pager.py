"""Tests for the fault-injecting pager and checksum integration."""

import pytest

from repro.blob.blob import PagedBlob
from repro.blob.pages import MemoryPager, PageStore
from repro.blob.store import BlobStore
from repro.errors import BlobCorruptionError, TransientBlobError
from repro.faults import FaultPlan, FaultyPager


def make_pager(**rates):
    plan = FaultPlan(seed=77, page_size=32, **rates)
    return FaultyPager(MemoryPager(page_size=32), plan)


class TestPassThrough:
    def test_clean_plan_is_transparent(self):
        pager = make_pager()
        page = pager.grow()
        pager.write_page(page, b"x" * 32)
        assert pager.read_page(page) == b"x" * 32
        assert len(pager) == 1
        assert pager.page_size == 32
        assert pager.reads == 1
        assert not pager.fault_counts

    def test_writes_never_fault(self):
        pager = make_pager(transient_rate=1.0, bad_page_rate=1.0)
        page = pager.grow()
        pager.write_page(page, b"y" * 32)  # must not raise


class TestTransient:
    def test_transient_raises_and_clears(self):
        pager = make_pager(transient_rate=0.5)
        page = pager.grow()
        pager.write_page(page, b"z" * 32)
        outcomes = []
        for _ in range(50):
            try:
                assert pager.read_page(page) == b"z" * 32
                outcomes.append(True)
            except TransientBlobError:
                outcomes.append(False)
        assert True in outcomes and False in outcomes
        assert pager.fault_counts["transient"] == outcomes.count(False)

    def test_visit_sequence_is_reproducible(self):
        results = []
        for _ in range(2):
            pager = make_pager(transient_rate=0.5)
            page = pager.grow()
            pager.write_page(page, b"z" * 32)
            run = []
            for _ in range(30):
                try:
                    pager.read_page(page)
                    run.append("ok")
                except TransientBlobError:
                    run.append("fail")
            results.append(run)
        assert results[0] == results[1]


class TestBadPages:
    def test_bad_page_fails_persistently(self):
        pager = make_pager(bad_page_rate=1.0)
        page = pager.grow()
        pager.write_page(page, b"q" * 32)
        for _ in range(5):
            with pytest.raises(BlobCorruptionError, match="permanently"):
                pager.read_page(page)
        assert pager.fault_counts["bad_page"] == 5

    def test_raw_read_bypasses_faults(self):
        pager = make_pager(bad_page_rate=1.0, transient_rate=1.0)
        page = pager.grow()
        pager.write_page(page, b"q" * 32)
        assert pager.read_page_raw(page) == b"q" * 32


class TestCorruptionAndChecksums:
    def test_silent_corruption_without_checksums(self):
        pager = make_pager(corruption_rate=1.0)
        page = pager.grow()
        pager.write_page(page, b"a" * 32)
        data = pager.read_page(page)
        assert data != b"a" * 32  # flipped, and nobody noticed
        assert len(data) == 32

    def test_checksums_catch_corruption(self):
        pager = make_pager(corruption_rate=1.0)
        store = PageStore(pager, checksums=True)
        page = store.allocate()
        store.write(page, b"a" * 32)
        with pytest.raises(BlobCorruptionError, match="checksum"):
            store.read(page)

    def test_checksums_catch_every_injected_corruption(self):
        plan = FaultPlan(seed=13, page_size=32, corruption_rate=0.4)
        pager = FaultyPager(MemoryPager(page_size=32), plan)
        store = PageStore(pager, checksums=True)
        page = store.allocate()
        store.write(page, bytes(range(32)))
        caught = clean = 0
        for visit in range(100):
            expected_corrupt = plan.is_corrupted(page, visit)
            try:
                data = store.read(page)
            except BlobCorruptionError:
                assert expected_corrupt
                caught += 1
            else:
                assert not expected_corrupt
                assert data == bytes(range(32))
                clean += 1
        assert caught and clean
        assert caught == pager.fault_counts["corrupted"]

    def test_partial_writes_keep_checksums_current(self):
        pager = make_pager()
        store = PageStore(pager, checksums=True)
        page = store.allocate()
        store.write(page, b"ab", offset=7)
        data = store.read(page)
        assert data[7:9] == b"ab"

    def test_verify_page_and_rebuild(self):
        base = MemoryPager(page_size=32)
        store = PageStore(base, checksums=True)
        page = store.allocate()
        store.write(page, b"c" * 32)
        assert store.verify_page(page)
        # Corrupt the medium behind the store's back.
        base._pages[page][0] ^= 0xFF
        assert not store.verify_page(page)
        store.rebuild_checksums()
        assert store.verify_page(page)


class TestBlobIntegration:
    def test_paged_blob_over_faulty_store_roundtrips_or_raises_typed(self):
        plan = FaultPlan(seed=5, page_size=32, transient_rate=0.2,
                         corruption_rate=0.2)
        store = PageStore(FaultyPager(MemoryPager(page_size=32), plan),
                          checksums=True)
        blob = PagedBlob(store)
        payload = bytes(range(256))
        blob.append(payload)
        seen = set()
        for _ in range(100):
            try:
                assert blob.read(0, 256) == payload
                seen.add("ok")
            except TransientBlobError:
                seen.add("transient")
            except BlobCorruptionError:
                seen.add("corrupt")
        assert seen == {"ok", "transient", "corrupt"}

    def test_blob_store_over_faulty_pager(self):
        plan = FaultPlan(seed=1, page_size=32)
        store = BlobStore(PageStore(FaultyPager(MemoryPager(page_size=32),
                                                plan), checksums=True))
        blob = store.create("movie")
        blob.append(b"d" * 100)
        assert store.get("movie").read_all() == b"d" * 100


class TestShortWrites:
    def test_short_write_lands_a_prefix(self):
        pager = make_pager(short_write_rate=1.0)
        page = pager.grow()
        pager.write_page(page, b"\xee" * 32)
        landed = pager.read_page(page)
        prefix = landed.rstrip(b"\x00")
        assert 1 <= len(prefix) < 32
        assert prefix == b"\xee" * len(prefix)
        assert pager.fault_counts["short_write"] == 1

    def test_checksums_catch_short_writes(self):
        """A checksumming store computes the CRC of the intended bytes,
        so the torn page surfaces as corruption on the next read."""
        plan = FaultPlan(seed=77, page_size=32, short_write_rate=1.0)
        store = PageStore(FaultyPager(MemoryPager(page_size=32), plan),
                          checksums=True)
        page = store.allocate()
        store.write(page, b"\xab" * 32)
        store.flush()
        with pytest.raises(BlobCorruptionError):
            store.read(page)

    def test_clean_plan_writes_fully(self):
        pager = make_pager()
        page = pager.grow()
        pager.write_page(page, b"\xcd" * 32)
        assert pager.read_page(page) == b"\xcd" * 32
        assert pager.fault_counts["short_write"] == 0
