"""BufferPool semantics: bounded LRU, pins, invalidation, PageStore wiring."""

import pytest

from repro.blob.blob import PagedBlob
from repro.blob.pages import MemoryPager, PageStore
from repro.cache import OCCUPANCY_BUCKETS, BufferPool
from repro.errors import CacheError
from repro.obs import Observability


class TestBufferPool:
    def test_capacity_validated(self):
        with pytest.raises(CacheError, match="capacity"):
            BufferPool(0)

    def test_miss_then_hit(self):
        pool = BufferPool(4)
        assert pool.get(1) is None
        pool.put(1, b"one")
        assert pool.get(1) == b"one"
        assert (pool.hits, pool.misses) == (1, 1)
        assert pool.hit_ratio == 0.5

    def test_lru_eviction_order(self):
        pool = BufferPool(2)
        pool.put(1, b"a")
        pool.put(2, b"b")
        pool.get(1)  # touch: 2 is now the oldest
        pool.put(3, b"c")
        assert 2 not in pool
        assert pool.pages() == [1, 3]
        assert pool.evictions == 1

    def test_put_refresh_renews_recency(self):
        pool = BufferPool(2)
        pool.put(1, b"a")
        pool.put(2, b"b")
        pool.put(1, b"a2")  # refresh, no eviction
        pool.put(3, b"c")
        assert pool.pages() == [1, 3]
        assert pool.get(1) == b"a2"

    def test_pinned_pages_survive_pressure(self):
        pool = BufferPool(2)
        pool.put(1, b"a")
        pool.put(2, b"b")
        pool.pin(1)
        pool.put(3, b"c")  # must evict 2, not pinned 1
        assert 1 in pool and 2 not in pool and 3 in pool

    def test_full_pool_of_pins_rejects(self):
        pool = BufferPool(1)
        pool.put(1, b"a")
        pool.pin(1)
        assert not pool.put(2, b"b")
        assert pool.rejections == 1
        assert 2 not in pool

    def test_pins_nest(self):
        pool = BufferPool(1)
        pool.put(1, b"a")
        pool.pin(1)
        pool.pin(1)
        pool.unpin(1)
        assert pool.is_pinned(1)
        pool.unpin(1)
        assert not pool.is_pinned(1)
        with pytest.raises(CacheError, match="not pinned"):
            pool.unpin(1)

    def test_invalidate_ignores_pins(self):
        pool = BufferPool(2)
        pool.put(1, b"a")
        pool.pin(1)
        assert pool.invalidate(1)
        assert 1 not in pool
        assert not pool.invalidate(1)

    def test_clear(self):
        pool = BufferPool(4)
        pool.put(1, b"a")
        pool.put(2, b"b")
        pool.pin(2)
        pool.clear()
        assert len(pool) == 0
        assert not pool.is_pinned(2)

    def test_metrics_exported(self):
        obs = Observability()
        pool = BufferPool(1, obs=obs)
        pool.put(1, b"a")
        pool.get(1)
        pool.get(2)
        pool.put(2, b"b")
        counters = obs.metrics
        assert counters.counter("cache.pool.hits").total() == 1
        assert counters.counter("cache.pool.misses").total() == 1
        assert counters.counter("cache.pool.evictions").total() == 1
        assert counters.gauge("cache.pool.hit_ratio").value() == 0.5
        histogram = counters.histogram(
            "cache.pool.occupancy_bytes_distribution",
            buckets=OCCUPANCY_BUCKETS,
        )
        assert histogram.count() == 2


class TestPageStoreWiring:
    def make(self, pool_pages=4, page_size=16, checksums=True):
        obs = Observability()
        pool = BufferPool(pool_pages)
        store = PageStore(MemoryPager(page_size=page_size),
                          checksums=checksums, buffer_pool=pool, obs=obs)
        return store, pool, obs

    def test_warm_read_skips_pager(self):
        store, pool, obs = self.make()
        page = store.allocate()
        store.write(page, b"d" * 16)
        first = store.read(page)
        second = store.read(page)
        assert first == second == b"d" * 16
        counters = obs.metrics
        assert counters.counter("blob.page.reads").total() == 2
        assert counters.counter("blob.page.pager_reads").total() == 1
        assert counters.counter("blob.page.cache_hits").total() == 1

    def test_warm_read_skips_checksum_verification(self):
        store, pool, obs = self.make()
        page = store.allocate()
        store.write(page, b"d" * 16)
        store.read(page)
        store.read(page)
        # One verification (the fill); the hit serves verified bytes.
        assert obs.metrics.counter(
            "blob.page.checksum_verifications"
        ).total() == 1

    def test_write_through_full_page_refreshes_cache(self):
        store, pool, obs = self.make()
        page = store.allocate()
        store.write(page, b"a" * 16)
        store.read(page)  # fill
        store.write(page, b"b" * 16)  # refresh in place
        assert store.read(page) == b"b" * 16
        # Second read is still a hit: the refreshed copy is current.
        assert obs.metrics.counter("blob.page.pager_reads").total() == 1

    def test_write_through_partial_write_invalidates(self):
        store, pool, obs = self.make()
        page = store.allocate()
        store.write(page, b"a" * 16)
        store.read(page)  # fill
        store.write(page, b"XY", offset=3)  # partial: drop cached copy
        assert page not in pool
        assert store.read(page) == b"aaaXYaaaaaaaaaaa"

    def test_free_invalidates(self):
        store, pool, obs = self.make()
        page = store.allocate()
        store.write(page, b"a" * 16)
        store.read(page)
        store.free(page)
        assert page not in pool

    def test_reuse_never_serves_stale_bytes(self):
        store, pool, obs = self.make()
        page = store.allocate()
        store.write(page, b"a" * 16)
        store.read(page)  # cached
        store.free(page)
        again = store.allocate()
        assert again == page
        assert store.read(again) == bytes(16)

    def test_unverified_read_not_cached(self):
        store, pool, obs = self.make()
        page = store.allocate()
        store.write(page, b"a" * 16)
        store.read(page, verify=False)
        assert page not in pool
        store.read(page)
        assert page in pool

    def test_uncached_store_unchanged(self):
        obs = Observability()
        store = PageStore(MemoryPager(page_size=16), obs=obs)
        page = store.allocate()
        store.read(page)
        store.read(page)
        counters = obs.metrics
        assert counters.counter("blob.page.pager_reads").total() == 2
        assert counters.counter("blob.page.cache_hits").total() == 0


class TestWarmReplaySmoke:
    """Tier-1-safe smoke check: a warm replay of the same byte span
    performs strictly fewer pager reads than the cold pass."""

    def test_warm_blob_replay_reads_fewer_pages(self):
        obs = Observability()
        pool = BufferPool(64)
        store = PageStore(MemoryPager(page_size=64), checksums=True,
                          buffer_pool=pool, obs=obs)
        blob = PagedBlob(store)
        blob.append(bytes(range(256)) * 8)  # 2 KiB over 32 pages
        pager_reads = obs.metrics.counter("blob.page.pager_reads")

        def replay() -> int:
            before = pager_reads.total()
            blob.read(0, len(blob))
            return pager_reads.total() - before

        cold = replay()
        warm = replay()
        assert warm < cold
        assert warm == 0  # pool is large enough to hold the whole blob
        assert pool.hits > 0
