"""DerivationCache: cost-driven admission, density eviction, wiring."""

import pytest

from repro.blob.blob import PagedBlob
from repro.blob.pages import MemoryPager, PageStore
from repro.cache import ENTRY_BUCKETS, DerivationCache, object_bytes
from repro.core.composition import MultimediaObject
from repro.core.derivation import Derivation, DerivationCategory
from repro.core.elements import MediaElement
from repro.core.media_object import StreamMediaObject
from repro.core.media_types import MediaKind, media_type_registry
from repro.core.streams import TimedStream
from repro.engine.player import CostModel, Player
from repro.engine.vod import VodServer
from repro.errors import CacheError
from repro.media import frames
from repro.media.objects import video_object
from repro.obs import Observability


VIDEO_TYPE = media_type_registry.get("pal-video")


def clip(total_bytes: int, name: str = "clip") -> StreamMediaObject:
    """A video object whose stream totals exactly ``total_bytes``."""
    stream = TimedStream.from_elements(
        VIDEO_TYPE, [MediaElement(payload=0, size=total_bytes)]
    )
    descriptor = VIDEO_TYPE.make_media_descriptor(
        frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
        color_model="RGB",
    )
    return StreamMediaObject(VIDEO_TYPE, descriptor, stream, name=name)


def derive(inputs, result, name="test-derivation", counter=None):
    """A derived object expanding to ``result``; ``counter`` (a list)
    collects one entry per actual expansion."""

    def expand(objs, params):
        if counter is not None:
            counter.append(1)
        return result

    derivation = Derivation(
        name=name,
        category=DerivationCategory.CHANGE_OF_CONTENT,
        input_kinds=(MediaKind.VIDEO,),
        result_kind=MediaKind.VIDEO,
        expand=expand,
        variadic=True,
        describe=lambda objs, params: (objs[0].media_type,
                                       objs[0].descriptor),
    )
    return derivation(inputs, name=f"{name}-out")


#: seek_time=0 makes benefit = (input_bytes + expanded_bytes) / bandwidth —
#: density is then a pure, predictable function of the test's byte sizes.
LINEAR = CostModel(bandwidth=1000, seek_time=0)


class TestValidation:
    def test_budget_validated(self):
        with pytest.raises(CacheError, match="budget"):
            DerivationCache(budget_bytes=0)

    def test_threshold_validated(self):
        with pytest.raises(CacheError, match="non-negative"):
            DerivationCache(min_benefit_seconds=-1)


class TestObjectBytes:
    def test_stream_object_sized_from_stream(self):
        assert object_bytes(clip(700)) == 700

    def test_derived_object_sized_from_derivation_object(self):
        derived = derive([clip(5000)], clip(5000))
        assert object_bytes(derived) == \
            derived.derivation_object.storage_size()


class TestAdmission:
    def test_materialize_expands_once(self):
        cache = DerivationCache(budget_bytes=10_000, cost_model=LINEAR)
        calls = []
        derived = derive([clip(100)], clip(400), counter=calls)
        first = cache.materialize(derived)
        second = cache.materialize(derived)
        assert first is second
        assert calls == [1]
        assert derived in cache
        assert cache.occupancy_bytes == 400

    def test_cheap_expansions_rejected(self):
        # benefit = (100 + 400)/1000 = 0.5 s < 1 s threshold.
        cache = DerivationCache(budget_bytes=10_000, cost_model=LINEAR,
                                min_benefit_seconds=1.0)
        derived = derive([clip(100)], clip(400))
        assert not cache.put(derived, clip(400))
        assert derived not in cache
        assert cache.rejections == 1

    def test_oversized_expansions_rejected(self):
        cache = DerivationCache(budget_bytes=1000, cost_model=LINEAR)
        derived = derive([clip(100)], clip(2000))
        assert not cache.put(derived, clip(2000))
        assert cache.rejections == 1

    def test_newcomer_never_displaces_denser_entries(self):
        cache = DerivationCache(budget_bytes=1000, cost_model=LINEAR)
        # Dense: 9000 input bytes behind 900 expanded bytes.
        dense = derive([clip(9000)], clip(900), name="dense")
        assert cache.put(dense, clip(900))
        # Sparse newcomer: 100 input bytes behind 900 expanded bytes —
        # admitting it would need to evict the denser incumbent.
        sparse = derive([clip(100)], clip(900), name="sparse")
        assert not cache.put(sparse, clip(900))
        assert dense in cache and sparse not in cache
        assert cache.stats()["rejections"] == 1

    def test_denser_newcomer_evicts_sparse_entries(self):
        cache = DerivationCache(budget_bytes=1000, cost_model=LINEAR)
        sparse = derive([clip(100)], clip(900), name="sparse")
        assert cache.put(sparse, clip(900))
        dense = derive([clip(9000)], clip(900), name="dense")
        assert cache.put(dense, clip(900))
        assert dense in cache and sparse not in cache
        assert cache.evictions == 1
        assert cache.occupancy_bytes <= cache.budget_bytes

    def test_budget_never_exceeded(self):
        cache = DerivationCache(budget_bytes=1000, cost_model=LINEAR)
        for i in range(10):
            derived = derive([clip((i + 1) * 1000)], clip(300),
                             name=f"d{i}")
            cache.put(derived, clip(300))
            assert cache.occupancy_bytes <= cache.budget_bytes
        assert len(cache) == 3  # 3 x 300 bytes fit, the rest evicted

    def test_eviction_order_is_density_then_recency(self):
        cache = DerivationCache(budget_bytes=10_000, cost_model=LINEAR)
        sparse = derive([clip(100)], clip(500), name="sparse")
        dense = derive([clip(9000)], clip(500), name="dense")
        cache.put(sparse, clip(500))
        cache.put(dense, clip(500))
        assert cache.keys() == [sparse.object_id, dense.object_id]

    def test_refresh_keeps_single_entry(self):
        cache = DerivationCache(budget_bytes=10_000, cost_model=LINEAR)
        derived = derive([clip(100)], clip(400))
        cache.put(derived, clip(400))
        assert cache.put(derived, clip(400))
        assert len(cache) == 1

    def test_discard_and_clear(self):
        cache = DerivationCache(budget_bytes=10_000, cost_model=LINEAR)
        derived = derive([clip(100)], clip(400))
        cache.put(derived, clip(400))
        assert cache.discard(derived)
        assert not cache.discard(derived)
        cache.put(derived, clip(400))
        cache.clear()
        assert len(cache) == 0 and cache.occupancy_bytes == 0


class TestMetrics:
    def test_hit_miss_admission_counters(self):
        obs = Observability()
        cache = DerivationCache(budget_bytes=10_000, cost_model=LINEAR,
                                obs=obs)
        derived = derive([clip(100)], clip(400))
        cache.materialize(derived)
        cache.materialize(derived)
        metrics = obs.metrics
        kind = derived.derivation_object.derivation.name
        assert metrics.counter("cache.derivation.misses").value(
            derivation=kind) == 1
        assert metrics.counter("cache.derivation.hits").value(
            derivation=kind) == 1
        assert metrics.counter("cache.derivation.admissions").total() == 1
        assert metrics.gauge("cache.derivation.hit_ratio").value() == 0.5
        assert metrics.gauge(
            "cache.derivation.occupancy_bytes").value() == 400
        assert metrics.histogram(
            "cache.derivation.entry_bytes", buckets=ENTRY_BUCKETS,
        ).count() == 1

    def test_rejection_counter_labeled_by_reason(self):
        obs = Observability()
        cache = DerivationCache(budget_bytes=1000, cost_model=LINEAR,
                                min_benefit_seconds=0.3, obs=obs)
        kind = "reasons"
        cheap = derive([clip(10)], clip(100), name=kind)
        huge = derive([clip(9000)], clip(2000), name=kind)
        cache.put(cheap, clip(100))
        cache.put(huge, clip(2000))
        rejections = obs.metrics.counter("cache.derivation.rejections")
        assert rejections.value(derivation=kind, reason="cheap") == 1
        assert rejections.value(derivation=kind, reason="too_large") == 1


class TestDerivedObjectWiring:
    def test_attach_cache_replaces_memo(self):
        cache = DerivationCache(budget_bytes=10_000, cost_model=LINEAR)
        calls = []
        derived = derive([clip(100)], clip(400), counter=calls)
        derived.materialize()  # legacy unbounded memo
        assert derived._expanded is not None
        derived.attach_cache(cache)
        assert derived._expanded is None  # memo migrated into the cache
        assert derived in cache
        assert derived.is_materialized
        derived.materialize()
        assert calls == [1]  # still only the original expansion

    def test_discard_through_cache(self):
        cache = DerivationCache(budget_bytes=10_000, cost_model=LINEAR)
        derived = derive([clip(100)], clip(400)).attach_cache(cache)
        derived.materialize()
        derived.discard_materialization()
        assert not derived.is_materialized
        assert derived not in cache

    def test_detach_returns_to_memo(self):
        cache = DerivationCache(budget_bytes=10_000, cost_model=LINEAR)
        calls = []
        derived = derive([clip(100)], clip(400), counter=calls)
        derived.attach_cache(cache)
        derived.materialize()
        derived.attach_cache(None)
        derived.materialize()
        assert len(calls) == 2  # cache state no longer consulted


class TestEngineWiring:
    def test_player_plans_through_cache(self):
        cache = DerivationCache(budget_bytes=1 << 20, cost_model=LINEAR)
        calls = []
        result = video_object(frames.scene(8, 8, 4, "pan"), "cut")
        derived = derive([clip(2000)], result, counter=calls)
        multimedia = MultimediaObject("mm")
        # Explicit duration: interval math must not expand the derived
        # component behind the cache's back.
        multimedia.add_temporal(derived, at=0, label="d",
                                duration=result.stream().duration_seconds())
        player = Player(CostModel(bandwidth=2_000_000),
                        derivation_cache=cache)
        player.plan_multimedia(multimedia)
        player.plan_multimedia(multimedia)
        assert calls == [1]
        assert cache.hits == 1

    def test_vod_prefetch_warms_page_pool(self):
        from repro.cache import BufferPool
        from repro.engine.recorder import Recorder

        obs = Observability()
        pool = BufferPool(256)
        store = PageStore(MemoryPager(page_size=256), checksums=True,
                          buffer_pool=pool, obs=obs)
        movie = Recorder(PagedBlob(store)).record(
            [video_object(frames.scene(16, 16, 6, "pan"), "video1")]
        )
        server = VodServer(bandwidth=2_000_000, obs=obs)
        server.publish("feature", movie)
        pager_reads = obs.metrics.counter("blob.page.pager_reads")

        cold_before = pager_reads.total()
        warmed = server.prefetch("feature")
        cold = pager_reads.total() - cold_before

        warm_before = pager_reads.total()
        assert server.prefetch("feature") == warmed
        warm = pager_reads.total() - warm_before

        assert warmed > 0
        assert warm < cold
        assert obs.metrics.counter("vod.prefetches").total() == 2
        assert obs.metrics.counter(
            "vod.prefetch_bytes").total() == 2 * warmed

    def test_vod_prefetch_unknown_title(self):
        from repro.errors import EngineError

        server = VodServer(bandwidth=1_000_000)
        with pytest.raises(EngineError, match="unknown title"):
            server.prefetch("nope")
