"""Property-based tests on the cache layer.

Two invariants carry the whole design:

* **Transparency** — a pool-backed :class:`PageStore` is observationally
  identical to a bare one under any interleaving of allocate / free /
  write / read operations. The cache may change *how many* pager reads
  happen, never *what bytes* come back or *which errors* are raised.
* **Determinism** — the pool's eviction order, hit counts and final
  contents are a pure function of the operation sequence, so two
  identical runs agree exactly (the obs determinism contract depends
  on this).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blob.pages import MemoryPager, PageStore
from repro.cache import BufferPool
from repro.errors import BlobError


PAGE_SIZE = 16

#: One storage operation: (kind, argument). Page numbers and free
#: targets are drawn small so interleavings collide with the free list
#: and with out-of-range pages often.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("allocate"), st.just(0)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=7)),
        st.tuples(st.just("write"),
                  st.tuples(st.integers(min_value=0, max_value=7),
                            st.binary(min_size=0, max_size=PAGE_SIZE))),
        st.tuples(st.just("read"), st.integers(min_value=0, max_value=7)),
    ),
    min_size=1, max_size=40,
)


def run(store: PageStore, ops) -> list:
    """Apply ``ops``, recording every observable outcome (bytes read,
    allocation results, error types) in order."""
    trace: list = []
    for kind, arg in ops:
        try:
            if kind == "allocate":
                trace.append(("allocated", store.allocate()))
            elif kind == "free":
                store.free(arg)
                trace.append(("freed", arg))
            elif kind == "write":
                page, data = arg
                store.write(page, data)
                trace.append(("wrote", page, len(data)))
            else:
                trace.append(("read", arg, store.read(arg)))
        except BlobError as exc:
            trace.append(("error", kind, type(exc).__name__))
    return trace


class TestPoolTransparency:
    @given(ops=operations,
           capacity=st.integers(min_value=1, max_value=8),
           checksums=st.booleans())
    @settings(max_examples=60)
    def test_pooled_store_observationally_identical(self, ops, capacity,
                                                    checksums):
        bare = PageStore(MemoryPager(page_size=PAGE_SIZE),
                         checksums=checksums)
        pooled = PageStore(MemoryPager(page_size=PAGE_SIZE),
                           checksums=checksums,
                           buffer_pool=BufferPool(capacity))
        assert run(bare, ops) == run(pooled, ops)

    @given(ops=operations, capacity=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60)
    def test_pool_never_overflows_or_serves_stale(self, ops, capacity):
        pool = BufferPool(capacity)
        store = PageStore(MemoryPager(page_size=PAGE_SIZE),
                          checksums=True, buffer_pool=pool)
        run(store, ops)
        assert len(pool) <= capacity
        # Every resident page mirrors the pager exactly (no staleness).
        for page_no in pool.pages():
            assert pool.get(page_no) == store.pager.read_page(page_no)


class TestPoolDeterminism:
    @given(ops=operations, capacity=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60)
    def test_same_sequence_same_pool_state(self, ops, capacity):
        """Eviction order, counters and contents replay identically."""

        def final_state():
            pool = BufferPool(capacity)
            store = PageStore(MemoryPager(page_size=PAGE_SIZE),
                              buffer_pool=pool)
            run(store, ops)
            return (pool.pages(), pool.stats(),
                    [pool.get(p) for p in pool.pages()])

        assert final_state() == final_state()
