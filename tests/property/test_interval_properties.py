"""Property-based tests for the interval algebra.

Allen's thirteen relations must be jointly exhaustive and pairwise
disjoint (JEPD) over *all* interval pairs — zero-length instants
included — and the classification must agree with
``Interval.intersects``: the four disjoint relations (before, after,
meets, met-by) hold exactly when no time is shared. These are the
invariants the ``relate`` instant-handling fix restored.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composition import MultimediaObject
from repro.core.intervals import (
    Interval,
    IntervalRelation,
    relate,
    total_covered,
)
from repro.core.media_object import StillMediaObject
from repro.core.media_types import media_type_registry
from repro.core.rational import Rational
from repro.query.temporal import gaps_in_presentation, relation_matrix

DISJOINT_RELATIONS = {
    IntervalRelation.BEFORE,
    IntervalRelation.AFTER,
    IntervalRelation.MEETS,
    IntervalRelation.MET_BY,
}

rationals = st.builds(
    Rational, st.integers(-48, 48), st.integers(1, 6),
)

intervals = st.tuples(rationals, rationals).map(
    lambda pair: Interval(min(pair), max(pair))
)

# A pool with many coincident endpoints, so equal-start / equal-end /
# adjacent / instant configurations are common rather than vanishing.
coarse_intervals = st.tuples(
    st.integers(0, 6), st.integers(0, 6),
).map(lambda pair: Interval(min(pair), max(pair)))


def semantic_relation(a: Interval, b: Interval) -> IntervalRelation:
    """An independent classifier built from endpoint trichotomies.

    Disjointness is delegated to ``intersects`` (the ground truth for
    "shares time"); within each class the relation follows from the
    (start, end) comparisons alone. Exhaustive and deterministic by
    construction, so agreement with ``relate`` proves JEPD.
    """
    if not a.intersects(b):
        # At most one adjacency can hold here: a.end == b.start and
        # b.end == a.start together force four equal endpoints, i.e.
        # equal instants — which intersect and never reach this branch.
        if a.end == b.start:
            return IntervalRelation.MEETS
        if b.end == a.start:
            return IntervalRelation.MET_BY
        return (IntervalRelation.BEFORE if a.end < b.start
                else IntervalRelation.AFTER)
    if a.start == b.start:
        if a.end == b.end:
            return IntervalRelation.EQUAL
        return (IntervalRelation.STARTS if a.end < b.end
                else IntervalRelation.STARTED_BY)
    if a.start < b.start:
        if a.end == b.end:
            return IntervalRelation.FINISHED_BY
        return (IntervalRelation.OVERLAPS if a.end < b.end
                else IntervalRelation.CONTAINS)
    if a.end == b.end:
        return IntervalRelation.FINISHES
    return (IntervalRelation.DURING if a.end < b.end
            else IntervalRelation.OVERLAPPED_BY)


class TestRelateProperties:
    @given(intervals, intervals)
    def test_matches_independent_classifier(self, a, b):
        assert relate(a, b) is semantic_relation(a, b)

    @given(coarse_intervals, coarse_intervals)
    def test_matches_classifier_on_coincident_endpoints(self, a, b):
        assert relate(a, b) is semantic_relation(a, b)

    @given(intervals, intervals)
    def test_inverse_consistency(self, a, b):
        assert relate(a, b).inverse is relate(b, a)

    @given(coarse_intervals, coarse_intervals)
    def test_inverse_consistency_on_coincident_endpoints(self, a, b):
        assert relate(a, b).inverse is relate(b, a)

    @given(intervals, intervals)
    def test_agrees_with_intersects(self, a, b):
        """The headline fix: disjoint relations iff no shared time."""
        assert (relate(a, b) in DISJOINT_RELATIONS) == (not a.intersects(b))

    @given(coarse_intervals, coarse_intervals)
    def test_agrees_with_intersects_on_coincident_endpoints(self, a, b):
        assert (relate(a, b) in DISJOINT_RELATIONS) == (not a.intersects(b))

    @given(intervals, intervals)
    def test_equal_iff_identical(self, a, b):
        assert (relate(a, b) is IntervalRelation.EQUAL) == (a == b)

    @given(intervals)
    def test_reflexive(self, a):
        assert relate(a, a) is IntervalRelation.EQUAL

    @given(coarse_intervals, st.integers(0, 6))
    def test_instant_against_interval(self, a, t):
        """An instant relates consistently with where its point sits."""
        instant = Interval(Rational(t), Rational(t))
        rel = relate(instant, a)
        if a.contains_time(t) or instant == a:
            assert rel not in DISJOINT_RELATIONS
        else:
            assert rel in DISJOINT_RELATIONS


def _presentation(placements):
    """A multimedia object from (start, duration) placements.

    The generated lists deliberately include zero durations (instants),
    duplicate starts and fully contained intervals.
    """
    text_type = media_type_registry.get("text")
    descriptor = text_type.make_media_descriptor()
    still = StillMediaObject(text_type, descriptor, "x", name="x")
    m = MultimediaObject("presentation")
    for index, (start, duration) in enumerate(placements):
        m.add_temporal(still, at=start, duration=duration,
                       label=f"p{index:02d}")
    return m


placements = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 5)),
    min_size=1, max_size=8,
)


class TestRelationMatrixProperties:
    @given(placements)
    @settings(max_examples=50)
    def test_matrix_is_inverse_consistent(self, specs):
        m = _presentation(specs)
        matrix = relation_matrix(m)
        for (label_a, label_b), rel in matrix.items():
            assert matrix[(label_b, label_a)] is rel.inverse


class TestGapProperties:
    @given(placements)
    @settings(max_examples=100)
    def test_conservation(self, specs):
        """Covered time plus gap time equals the presentation hull."""
        m = _presentation(specs)
        timeline = [interval for _, interval in m.timeline()]
        gaps = gaps_in_presentation(m)
        hull = max(iv.end for iv in timeline) - min(iv.start
                                                    for iv in timeline)
        gap_total = sum((g.duration for g in gaps), Rational(0))
        assert total_covered(timeline) + gap_total == hull

    @given(placements)
    @settings(max_examples=100)
    def test_gaps_are_sorted_disjoint_and_nonempty(self, specs):
        gaps = gaps_in_presentation(_presentation(specs))
        for gap in gaps:
            assert gap.duration > 0
        for earlier, later in zip(gaps, gaps[1:]):
            assert earlier.end <= later.start

    @given(placements)
    @settings(max_examples=100)
    def test_no_gap_overlaps_a_positive_component(self, specs):
        """Gaps never intersect presented time.

        Instants are excluded: a zero-length component splits a gap at
        its point but the half-open representation cannot carve the
        point itself out of the following gap.
        """
        m = _presentation(specs)
        gaps = gaps_in_presentation(m)
        for _, interval in m.timeline():
            if interval.is_instant:
                continue
            for gap in gaps:
                assert not gap.intersects(interval)

    def test_instants_split_gaps(self):
        m = _presentation([(0, 2), (3, 0), (5, 1)])
        assert gaps_in_presentation(m) == [
            Interval(Rational(2), Rational(3)),
            Interval(Rational(3), Rational(5)),
        ]

    def test_duplicate_starts_and_contained_intervals(self):
        # Two components at 0 (one containing the other) and one
        # detached: the only gap is between the longest cover and it.
        m = _presentation([(0, 4), (0, 2), (1, 1), (6, 1)])
        assert gaps_in_presentation(m) == [
            Interval(Rational(4), Rational(6)),
        ]
