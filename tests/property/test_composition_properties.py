"""Property-based tests for composition and the derivation economics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composition import MultimediaObject, TemporalComposition
from repro.core.elements import MediaElement
from repro.core.media_types import media_type_registry
from repro.core.rational import Rational
from repro.core.streams import TimedStream


def make_clip(name, frame_count):
    from repro.core.media_object import StreamMediaObject

    video_type = media_type_registry.get("pal-video")
    stream = TimedStream.from_elements(
        video_type, [MediaElement(size=100) for _ in range(frame_count)]
    )
    descriptor = video_type.make_media_descriptor(
        frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
        color_model="RGB",
        duration=video_type.time_system.to_continuous(frame_count),
    )
    return StreamMediaObject(video_type, descriptor, stream, name=name)


offsets = st.lists(
    st.tuples(st.integers(0, 100), st.integers(1, 50)),
    min_size=1, max_size=8,
)


class TestCompositionProperties:
    @given(offsets)
    def test_duration_is_max_end(self, placements):
        m = MultimediaObject("m")
        expected_end = Rational(0)
        for index, (start, frame_count) in enumerate(placements):
            clip = make_clip(f"c{index}", frame_count)
            m.add_temporal(clip, at=start, label=f"c{index}")
            end = Rational(start) + Rational(frame_count, 25)
            expected_end = max(expected_end, end)
        assert m.duration() == expected_end

    @given(offsets, st.integers(0, 50))
    def test_nesting_translation_invariant(self, placements, shift):
        """Flattening a nested composition shifts every leaf by the
        outer offset, exactly."""
        inner = MultimediaObject("inner")
        for index, (start, frame_count) in enumerate(placements):
            inner.add_temporal(make_clip(f"c{index}", frame_count),
                               at=start, label=f"c{index}")
        outer = MultimediaObject("outer")
        outer.add_temporal(inner, at=shift, label="nested")

        flat_inner = {label: iv for label, _, iv in inner.flatten()}
        flat_outer = {
            label.split("/", 1)[1]: iv for label, _, iv in outer.flatten()
        }
        for label, interval in flat_inner.items():
            assert flat_outer[label] == interval.translate(shift)

    @given(offsets)
    def test_timeline_sorted_and_complete(self, placements):
        m = MultimediaObject("m")
        for index, (start, frame_count) in enumerate(placements):
            m.add_temporal(make_clip(f"c{index}", frame_count),
                           at=start, label=f"c{index}")
        timeline = m.timeline()
        assert len(timeline) == len(placements)
        starts = [interval.start for _, interval in timeline]
        assert starts == sorted(starts)

    @given(offsets, st.integers(0, 150))
    def test_simultaneous_at_agrees_with_intervals(self, placements, probe):
        m = MultimediaObject("m")
        for index, (start, frame_count) in enumerate(placements):
            m.add_temporal(make_clip(f"c{index}", frame_count),
                           at=start, label=f"c{index}")
        t = Rational(probe)
        found = set(m.simultaneous_at(t))
        expected = {
            label for label, interval in m.timeline()
            if interval.contains_time(t)
        }
        assert found == expected


class TestDerivationEconomicsProperty:
    @settings(max_examples=20)
    @given(st.integers(10, 60), st.integers(0, 9))
    def test_edit_size_independent_of_selection(self, frame_count, offset):
        """A derivation object's size does not grow with the media it
        references — only with its parameters."""
        from repro.edit import MediaEditor

        clip = make_clip("c", frame_count)
        editor = MediaEditor()
        derived = editor.cut(clip, offset, offset + 5)
        assert derived.derivation_object.storage_size() < 80
