"""Property-based tests for fault injection (hypothesis).

Two promises are load-bearing: faulted runs are bit-reproducible (same
seed, same report — ISSUE requirement), and page checksums catch every
corruption the plan injects (integrity is detection, not luck).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blob.pages import MemoryPager, PageStore
from repro.core.rational import Rational
from repro.engine.player import (
    AdaptationPolicy,
    CostModel,
    Player,
    RetryPolicy,
    _PlannedRead,
)
from repro.errors import BlobCorruptionError
from repro.faults import FaultPlan, FaultyPager

plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**32),
    page_size=st.sampled_from([64, 512, 4096]),
    transient_rate=st.floats(0.0, 0.5),
    bad_page_rate=st.floats(0.0, 0.3),
    corruption_rate=st.floats(0.0, 0.5),
    degraded_fraction=st.floats(0.0, 1.0),
    degradation_span=st.integers(1, 64),
)


@settings(max_examples=40, deadline=None)
@given(
    plan=plans,
    count=st.integers(min_value=1, max_value=60),
    size=st.integers(min_value=1, max_value=10_000),
)
def test_same_seed_playback_reports_are_bit_identical(plan, count, size):
    reads = [
        _PlannedRead(f"v[{i}]", i * size, size, Rational(i, 25))
        for i in range(count)
    ]

    def run():
        player = Player(
            CostModel(bandwidth=50_000),
            fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=2,
                                     abort_skip_fraction=None),
            adaptation=AdaptationPolicy(levels=3),
        )
        return player.play_reads(reads)

    first = run()
    second = run()
    assert first == second
    assert first.element_count + first.skipped_elements == count


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32),
    corruption_rate=st.floats(0.05, 1.0),
    visits=st.integers(min_value=1, max_value=40),
    payload=st.binary(min_size=1, max_size=64),
)
def test_checksums_catch_every_injected_corruption(
        seed, corruption_rate, visits, payload):
    plan = FaultPlan(seed=seed, page_size=64,
                     corruption_rate=corruption_rate)
    pager = FaultyPager(MemoryPager(page_size=64), plan)
    store = PageStore(pager, checksums=True)
    page = store.allocate()
    store.write(page, payload)
    for visit in range(visits):
        injected = plan.is_corrupted(page, visit)
        try:
            data = store.read(page)
        except BlobCorruptionError:
            assert injected  # never a false alarm
        else:
            assert not injected  # never a miss
            assert data[:len(payload)] == payload
    assert pager.fault_counts["corrupted"] == sum(
        plan.is_corrupted(page, v) for v in range(visits)
    )


@settings(max_examples=60, deadline=None)
@given(
    plan=plans,
    offset=st.integers(min_value=0, max_value=10**6),
    size=st.integers(min_value=0, max_value=10**5),
)
def test_pages_of_covers_exactly_the_span(plan, offset, size):
    pages = list(plan.pages_of(offset, size))
    if size == 0:
        assert pages == []
        return
    assert pages[0] == offset // plan.page_size
    assert pages[-1] == (offset + size - 1) // plan.page_size
    assert pages == list(range(pages[0], pages[-1] + 1))
