"""Property-based tests for editing operations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.elements import MediaElement
from repro.core.media_types import media_type_registry
from repro.core.streams import TimedStream
from repro.edit.edl import EditDecisionList, apply_edl
from repro.media.objects import video_object
from repro.media import frames


def make_source(length):
    from repro.core.media_object import StreamMediaObject

    video_type = media_type_registry.get("pal-video")
    stream = TimedStream.from_elements(
        video_type,
        [MediaElement(payload=i, size=10) for i in range(length)],
    )
    descriptor = video_type.make_media_descriptor(
        frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
        color_model="RGB",
        duration=video_type.time_system.to_continuous(length),
    )
    return StreamMediaObject(video_type, descriptor, stream, name="src")


selections = st.lists(
    st.tuples(st.integers(0, 39), st.integers(1, 20)),
    min_size=1, max_size=6,
).map(lambda pairs: [
    (0, a, min(a + b, 40)) for a, b in pairs if a < 40
]).filter(bool)


class TestEdlProperties:
    @given(selections)
    def test_length_is_sum_of_selections(self, triples):
        source = make_source(40)
        edl = EditDecisionList.from_params(triples)
        edited = apply_edl([source], edl)
        assert len(edited.stream()) == edl.total_ticks()
        assert edited.stream().is_continuous()
        assert edited.stream().start == 0

    @given(selections)
    def test_payload_provenance(self, triples):
        """Every edited element is exactly the selected source element."""
        source = make_source(40)
        edl = EditDecisionList.from_params(triples)
        edited = apply_edl([source], edl)
        expected = [
            tick
            for _, begin, end in triples
            for tick in range(begin, end)
        ]
        actual = [t.element.payload for t in edited.stream()]
        assert actual == expected

    @given(selections)
    def test_source_never_mutated(self, triples):
        source = make_source(40)
        before = [t.element.payload for t in source.stream()]
        apply_edl([source], EditDecisionList.from_params(triples))
        after = [t.element.payload for t in source.stream()]
        assert before == after

    @given(st.integers(1, 39))
    def test_split_and_rejoin_is_identity(self, split_at):
        """Cutting at any point and concatenating restores the source."""
        source = make_source(40)
        edl = (EditDecisionList()
               .select(0, 0, split_at)
               .select(0, split_at, 40))
        edited = apply_edl([source], edl)
        assert [t.element.payload for t in edited.stream()] == list(range(40))

    @settings(max_examples=25)
    @given(st.permutations(list(range(4))))
    def test_reorder_permutes_blocks(self, order):
        """Selecting 10-frame blocks in any order yields that order."""
        source = make_source(40)
        edl = EditDecisionList.from_params([
            (0, block * 10, block * 10 + 10) for block in order
        ])
        edited = apply_edl([source], edl)
        first_of_each = [
            edited.stream().tuples[i * 10].element.payload for i in range(4)
        ]
        assert first_of_each == [block * 10 for block in order]
