"""Property tests for rendezvous placement (:func:`repro.engine.fleet.place`).

The router's contract: deterministic (a pure function of the names),
total (every title maps to exactly one member of the live set, before
and after a kill), and minimal (killing a shard moves only the titles
it owned).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.fleet import place

shard_name = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=12,
)
shard_sets = st.lists(shard_name, min_size=1, max_size=8, unique=True)
title = st.text(min_size=0, max_size=24)


@given(title=title, shards=shard_sets)
def test_placement_is_deterministic(title, shards):
    first = place(title, shards)
    assert place(title, list(shards)) == first
    assert place(title, tuple(shards)) == first


@given(title=title, shards=shard_sets)
def test_placement_is_total(title, shards):
    assert place(title, shards) in shards


@given(title=title, shards=shard_sets)
def test_placement_ignores_listing_order(title, shards):
    assert place(title, shards) == place(title, sorted(shards))
    assert place(title, shards) == place(title, list(reversed(shards)))


@settings(max_examples=60)
@given(
    titles=st.lists(title, min_size=1, max_size=20, unique=True),
    shards=st.lists(shard_name, min_size=2, max_size=8, unique=True),
    victim_index=st.integers(min_value=0, max_value=7),
)
def test_kill_moves_only_the_victims_titles(titles, shards, victim_index):
    victim = shards[victim_index % len(shards)]
    survivors = [s for s in shards if s != victim]
    before = {t: place(t, shards) for t in titles}
    after = {t: place(t, survivors) for t in titles}
    for t in titles:
        # Total after the kill...
        assert after[t] in survivors
        # ...and minimal: only the victim's titles move.
        if before[t] != victim:
            assert after[t] == before[t]


@given(
    title=title,
    shards=st.lists(shard_name, min_size=2, max_size=8, unique=True),
)
def test_adding_a_shard_only_attracts_titles_to_it(title, shards):
    # The dual of minimal movement: growing the set either leaves a
    # title where it was or moves it to the new shard.
    old = place(title, shards[:-1])
    new = place(title, shards)
    assert new == old or new == shards[-1]
