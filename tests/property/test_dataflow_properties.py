"""Property-based tests on the CFG builder and the fixpoint solver.

Hypothesis generates random (grammatically valid) function bodies —
branches, loops with break/continue, nested try/except/finally, with
blocks, early returns and raises — and re-derives the framework's
three load-bearing guarantees on each:

* **Reachability** — every node in a built CFG is reachable from
  ``entry`` (the builder elides dead code instead of emitting
  orphans), and all edges stay inside the node set.
* **Fixpoint** — the solver terminates within its budget and its
  answer *is* a fixpoint: pushing any edge's transfer once more
  changes nothing, and the per-node states only ever sit above what
  any single predecessor contributes. Solving twice gives identical
  maps (determinism).
* **Finally preservation** — when the whole body is wrapped in
  ``try/finally``, deleting the finally suite's nodes disconnects
  every previously-reachable exit: no path sneaks out without running
  the cleanup, exactly the guarantee release-on-every-path checkers
  lean on.
"""

import ast
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import Analysis, solve


def _indent(lines, by="    "):
    return [by + line for line in lines]


def _suite(draw, depth: int, in_loop: bool) -> list:
    statements = draw(st.lists(
        st.integers(min_value=0, max_value=9 if depth > 0 else 2),
        min_size=1, max_size=3,
    ))
    lines: list[str] = []
    for pick in statements:
        if pick == 0:
            lines.append(f"v{len(lines)} = work()")
        elif pick == 1:
            lines.append("pass")
        elif pick == 2 and in_loop and draw(st.booleans()):
            lines.append("break" if draw(st.booleans()) else "continue")
        elif pick == 2:
            lines.append("return finish()")
        elif pick == 3:
            lines.append("raise ValueError('x')")
        elif pick == 4:
            lines.append("if cond():")
            lines.extend(_indent(_suite(draw, depth - 1, in_loop)))
            if draw(st.booleans()):
                lines.append("else:")
                lines.extend(_indent(_suite(draw, depth - 1, in_loop)))
        elif pick == 5:
            lines.append("while cond():")
            lines.extend(_indent(_suite(draw, depth - 1, True)))
        elif pick == 6:
            lines.append("for item in source():")
            lines.extend(_indent(_suite(draw, depth - 1, True)))
        elif pick == 7:
            lines.append("with guard():")
            lines.extend(_indent(_suite(draw, depth - 1, in_loop)))
        else:
            lines.append("try:")
            lines.extend(_indent(_suite(draw, depth - 1, in_loop)))
            handlers = draw(st.integers(min_value=0, max_value=2))
            for index in range(handlers):
                kind = ("ValueError", "Exception")[index % 2]
                lines.append(f"except {kind}:")
                lines.extend(_indent(_suite(draw, depth - 1, in_loop)))
            if handlers == 0 or draw(st.booleans()):
                lines.append("finally:")
                lines.extend(_indent(_suite(draw, depth - 1, in_loop)))
    return lines


@st.composite
def function_sources(draw) -> str:
    body = _suite(draw, depth=2, in_loop=False)
    return "def f():\n" + "\n".join(_indent(body)) + "\n"


def cfg_from(source: str):
    func = ast.parse(source).body[0]
    return build_cfg(func, name="random.py")


class LineGen(Analysis):
    """Gen-only powerset analysis: each node contributes its id."""

    def transfer(self, node, state):
        return state | {node.node_id}

    def transfer_exc(self, node, state):
        return state


@settings(max_examples=80, deadline=None)
@given(function_sources())
def test_every_node_is_reachable_from_entry(source):
    # the synthetic exits may be dark (a body that cannot raise never
    # reaches raise-exit; one that always raises never reaches exit) —
    # everything else must be reachable: dead code gets no nodes
    cfg = cfg_from(source)
    reachable = cfg.reachable_from_entry()
    assert set(cfg.nodes) - reachable <= {cfg.exit, cfg.raise_exit}
    for src, out in cfg.succs.items():
        for dst, _kind in out:
            assert src in cfg.nodes and dst in cfg.nodes


@settings(max_examples=80, deadline=None)
@given(function_sources())
def test_solver_terminates_on_a_true_fixpoint(source):
    cfg = cfg_from(source)
    analysis = LineGen()
    states = solve(cfg, analysis)  # terminating at all is assertion #1
    for src, out in cfg.succs.items():
        for dst, kind in out:
            carried = (analysis.transfer_exc(cfg.nodes[src], states[src])
                       if kind == "exc"
                       else analysis.transfer(cfg.nodes[src], states[src]))
            assert analysis.lattice.leq(carried, states[dst])
    assert solve(cfg, LineGen()) == states  # deterministic


@settings(max_examples=60, deadline=None)
@given(function_sources())
def test_finally_guards_every_exit(source):
    # wrap the random body in try/finally: no path may leave without
    # passing a node of the finally suite
    body = textwrap.indent(
        "\n".join(source.splitlines()[1:]), "    ")
    wrapped = ("def f():\n"
               "    try:\n"
               f"{body}\n"
               "    finally:\n"
               "        the_cleanup_call()\n")
    cfg = cfg_from(wrapped)
    cleanup_ids = {
        node.node_id for node in cfg.statement_nodes()
        if node.stmt is not None
        and "the_cleanup_call" in ast.unparse(node.stmt)
    }
    assert cleanup_ids  # the suite was lowered at least once

    def reaches(goal, banned):
        stack, seen = [cfg.entry], {cfg.entry}
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            for succ, _ in cfg.succs[node]:
                if succ not in seen and succ not in banned:
                    seen.add(succ)
                    stack.append(succ)
        return False

    for goal in (cfg.exit, cfg.raise_exit):
        if reaches(goal, banned=frozenset()):
            assert not reaches(goal, banned=frozenset(cleanup_ids))
