"""Property-based tests (hypothesis) on core data structures and codecs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs.adpcm import AdpcmCodec
from repro.codecs.huffman import huffman_compress, huffman_decompress
from repro.codecs.midi import MidiEvent, decode_events, encode_events
from repro.codecs.pcm import PcmCodec
from repro.codecs.rle import rle_decode, rle_encode
from repro.codecs.varint import (
    read_svarint,
    read_uvarint,
    write_svarint,
    write_uvarint,
)
from repro.core import stream_ops
from repro.core.elements import MediaElement
from repro.core.intervals import Interval, IntervalRelation, relate
from repro.core.media_types import media_type_registry
from repro.core.rational import Rational
from repro.core.streams import StreamCategory, TimedStream, TimedTuple
from repro.core.time_system import DiscreteTimeSystem
from repro.storage.indexes import SampleSizeTable, TimeToSampleTable


# -- strategies ----------------------------------------------------------------

rationals = st.builds(
    Rational,
    st.integers(min_value=-10**6, max_value=10**6),
    st.integers(min_value=1, max_value=10**4),
)

positive_rationals = st.builds(
    Rational,
    st.integers(min_value=1, max_value=10**6),
    st.integers(min_value=1, max_value=10**4),
)


@st.composite
def timed_tuples(draw, max_elements=20):
    """A valid Definition 3 tuple sequence: non-decreasing starts."""
    count = draw(st.integers(min_value=0, max_value=max_elements))
    tuples = []
    start = 0
    for _ in range(count):
        start += draw(st.integers(min_value=0, max_value=10))
        duration = draw(st.integers(min_value=0, max_value=10))
        size = draw(st.integers(min_value=0, max_value=1000))
        tuples.append(TimedTuple(MediaElement(size=size), start, duration))
    return tuples


def make_stream(tuples):
    video = media_type_registry.get("pal-video")
    return TimedStream(video, tuples, validate_constraints=False)


# -- rational / time systems ----------------------------------------------------


class TestRationalProperties:
    @given(rationals, rationals)
    def test_addition_commutes_and_stays_rational(self, a, b):
        assert a + b == b + a
        assert isinstance(a + b, Rational)

    @given(rationals)
    def test_negation_involution(self, a):
        assert -(-a) == a

    @given(positive_rationals, st.integers(-10**6, 10**6))
    def test_time_system_roundtrip(self, frequency, ticks):
        system = DiscreteTimeSystem(frequency)
        assert system.to_discrete(system.to_continuous(ticks)) == ticks

    @given(positive_rationals, rationals)
    def test_floor_ceil_bracket(self, frequency, seconds):
        system = DiscreteTimeSystem(frequency)
        low, high = system.floor(seconds), system.ceil(seconds)
        assert low <= high <= low + 1
        assert system.to_continuous(low) <= seconds <= system.to_continuous(high)


# -- intervals -------------------------------------------------------------------


class TestIntervalProperties:
    @given(rationals, rationals, rationals, rationals)
    def test_exactly_one_allen_relation(self, a, b, c, d):
        first = Interval(min(a, b), max(a, b))
        second = Interval(min(c, d), max(c, d))
        relation = relate(first, second)
        assert relate(second, first) is relation.inverse

    @given(rationals, rationals, rationals)
    def test_translation_preserves_relation(self, a, b, offset):
        first = Interval(min(a, b), max(a, b))
        second = Interval(min(a, b) + 1, max(a, b) + 2)
        before = relate(first, second)
        after = relate(first.translate(offset), second.translate(offset))
        assert before is after


# -- streams ----------------------------------------------------------------------


class TestStreamProperties:
    @given(timed_tuples())
    def test_category_partition(self, tuples):
        """Homogeneous/heterogeneous and continuous/non-continuous are
        exact partitions; uniform implies cbr implies continuous."""
        stream = make_stream(tuples)
        categories = stream.categories()
        assert (StreamCategory.HOMOGENEOUS in categories) != (
            StreamCategory.HETEROGENEOUS in categories
        )
        assert (StreamCategory.CONTINUOUS in categories) != (
            StreamCategory.NON_CONTINUOUS in categories
        )
        if StreamCategory.UNIFORM in categories:
            assert StreamCategory.CONSTANT_DATA_RATE in categories
        if StreamCategory.CONSTANT_DATA_RATE in categories:
            assert StreamCategory.CONTINUOUS in categories
        if StreamCategory.EVENT_BASED in categories and len(stream) > 1:
            # events at distinct ticks are non-continuous
            starts = {t.start for t in stream}
            if len(starts) > 1:
                assert StreamCategory.NON_CONTINUOUS in categories

    @given(timed_tuples(), st.integers(-100, 100))
    def test_translate_preserves_structure(self, tuples, offset):
        stream = make_stream(tuples)
        moved = stream_ops.translate(stream, offset)
        assert len(moved) == len(stream)
        assert moved.span_ticks == stream.span_ticks
        assert moved.categories() == stream.categories()

    @given(timed_tuples(), st.integers(1, 4))
    def test_scale_preserves_categories(self, tuples, factor):
        stream = make_stream(tuples)
        scaled = stream_ops.scale(stream, factor)
        assert scaled.span_ticks == stream.span_ticks * factor
        # Size-based and descriptor-based categories survive scaling;
        # only the data-rate value changes, not its constancy.
        assert stream.is_continuous() == scaled.is_continuous()
        assert stream.is_homogeneous() == scaled.is_homogeneous()

    @given(timed_tuples(), timed_tuples())
    def test_concat_length_additive(self, tuples_a, tuples_b):
        a, b = make_stream(tuples_a), make_stream(tuples_b)
        joined = stream_ops.concat(a, b)
        assert len(joined) == len(a) + len(b)
        assert joined.span_ticks == a.span_ticks + b.span_ticks

    @given(timed_tuples())
    def test_at_tick_consistent_with_gaps(self, tuples):
        """No positive-duration element covers any tick inside a gap.

        Zero-duration events may still *occur* at such ticks — they
        cover no time, so they don't close gaps.
        """
        stream = make_stream(tuples)
        for begin, end in stream_ops.gaps(stream):
            for tick in (begin, end - 1):
                assert all(
                    t.duration == 0 for t in stream.at_tick(tick)
                )


# -- codecs ------------------------------------------------------------------------


class TestCodecProperties:
    @given(st.binary(max_size=2000))
    def test_rle_roundtrip(self, data):
        assert rle_decode(rle_encode(data)) == data

    @given(st.binary(max_size=2000))
    def test_huffman_roundtrip(self, data):
        assert huffman_decompress(huffman_compress(data)) == data

    @given(st.lists(st.integers(0, 2**40), max_size=50))
    def test_uvarint_stream_roundtrip(self, values):
        out = bytearray()
        for value in values:
            write_uvarint(out, value)
        offset = 0
        recovered = []
        for _ in values:
            value, offset = read_uvarint(bytes(out), offset)
            recovered.append(value)
        assert recovered == values
        assert offset == len(out)

    @given(st.lists(st.integers(-2**30, 2**30), max_size=50))
    def test_svarint_stream_roundtrip(self, values):
        out = bytearray()
        for value in values:
            write_svarint(out, value)
        offset = 0
        for expected in values:
            value, offset = read_svarint(bytes(out), offset)
            assert value == expected

    @given(st.lists(st.integers(-32768, 32767), min_size=0, max_size=600))
    def test_pcm_roundtrip_exact(self, values):
        codec = PcmCodec(16, 1)
        samples = np.array(values, dtype=np.int16)
        decoded = codec.decode(codec.encode(samples))
        assert np.array_equal(decoded[:, 0], samples)

    @settings(max_examples=25)
    @given(st.lists(st.integers(-32768, 32767), min_size=1, max_size=400),
           st.integers(16, 128))
    def test_adpcm_structure_roundtrip(self, values, block):
        """ADPCM is lossy but must preserve count and bounded error
        relative to the adaptive step size."""
        codec = AdpcmCodec(block_samples=block)
        samples = np.array(values, dtype=np.int16)
        decoded = codec.decode(codec.encode(samples))
        assert len(decoded) == len(samples)
        assert decoded.dtype == np.int16

    @given(st.lists(
        st.tuples(st.integers(0, 10), st.integers(0, 127), st.integers(1, 127)),
        max_size=30,
    ))
    def test_midi_roundtrip(self, triples):
        tick = 0
        events = []
        for delta, pitch, velocity in triples:
            tick += delta
            events.append(MidiEvent.note_on(tick, pitch, velocity))
        assert decode_events(encode_events(events)) == events


# -- index structures ----------------------------------------------------------------


class TestIndexProperties:
    @given(st.lists(st.integers(1, 20), min_size=1, max_size=60))
    def test_stts_inverse(self, durations):
        table = TimeToSampleTable.from_durations(durations)
        for sample in range(table.sample_count):
            assert table.sample_at(table.time_of(sample)) == sample
            assert table.duration_of(sample) == durations[sample]

    @given(st.lists(st.integers(0, 5000), min_size=1, max_size=60))
    def test_stsz_total(self, sizes):
        table = SampleSizeTable.from_sizes(sizes)
        assert table.total_bytes() == sum(sizes)
        assert [table.size_of(i) for i in range(len(sizes))] == sizes
