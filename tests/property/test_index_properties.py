"""Property-based tests for the relational temporal index.

The linear scan is the correctness oracle: whatever catalog hypothesis
builds, the indexed backend must return byte-identical result sets —
same names, same order — including after ``set_attribute`` mutations.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.media_object import StillMediaObject
from repro.core.media_types import media_type_registry
from repro.query.database import MediaDatabase
from repro.query.index import demonstrate_correctness, encode_attribute

#: Values with canonical encodings, deliberately aliasing under Python
#: equality (True == 1 == 1.0 == Fraction(1)).
indexable_values = st.sampled_from([
    None, True, False, 0, 1, -3, 1.0, 0.5, 2.5,
    Fraction(1), Fraction(1, 2), "a", "b", "1", "",
])


def _still(name):
    text_type = media_type_registry.get("text")
    descriptor = text_type.make_media_descriptor()
    return StillMediaObject(text_type, descriptor, name, name=name)


class TestEncodeAttribute:
    @given(indexable_values, indexable_values)
    def test_encoding_equality_matches_python_equality(self, x, y):
        """Two indexable values encode identically iff ``x == y``."""
        assert (encode_attribute(x) == encode_attribute(y)) == (x == y)

    def test_unindexable_values_encode_to_none(self):
        assert encode_attribute(float("nan")) is None
        assert encode_attribute(object()) is None
        assert encode_attribute([1, 2]) is None


class TestBackendAgreement:
    @given(st.lists(indexable_values, min_size=1, max_size=24),
           indexable_values)
    @settings(max_examples=60, deadline=None)
    def test_attribute_filters_agree(self, stored, wanted):
        db = MediaDatabase("agree", index=True)
        for i, value in enumerate(stored):
            db.add_object(_still(f"o{i:02d}"), v=value, parity=i % 2)
        for filters in ({"v": wanted}, {"v": wanted, "parity": 0}):
            indexed = [o.name for o in db.objects(backend="index", **filters)]
            linear = [o.name for o in db.objects(backend="linear", **filters)]
            assert indexed == linear

    @given(st.lists(indexable_values, min_size=1, max_size=16),
           st.integers(0, 15), indexable_values)
    @settings(max_examples=60, deadline=None)
    def test_agreement_survives_mutation(self, stored, victim, new_value):
        """The stale-index regression: mutate, then query both ways."""
        db = MediaDatabase("mutate", index=True)
        for i, value in enumerate(stored):
            db.add_object(_still(f"o{i:02d}"), v=value)
        db.set_attribute(f"o{victim % len(stored):02d}", "v", new_value)
        indexed = [o.name for o in db.objects(backend="index", v=new_value)]
        linear = [o.name for o in db.objects(backend="linear", v=new_value)]
        assert indexed == linear
        assert f"o{victim % len(stored):02d}" in indexed

    @given(st.integers(0, 2**20))
    @settings(max_examples=8, deadline=None)
    def test_randomized_catalogs_agree(self, seed):
        """The full harness: selections, temporal predicates, axes and
        lineage through both backends on a seeded random catalog."""
        report = demonstrate_correctness(
            seed=seed, objects=24, components=20, windows=8, mutations=6,
        )
        assert report["ok"], report["disagreements"]
