"""Property-based tests on storage: layout invariants, container roundtrip."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blob.blob import MemoryBlob, PagedBlob
from repro.blob.pages import MemoryPager, PageStore
from repro.core.interpretation import Interpretation, PlacementEntry
from repro.core.media_types import media_type_registry
from repro.core.time_system import PAL_TIME
from repro.storage.container import deserialize_container, serialize_container
from repro.storage.layout import (
    TrackSpec,
    write_interleaved,
    write_sequential,
)


element_lists = st.lists(
    st.integers(min_value=0, max_value=300), min_size=1, max_size=30,
)


def make_tracks(size_lists):
    tracks = []
    for index, sizes in enumerate(size_lists):
        track = TrackSpec(f"t{index}", PAL_TIME)
        for i, size in enumerate(sizes):
            track.add(bytes([index + 1]) * size, i, 1)
        tracks.append(track)
    return tracks


class TestLayoutInvariants:
    @given(st.lists(element_lists, min_size=1, max_size=3))
    def test_placements_disjoint_and_faithful(self, size_lists):
        """No two placements overlap, and every placed span holds
        exactly the bytes that were written."""
        tracks = make_tracks(size_lists)
        blob = MemoryBlob()
        placements = write_interleaved(blob, tracks)
        spans = []
        for track in tracks:
            rows = placements[track.name]
            assert len(rows) == len(track.elements)
            for entry, element in zip(rows, track.elements):
                assert blob.read(entry.blob_offset, entry.size) == element.data
                spans.append((entry.blob_offset, entry.blob_offset + entry.size))
        spans.sort()
        for (a_begin, a_end), (b_begin, b_end) in zip(spans, spans[1:]):
            assert a_end <= b_begin

    @given(st.lists(element_lists, min_size=1, max_size=3))
    def test_unpadded_interleave_covers_blob(self, size_lists):
        tracks = make_tracks(size_lists)
        blob = MemoryBlob()
        write_interleaved(blob, tracks)
        assert len(blob) == sum(t.total_bytes() for t in tracks)

    @given(st.lists(element_lists, min_size=1, max_size=3),
           st.sampled_from([64, 256, 2324]))
    def test_padding_aligns_every_element(self, size_lists, sector):
        tracks = make_tracks(size_lists)
        blob = MemoryBlob()
        placements = write_interleaved(blob, tracks, sector_size=sector)
        for rows in placements.values():
            for entry in rows:
                assert entry.blob_offset % sector == 0

    @given(st.lists(element_lists, min_size=1, max_size=3))
    def test_sequential_equals_interleaved_content(self, size_lists):
        tracks = make_tracks(size_lists)
        sequential = write_sequential(MemoryBlob(), tracks)
        interleaved = write_interleaved(MemoryBlob(), tracks)
        for name in sequential:
            seq_sizes = [e.size for e in sequential[name]]
            int_sizes = [e.size for e in interleaved[name]]
            assert seq_sizes == int_sizes


class TestPagedBlobProperties:
    @given(st.lists(st.binary(max_size=200), max_size=20),
           st.integers(min_value=8, max_value=64))
    def test_paged_equals_memory(self, chunks, page_size):
        """PagedBlob and MemoryBlob satisfy an identical contract."""
        paged = PagedBlob(PageStore(MemoryPager(page_size=page_size)))
        memory = MemoryBlob()
        for chunk in chunks:
            assert paged.append(chunk) == memory.append(chunk)
        assert paged.read_all() == memory.read_all()
        if len(memory) >= 2:
            mid = len(memory) // 2
            assert paged.read(1, mid) == memory.read(1, mid)


class TestContainerProperties:
    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=100),
                    min_size=1, max_size=15))
    def test_roundtrip_preserves_everything(self, sizes):
        video_type = media_type_registry.get("pal-video")
        blob = MemoryBlob()
        entries = []
        for i, size in enumerate(sizes):
            offset = blob.append(bytes([i % 251]) * size)
            entries.append(PlacementEntry(i, i, 1, size, offset))
        descriptor = video_type.make_media_descriptor(
            frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
            color_model="RGB",
        )
        interpretation = Interpretation(blob, "prop")
        interpretation.add("v", video_type, descriptor, entries)

        restored = deserialize_container(serialize_container(interpretation))
        assert restored.blob.read_all() == blob.read_all()
        recovered = restored.sequence("v")
        assert [e.size for e in recovered] == sizes
        assert [e.blob_offset for e in recovered] == \
            [e.blob_offset for e in entries]
        # Double roundtrip is a fixed point.
        twice = serialize_container(
            deserialize_container(serialize_container(interpretation))
        )
        assert twice == serialize_container(interpretation)
