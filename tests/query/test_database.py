"""Tests for the media database catalog."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.core.composition import MultimediaObject
from repro.core.media_types import MediaKind
from repro.engine.recorder import Recorder
from repro.errors import CatalogError
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object
from repro.query.database import MediaDatabase


@pytest.fixture
def db():
    database = MediaDatabase("test-db")
    video = video_object(frames.scene(16, 16, 5, "pan"), "clip1")
    database.add_object(video, title="Clip One", director="Gibbs")
    audio = audio_object(signals.sine(440, 0.1, 8000), "track1",
                         sample_rate=8000, block_samples=266)
    database.add_object(audio, title="Clip One", language="en")
    return database


class TestObjects:
    def test_add_get(self, db):
        assert db.get_object("clip1").name == "clip1"
        assert "clip1" in db
        assert len(db) == 2

    def test_duplicate_rejected(self, db):
        with pytest.raises(CatalogError, match="already"):
            db.add_object(db.get_object("clip1"))

    def test_unknown(self, db):
        with pytest.raises(CatalogError, match="clip1"):
            db.get_object("nope")

    def test_attributes(self, db):
        assert db.attributes_of("clip1")["director"] == "Gibbs"
        db.set_attribute("clip1", "year", 1994)
        assert db.attributes_of("clip1")["year"] == 1994

    def test_select_by_kind(self, db):
        assert [o.name for o in db.objects(kind=MediaKind.VIDEO)] == ["clip1"]

    def test_select_by_media_type(self, db):
        assert [o.name for o in db.objects(media_type="block-audio")] == ["track1"]

    def test_select_by_attribute(self, db):
        """The paper's VideoClip example: title/director attributes
        alongside the media-valued content."""
        assert len(db.objects(title="Clip One")) == 2
        assert [o.name for o in db.objects(director="Gibbs")] == ["clip1"]
        assert db.objects(director="Kubrick") == []

    def test_select_with_predicate(self, db):
        found = db.objects(where=lambda e: "language" in e.attributes)
        assert [o.name for o in found] == ["track1"]


class TestInterpretations:
    def test_sequences_cataloged_as_objects(self, db):
        video = video_object(frames.scene(16, 16, 3, "pan"), "src-video")
        interpretation = Recorder(MemoryBlob()).record([video])
        db.add_interpretation(interpretation)
        assert "src-video" in db
        obj = db.get_object("src-video")
        assert len(obj.stream()) == 3
        assert db.attributes_of("src-video")["interpretation"] == "capture"

    def test_duplicate_interpretation_rejected(self, db):
        video = video_object(frames.scene(16, 16, 2, "pan"), "v2")
        interpretation = Recorder(MemoryBlob()).record([video])
        db.add_interpretation(interpretation)
        with pytest.raises(CatalogError):
            db.add_interpretation(interpretation)

    def test_get_interpretation(self, db):
        video = video_object(frames.scene(16, 16, 2, "pan"), "v3")
        interpretation = Recorder(MemoryBlob()).record([video])
        db.add_interpretation(interpretation)
        assert db.get_interpretation("capture") is interpretation
        with pytest.raises(CatalogError):
            db.get_interpretation("nope")


class TestMultimedia:
    def test_add_get(self, db):
        movie = MultimediaObject("movie")
        movie.add_temporal(db.get_object("clip1"), at=0, label="picture")
        db.add_multimedia(movie)
        assert db.get_multimedia("movie") is movie
        assert db.multimedia() == ["movie"]

    def test_duplicate_rejected(self, db):
        db.add_multimedia(MultimediaObject("m"))
        with pytest.raises(CatalogError):
            db.add_multimedia(MultimediaObject("m"))


class TestLineage:
    def test_derived_lineage_queryable(self, db):
        from repro.edit import MediaEditor

        editor = MediaEditor()
        clip = db.get_object("clip1")
        cut = editor.cut(clip, 0, 3, name="cut1")
        db.add_object(cut, title="Clip One (cut)")
        lineage = db.lineage("cut1")
        assert clip in lineage
        assert db.derived_from("clip1") == [cut]

    def test_stats(self, db):
        stats = db.stats()
        assert stats["objects"] == 2
        assert stats["derived_objects"] == 0
        assert "blob_store" in stats
