"""Edge cases for ``MediaDatabase.objects(**filters)``."""

import pytest

from repro.core.media_types import MediaKind
from repro.media import frames
from repro.media.objects import video_object
from repro.query.database import MediaDatabase


@pytest.fixture
def db():
    database = MediaDatabase("filters-db")
    for name, attrs in [
        ("news1", {"topic": "news", "year": 1994}),
        ("news2", {"topic": "news"}),
        ("sport1", {"topic": "sport", "year": 1993}),
    ]:
        clip = video_object(frames.scene(16, 16, 2, "pan"), name)
        database.add_object(clip, **attrs)
    return database


class TestNoMatch:
    def test_unknown_attribute_value(self, db):
        assert db.objects(topic="weather") == []

    def test_unknown_attribute_key(self, db):
        assert db.objects(channel="BBC") == []

    def test_conjunction_must_fully_match(self, db):
        # topic matches two entries, year only one of them
        assert [o.name for o in db.objects(topic="news", year=1994)] == [
            "news1"
        ]
        assert db.objects(topic="sport", year=1994) == []

    def test_empty_database(self):
        assert MediaDatabase("empty").objects() == []
        assert MediaDatabase("empty").objects(topic="news") == []


class TestAttributeAbsence:
    def test_absent_attribute_never_matches_a_value(self, db):
        # news2 has no year at all
        assert "news2" not in [o.name for o in db.objects(year=1994)]

    def test_none_matches_absent_attribute(self, db):
        """``attributes.get(key)`` yields None for absent keys, so
        filtering on ``key=None`` selects entries *without* the
        attribute — pinned as the documented semantics."""
        assert [o.name for o in db.objects(year=None)] == ["news2"]


class TestCallableFilters:
    def test_where_predicate(self, db):
        recent = db.objects(where=lambda e: e.attributes.get("year", 0) > 1993)
        assert [o.name for o in recent] == ["news1"]

    def test_where_composes_with_attribute_filters(self, db):
        found = db.objects(
            topic="news", where=lambda e: "year" in e.attributes,
        )
        assert [o.name for o in found] == ["news1"]

    def test_where_rejecting_everything(self, db):
        assert db.objects(where=lambda e: False) == []

    def test_where_sees_catalog_entry(self, db):
        seen = []
        db.objects(where=lambda e: seen.append(e.object.name) or True)
        assert sorted(seen) == ["news1", "news2", "sport1"]


class TestResultOrdering:
    def test_results_sorted_by_name(self, db):
        names = [o.name for o in db.objects(kind=MediaKind.VIDEO)]
        assert names == sorted(names)
