"""Tests for the relational temporal-index accelerator."""

import pytest

from repro.core.composition import MultimediaObject
from repro.core.intervals import Interval
from repro.core.media_object import StillMediaObject
from repro.core.media_types import MediaKind, media_type_registry
from repro.core.rational import Rational
from repro.edit import MediaEditor
from repro.errors import QueryError, QueryIndexError
from repro.media import frames
from repro.media.objects import video_object
from repro.obs import Observability
from repro.query.database import MediaDatabase
from repro.query.index import TemporalIndex, encode_attribute


def still(name):
    text_type = media_type_registry.get("text")
    return StillMediaObject(
        text_type, text_type.make_media_descriptor(), name, name=name,
    )


@pytest.fixture
def db():
    return MediaDatabase("indexed", index=True)


@pytest.fixture
def timeline_db(db):
    """A composition with instants, duplicate starts and nesting."""
    shared = still("leaf")
    nested = MultimediaObject("nested")
    nested.add_temporal(shared, at=0, duration=2, label="inner-a")
    nested.add_temporal(shared, at=1, duration=1, label="inner-b")
    m = MultimediaObject("timeline")
    m.add_temporal(shared, at=0, duration=4, label="video")
    m.add_temporal(shared, at=0, duration=2, label="title")
    m.add_temporal(shared, at=2, duration=0, label="marker")
    m.add_temporal(shared, at=5, duration=3, label="credits")
    m.add_temporal(nested, at=1, label="insert")
    db.add_object(shared)
    db.add_multimedia(m)
    return db


class TestEncodeAttribute:
    def test_python_equality_aliases_collapse(self):
        assert encode_attribute(True) == encode_attribute(1)
        assert encode_attribute(1) == encode_attribute(1.0)
        assert encode_attribute(0.5) == encode_attribute(Rational(1, 2))

    def test_distinct_types_stay_distinct(self):
        assert encode_attribute("1") != encode_attribute(1)
        assert encode_attribute(None) != encode_attribute("")
        assert encode_attribute(None) != encode_attribute(0)


class TestObjectSelection:
    def test_indexed_and_linear_agree(self, db):
        for i in range(8):
            db.add_object(still(f"s{i}"), genre="news" if i % 2 else "drama",
                          year=1990 + i)
        for filters in ({"genre": "news"}, {"genre": "drama", "year": 1994},
                        {"year": 2050}):
            assert ([o.name for o in db.objects(backend="index", **filters)]
                    == [o.name for o in db.objects(backend="linear",
                                                   **filters)])

    def test_kind_and_media_type_filters(self, db):
        db.add_object(still("text-1"))
        db.add_object(video_object(frames.scene(8, 8, 2, "orbit"), "vid-1"))
        indexed = db.objects(kind=MediaKind.VIDEO, backend="index")
        assert [o.name for o in indexed] == ["vid-1"]
        assert ([o.name for o in db.objects(media_type="text",
                                            backend="index")]
                == ["text-1"])

    def test_where_predicate_runs_on_the_linear_scan(self, db):
        db.add_object(still("a"), year=1990)
        db.add_object(still("b"), year=1999)
        result = db.objects(where=lambda e: e.attributes["year"] > 1995)
        assert [o.name for o in result] == ["b"]

    def test_unindexable_filter_falls_back_to_linear(self, db):
        marker = object()
        db.add_object(still("a"), tag=marker)
        db.add_object(still("b"), tag="plain")
        assert [o.name for o in db.objects(tag=marker)] == ["a"]
        counters = db.index.census()
        assert counters["rows"]["objects"] == 2

    def test_backend_index_without_index_raises(self):
        plain = MediaDatabase("plain")
        plain.add_object(still("a"))
        with pytest.raises(QueryIndexError, match="no index"):
            plain.objects(backend="index")

    def test_unknown_backend_rejected(self, db):
        with pytest.raises(QueryError, match="unknown backend"):
            db.objects(backend="sideways")


class TestSetAttributeWriteThrough:
    def test_stale_index_regression(self, db):
        """Mutate an attribute, then query both backends: they must
        agree, and the indexed answer must see the new value."""
        db.add_object(still("clip"), genre="drama")
        db.set_attribute("clip", "genre", "news")
        indexed = [o.name for o in db.objects(backend="index", genre="news")]
        linear = [o.name for o in db.objects(backend="linear", genre="news")]
        assert indexed == linear == ["clip"]
        assert db.objects(backend="index", genre="drama") == []

    def test_new_key_write_through(self, db):
        db.add_object(still("clip"))
        db.set_attribute("clip", "restored", True)
        assert [o.name for o in db.objects(backend="index", restored=True)
                ] == ["clip"]


class TestTemporalPredicates:
    def test_overlapping_agrees_and_orders_by_timeline(self, timeline_db):
        for label in ("video", "title", "marker", "credits", "insert"):
            assert (timeline_db.components_overlapping(
                        "timeline", label, backend="index")
                    == timeline_db.components_overlapping(
                        "timeline", label, backend="linear"))

    def test_instant_at_start_overlaps(self, db):
        m = MultimediaObject("m")
        leaf = still("x")
        m.add_temporal(leaf, at=2, duration=0, label="instant")
        m.add_temporal(leaf, at=2, duration=3, label="body")
        db.add_multimedia(m)
        assert db.components_overlapping("m", "instant",
                                         backend="index") == ["body"]

    def test_during_window(self, timeline_db):
        for window in ((0, 1), (2, 2), (4, 5), (0, 10), (30, 40)):
            assert (timeline_db.components_during("timeline", *window,
                                                  backend="index")
                    == timeline_db.components_during("timeline", *window,
                                                     backend="linear"))

    def test_unknown_label_raises_on_both_backends(self, timeline_db):
        for backend in ("index", "linear"):
            with pytest.raises(QueryError):
                timeline_db.components_overlapping("timeline", "ghost",
                                                   backend=backend)

    def test_temporal_module_fast_path(self, timeline_db):
        from repro.query.temporal import components_during

        m = timeline_db.get_multimedia("timeline")
        assert (components_during(m, 0, 3, index=timeline_db.index)
                == components_during(m, 0, 3))


class TestCompositionAxes:
    def test_occurrences_in_document_order(self, timeline_db):
        indexed = timeline_db.occurrences_of("leaf", backend="index")
        linear = timeline_db.occurrences_of("leaf", backend="linear")
        assert indexed == linear
        assert indexed[0][:2] == ("timeline", "video")
        # Nested placements carry absolute intervals.
        assert ("timeline", "insert/inner-b",
                Interval(Rational(2), Rational(3))) in indexed

    def test_descendants_range_query(self, timeline_db):
        assert (timeline_db.component_descendants("timeline", "insert",
                                                  backend="index")
                == ["insert/inner-a", "insert/inner-b"])
        assert (timeline_db.component_descendants("timeline",
                                                  backend="index")
                == timeline_db.component_descendants("timeline",
                                                     backend="linear"))

    def test_ancestors_range_query(self, timeline_db):
        assert (timeline_db.index.component_ancestors(
                    "timeline", "insert/inner-b") == ["insert"])

    def test_unknown_path_raises(self, timeline_db):
        with pytest.raises(QueryError, match="no component path"):
            timeline_db.component_descendants("timeline", "ghost",
                                              backend="index")

    def test_version_counter_catches_late_adds(self, timeline_db):
        """Top-level mutation after cataloging re-encodes lazily."""
        m = timeline_db.get_multimedia("timeline")
        m.add_temporal(still("late"), at=20, duration=2, label="late")
        assert "late" in timeline_db.components_during(
            "timeline", 19, 23, backend="index",
        )

    def test_refresh_index_catches_deep_mutation(self, timeline_db):
        """Edits inside a nested component bypass the root version;
        refresh_index() re-encodes explicitly."""
        m = timeline_db.get_multimedia("timeline")
        nested = m.component("insert").component
        nested.add_temporal(still("deep"), at=9, duration=1, label="deep")
        timeline_db.refresh_index()
        assert (timeline_db.component_descendants("timeline", "insert",
                                                  backend="index")
                == ["insert/inner-a", "insert/inner-b", "insert/deep"])


class TestLineageAxes:
    @pytest.fixture
    def chain_db(self, db):
        clip = video_object(frames.scene(8, 8, 8, "orbit"), "clip")
        editor = MediaEditor()
        cut = editor.cut(clip, 0, 4, name="cut")
        final = editor.cut(cut, 0, 2, name="final")
        db.add_object(clip)
        db.add_object(cut)
        db.add_object(final)
        return db

    def test_lineage_agrees(self, chain_db):
        indexed = [o.name for o in chain_db.lineage("final",
                                                    backend="index")]
        linear = [o.name for o in chain_db.lineage("final",
                                                   backend="linear")]
        assert indexed == linear == ["cut", "clip"]

    def test_derived_from_agrees(self, chain_db):
        indexed = [o.name for o in chain_db.derived_from("clip",
                                                         backend="index")]
        linear = [o.name for o in chain_db.derived_from("clip",
                                                        backend="linear")]
        assert indexed == linear == ["cut", "final"]

    def test_underived_object_has_empty_axes(self, db):
        db.add_object(still("alone"))
        assert db.lineage("alone", backend="index") == []
        assert db.derived_from("alone", backend="index") == []


class TestRollups:
    def test_duration_rollup_shares_and_ranks(self, timeline_db):
        rollup = timeline_db.duration_rollup("timeline")
        assert rollup[0]["label"] == "video"       # longest component
        assert rollup[0]["rank"] == 1
        assert sum(row["share"] for row in rollup) == pytest.approx(1.0)

    def test_fidelity_rollup_census(self, db):
        db.add_object(still("t1"))
        db.add_object(still("t2"))
        db.add_object(video_object(frames.scene(8, 8, 2, "orbit"), "v1"))
        rollup = db.fidelity_rollup()
        by_type = {row["media_type"]: row for row in rollup}
        assert by_type["text"]["objects"] == 2
        assert by_type["pal-video"]["objects"] == 1

    def test_rollups_require_an_index(self):
        plain = MediaDatabase("plain")
        with pytest.raises(QueryIndexError, match="needs an index"):
            plain.fidelity_rollup()


class TestInstrumentation:
    def test_write_through_and_fastpath_counters(self):
        obs = Observability()
        db = MediaDatabase("obs", index=True, obs=obs)
        db.add_object(still("a"), genre="x")
        db.objects(backend="index", genre="x")
        writes = obs.metrics.counter("query.index.writes").total()
        hits = obs.metrics.counter("query.index.fastpath").total()
        assert writes >= 2          # object row + attribute row
        assert hits == 1

    def test_fallback_counter(self):
        obs = Observability()
        db = MediaDatabase("obs", index=True, obs=obs)
        db.add_object(still("a"), tag=object())
        db.objects(tag="anything")
        assert obs.metrics.counter("query.index.fallbacks").total() == 1

    def test_census_reports_writes(self, timeline_db):
        census = timeline_db.index.census()
        assert census["rows"]["objects"] == 1
        assert census["rows"]["composition"] > 0
        assert census["writes"] > 0
        assert census["last_write"] is not None
        assert census["size_bytes"] > 0

    def test_stats_embed_the_census(self, timeline_db):
        assert "index" in timeline_db.stats()

    def test_file_backed_index(self, tmp_path):
        path = str(tmp_path / "catalog.idx")
        db = MediaDatabase("filed", index=path)
        db.add_object(still("a"))
        assert db.index.census()["path"] == path


class TestTemporalIndexDirect:
    def test_set_attribute_on_unknown_object_raises(self):
        index = TemporalIndex()
        with pytest.raises(QueryIndexError, match="write-through"):
            index.set_attribute("ghost", "k", 1)

    def test_context_manager_closes(self):
        with TemporalIndex() as index:
            assert index.census()["rows"]["objects"] == 0
