"""Tests for clip-repository ingestion."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.pcm import PcmCodec
from repro.engine.recorder import Recorder
from repro.errors import CatalogError
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object
from repro.query.database import MediaDatabase
from repro.storage.container import write_container


@pytest.fixture
def clip_directory(tmp_path):
    """Three container files, two of which reuse the track name video1."""
    for index, kind in enumerate(("orbit", "cut")):
        video = video_object(frames.scene(24, 16, 4, kind), "video1")
        interpretation = Recorder(MemoryBlob()).record([video])
        write_container(interpretation, tmp_path / f"clip{index}.rmf")
    audio = audio_object(signals.sine(440, 0.2, 8000), "narration",
                         sample_rate=8000, block_samples=320)
    interpretation = Recorder(MemoryBlob()).record(
        [audio], encoders={"narration": PcmCodec(16, 1).encode},
    )
    write_container(interpretation, tmp_path / "voiceover.rmf")
    (tmp_path / "notes.txt").write_text("not a container")
    return tmp_path


class TestIngestDirectory:
    def test_ingests_all_containers(self, clip_directory):
        db = MediaDatabase("clips")
        added = db.ingest_directory(clip_directory)
        assert added == ["clip0", "clip1", "voiceover"]
        assert db.interpretations() == ["clip0", "clip1", "voiceover"]

    def test_name_collisions_namespaced(self, clip_directory):
        db = MediaDatabase("clips")
        db.ingest_directory(clip_directory)
        # Both clips had a video1 track; both are addressable.
        assert "clip0/video1" in db
        assert "clip1/video1" in db
        assert len(db.get_object("clip0/video1").stream()) == 4

    def test_source_file_attribute(self, clip_directory):
        db = MediaDatabase("clips")
        db.ingest_directory(clip_directory)
        attributes = db.attributes_of("voiceover/narration")
        assert attributes["source_file"].endswith("voiceover.rmf")
        assert attributes["interpretation"] == "voiceover"

    def test_non_containers_ignored(self, clip_directory):
        db = MediaDatabase("clips")
        added = db.ingest_directory(clip_directory)
        assert "notes" not in added

    def test_reingest_rejected(self, clip_directory):
        db = MediaDatabase("clips")
        db.ingest_directory(clip_directory)
        with pytest.raises(CatalogError, match="already"):
            db.ingest_directory(clip_directory)

    def test_ingested_objects_queryable(self, clip_directory):
        from repro.core.media_types import MediaKind

        db = MediaDatabase("clips")
        db.ingest_directory(clip_directory)
        audio = db.objects(kind=MediaKind.AUDIO)
        assert [o.name for o in audio] == ["voiceover/narration"]

    def test_ingested_objects_playable(self, clip_directory):
        from repro.engine.player import CostModel, Player

        db = MediaDatabase("clips")
        db.ingest_directory(clip_directory)
        report = Player(CostModel(bandwidth=5_000_000)).play(
            db.get_interpretation("clip0")
        )
        assert report.element_count == 4

    def test_empty_directory(self, tmp_path):
        db = MediaDatabase("clips")
        assert db.ingest_directory(tmp_path / "nothing_here",
                                   pattern="*.rmf") == []


@pytest.fixture
def broken_directory(tmp_path):
    """Valid, corrupt, valid — sorted ingest hits the corruption mid-run."""
    for stem, kind in (("aaa", "orbit"), ("ccc", "cut")):
        video = video_object(frames.scene(24, 16, 4, kind), "video1")
        interpretation = Recorder(MemoryBlob()).record([video])
        write_container(interpretation, tmp_path / f"{stem}.rmf")
    (tmp_path / "bbb.rmf").write_bytes(b"this is not a container")
    return tmp_path


class TestIngestAtomicity:
    def test_failure_is_per_file_atomic(self, broken_directory):
        """A corrupt file fails its own ingest and nothing else:
        earlier files stay cataloged, the failing file leaves zero
        partial state."""
        from repro.errors import MediaModelError

        db = MediaDatabase("clips")
        with pytest.raises(MediaModelError):
            db.ingest_directory(broken_directory)
        assert db.interpretations() == ["aaa"]
        assert "aaa/video1" in db
        assert "bbb/video1" not in db
        assert not any(name.startswith("bbb") for name in db.interpretations())

    def test_object_collision_leaves_no_partial_state(self, clip_directory):
        """A name collision detected mid-file rolls the file back to
        nothing: no interpretation, no subset of its objects."""
        db = MediaDatabase("clips")
        db.add_object(
            video_object(frames.scene(8, 8, 2, "orbit"), "clip0/video1")
        )
        with pytest.raises(CatalogError, match="already cataloged"):
            db.ingest_directory(clip_directory)
        assert db.interpretations() == []

    def test_retry_after_failure_resumes_cleanly(self, broken_directory):
        """Re-running after fixing the bad file ingests only the
        missing files — no double-prefixed names, no duplicates."""
        from repro.errors import MediaModelError

        db = MediaDatabase("clips")
        with pytest.raises(MediaModelError):
            db.ingest_directory(broken_directory)
        (broken_directory / "bbb.rmf").unlink()
        with pytest.raises(CatalogError, match="already"):
            db.ingest_directory(broken_directory)
        # Only the already-ingested file blocks; a scoped retry of the
        # remaining file succeeds with clean names.
        added = db.ingest_directory(broken_directory, pattern="ccc.rmf")
        assert added == ["ccc"]
        assert sorted(n for n in db.interpretations()) == ["aaa", "ccc"]
        assert "ccc/video1" in db
        assert "ccc/ccc/video1" not in db


class TestIngestCopyOnRename:
    def test_source_container_is_not_mutated(self, clip_directory):
        """Ingest renames a private copy; reloading the file still
        yields the original names."""
        from repro.storage.container import read_container

        db = MediaDatabase("clips")
        db.ingest_directory(clip_directory)
        source = read_container(clip_directory / "clip0.rmf")
        assert source.names() == ["video1"]
        assert [o.name for o in source.media_objects()] == ["video1"]

    def test_ingested_interpretation_named_after_stem(self, clip_directory):
        db = MediaDatabase("clips")
        db.ingest_directory(clip_directory)
        assert db.get_interpretation("clip0").name == "clip0"
        assert db.get_interpretation("clip0").names() == ["video1"]


class TestIngestVerifyAndObservability:
    def test_verify_gate_accepts_clean_containers(self, clip_directory):
        db = MediaDatabase("clips")
        added = db.ingest_directory(clip_directory, verify=True)
        assert added == ["clip0", "clip1", "voiceover"]

    def test_ingest_counters(self, clip_directory):
        from repro.obs import Observability

        obs = Observability()
        db = MediaDatabase("clips", obs=obs)
        db.ingest_directory(clip_directory)
        assert obs.metrics.counter("query.ingest.files").total() == 3
        assert obs.metrics.counter("query.ingest.objects").total() == 3

    def test_failure_counter(self, broken_directory):
        from repro.errors import MediaModelError
        from repro.obs import Observability

        obs = Observability()
        db = MediaDatabase("clips", obs=obs)
        with pytest.raises(MediaModelError):
            db.ingest_directory(broken_directory)
        assert obs.metrics.counter("query.ingest.failures").total() == 1

    def test_ingested_interpretations_are_instrumented(self, clip_directory):
        from repro.obs import Observability

        obs = Observability()
        db = MediaDatabase("clips", obs=obs)
        db.ingest_directory(clip_directory)
        db.get_interpretation("clip0").materialize("video1")
        assert obs.metrics.counter(
            "core.interpretation.materializations"
        ).total() == 1

    def test_write_through_to_index(self, clip_directory):
        db = MediaDatabase("clips", index=True)
        db.ingest_directory(clip_directory)
        indexed = [o.name for o in db.objects(backend="index",
                                              interpretation="clip0")]
        linear = [o.name for o in db.objects(backend="linear",
                                             interpretation="clip0")]
        assert indexed == linear == ["clip0/video1"]
