"""Tests for clip-repository ingestion."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.pcm import PcmCodec
from repro.engine.recorder import Recorder
from repro.errors import CatalogError
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object
from repro.query.database import MediaDatabase
from repro.storage.container import write_container


@pytest.fixture
def clip_directory(tmp_path):
    """Three container files, two of which reuse the track name video1."""
    for index, kind in enumerate(("orbit", "cut")):
        video = video_object(frames.scene(24, 16, 4, kind), "video1")
        interpretation = Recorder(MemoryBlob()).record([video])
        write_container(interpretation, tmp_path / f"clip{index}.rmf")
    audio = audio_object(signals.sine(440, 0.2, 8000), "narration",
                         sample_rate=8000, block_samples=320)
    interpretation = Recorder(MemoryBlob()).record(
        [audio], encoders={"narration": PcmCodec(16, 1).encode},
    )
    write_container(interpretation, tmp_path / "voiceover.rmf")
    (tmp_path / "notes.txt").write_text("not a container")
    return tmp_path


class TestIngestDirectory:
    def test_ingests_all_containers(self, clip_directory):
        db = MediaDatabase("clips")
        added = db.ingest_directory(clip_directory)
        assert added == ["clip0", "clip1", "voiceover"]
        assert db.interpretations() == ["clip0", "clip1", "voiceover"]

    def test_name_collisions_namespaced(self, clip_directory):
        db = MediaDatabase("clips")
        db.ingest_directory(clip_directory)
        # Both clips had a video1 track; both are addressable.
        assert "clip0/video1" in db
        assert "clip1/video1" in db
        assert len(db.get_object("clip0/video1").stream()) == 4

    def test_source_file_attribute(self, clip_directory):
        db = MediaDatabase("clips")
        db.ingest_directory(clip_directory)
        attributes = db.attributes_of("voiceover/narration")
        assert attributes["source_file"].endswith("voiceover.rmf")
        assert attributes["interpretation"] == "voiceover"

    def test_non_containers_ignored(self, clip_directory):
        db = MediaDatabase("clips")
        added = db.ingest_directory(clip_directory)
        assert "notes" not in added

    def test_reingest_rejected(self, clip_directory):
        db = MediaDatabase("clips")
        db.ingest_directory(clip_directory)
        with pytest.raises(CatalogError, match="already"):
            db.ingest_directory(clip_directory)

    def test_ingested_objects_queryable(self, clip_directory):
        from repro.core.media_types import MediaKind

        db = MediaDatabase("clips")
        db.ingest_directory(clip_directory)
        audio = db.objects(kind=MediaKind.AUDIO)
        assert [o.name for o in audio] == ["voiceover/narration"]

    def test_ingested_objects_playable(self, clip_directory):
        from repro.engine.player import CostModel, Player

        db = MediaDatabase("clips")
        db.ingest_directory(clip_directory)
        report = Player(CostModel(bandwidth=5_000_000)).play(
            db.get_interpretation("clip0")
        )
        assert report.element_count == 4

    def test_empty_directory(self, tmp_path):
        db = MediaDatabase("clips")
        assert db.ingest_directory(tmp_path / "nothing_here",
                                   pattern="*.rmf") == []
