"""Tests for authorization and rights tracking (conclusion's open item)."""

import pytest

from repro.edit import MediaEditor
from repro.media import frames
from repro.media.objects import video_object
from repro.query.authorization import (
    AuthorizationError,
    Operation,
    RightsRegistry,
)


@pytest.fixture
def footage():
    return video_object(frames.scene(16, 16, 10, "pan"), "footage")


@pytest.fixture
def registry(footage):
    registry = RightsRegistry()
    registry.register(footage, holder="studio",
                      notice="(c) 1994 Studio Pictures")
    return registry


class TestGrants:
    def test_holder_has_all_rights(self, registry, footage):
        for operation in Operation:
            assert registry.allowed("studio", footage, operation)

    def test_stranger_has_none(self, registry, footage):
        assert not registry.allowed("pirate", footage, Operation.READ)
        with pytest.raises(AuthorizationError, match="pirate"):
            registry.check("pirate", footage, Operation.READ)

    def test_grant_and_revoke(self, registry, footage):
        registry.grant(footage, "editor", Operation.READ)
        assert registry.allowed("editor", footage, Operation.READ)
        registry.revoke(footage, "editor")
        assert not registry.allowed("editor", footage, Operation.READ)

    def test_implication_lattice(self, registry, footage):
        registry.grant(footage, "viewer", Operation.PRESENT)
        assert registry.allowed("viewer", footage, Operation.READ)
        assert not registry.allowed("viewer", footage, Operation.DERIVE)

        registry.grant(footage, "exporter", Operation.EXPORT)
        assert registry.allowed("exporter", footage, Operation.DERIVE)
        assert registry.allowed("exporter", footage, Operation.READ)
        assert not registry.allowed("exporter", footage, Operation.PRESENT)

    def test_double_registration_rejected(self, registry, footage):
        with pytest.raises(AuthorizationError, match="already"):
            registry.register(footage, holder="other")

    def test_grant_needs_record(self, footage):
        registry = RightsRegistry()
        with pytest.raises(AuthorizationError, match="no rights record"):
            registry.grant(footage, "x", Operation.READ)

    def test_unowned_material_is_public(self, footage):
        registry = RightsRegistry()
        assert registry.allowed("anyone", footage, Operation.EXPORT)


class TestProvenanceAwareness:
    """Rights follow derivation: a composite is governed by its raw
    material's rights."""

    def test_derived_governed_by_antecedents(self, registry, footage):
        editor = MediaEditor()
        cut = editor.cut(footage, 0, 5, name="cut")
        # No record on the cut itself: the footage's rights govern.
        assert registry.allowed("studio", cut, Operation.PRESENT)
        assert not registry.allowed("pirate", cut, Operation.PRESENT)

    def test_license_on_composite_cannot_launder(self, registry, footage):
        editor = MediaEditor()
        cut = editor.cut(footage, 0, 5, name="cut")
        registry.register(cut, holder="editor")
        # The editor owns the cut but still lacks rights on the footage.
        assert not registry.allowed("editor", cut, Operation.PRESENT)
        registry.grant(footage, "editor", Operation.PRESENT)
        assert registry.allowed("editor", cut, Operation.PRESENT)

    def test_check_names_blocking_object(self, registry, footage):
        editor = MediaEditor()
        cut = editor.cut(footage, 0, 5, name="cut")
        with pytest.raises(AuthorizationError, match="footage"):
            registry.check("pirate", cut, Operation.PRESENT)

    def test_notices_accumulate(self, registry, footage):
        other = video_object(frames.scene(16, 16, 10, "cut"), "broll")
        registry.register(other, holder="agency", notice="(c) Agency")
        editor = MediaEditor()
        fade = editor.transition(footage, other, 4, name="fade")
        notices = registry.notices(fade)
        assert "(c) 1994 Studio Pictures" in notices
        assert "(c) Agency" in notices

    def test_derive_checked(self, registry, footage):
        registry.grant(footage, "editor", Operation.DERIVE)
        derived = registry.derive_checked(
            "editor", "video-edit", [footage],
            {"edit_list": [(0, 0, 5)]}, name="licensed-cut",
        )
        assert derived.is_derived
        record = registry.record_of(derived)
        assert record.holder == "editor"

    def test_derive_checked_blocks_without_right(self, registry, footage):
        with pytest.raises(AuthorizationError):
            registry.derive_checked(
                "pirate", "video-edit", [footage],
                {"edit_list": [(0, 0, 5)]},
            )
