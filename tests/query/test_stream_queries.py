"""Tests for element-level queries and lazy stream iteration."""

import pytest

from repro.blob.blob import Blob, MemoryBlob
from repro.codecs.mpeg_like import MpegLikeCodec
from repro.core.interpretation import Interpretation, PlacementEntry
from repro.core.media_types import media_type_registry
from repro.core.rational import Rational
from repro.errors import QueryError
from repro.media import frames
from repro.query.stream_queries import (
    bytes_for_range,
    elements_in_range,
    elements_where,
    key_elements,
    size_statistics,
)


class CountingBlob(MemoryBlob):
    """A blob that counts reads, to verify laziness."""

    def __init__(self, data=b""):
        super().__init__(data)
        self.reads = 0

    def read(self, offset, size):
        self.reads += 1
        return super().read(offset, size)


@pytest.fixture
def mpeg_interpretation():
    """An IBBP-coded sequence stored in decode order with kind descriptors."""
    codec = MpegLikeCodec(quality=40, gop_pattern="IBBP")
    shot = frames.scene(32, 24, 8, "orbit")
    encoded = codec.encode_sequence(shot)
    video_type = media_type_registry.get("pal-video")
    blob = CountingBlob()
    entries = []
    for frame in encoded:
        offset = blob.append(frame.data)
        descriptor = video_type.make_element_descriptor(frame_kind=frame.kind)
        entries.append(PlacementEntry(
            element_number=frame.display_index,
            start=frame.display_index, duration=1,
            size=frame.size, blob_offset=offset,
            element_descriptor=descriptor,
        ))
    interpretation = Interpretation(blob, "gop")
    descriptor = video_type.make_media_descriptor(
        frame_rate=25, frame_width=32, frame_height=24, frame_depth=24,
        color_model="RGB", encoding="mpeg-like",
    )
    interpretation.add("video", video_type, descriptor, entries)
    return interpretation, blob


class TestElementsInRange:
    def test_whole_range(self, mpeg_interpretation):
        interpretation, _ = mpeg_interpretation
        found = elements_in_range(interpretation, "video", 0, 1)
        assert len(found) == 8

    def test_partial_range(self, mpeg_interpretation):
        interpretation, _ = mpeg_interpretation
        found = elements_in_range(
            interpretation, "video", Rational(2, 25), Rational(5, 25),
        )
        assert [e.element_number for e in found] == [2, 3, 4]

    def test_partial_overlap_included(self, mpeg_interpretation):
        interpretation, _ = mpeg_interpretation
        # A range starting mid-element still needs that element.
        found = elements_in_range(
            interpretation, "video", Rational(5, 50), Rational(4, 25),
        )
        assert found[0].element_number == 2

    def test_empty_range_rejected(self, mpeg_interpretation):
        interpretation, _ = mpeg_interpretation
        with pytest.raises(QueryError):
            elements_in_range(interpretation, "video", 1, 0)

    def test_bytes_for_range(self, mpeg_interpretation):
        interpretation, _ = mpeg_interpretation
        half = bytes_for_range(interpretation, "video", 0, Rational(4, 25))
        full = bytes_for_range(interpretation, "video", 0, 1)
        assert 0 < half < full


class TestDescriptorQueries:
    def test_key_elements_of_gop(self, mpeg_interpretation):
        interpretation, _ = mpeg_interpretation
        keys = key_elements(interpretation, "video")
        assert [e.element_number for e in keys] == [0, 4]

    def test_all_intra_means_all_keys(self):
        video_type = media_type_registry.get("pal-video")
        blob = MemoryBlob(b"x" * 30)
        interpretation = Interpretation(blob)
        descriptor = video_type.make_media_descriptor(
            frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
            color_model="RGB",
        )
        interpretation.add("v", video_type, descriptor, [
            PlacementEntry(i, i, 1, 10, i * 10) for i in range(3)
        ])
        assert len(key_elements(interpretation, "v")) == 3

    def test_elements_where(self, mpeg_interpretation):
        interpretation, _ = mpeg_interpretation
        b_frames = elements_where(
            interpretation, "video",
            lambda d: d is not None and d.get("frame_kind") == "B",
        )
        assert [e.element_number for e in b_frames] == [1, 2, 5, 6]


class TestSizeStatistics:
    def test_statistics(self, mpeg_interpretation):
        interpretation, _ = mpeg_interpretation
        stats = size_statistics(interpretation, "video")
        assert stats["elements"] == 8
        assert stats["min_size"] <= stats["mean_size"] <= stats["max_size"]
        assert stats["burstiness"] > 1.0  # I frames dwarf B frames

    def test_empty_rejected(self):
        video_type = media_type_registry.get("pal-video")
        interpretation = Interpretation(MemoryBlob())
        descriptor = video_type.make_media_descriptor(
            frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
            color_model="RGB",
        )
        interpretation.add("v", video_type, descriptor, [])
        with pytest.raises(QueryError):
            size_statistics(interpretation, "v")


class TestLazyIteration:
    def test_reads_happen_on_demand(self, mpeg_interpretation):
        interpretation, blob = mpeg_interpretation
        blob.reads = 0
        iterator = interpretation.iter_stream("video")
        assert blob.reads == 0  # nothing read yet
        next(iterator)
        assert blob.reads == 1
        next(iterator)
        assert blob.reads == 2

    def test_yields_time_order_with_entries(self, mpeg_interpretation):
        interpretation, _ = mpeg_interpretation
        pairs = list(interpretation.iter_stream("video"))
        assert len(pairs) == 8
        starts = [t.start for t, _ in pairs]
        assert starts == sorted(starts)
        for timed, entry in pairs:
            assert timed.element.size == entry.size

    def test_decode_hook(self, mpeg_interpretation):
        interpretation, _ = mpeg_interpretation
        lengths = [
            t.element.payload
            for t, _ in interpretation.iter_stream(
                "video", decode=lambda raw, entry: len(raw),
            )
        ]
        assert all(isinstance(v, int) and v > 0 for v in lengths)
