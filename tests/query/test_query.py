"""Tests for the §1.2 queries."""

import numpy as np
import pytest

from repro.bench.workloads import multilingual_movie
from repro.codecs.scalable import ScalableVideoCodec
from repro.core.elements import MediaElement
from repro.core.media_types import MediaKind, media_type_registry
from repro.core.media_object import StreamMediaObject
from repro.core.rational import Rational
from repro.core.streams import TimedStream
from repro.errors import QueryError
from repro.media import frames
from repro.media.objects import image_object, video_object
from repro.query import (
    frames_at_fidelity,
    select_duration,
    select_objects,
    select_track,
)


@pytest.fixture(scope="module")
def movie_db():
    return multilingual_movie(seconds=0.4)


class TestSelectTrack:
    """'select a specific sound track' (§1.2)."""

    def test_by_language(self, movie_db):
        db, movie = movie_db
        track = select_track(db, "feature", "fr")
        assert track.name == "feature-audio-fr"
        assert track.kind is MediaKind.AUDIO

    def test_by_movie_object(self, movie_db):
        db, movie = movie_db
        assert select_track(db, movie, "de").name == "feature-audio-de"

    def test_missing_language_lists_available(self, movie_db):
        db, movie = movie_db
        with pytest.raises(QueryError) as excinfo:
            select_track(db, "feature", "jp")
        message = str(excinfo.value)
        assert "en" in message and "fr" in message


class TestSelectDuration:
    """'select a specific duration' (§1.2) — non-destructively."""

    def test_returns_derived_object(self, movie_db):
        db, _ = movie_db
        video = db.get_object("feature-video")
        clip = select_duration(video, 0, Rational(1, 5))
        assert clip.is_derived
        assert clip.descriptor["duration"] == Rational(1, 5)
        assert len(clip.stream()) == 5  # 0.2 s at 25 fps

    def test_inexact_bounds_expand_to_ticks(self, movie_db):
        db, _ = movie_db
        video = db.get_object("feature-video")
        clip = select_duration(video, Rational(1, 100), Rational(9, 100))
        # floor(0.25)=0, ceil(2.25)=3 ticks.
        assert len(clip.stream()) == 3

    def test_empty_selection_rejected(self, movie_db):
        db, _ = movie_db
        video = db.get_object("feature-video")
        with pytest.raises(QueryError, match="empty"):
            select_duration(video, Rational(1, 5), Rational(1, 5))

    def test_still_rejected(self, small_frame):
        image = image_object(small_frame, "img")
        with pytest.raises(QueryError, match="not time-based"):
            select_duration(image, 0, 1)


class TestFramesAtFidelity:
    """'retrieve frames at a specific visual fidelity' (§1.2)."""

    @pytest.fixture
    def scalable_video(self):
        codec = ScalableVideoCodec(levels=3, quality=60)
        shot = frames.scene(48, 32, 4, "pan")
        video_type = media_type_registry.get("pal-video")
        elements = []
        for frame in shot:
            data = codec.encode(frame)
            elements.append(MediaElement(payload=data, size=len(data)))
        stream = TimedStream.from_elements(video_type, elements)
        descriptor = video_type.make_media_descriptor(
            frame_rate=25, frame_width=48, frame_height=32, frame_depth=24,
            color_model="RGB", encoding="scalable",
            duration=Rational(4, 25),
        )
        return StreamMediaObject(video_type, descriptor, stream, "sv"), codec

    def test_reduced_fidelity_reads_fewer_bytes(self, scalable_video):
        obj, codec = scalable_video
        low, read_low, total = frames_at_fidelity(obj, 0, codec)
        full, read_full, _ = frames_at_fidelity(obj, 2, codec)
        assert low[0].shape == (8, 12, 3)
        assert full[0].shape == (32, 48, 3)
        assert read_low < read_full <= total

    def test_frame_subset(self, scalable_video):
        obj, codec = scalable_video
        some, _, _ = frames_at_fidelity(obj, 1, codec, frame_indices=[0, 2])
        assert len(some) == 2

    def test_non_scalable_payload_rejected(self, movie_db):
        db, _ = movie_db
        video = db.get_object("feature-video")  # raw ndarray payloads
        with pytest.raises(QueryError, match="scalable"):
            frames_at_fidelity(video, 0)


class TestSelectObjects:
    def test_kind_and_attributes(self, movie_db):
        db, _ = movie_db
        soundtracks = select_objects(db, kind=MediaKind.AUDIO,
                                     role="soundtrack")
        assert len(soundtracks) == 3
