"""Tests for temporal predicates over compositions."""

import pytest

from repro.core.composition import MultimediaObject
from repro.core.intervals import IntervalRelation
from repro.core.rational import Rational
from repro.errors import QueryError
from repro.media import frames
from repro.media.objects import video_object
from repro.query.temporal import (
    components_during,
    components_overlapping,
    gaps_in_presentation,
    relation_matrix,
)


@pytest.fixture
def composition():
    """Figure 4(b)-like timeline: video [0,2), music [0,2), narration [1,2)."""
    clip = video_object(frames.scene(16, 16, 50, "pan"), "clip")   # 2 s
    short = video_object(frames.scene(16, 16, 25, "pan"), "short")  # 1 s
    m = MultimediaObject("m")
    m.add_temporal(clip, at=0, label="video3")
    m.add_temporal(clip, at=0, label="audio1")
    m.add_temporal(short, at=1, label="audio2")
    return m


class TestOverlapping:
    def test_all_overlap_video(self, composition):
        assert components_overlapping(composition, "video3") == [
            "audio1", "audio2",
        ]

    def test_narration_overlaps_both(self, composition):
        assert set(components_overlapping(composition, "audio2")) == {
            "video3", "audio1",
        }

    def test_unknown_label(self, composition):
        with pytest.raises(QueryError):
            components_overlapping(composition, "ghost")


class TestDuring:
    def test_window_start(self, composition):
        assert components_during(composition, 0, Rational(1, 2)) == [
            "audio1", "video3",
        ]

    def test_window_end(self, composition):
        found = components_during(composition, Rational(3, 2), 2)
        assert set(found) == {"audio1", "video3", "audio2"}

    def test_empty_window(self, composition):
        assert components_during(composition, 10, 11) == []


class TestRelationMatrix:
    def test_pairs(self, composition):
        matrix = relation_matrix(composition)
        assert matrix[("audio1", "video3")] is IntervalRelation.EQUAL
        assert matrix[("audio2", "video3")] is IntervalRelation.FINISHES
        assert matrix[("video3", "audio2")] is IntervalRelation.FINISHED_BY
        assert len(matrix) == 6


class TestGaps:
    def test_no_gaps(self, composition):
        assert gaps_in_presentation(composition) == []

    def test_gap_found(self):
        clip = video_object(frames.scene(16, 16, 25, "pan"), "c")
        m = MultimediaObject("gappy")
        m.add_temporal(clip, at=0, label="a")
        m.add_temporal(clip, at=3, label="b")
        gaps = gaps_in_presentation(m)
        assert len(gaps) == 1
        assert gaps[0].start == 1
        assert gaps[0].end == 3
