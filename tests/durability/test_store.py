"""Tests for the durable page store: no-steal commits and redo recovery."""

import pytest

from repro.blob.pages import FilePager, MemoryPager
from repro.durability import (
    DurablePageStore,
    WriteAheadLog,
    recover_page_store,
)
from repro.errors import (
    BlobError,
    DurabilityError,
    SimulatedCrash,
    WalCorruptionError,
)
from repro.faults import CrashInjector, CrashSite, FaultPlan, SimulatedMedium

PAGE = 128


@pytest.fixture
def fs():
    return SimulatedMedium()


def make_store(fs, crash=None, **kwargs):
    pager = FilePager("/data/store.pg", page_size=PAGE, fs=fs)
    wal = WriteAheadLog("/data/wal", segment_bytes=4096, fs=fs, crash=crash)
    return DurablePageStore(pager, wal, crash=crash, **kwargs)


def reopen(fs, **kwargs):
    pager = FilePager("/data/store.pg", page_size=PAGE, fs=fs, repair=True)
    wal = WriteAheadLog("/data/wal", segment_bytes=4096, fs=fs)
    return recover_page_store(pager, wal, **kwargs)


class TestNoSteal:
    def test_wal_required(self):
        with pytest.raises(DurabilityError, match="WriteAheadLog"):
            DurablePageStore(MemoryPager())

    def test_uncommitted_write_never_reaches_pager(self, fs):
        store = make_store(fs)
        page = store.allocate()
        store.write(page, b"\x07" * PAGE)
        assert len(store.pager) == 0  # not even grown yet
        assert store.read(page) == b"\x07" * PAGE  # served from overlay
        store.commit()
        assert store.pager.read_page(page) == b"\x07" * PAGE

    def test_commit_with_nothing_pending_is_none(self, fs):
        store = make_store(fs)
        assert store.commit() is None

    def test_partial_write_merges_into_full_image(self, fs):
        store = make_store(fs)
        page = store.allocate()
        store.write(page, b"\xaa" * PAGE)
        store.commit()
        store.write(page, b"\xbb" * 4, offset=8)
        expected = bytearray(b"\xaa" * PAGE)
        expected[8:12] = b"\xbb" * 4
        assert store.read(page) == bytes(expected)
        store.commit()
        assert store.pager.read_page(page) == bytes(expected)

    def test_rollback_discards(self, fs):
        store = make_store(fs)
        page = store.allocate()
        store.write(page, b"\xcc" * PAGE)
        # Two pending units discarded: the grow and the dirty image.
        assert store.rollback() == 2
        assert store.pending_writes == 0
        assert len(store.pager) == 0

    def test_freed_page_reuse_is_zeroed_and_journaled(self, fs):
        store = make_store(fs)
        page = store.allocate()
        store.write(page, b"\xdd" * PAGE)
        store.commit()
        store.free(page)
        again = store.allocate()
        assert again == page
        assert store.read(again) == b"\x00" * PAGE
        store.commit()
        assert store.pager.read_page(again) == b"\x00" * PAGE

    def test_write_bounds_checked(self, fs):
        store = make_store(fs)
        with pytest.raises(BlobError, match="out of range"):
            store.write(3, b"x")
        page = store.allocate()
        with pytest.raises(BlobError, match="exceeds page size"):
            store.write(page, b"x" * (PAGE + 1))


class TestCheckpoint:
    def test_checkpoint_truncates_wal(self, fs):
        store = make_store(fs)
        page = store.allocate()
        store.write(page, b"\x01" * PAGE)
        store.commit()
        assert store.wal.size_bytes() > 0
        store.checkpoint()
        assert store.wal.size_bytes() == 0

    def test_checkpoint_with_pending_rejected(self, fs):
        store = make_store(fs)
        page = store.allocate()
        store.write(page, b"\x02" * PAGE)
        with pytest.raises(DurabilityError, match="uncommitted"):
            store.checkpoint()

    def test_auto_checkpoint(self, fs):
        store = make_store(fs, auto_checkpoint_bytes=1)
        page = store.allocate()
        store.write(page, b"\x03" * PAGE)
        store.commit()
        # Any committed byte crosses the 1-byte threshold.
        assert store.wal.size_bytes() == 0


class TestRecovery:
    def test_acknowledged_commit_survives_crash_before_apply(self, fs):
        crash = CrashInjector(CrashSite("store.commit.acknowledged"))
        store = make_store(fs, crash=crash)
        page = store.allocate()
        store.write(page, b"\x10" * PAGE)
        with pytest.raises(SimulatedCrash):
            store.commit()
        fs.crash()
        recovered, report = reopen(fs)
        assert report.committed_txns == 1
        assert report.pages_applied == 1
        assert recovered.read(page) == b"\x10" * PAGE

    def test_unacknowledged_txn_discarded(self):
        """Records without a durable commit marker are dropped — even
        when the disk happens to have kept them."""
        fs = SimulatedMedium(
            plan=FaultPlan(seed=1, unsynced_survival_rate=1.0)
        )
        crash = CrashInjector(CrashSite("wal.commit"))
        store = make_store(fs, crash=crash)
        page = store.allocate()
        store.write(page, b"\x20" * PAGE)
        with pytest.raises(SimulatedCrash):
            store.commit()
        fs.crash()
        recovered, report = reopen(fs)
        assert report.committed_txns == 0
        assert report.pages_applied == 0
        assert report.discarded_records > 0
        assert len(recovered.pager) == 0

    def test_recovery_is_idempotent(self, fs):
        crash = CrashInjector(CrashSite("store.commit.acknowledged"))
        store = make_store(fs, crash=crash)
        page = store.allocate()
        store.write(page, b"\x30" * PAGE)
        with pytest.raises(SimulatedCrash):
            store.commit()
        fs.crash()
        first, _ = reopen(fs)
        image = first.read(page)
        first.close()
        second, _ = reopen(fs)
        assert second.read(page) == image

    def test_oversized_write_record_rejected(self, fs):
        wal = WriteAheadLog("/data/wal", fs=fs)
        txn = wal.begin()
        wal.log_write(txn, 0, b"short")  # not a full PAGE image
        wal.commit(txn)
        pager = FilePager("/data/store.pg", page_size=PAGE, fs=fs)
        with pytest.raises(WalCorruptionError, match="page size"):
            recover_page_store(pager, wal)

    def test_checksums_rebuilt_after_recovery(self, fs):
        crash = CrashInjector(CrashSite("store.commit.apply"))
        store = make_store(fs, crash=crash, checksums=True)
        page = store.allocate()
        store.write(page, b"\x40" * PAGE)
        with pytest.raises(SimulatedCrash):
            store.commit()
        fs.crash()
        recovered, _ = reopen(fs, checksums=True)
        assert recovered.verify_page(page)

    def test_close_rolls_back_uncommitted(self, fs):
        store = make_store(fs)
        page = store.allocate()
        store.write(page, b"\x50" * PAGE)
        store.close()
        assert store.pending_writes == 0
        assert store.pending_grows == 0
