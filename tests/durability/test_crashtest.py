"""Tests for the crash matrix harness and its built-in scenarios.

The exhaustive sweeps (every site of every full scenario, under several
seeded disk behaviours) carry the ``crash`` marker; a smoke subset runs
unmarked so a default test run still exercises the harness end to end.
"""

import pytest

from repro.durability import (
    CheckpointCrashScenario,
    ContainerCrashScenario,
    CrashMatrix,
    PageStoreCrashScenario,
    default_scenarios,
)
from repro.obs import Observability


class TestHarness:
    def test_discovery_finds_sites(self):
        matrix = CrashMatrix(ContainerCrashScenario(elements=2))
        sites = matrix.discover()
        assert sites  # the workload visits crash points
        names = {site.name for site in sites}
        assert "atomic.after_sync" in names

    def test_smoke_scenarios_pass(self):
        for scenario in default_scenarios(small=True):
            report = CrashMatrix(scenario).run()
            assert report.passed, report.summary()
            assert all(o.fired for o in report.outcomes)

    def test_max_sites_bounds_the_sweep(self):
        matrix = CrashMatrix(ContainerCrashScenario(elements=2))
        report = matrix.run(max_sites=3)
        assert len(report.outcomes) == 3

    def test_summary_counts(self):
        report = CrashMatrix(
            ContainerCrashScenario(elements=2)
        ).run(max_sites=2)
        assert "crash matrix [container]" in report.summary()
        assert report.failures == []

    def test_matrix_emits_metrics(self):
        obs = Observability()
        CrashMatrix(ContainerCrashScenario(elements=2), obs=obs).run(
            max_sites=2
        )
        assert obs.metrics.counter("crashtest.sites").total() == 2


@pytest.mark.crash
class TestExhaustiveMatrix:
    """Every site of every full scenario, on three disk behaviours."""

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_page_store(self, seed):
        report = CrashMatrix(PageStoreCrashScenario(), seed=seed).run()
        assert report.passed, report.summary()

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_container(self, seed):
        report = CrashMatrix(ContainerCrashScenario(), seed=seed).run()
        assert report.passed, report.summary()

    @pytest.mark.parametrize("seed", [0, 42])
    def test_vod_checkpoint(self, seed):
        report = CrashMatrix(CheckpointCrashScenario(), seed=seed).run()
        assert report.passed, report.summary()
