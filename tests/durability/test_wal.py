"""Tests for the write-ahead log over the simulated medium."""

import pytest

from repro.durability.wal import (
    COMMIT,
    GROW,
    HEADER,
    WRITE,
    WriteAheadLog,
    encode_record,
)
from repro.errors import WalCorruptionError, WalError
from repro.faults import CrashInjector, CrashSite, FaultPlan, SimulatedMedium


def make_wal(fs, **kwargs):
    return WriteAheadLog("/data/wal", fs=fs, **kwargs)


@pytest.fixture
def fs():
    return SimulatedMedium()


class TestAppendAndScan:
    def test_roundtrip(self, fs):
        wal = make_wal(fs)
        txn = wal.begin()
        wal.log_grow(txn, 0)
        wal.log_write(txn, 0, b"\xaa" * 32)
        wal.commit(txn)
        scan = wal.scan()
        assert scan.committed_txns == {txn}
        assert scan.max_txn == txn
        types = [r.type for r in scan.records]
        assert types == [HEADER, GROW, WRITE, COMMIT]
        write = scan.records[2]
        assert write.page_no() == 0
        assert write.page_image() == b"\xaa" * 32
        assert not scan.torn_tail

    def test_uncommitted_records_discardable(self, fs):
        wal = make_wal(fs)
        committed = wal.begin()
        wal.log_write(committed, 0, b"x" * 8)
        wal.commit(committed)
        orphan = wal.begin()
        wal.log_write(orphan, 1, b"y" * 8)
        scan = wal.scan()
        discarded = scan.uncommitted_records()
        assert [r.txn for r in discarded] == [orphan]

    def test_txn_ids_monotonic_across_reopen(self, fs):
        wal = make_wal(fs)
        first = wal.begin()
        wal.log_write(first, 0, b"a")
        wal.commit(first)
        wal.close()
        reopened = make_wal(fs)
        assert reopened.begin() > first

    def test_record_accessors_typed(self, fs):
        wal = make_wal(fs)
        txn = wal.begin()
        wal.commit(txn)
        commit = wal.scan().records[-1]
        with pytest.raises(WalError):
            commit.page_no()
        with pytest.raises(WalError):
            commit.page_image()

    def test_tiny_segment_bytes_rejected(self, fs):
        with pytest.raises(WalError, match=">= 64"):
            make_wal(fs, segment_bytes=16)

    def test_unparseable_segment_name_rejected(self, fs):
        fs.makedirs("/data/wal")
        fs.open("/data/wal/wal-bogus!.seg", "wb").close()
        with pytest.raises(WalError, match="unparseable"):
            make_wal(fs)


class TestRotation:
    def test_small_segments_rotate(self, fs):
        wal = make_wal(fs, segment_bytes=128)
        for _ in range(4):
            txn = wal.begin()
            wal.log_write(txn, 0, b"z" * 64)
            wal.commit(txn)
        assert len(wal.segments()) > 1
        scan = wal.scan()
        assert len(scan.committed_txns) == 4

    def test_reopen_never_appends_to_old_tail(self, fs):
        wal = make_wal(fs)
        txn = wal.begin()
        wal.log_write(txn, 0, b"a" * 16)
        wal.commit(txn)
        wal.close()
        reopened = make_wal(fs)
        txn = reopened.begin()
        reopened.log_write(txn, 1, b"b" * 16)
        reopened.commit(txn)
        assert len(reopened.segments()) == 2

    def test_truncate_removes_everything(self, fs):
        wal = make_wal(fs, segment_bytes=128)
        for _ in range(3):
            txn = wal.begin()
            wal.log_write(txn, 0, b"z" * 64)
            wal.commit(txn)
        removed = wal.truncate()
        assert removed >= 1
        assert wal.segments() == []
        assert wal.size_bytes() == 0


class TestCrashSemantics:
    def test_committed_survives_crash(self, fs):
        wal = make_wal(fs)
        txn = wal.begin()
        wal.log_write(txn, 0, b"\x11" * 16)
        wal.commit(txn)
        fs.crash()
        scan = make_wal(fs).scan()
        assert txn in scan.committed_txns

    def test_unsynced_appends_vanish_cleanly(self, fs):
        """Without the commit fsync, a crash loses the records — the
        scan sees an empty (or shorter) log, never an error."""
        wal = make_wal(fs)
        txn = wal.begin()
        wal.log_write(txn, 0, b"\x22" * 16)
        fs.crash()
        scan = make_wal(fs).scan()
        assert txn not in scan.committed_txns
        assert scan.uncommitted_records() == []

    def test_torn_tail_detected_and_tolerated(self):
        """A torn unsynced append is the crash signature the scan
        forgives: records before it parse, the tail is flagged."""
        fs = SimulatedMedium(plan=FaultPlan(seed=3, torn_write_rate=1.0))
        wal = make_wal(fs)
        txn = wal.begin()
        wal.log_write(txn, 0, b"\x33" * 64)
        wal.commit(txn)
        orphan = wal.begin()
        wal.log_write(orphan, 1, b"\x44" * 64)
        fs.crash()
        scan = make_wal(fs).scan()
        assert txn in scan.committed_txns
        assert scan.torn_tail

    def test_mid_log_damage_refuses_replay(self, fs):
        wal = make_wal(fs, segment_bytes=128)
        for _ in range(3):
            txn = wal.begin()
            wal.log_write(txn, 0, b"z" * 64)
            wal.commit(txn)
        first = wal.segments()[0]
        with fs.open(f"/data/wal/wal-{first:08d}.seg", "r+b") as handle:
            handle.seek(20)
            handle.write(b"\xff")
        with pytest.raises(WalCorruptionError, match="mid-log"):
            wal.scan()


class TestCrashPoints:
    def test_commit_crash_point_fires_before_sync(self, fs):
        crash = CrashInjector(CrashSite("wal.commit.before_sync"))
        wal = make_wal(fs, crash=crash)
        txn = wal.begin()
        wal.log_write(txn, 0, b"\x55" * 16)
        from repro.errors import SimulatedCrash

        with pytest.raises(SimulatedCrash):
            wal.commit(txn)
        fs.crash()
        scan = make_wal(fs).scan()
        assert txn not in scan.committed_txns


class TestEncoding:
    def test_encode_record_checksummed(self):
        data = encode_record(WRITE, 7, b"payload")
        assert len(data) == 17 + len(b"payload")

    def test_describe_renders(self, fs):
        wal = make_wal(fs)
        txn = wal.begin()
        wal.log_write(txn, 0, b"q" * 8)
        wal.commit(txn)
        text = wal.describe()
        assert "committed txns: 1" in text
        assert "torn tail     : no" in text
