"""Tests for atomic whole-file commit over the simulated medium."""

import pytest

from repro.durability.atomic import (
    atomic_write_bytes,
    read_bytes,
    remove_stale_temp,
)
from repro.errors import SimulatedCrash
from repro.faults import CrashInjector, CrashSite, SimulatedMedium

CRASH_POINTS = [
    "atomic.begin",
    "atomic.after_write",
    "atomic.after_sync",
    "atomic.after_replace",
    "atomic.after_dir_sync",
]


@pytest.fixture
def fs():
    medium = SimulatedMedium()
    medium.makedirs("/media")
    return medium


class TestHappyPath:
    def test_write_then_read(self, fs):
        atomic_write_bytes("/media/a.rmf", b"content", fs=fs)
        assert read_bytes("/media/a.rmf", fs=fs) == b"content"

    def test_survives_crash(self, fs):
        atomic_write_bytes("/media/a.rmf", b"durable", fs=fs)
        fs.crash()
        assert read_bytes("/media/a.rmf", fs=fs) == b"durable"

    def test_no_temp_left_behind(self, fs):
        atomic_write_bytes("/media/a.rmf", b"x", fs=fs)
        assert not fs.exists("/media/a.rmf.tmp")

    def test_overwrite_replaces_whole_file(self, fs):
        atomic_write_bytes("/media/a.rmf", b"longer original", fs=fs)
        atomic_write_bytes("/media/a.rmf", b"new", fs=fs)
        assert read_bytes("/media/a.rmf", fs=fs) == b"new"


class TestCrashAtEveryPoint:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_old_or_new_never_a_prefix(self, point):
        """Killed at any protocol step, a reader after reboot sees the
        complete old bytes or the complete new bytes."""
        fs = SimulatedMedium()
        fs.makedirs("/media")
        atomic_write_bytes("/media/a.rmf", b"old version", fs=fs)
        fs.crash()  # baseline is durable
        crash = CrashInjector(CrashSite(point))
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes("/media/a.rmf", b"new version!", fs=fs,
                               crash=crash)
        fs.crash()
        remove_stale_temp("/media/a.rmf", fs=fs)
        assert read_bytes("/media/a.rmf", fs=fs) in (
            b"old version", b"new version!",
        )

    def test_crash_before_dir_sync_keeps_old(self):
        """The rename is only durable after the directory fsync — the
        classic resurrected-old-file bug, modeled faithfully."""
        fs = SimulatedMedium()
        fs.makedirs("/media")
        atomic_write_bytes("/media/a.rmf", b"old", fs=fs)
        fs.crash()
        crash = CrashInjector(CrashSite("atomic.after_replace"))
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes("/media/a.rmf", b"new", fs=fs, crash=crash)
        fs.crash()
        assert read_bytes("/media/a.rmf", fs=fs) == b"old"

    def test_crash_after_dir_sync_keeps_new(self, fs):
        atomic_write_bytes("/media/a.rmf", b"old", fs=fs)
        crash = CrashInjector(CrashSite("atomic.after_dir_sync"))
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes("/media/a.rmf", b"new", fs=fs, crash=crash)
        fs.crash()
        assert read_bytes("/media/a.rmf", fs=fs) == b"new"


class TestStaleTemp:
    def test_remove_stale_temp(self, fs):
        fs.open("/media/a.rmf.tmp", "wb").close()
        assert remove_stale_temp("/media/a.rmf", fs=fs) is True
        assert not fs.exists("/media/a.rmf.tmp")

    def test_nothing_to_remove(self, fs):
        assert remove_stale_temp("/media/a.rmf", fs=fs) is False
