"""Tests for BLOB interpretation (Definition 5)."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.core.interpretation import (
    Interpretation,
    InterpretedSequence,
    PlacementEntry,
)
from repro.core.media_types import media_type_registry
from repro.core.time_system import CD_AUDIO_TIME
from repro.errors import InterpretationError


@pytest.fixture
def video_type():
    return media_type_registry.get("pal-video")


@pytest.fixture
def audio_type():
    return media_type_registry.get("block-audio")


@pytest.fixture
def video_descriptor(video_type):
    return video_type.make_media_descriptor(
        frame_rate=25, frame_width=8, frame_height=8,
        frame_depth=24, color_model="RGB",
    )


@pytest.fixture
def audio_descriptor(audio_type):
    return audio_type.make_media_descriptor(
        sample_rate=44100, sample_size=16, channels=2, encoding="PCM",
    )


@pytest.fixture
def blob_and_interpretation(video_type, audio_type, video_descriptor,
                            audio_descriptor):
    """An interleaved two-sequence BLOB like Figure 2 (tiny)."""
    blob = MemoryBlob()
    video_entries = []
    audio_entries = []
    for i in range(4):
        frame = bytes([i]) * (10 + i)  # variable-size frames
        offset = blob.append(frame)
        video_entries.append(PlacementEntry(
            element_number=i, start=i, duration=1,
            size=len(frame), blob_offset=offset,
        ))
        samples = bytes([0x80 + i]) * 8
        offset = blob.append(samples)
        audio_entries.append(PlacementEntry(
            element_number=i, start=i * 1764, duration=1764,
            size=8, blob_offset=offset,
        ))
    interp = Interpretation(blob, "movie")
    interp.add("video1", video_type, video_descriptor, video_entries)
    interp.add("audio1", audio_type, audio_descriptor, audio_entries,
               time_system=CD_AUDIO_TIME)
    return blob, interp


class TestPlacementEntry:
    def test_end(self):
        assert PlacementEntry(0, 5, 3, 10, 0).end == 8

    def test_invalid_values_rejected(self):
        with pytest.raises(InterpretationError):
            PlacementEntry(-1, 0, 1, 10, 0)
        with pytest.raises(InterpretationError):
            PlacementEntry(0, 0, -1, 10, 0)
        with pytest.raises(InterpretationError):
            PlacementEntry(0, 0, 1, -10, 0)


class TestInterpretedSequence:
    def test_duplicate_element_numbers_rejected(self, video_type,
                                                video_descriptor):
        entries = [
            PlacementEntry(0, 0, 1, 10, 0),
            PlacementEntry(0, 1, 1, 10, 10),
        ]
        with pytest.raises(InterpretationError, match="duplicate"):
            InterpretedSequence("v", video_type, video_descriptor, entries)

    def test_start_order_must_follow_element_order(self, video_type,
                                                   video_descriptor):
        entries = [
            PlacementEntry(0, 5, 1, 10, 0),
            PlacementEntry(1, 3, 1, 10, 10),
        ]
        with pytest.raises(InterpretationError, match="before"):
            InterpretedSequence("v", video_type, video_descriptor, entries)

    def test_entries_sorted_by_element_number(self, video_type,
                                              video_descriptor):
        entries = [
            PlacementEntry(1, 1, 1, 10, 10),
            PlacementEntry(0, 0, 1, 10, 0),
        ]
        seq = InterpretedSequence("v", video_type, video_descriptor, entries)
        assert [e.element_number for e in seq] == [0, 1]

    def test_entry_lookup(self, blob_and_interpretation):
        _, interp = blob_and_interpretation
        entry = interp.sequence("video1").entry(2)
        assert entry.size == 12
        with pytest.raises(InterpretationError):
            interp.sequence("video1").entry(99)

    def test_entries_at_tick(self, blob_and_interpretation):
        _, interp = blob_and_interpretation
        audio = interp.sequence("audio1")
        assert audio.entries_at_tick(1764)[0].element_number == 1
        assert audio.entries_at_tick(1763)[0].element_number == 0
        assert audio.entries_at_tick(99999) == []


class TestTableColumns:
    """The paper's §4.1 logical tables."""

    def test_variable_size_video_table(self, blob_and_interpretation):
        _, interp = blob_and_interpretation
        assert interp.sequence("video1").table_columns() == (
            "elementNumber", "elementSize", "blobPlacement",
        )

    def test_constant_size_audio_table(self, blob_and_interpretation):
        _, interp = blob_and_interpretation
        assert interp.sequence("audio1").table_columns() == (
            "elementNumber", "blobPlacement",
        )

    def test_non_continuous_needs_full_table(self, video_type,
                                             video_descriptor):
        entries = [
            PlacementEntry(0, 0, 1, 10, 0),
            PlacementEntry(1, 5, 1, 10, 10),  # gap
        ]
        seq = InterpretedSequence("v", video_type, video_descriptor, entries)
        assert seq.table_columns() == (
            "elementNumber", "startTime", "duration",
            "elementDescriptor", "elementSize", "blobPlacement",
        )

    def test_table_rows_match_columns(self, blob_and_interpretation):
        _, interp = blob_and_interpretation
        seq = interp.sequence("audio1")
        rows = seq.table()
        # Audio element 0 follows the first (10-byte) video frame in the
        # interleaved BLOB — placement 10, exactly Figure 2's layout.
        assert rows[0] == (0, 10)
        assert len(rows) == 4


class TestMaterialization:
    def test_payloads_read_from_blob(self, blob_and_interpretation):
        _, interp = blob_and_interpretation
        stream = interp.materialize("video1")
        assert stream.tuples[2].element.payload == bytes([2]) * 12

    def test_lazy_materialization_skips_reads(self, blob_and_interpretation):
        _, interp = blob_and_interpretation
        stream = interp.materialize("video1", read_payloads=False)
        assert stream.tuples[0].element.payload is None
        assert stream.tuples[0].element.size == 10

    def test_decode_hook(self, blob_and_interpretation):
        _, interp = blob_and_interpretation
        stream = interp.materialize(
            "video1", decode=lambda raw, entry: len(raw)
        )
        assert [t.element.payload for t in stream] == [10, 11, 12, 13]

    def test_read_element(self, blob_and_interpretation):
        _, interp = blob_and_interpretation
        assert interp.read_element("video1", 1) == bytes([1]) * 11

    def test_interleaving_is_transparent(self, blob_and_interpretation):
        # Elements of the two sequences alternate in the BLOB, but each
        # materialized stream is clean — interpretation "encapsulat[es]
        # information about ... BLOB placement".
        _, interp = blob_and_interpretation
        audio = interp.materialize("audio1")
        assert audio.is_uniform()
        assert [t.element.payload[0] for t in audio] == [0x80, 0x81, 0x82, 0x83]

    def test_media_objects(self, blob_and_interpretation):
        _, interp = blob_and_interpretation
        objects = interp.media_objects()
        assert [o.name for o in objects] == ["audio1", "video1"]
        assert len(objects[1].stream()) == 4


class TestViews:
    def test_restrict_to_audio(self, blob_and_interpretation):
        # "an alternative view of the BLOB (e.g., only the audio
        # sequence is visible)"
        _, interp = blob_and_interpretation
        view = interp.restrict(["audio1"])
        assert view.names() == ["audio1"]
        assert "video1" not in view
        assert len(view.materialize("audio1")) == 4

    def test_restrict_shares_blob(self, blob_and_interpretation):
        blob, interp = blob_and_interpretation
        view = interp.restrict(["video1"])
        assert view.blob is blob

    def test_duplicate_sequence_rejected(self, blob_and_interpretation,
                                         video_type, video_descriptor):
        _, interp = blob_and_interpretation
        with pytest.raises(InterpretationError, match="already maps"):
            interp.add("video1", video_type, video_descriptor, [])


class TestValidation:
    def test_valid(self, blob_and_interpretation):
        _, interp = blob_and_interpretation
        interp.validate()

    def test_placement_beyond_blob_rejected(self, video_type,
                                            video_descriptor):
        blob = MemoryBlob(b"short")
        interp = Interpretation(blob)
        interp.add("v", video_type, video_descriptor, [
            PlacementEntry(0, 0, 1, 100, 0),
        ])
        with pytest.raises(InterpretationError, match="beyond BLOB"):
            interp.validate()

    def test_unknown_sequence(self, blob_and_interpretation):
        _, interp = blob_and_interpretation
        with pytest.raises(InterpretationError, match="no sequence"):
            interp.sequence("nope")

    def test_coverage_full(self, blob_and_interpretation):
        _, interp = blob_and_interpretation
        assert interp.coverage() == 1.0

    def test_coverage_with_padding(self, video_type, video_descriptor):
        blob = MemoryBlob(b"\x00" * 100)
        interp = Interpretation(blob)
        interp.add("v", video_type, video_descriptor, [
            PlacementEntry(0, 0, 1, 50, 0),
        ])
        assert interp.coverage() == 0.5

    def test_describe_mentions_sequences(self, blob_and_interpretation):
        _, interp = blob_and_interpretation
        text = interp.describe()
        assert "video1" in text and "audio1" in text
