"""Tests for timed streams (Definition 3) and Figure 1 categories."""

import pytest

from repro.core.elements import MediaElement
from repro.core.media_types import media_type_registry
from repro.core.rational import Rational
from repro.core.streams import StreamCategory, TimedStream, TimedTuple
from repro.core.time_system import CD_AUDIO_TIME, PAL_TIME
from repro.errors import StreamConstraintError, StreamError


def raw(size=100):
    return MediaElement(size=size)


@pytest.fixture
def video(video_type):
    return video_type


class TestTimedTuple:
    def test_end(self):
        assert TimedTuple(raw(), 5, 3).end == 8

    def test_negative_duration_rejected(self):
        with pytest.raises(StreamError):
            TimedTuple(raw(), 0, -1)

    def test_zero_duration_allowed(self):
        assert TimedTuple(raw(), 5, 0).end == 5


class TestDefinition3Invariants:
    def test_start_times_non_decreasing(self, video):
        tuples = [TimedTuple(raw(), 5, 1), TimedTuple(raw(), 3, 1)]
        with pytest.raises(StreamError, match="non-decreasing"):
            TimedStream(video, tuples, validate_constraints=False)

    def test_equal_starts_allowed(self, video):
        # s_{i+1} >= s_i admits simultaneous elements (chords).
        tuples = [TimedTuple(raw(), 3, 1), TimedTuple(raw(), 3, 1)]
        TimedStream(video, tuples, validate_constraints=False)

    def test_non_time_based_type_needs_explicit_system(self):
        image = media_type_registry.get("image")
        with pytest.raises(StreamError):
            TimedStream(image, [])
        TimedStream(image, [], time_system=PAL_TIME)

    def test_default_time_system_from_type(self, video):
        assert TimedStream(video, []).time_system == PAL_TIME


class TestSequenceProtocol:
    def test_len_iter_getitem(self, uniform_video_stream):
        assert len(uniform_video_stream) == 10
        assert list(uniform_video_stream)[0].start == 0
        assert uniform_video_stream[3].start == 3

    def test_slice_returns_stream(self, uniform_video_stream):
        sliced = uniform_video_stream[2:5]
        assert isinstance(sliced, TimedStream)
        assert len(sliced) == 3
        assert sliced.start == 2

    def test_equality_and_hash(self, video):
        a = TimedStream.from_elements(video, [raw(), raw()])
        b = TimedStream.from_elements(video, [raw(), raw()])
        assert a == b
        assert hash(a) == hash(b)

    def test_elements_iterator(self, uniform_video_stream):
        assert all(e.size == 1536 for e in uniform_video_stream.elements())


class TestExtent:
    def test_empty(self, video):
        stream = TimedStream(video, [])
        assert stream.is_empty
        assert stream.start == 0
        assert stream.end == 0
        assert stream.duration_seconds() == 0

    def test_span(self, uniform_video_stream):
        assert uniform_video_stream.span_ticks == 10
        assert uniform_video_stream.duration_seconds() == Rational(10, 25)

    def test_end_with_overlaps(self, video):
        # The last tuple need not end last.
        tuples = [
            TimedTuple(raw(), 0, 10),
            TimedTuple(raw(), 2, 3),
        ]
        stream = TimedStream(video, tuples, validate_constraints=False)
        assert stream.end == 10

    def test_interval(self, uniform_video_stream):
        interval = uniform_video_stream.interval()
        assert interval.start == 0
        assert interval.end == Rational(10, 25)

    def test_total_size_and_rate(self, uniform_video_stream):
        assert uniform_video_stream.total_size() == 15360
        assert uniform_video_stream.average_data_rate() == Rational(15360 * 25, 10)

    def test_rate_of_empty_stream(self, video):
        assert TimedStream(video, []).average_data_rate() == 0


class TestLookup:
    def test_at_tick_continuous(self, uniform_video_stream):
        matches = uniform_video_stream.at_tick(3)
        assert len(matches) == 1
        assert matches[0].start == 3

    def test_at_tick_in_gap(self, gapped_stream):
        assert gapped_stream.at_tick(4) == []

    def test_at_tick_overlap_returns_all(self, video):
        tuples = [
            TimedTuple(raw(1), 0, 4),
            TimedTuple(raw(2), 1, 1),
        ]
        stream = TimedStream(video, tuples, validate_constraints=False)
        assert len(stream.at_tick(1)) == 2

    def test_at_tick_event(self, video):
        tuples = [TimedTuple(raw(), 5, 0)]
        stream = TimedStream(video, tuples, validate_constraints=False)
        assert len(stream.at_tick(5)) == 1
        assert stream.at_tick(6) == []

    def test_at_time_seconds(self, uniform_video_stream):
        matches = uniform_video_stream.at_time(Rational(1, 5))  # tick 5
        assert matches[0].start == 5

    def test_index_at_tick(self, gapped_stream):
        assert gapped_stream.index_at_tick(0) == 0
        assert gapped_stream.index_at_tick(6) == 2
        assert gapped_stream.index_at_tick(5) is None


class TestFigure1Categories:
    def test_homogeneous(self, uniform_video_stream):
        assert uniform_video_stream.is_homogeneous()
        assert not uniform_video_stream.is_heterogeneous()

    def test_heterogeneous(self, video):
        d1 = video.make_element_descriptor(frame_kind="I")
        d2 = video.make_element_descriptor(frame_kind="P")
        tuples = [
            TimedTuple(MediaElement(size=10, descriptor=d1), 0, 1),
            TimedTuple(MediaElement(size=5, descriptor=d2), 1, 1),
        ]
        stream = TimedStream(video, tuples)
        assert stream.is_heterogeneous()

    def test_empty_stream_is_homogeneous_and_continuous(self, video):
        stream = TimedStream(video, [])
        assert stream.is_homogeneous()
        assert stream.is_continuous()

    def test_continuous(self, uniform_video_stream):
        assert uniform_video_stream.is_continuous()
        assert not uniform_video_stream.is_non_continuous()

    def test_gap_makes_non_continuous(self, gapped_stream):
        assert gapped_stream.is_non_continuous()
        assert gapped_stream.has_gaps()
        assert not gapped_stream.has_overlaps()

    def test_overlap_makes_non_continuous(self, video):
        tuples = [
            TimedTuple(raw(), 0, 4),
            TimedTuple(raw(), 2, 4),
        ]
        stream = TimedStream(video, tuples, validate_constraints=False)
        assert stream.is_non_continuous()
        assert stream.has_overlaps()
        assert not stream.has_gaps()

    def test_overlap_detection_with_long_first_note(self, video):
        # A long element overlapping a later short one, with another
        # element in between that doesn't touch it.
        tuples = [
            TimedTuple(raw(), 0, 10),
            TimedTuple(raw(), 1, 2),
            TimedTuple(raw(), 5, 2),
        ]
        stream = TimedStream(video, tuples, validate_constraints=False)
        assert stream.has_overlaps()

    def test_event_based(self, video):
        tuples = [TimedTuple(raw(), t, 0) for t in (0, 3, 3, 9)]
        stream = TimedStream(video, tuples, validate_constraints=False)
        assert stream.is_event_based()

    def test_empty_stream_not_event_based(self, video):
        assert not TimedStream(video, []).is_event_based()

    def test_constant_frequency(self, uniform_video_stream):
        assert uniform_video_stream.is_constant_frequency()

    def test_varying_duration_not_constant_frequency(self, video):
        tuples = [
            TimedTuple(raw(), 0, 1),
            TimedTuple(raw(), 1, 2),
            TimedTuple(raw(), 3, 1),
        ]
        stream = TimedStream(video, tuples, validate_constraints=False)
        assert stream.is_continuous()
        assert not stream.is_constant_frequency()

    def test_constant_data_rate_with_varying_sizes(self, video):
        # size/duration constant although neither is: 100/1 == 200/2.
        tuples = [
            TimedTuple(raw(100), 0, 1),
            TimedTuple(raw(200), 1, 2),
            TimedTuple(raw(100), 3, 1),
        ]
        stream = TimedStream(video, tuples, validate_constraints=False)
        assert stream.is_constant_data_rate()
        assert not stream.is_uniform()

    def test_uniform_implies_constant_data_rate_and_frequency(
            self, uniform_video_stream):
        categories = uniform_video_stream.categories()
        assert StreamCategory.UNIFORM in categories
        assert StreamCategory.CONSTANT_DATA_RATE in categories
        assert StreamCategory.CONSTANT_FREQUENCY in categories

    def test_variable_size_constant_frequency_not_cbr(self, video):
        tuples = [
            TimedTuple(raw(100), 0, 1),
            TimedTuple(raw(250), 1, 1),
        ]
        stream = TimedStream(video, tuples, validate_constraints=False)
        assert stream.is_constant_frequency()
        assert not stream.is_constant_data_rate()

    def test_category_label_cd_audio(self, cd_type):
        stream = TimedStream.from_elements(cd_type, [MediaElement(size=4)] * 5)
        assert stream.category_label() == "homogeneous, uniform"

    def test_event_stream_category_label(self, video):
        tuples = [TimedTuple(raw(), t, 0) for t in (0, 3)]
        stream = TimedStream(video, tuples, validate_constraints=False)
        assert "event-based" in stream.category_label()


class TestMediaTypeConstraints:
    """"Generally a media type imposes restrictions on the form of timed
    streams based on that type" — Definition 3's CD-audio example."""

    def test_cd_audio_fixed_duration_enforced(self, cd_type):
        tuples = [TimedTuple(raw(4), 0, 2)]
        with pytest.raises(StreamConstraintError, match="duration"):
            TimedStream(cd_type, tuples)

    def test_cd_audio_continuity_enforced(self, cd_type):
        tuples = [
            TimedTuple(raw(4), 0, 1),
            TimedTuple(raw(4), 5, 1),
        ]
        with pytest.raises(StreamConstraintError, match="continuous"):
            TimedStream(cd_type, tuples)

    def test_cd_audio_valid_stream(self, cd_type):
        stream = TimedStream.from_elements(cd_type, [raw(4)] * 3)
        assert stream.is_uniform()

    def test_midi_event_basedness_enforced(self):
        midi = media_type_registry.get("midi-music")
        descriptor = midi.make_element_descriptor(status=0x90, channel=0)
        good = [TimedTuple(MediaElement(size=3, descriptor=descriptor), 0, 0)]
        TimedStream(midi, good)
        bad = [TimedTuple(MediaElement(size=3, descriptor=descriptor), 0, 5)]
        with pytest.raises(StreamConstraintError, match="event-based"):
            TimedStream(midi, bad)

    def test_adpcm_requires_element_descriptors(self):
        adpcm = media_type_registry.get("adpcm-audio")
        tuples = [TimedTuple(MediaElement(size=259), 0, 505)]
        with pytest.raises(StreamConstraintError, match="descriptor"):
            TimedStream(adpcm, tuples)

    def test_validation_can_be_deferred(self, cd_type):
        tuples = [TimedTuple(raw(4), 0, 2)]
        stream = TimedStream(cd_type, tuples, validate_constraints=False)
        with pytest.raises(StreamConstraintError):
            stream.validate_type_constraints()


class TestFromElements:
    def test_consecutive_starts(self, video):
        stream = TimedStream.from_elements(video, [raw()] * 4, start=10)
        assert [t.start for t in stream] == [10, 11, 12, 13]

    def test_custom_duration(self):
        block_audio = media_type_registry.get("block-audio")
        stream = TimedStream.from_elements(
            block_audio, [raw()] * 2, duration=5,
        )
        assert stream.span_ticks == 10
        assert stream.is_continuous()

    def test_repr_mentions_category(self, uniform_video_stream):
        assert "uniform" in repr(uniform_video_stream)
