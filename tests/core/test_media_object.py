"""Tests for media objects and derived media objects."""

import pytest

from repro.core.derivation import Derivation, DerivationCategory, DerivationObject
from repro.core.elements import MediaElement
from repro.core.media_object import (
    MediaObject,
    StillMediaObject,
    StreamMediaObject,
)
from repro.core.media_types import MediaKind, media_type_registry
from repro.core.streams import TimedStream
from repro.errors import MediaModelError


@pytest.fixture
def video_type():
    return media_type_registry.get("pal-video")


@pytest.fixture
def video_obj(video_type):
    stream = TimedStream.from_elements(
        video_type, [MediaElement(payload=i, size=8) for i in range(4)]
    )
    descriptor = video_type.make_media_descriptor(
        frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
        color_model="RGB",
    )
    return StreamMediaObject(video_type, descriptor, stream, name="clip")


class TestStreamMediaObject:
    def test_identity(self, video_obj):
        assert video_obj.name == "clip"
        assert video_obj.kind is MediaKind.VIDEO
        assert not video_obj.is_derived
        assert video_obj.object_id.startswith("mo")

    def test_ids_unique(self, video_type, video_obj):
        stream = video_obj.stream()
        other = StreamMediaObject(
            video_type, video_obj.descriptor, stream, name="clip2"
        )
        assert other.object_id != video_obj.object_id

    def test_stream_access(self, video_obj):
        assert len(video_obj.stream()) == 4

    def test_value_raises(self, video_obj):
        with pytest.raises(MediaModelError):
            video_obj.value()

    def test_descriptor_validated(self, video_type):
        stream = TimedStream(video_type, [])
        bad = video_type.make_media_descriptor(
            frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
            color_model="RGB",
        ).without("frame_rate")
        with pytest.raises(Exception):
            StreamMediaObject(video_type, bad, stream)

    def test_stream_type_must_match(self, video_type, video_obj):
        cd = media_type_registry.get("cd-audio")
        audio_stream = TimedStream.from_elements(cd, [MediaElement(size=4)])
        with pytest.raises(MediaModelError, match="does not match"):
            StreamMediaObject(video_type, video_obj.descriptor, audio_stream)


class TestStillMediaObject:
    def test_value(self):
        image_type = media_type_registry.get("image")
        descriptor = image_type.make_media_descriptor(
            width=4, height=4, depth=24, color_model="RGB",
        )
        obj = StillMediaObject(image_type, descriptor, "PIXELS", name="img")
        assert obj.value() == "PIXELS"
        with pytest.raises(MediaModelError):
            obj.stream()

    def test_rejects_time_based_type(self, video_type, video_obj):
        with pytest.raises(MediaModelError, match="time-based"):
            StillMediaObject(video_type, video_obj.descriptor, b"x")


def _identity_derivation(video_type):
    def expand(inputs, params):
        return inputs[0]

    return Derivation(
        name="identity-test",
        category=DerivationCategory.CHANGE_OF_TIMING,
        input_kinds=(MediaKind.VIDEO,),
        result_kind=MediaKind.VIDEO,
        expand=expand,
        describe=lambda inputs, params: (inputs[0].media_type,
                                         inputs[0].descriptor),
    )


class TestDerivedMediaObject:
    def test_is_derived(self, video_obj, video_type):
        derivation = _identity_derivation(video_type)
        derived = derivation([video_obj], name="derived1")
        assert derived.is_derived
        assert derived.name == "derived1"
        assert derived.antecedents() == [video_obj]

    def test_expand_not_cached(self, video_obj, video_type):
        calls = []

        def expand(inputs, params):
            calls.append(1)
            return inputs[0]

        derivation = Derivation(
            name="count-test", category=DerivationCategory.CHANGE_OF_TIMING,
            input_kinds=(MediaKind.VIDEO,), result_kind=MediaKind.VIDEO,
            expand=expand,
            describe=lambda i, p: (i[0].media_type, i[0].descriptor),
        )
        derived = derivation([video_obj])
        derived.expand()
        derived.expand()
        assert len(calls) == 2

    def test_materialize_caches(self, video_obj, video_type):
        calls = []

        def expand(inputs, params):
            calls.append(1)
            return inputs[0]

        derivation = Derivation(
            name="cache-test", category=DerivationCategory.CHANGE_OF_TIMING,
            input_kinds=(MediaKind.VIDEO,), result_kind=MediaKind.VIDEO,
            expand=expand,
            describe=lambda i, p: (i[0].media_type, i[0].descriptor),
        )
        derived = derivation([video_obj])
        assert not derived.is_materialized
        derived.materialize()
        derived.materialize()
        assert len(calls) == 1
        assert derived.is_materialized

    def test_discard_materialization(self, video_obj, video_type):
        derivation = _identity_derivation(video_type)
        derived = derivation([video_obj])
        derived.materialize()
        derived.discard_materialization()
        assert not derived.is_materialized

    def test_stream_goes_through_expansion(self, video_obj, video_type):
        derivation = _identity_derivation(video_type)
        derived = derivation([video_obj])
        assert len(derived.stream()) == 4

    def test_repr_flags_derived(self, video_obj, video_type):
        derivation = _identity_derivation(video_type)
        derived = derivation([video_obj])
        assert "derived" in repr(derived)
