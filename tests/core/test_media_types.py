"""Tests for media types (Definition 1)."""

import pytest

from repro.core.media_types import (
    AttributeSpec,
    MediaKind,
    MediaType,
    MediaTypeRegistry,
    media_type_registry,
)
from repro.core.time_system import CD_AUDIO_TIME, PAL_TIME
from repro.errors import DescriptorError, MediaTypeError


class TestMediaKind:
    def test_time_based_kinds(self):
        assert MediaKind.AUDIO.is_time_based
        assert MediaKind.VIDEO.is_time_based
        assert MediaKind.MUSIC.is_time_based
        assert MediaKind.ANIMATION.is_time_based

    def test_still_kinds(self):
        assert not MediaKind.IMAGE.is_time_based
        assert not MediaKind.TEXT.is_time_based


class TestAttributeSpec:
    def test_choices(self):
        spec = AttributeSpec("sample_rate", choices=(44100,))
        spec.check(44100)
        with pytest.raises(DescriptorError):
            spec.check(48000)

    def test_validator(self):
        spec = AttributeSpec("width", validator=lambda v: v > 0)
        spec.check(640)
        with pytest.raises(DescriptorError):
            spec.check(-1)


class TestMediaTypeInvariants:
    def test_time_based_needs_time_system(self):
        with pytest.raises(MediaTypeError):
            MediaType(name="x", kind=MediaKind.AUDIO)

    def test_still_needs_no_time_system(self):
        MediaType(name="x", kind=MediaKind.IMAGE)

    def test_empty_name_rejected(self):
        with pytest.raises(MediaTypeError):
            MediaType(name="", kind=MediaKind.IMAGE)

    def test_event_based_with_duration_rejected(self):
        with pytest.raises(MediaTypeError):
            MediaType(name="x", kind=MediaKind.MUSIC,
                      time_system=CD_AUDIO_TIME,
                      event_based=True, fixed_duration=5)

    def test_event_based_and_continuous_conflict(self):
        with pytest.raises(MediaTypeError):
            MediaType(name="x", kind=MediaKind.MUSIC,
                      time_system=CD_AUDIO_TIME,
                      event_based=True, continuous=True)


class TestBuiltinCdAudio:
    """Definition 1's example: CD audio at 44.1 kHz, 16 bit, 2 channels."""

    def test_specification(self):
        cd = media_type_registry.get("cd-audio")
        assert cd.time_system == CD_AUDIO_TIME
        assert cd.fixed_duration == 1
        assert cd.continuous

    def test_descriptor_accepts_cd_parameters(self):
        cd = media_type_registry.get("cd-audio")
        descriptor = cd.make_media_descriptor(
            sample_rate=44100, sample_size=16, channels=2, encoding="PCM",
        )
        assert descriptor["kind"] == "audio"
        assert descriptor["media_type"] == "cd-audio"

    def test_descriptor_rejects_wrong_rate(self):
        cd = media_type_registry.get("cd-audio")
        with pytest.raises(DescriptorError):
            cd.make_media_descriptor(
                sample_rate=48000, sample_size=16, channels=2, encoding="PCM",
            )

    def test_missing_required_attribute(self):
        cd = media_type_registry.get("cd-audio")
        with pytest.raises(DescriptorError, match="sample_rate"):
            cd.make_media_descriptor(sample_size=16, channels=2, encoding="PCM")

    def test_no_element_descriptors_needed(self):
        # "element descriptors are not necessary since all elements have
        # the same form"
        cd = media_type_registry.get("cd-audio")
        assert not cd.has_element_descriptors


class TestBuiltinAdpcm:
    """The paper's heterogeneous example: per-element encoding state."""

    def test_requires_element_descriptors(self):
        adpcm = media_type_registry.get("adpcm-audio")
        assert adpcm.has_element_descriptors

    def test_element_descriptor_validation(self):
        adpcm = media_type_registry.get("adpcm-audio")
        adpcm.make_element_descriptor(predictor=0, step_index=30)
        with pytest.raises(DescriptorError):
            adpcm.make_element_descriptor(predictor=0, step_index=89)
        with pytest.raises(DescriptorError):
            adpcm.make_element_descriptor(predictor=40000, step_index=0)


class TestBuiltinVideo:
    def test_pal_time_system(self):
        assert media_type_registry.get("pal-video").time_system == PAL_TIME

    def test_optional_element_attributes_do_not_force_descriptors(self):
        video = media_type_registry.get("pal-video")
        assert video.element_attributes
        assert not video.has_element_descriptors

    def test_frame_kind_choices(self):
        video = media_type_registry.get("pal-video")
        video.make_element_descriptor(frame_kind="I")
        with pytest.raises(DescriptorError):
            video.make_element_descriptor(frame_kind="X")


class TestRegistry:
    def test_unknown_type(self):
        with pytest.raises(MediaTypeError, match="unknown media type"):
            media_type_registry.get("no-such-type")

    def test_contains(self):
        assert "cd-audio" in media_type_registry
        assert "nope" not in media_type_registry

    def test_duplicate_registration_rejected(self):
        registry = MediaTypeRegistry()
        mt = MediaType(name="x", kind=MediaKind.IMAGE)
        registry.register(mt)
        with pytest.raises(MediaTypeError):
            registry.register(mt)
        registry.register(mt, replace=True)

    def test_by_kind(self):
        audio_types = media_type_registry.by_kind(MediaKind.AUDIO)
        names = {t.name for t in audio_types}
        assert {"cd-audio", "adpcm-audio", "block-audio"} <= names

    def test_builtin_names_present(self):
        names = media_type_registry.names()
        for expected in ("cd-audio", "pal-video", "ntsc-video", "film-video",
                         "midi-music", "score-music", "animation", "image"):
            assert expected in names
