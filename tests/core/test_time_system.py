"""Tests for discrete time systems (Definition 2)."""

import pytest

from repro.core.rational import Rational
from repro.core.time_system import (
    CD_AUDIO_TIME,
    DAT_TIME,
    DiscreteTimeSystem,
    FILM_TIME,
    NTSC_TIME,
    PAL_TIME,
)
from repro.errors import TimeSystemError


class TestDefinition2:
    """D_f : i -> (1/f) i."""

    def test_pal_mapping(self):
        assert PAL_TIME.to_continuous(25) == 1
        assert PAL_TIME.to_continuous(1) == Rational(1, 25)

    def test_cd_mapping(self):
        assert CD_AUDIO_TIME.to_continuous(44100) == 1

    def test_film_mapping(self):
        assert FILM_TIME.to_continuous(48) == 2

    def test_ntsc_is_exactly_30000_1001(self):
        assert NTSC_TIME.frequency == Rational(30000, 1001)
        assert NTSC_TIME.to_continuous(30000) == Rational(1001)

    def test_zero_maps_to_zero(self):
        assert PAL_TIME.to_continuous(0) == 0

    def test_negative_ticks_allowed(self):
        # The domain is the integers.
        assert PAL_TIME.to_continuous(-25) == -1

    def test_period(self):
        assert PAL_TIME.period == Rational(1, 25)

    def test_positive_frequency_required(self):
        with pytest.raises(TimeSystemError):
            DiscreteTimeSystem(Rational(0))
        with pytest.raises(TimeSystemError):
            DiscreteTimeSystem(Rational(-25))


class TestInverse:
    def test_exact_inverse(self):
        assert PAL_TIME.to_discrete(Rational(2)) == 50

    def test_inexact_raises(self):
        with pytest.raises(TimeSystemError):
            PAL_TIME.to_discrete(Rational(1, 3))

    def test_floor(self):
        assert PAL_TIME.floor(Rational(1, 10)) == 2  # 2.5 ticks -> 2

    def test_ceil(self):
        assert PAL_TIME.ceil(Rational(1, 10)) == 3

    def test_round(self):
        assert PAL_TIME.round(Rational(1, 10)) == 2  # 2.5 ties to even

    def test_floor_of_exact_tick(self):
        assert PAL_TIME.floor(Rational(1)) == 25


class TestConversion:
    def test_convert_pal_to_cd(self):
        # One PAL frame covers 1764 CD samples.
        assert PAL_TIME.convert(1, CD_AUDIO_TIME) == 1764

    def test_rescale_rounds(self):
        assert FILM_TIME.rescale(1, PAL_TIME) == 1  # 1/24 s ~ 1.04 PAL ticks

    def test_rescale_ntsc_to_pal(self):
        # 30000 NTSC ticks = 1001 s = 25025 PAL ticks.
        assert NTSC_TIME.rescale(30000, PAL_TIME) == 25025

    def test_commensurate_cd_pal(self):
        assert CD_AUDIO_TIME.is_commensurate(PAL_TIME)

    def test_not_commensurate_ntsc_pal(self):
        assert not NTSC_TIME.is_commensurate(PAL_TIME)

    def test_commensurate_self(self):
        assert DAT_TIME.is_commensurate(DAT_TIME)


class TestDisplay:
    def test_str_integer_frequency(self):
        assert str(PAL_TIME) == "PAL(25 Hz)"

    def test_str_rational_frequency(self):
        assert str(NTSC_TIME) == "NTSC(30000/1001 Hz)"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAL_TIME.frequency = Rational(30)

    def test_equality_by_value(self):
        assert DiscreteTimeSystem(Rational(25), "PAL") == PAL_TIME
