"""Tests for descriptive quality factors."""

import pytest

from repro.core.quality import (
    AUDIO_QUALITY,
    QualityFactor,
    QualityLadder,
    VIDEO_QUALITY,
)
from repro.errors import QualityError


class TestQualityFactor:
    def test_ordering(self):
        vhs = VIDEO_QUALITY.get("VHS quality")
        broadcast = VIDEO_QUALITY.get("broadcast quality")
        assert vhs < broadcast
        assert vhs <= vhs

    def test_str_is_descriptive_name(self):
        assert str(VIDEO_QUALITY.get("VHS quality")) == "VHS quality"

    def test_empty_name_rejected(self):
        with pytest.raises(QualityError):
            QualityFactor("", 1)


class TestLadderInvariants:
    def test_needs_factors(self):
        with pytest.raises(QualityError):
            QualityLadder("x", [])

    def test_distinct_ranks(self):
        with pytest.raises(QualityError):
            QualityLadder("x", [QualityFactor("a", 1), QualityFactor("b", 1)])

    def test_distinct_names(self):
        with pytest.raises(QualityError):
            QualityLadder("x", [QualityFactor("a", 1), QualityFactor("a", 2)])


class TestVideoLadder:
    def test_unknown_quality_lists_known(self):
        with pytest.raises(QualityError, match="VHS quality"):
            VIDEO_QUALITY.get("potato quality")

    def test_contains(self):
        assert "VHS quality" in VIDEO_QUALITY
        assert "potato quality" not in VIDEO_QUALITY

    def test_ordered_low_to_high(self):
        ranks = [f.rank for f in VIDEO_QUALITY.ordered()]
        assert ranks == sorted(ranks)

    def test_lowest_highest(self):
        assert VIDEO_QUALITY.lowest().name == "preview quality"
        assert VIDEO_QUALITY.highest().name == "lossless quality"

    def test_at_most(self):
        names = [f.name for f in VIDEO_QUALITY.at_most("VHS quality")]
        assert names == ["preview quality", "VHS quality"]

    def test_codec_params_hidden_behind_name(self):
        # The data-modeling level sees "VHS quality"; the codec level
        # gets the numeric parameter (§2.2 "Quality Factors").
        params = VIDEO_QUALITY.codec_params("VHS quality")
        assert "jpeg_quality" in params
        assert isinstance(params["jpeg_quality"], int)

    def test_vhs_nominal_bpp_matches_paper(self):
        # Figure 2: "about 0.5 bits per pixel (this will give VHS quality)".
        assert VIDEO_QUALITY.get("VHS quality").nominal_bits_per_unit == 0.5


class TestAudioLadder:
    def test_cd_quality_params(self):
        params = AUDIO_QUALITY.codec_params("CD quality")
        assert params == {"sample_rate": 44100, "sample_size": 16}

    def test_cd_below_dat(self):
        assert AUDIO_QUALITY.get("CD quality") < AUDIO_QUALITY.get("DAT quality")
