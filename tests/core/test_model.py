"""Tests for the schema layer (the VideoClip example of §4)."""

import pytest

from repro.core.composition import MultimediaObject
from repro.core.media_types import MediaKind
from repro.core.model import (
    AttributeType,
    Entity,
    EntityType,
    ScalarKind,
    video_clip_type,
)
from repro.core.quality import VIDEO_QUALITY
from repro.errors import MediaModelError
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object


@pytest.fixture
def vhs_video():
    return video_object(frames.scene(16, 16, 5, "pan"), "clip",
                        quality_factor="VHS quality")


@pytest.fixture
def preview_video():
    return video_object(frames.scene(16, 16, 5, "pan"), "proxy",
                        quality_factor="preview quality")


@pytest.fixture
def soundtrack(tone):
    return audio_object(tone, "music", sample_rate=8000, block_samples=250)


class TestAttributeType:
    def test_exactly_one_domain(self):
        with pytest.raises(MediaModelError, match="exactly one"):
            AttributeType("x", scalar=ScalarKind.CHAR,
                          media_kind=MediaKind.VIDEO)
        with pytest.raises(MediaModelError, match="exactly one"):
            AttributeType("x")

    def test_scalar_check(self):
        spec = AttributeType("title", scalar=ScalarKind.CHAR)
        spec.check("ok")
        with pytest.raises(MediaModelError):
            spec.check(42)

    def test_int_rejects_bool(self):
        spec = AttributeType("year", scalar=ScalarKind.INT)
        spec.check(1994)
        with pytest.raises(MediaModelError):
            spec.check(True)

    def test_media_kind_check(self, vhs_video, soundtrack):
        spec = AttributeType("content", media_kind=MediaKind.VIDEO)
        spec.check(vhs_video)
        with pytest.raises(MediaModelError, match="expected video"):
            spec.check(soundtrack)
        with pytest.raises(MediaModelError, match="media object"):
            spec.check("not-media")

    def test_min_quality_needs_ladder(self):
        with pytest.raises(MediaModelError, match="ladder"):
            AttributeType("content", media_kind=MediaKind.VIDEO,
                          min_quality="VHS quality")

    def test_min_quality_only_for_media(self):
        with pytest.raises(MediaModelError):
            AttributeType("title", scalar=ScalarKind.CHAR,
                          min_quality="VHS quality",
                          quality_ladder=VIDEO_QUALITY)

    def test_quality_floor_enforced(self, vhs_video, preview_video):
        spec = AttributeType("content", media_kind=MediaKind.VIDEO,
                             min_quality="VHS quality",
                             quality_ladder=VIDEO_QUALITY)
        spec.check(vhs_video)
        with pytest.raises(MediaModelError, match="below"):
            spec.check(preview_video)

    def test_multimedia_check(self, vhs_video):
        spec = AttributeType("presentation", multimedia=True)
        spec.check(MultimediaObject("m"))
        with pytest.raises(MediaModelError):
            spec.check(vhs_video)


class TestEntityType:
    def test_duplicate_attributes_rejected(self):
        with pytest.raises(MediaModelError, match="duplicate"):
            EntityType("X", [
                AttributeType("a", scalar=ScalarKind.INT),
                AttributeType("a", scalar=ScalarKind.CHAR),
            ])

    def test_unknown_attribute(self):
        schema = EntityType("X", [AttributeType("a", scalar=ScalarKind.INT)])
        with pytest.raises(MediaModelError, match="no attribute"):
            schema.attribute("b")

    def test_media_attributes_listing(self):
        clip_type = video_clip_type()
        names = {a.name for a in clip_type.media_attributes()}
        assert names == {"content", "soundtrack"}


class TestVideoClipEntity:
    """The paper's example: title/director + video-valued content."""

    def test_valid_clip(self, vhs_video, soundtrack):
        clip_type = video_clip_type()
        clip = clip_type.new(
            title="The Timed Stream", director="Gibbs",
            content=vhs_video, soundtrack=soundtrack,
        )
        assert clip["title"] == "The Timed Stream"
        assert clip["content"] is vhs_video
        assert set(clip.media_values()) == {"content", "soundtrack"}

    def test_optional_attributes(self, vhs_video):
        clip_type = video_clip_type()
        clip = clip_type.new(title="T", director="D", content=vhs_video)
        assert "soundtrack" not in clip
        assert clip.get("soundtrack") is None
        assert clip.get("year", 1994) == 1994

    def test_missing_required(self, vhs_video):
        clip_type = video_clip_type()
        with pytest.raises(MediaModelError, match="missing required"):
            clip_type.new(title="T", content=vhs_video)

    def test_unknown_value_rejected(self, vhs_video):
        clip_type = video_clip_type()
        with pytest.raises(MediaModelError, match="unknown attributes"):
            clip_type.new(title="T", director="D", content=vhs_video,
                          producer="nobody")

    def test_quality_floor_on_content(self, preview_video):
        clip_type = video_clip_type()
        with pytest.raises(MediaModelError, match="below"):
            clip_type.new(title="T", director="D", content=preview_video)

    def test_unset_access(self, vhs_video):
        clip_type = video_clip_type()
        clip = clip_type.new(title="T", director="D", content=vhs_video)
        with pytest.raises(MediaModelError, match="not set"):
            clip["soundtrack"]

    def test_with_value_immutably(self, vhs_video):
        clip_type = video_clip_type()
        clip = clip_type.new(title="T", director="D", content=vhs_video)
        updated = clip.with_value("title", "T2")
        assert clip["title"] == "T"
        assert updated["title"] == "T2"

    def test_with_value_validates(self, vhs_video):
        clip_type = video_clip_type()
        clip = clip_type.new(title="T", director="D", content=vhs_video)
        with pytest.raises(MediaModelError):
            clip.with_value("title", 42)

    def test_derived_content_accepted(self, vhs_video):
        """Media-valued attributes may hold *derived* objects."""
        from repro.edit import MediaEditor

        cut = MediaEditor().cut(vhs_video, 0, 3, name="clip-cut")
        clip_type = video_clip_type()
        clip = clip_type.new(title="T", director="D", content=cut)
        assert clip["content"].is_derived
