"""Tests for derivation (Definition 6)."""

import pytest

from repro.core.derivation import (
    Derivation,
    DerivationCategory,
    DerivationObject,
    DerivationRegistry,
    derivation_registry,
)
from repro.core.elements import MediaElement
from repro.core.media_object import StreamMediaObject
from repro.core.media_types import MediaKind, media_type_registry
from repro.core.streams import TimedStream
from repro.errors import DerivationError


@pytest.fixture
def video_obj():
    video_type = media_type_registry.get("pal-video")
    stream = TimedStream.from_elements(
        video_type, [MediaElement(payload=i, size=8) for i in range(4)]
    )
    descriptor = video_type.make_media_descriptor(
        frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
        color_model="RGB",
    )
    return StreamMediaObject(video_type, descriptor, stream, name="v")


@pytest.fixture
def audio_obj(tone):
    from repro.media.objects import audio_object
    return audio_object(tone, "a", sample_rate=8000, block_samples=500)


def make_derivation(**overrides):
    defaults = dict(
        name="test-derivation",
        category=DerivationCategory.CHANGE_OF_CONTENT,
        input_kinds=(MediaKind.VIDEO,),
        result_kind=MediaKind.VIDEO,
        expand=lambda inputs, params: inputs[0],
        describe=lambda inputs, params: (inputs[0].media_type,
                                         inputs[0].descriptor),
    )
    defaults.update(overrides)
    return Derivation(**defaults)


class TestInputChecking:
    def test_arity(self, video_obj):
        derivation = make_derivation()
        with pytest.raises(DerivationError, match="expected 1 inputs"):
            derivation.check_inputs([video_obj, video_obj])

    def test_kind(self, audio_obj):
        derivation = make_derivation()
        # "an audio sequence cannot be concatenated to a video sequence"
        with pytest.raises(DerivationError, match="expected a video"):
            derivation.check_inputs([audio_obj])

    def test_variadic_accepts_many(self, video_obj):
        derivation = make_derivation(variadic=True)
        derivation.check_inputs([video_obj] * 5)

    def test_variadic_rejects_empty(self):
        derivation = make_derivation(variadic=True)
        with pytest.raises(DerivationError, match="at least one"):
            derivation.check_inputs([])

    def test_variadic_rejects_wrong_kind(self, video_obj, audio_obj):
        derivation = make_derivation(variadic=True)
        with pytest.raises(DerivationError):
            derivation.check_inputs([video_obj, audio_obj])

    def test_any_kind_accepts_all(self, video_obj, audio_obj):
        derivation = make_derivation(any_kind=True)
        derivation.check_inputs([audio_obj])
        derivation.check_inputs([video_obj])

    def test_any_kind_still_checks_arity(self, video_obj):
        derivation = make_derivation(any_kind=True)
        with pytest.raises(DerivationError):
            derivation.check_inputs([video_obj, video_obj])


class TestParamChecking:
    def test_missing_required(self, video_obj):
        derivation = make_derivation(required_params=("alpha",))
        with pytest.raises(DerivationError, match="missing"):
            DerivationObject(derivation, [video_obj], {})

    def test_unexpected_rejected(self, video_obj):
        derivation = make_derivation(optional_params=("alpha",))
        with pytest.raises(DerivationError, match="unexpected"):
            DerivationObject(derivation, [video_obj], {"alhpa": 1})

    def test_valid_params(self, video_obj):
        derivation = make_derivation(
            required_params=("a",), optional_params=("b",),
        )
        DerivationObject(derivation, [video_obj], {"a": 1})
        DerivationObject(derivation, [video_obj], {"a": 1, "b": 2})


class TestDerivationObject:
    def test_expand_applies_mapping(self, video_obj):
        derivation = make_derivation()
        dobj = DerivationObject(derivation, [video_obj], {})
        assert dobj.expand() is video_obj

    def test_expand_checks_result_kind(self, video_obj, audio_obj):
        lying = make_derivation(expand=lambda inputs, params: audio_obj)
        dobj = DerivationObject(lying, [video_obj], {})
        with pytest.raises(DerivationError, match="declared"):
            dobj.expand()

    def test_derive_builds_derived_object(self, video_obj):
        derivation = make_derivation()
        derived = DerivationObject(derivation, [video_obj], {}).derive("d1")
        assert derived.is_derived
        assert derived.name == "d1"

    def test_derive_without_describe_needs_descriptor(self, video_obj):
        derivation = make_derivation(describe=None)
        dobj = DerivationObject(derivation, [video_obj], {})
        with pytest.raises(DerivationError, match="describe"):
            dobj.derive()
        derived = dobj.derive(descriptor=video_obj.descriptor)
        assert derived.media_type is video_obj.media_type

    def test_storage_size_small(self, video_obj):
        # The core of §4.2: derivation objects are tiny.
        derivation = make_derivation(optional_params=("edit_list",))
        dobj = DerivationObject(
            derivation, [video_obj], {"edit_list": [(0, 0, 100)]}
        )
        assert dobj.storage_size() < 100

    def test_repr_names_inputs(self, video_obj):
        derivation = make_derivation()
        assert "v" in repr(DerivationObject(derivation, [video_obj], {}))


class TestCategories:
    def test_primary_and_also(self):
        derivation = make_derivation(
            also_categories=(DerivationCategory.CHANGE_OF_TIMING,),
        )
        assert derivation.categories() == {
            DerivationCategory.CHANGE_OF_CONTENT,
            DerivationCategory.CHANGE_OF_TIMING,
        }


class TestRegistry:
    def test_register_and_get(self, video_obj):
        registry = DerivationRegistry()
        derivation = make_derivation()
        registry.register(derivation)
        assert registry.get("test-derivation") is derivation
        assert "test-derivation" in registry

    def test_duplicate_rejected(self):
        registry = DerivationRegistry()
        registry.register(make_derivation())
        with pytest.raises(DerivationError, match="already"):
            registry.register(make_derivation())

    def test_unknown(self):
        registry = DerivationRegistry()
        with pytest.raises(DerivationError, match="unknown"):
            registry.get("nope")

    def test_by_category(self):
        registry = DerivationRegistry()
        registry.register(make_derivation())
        found = registry.by_category(DerivationCategory.CHANGE_OF_CONTENT)
        assert len(found) == 1

    def test_global_registry_has_table1(self):
        """Table 1's five derivations are all registered (via repro.edit
        and repro.media imports)."""
        import repro.edit  # noqa: F401 - registers derivations
        import repro.media  # noqa: F401

        for name in ("color-separation", "audio-normalization", "video-edit",
                     "video-transition", "midi-synthesis"):
            assert name in derivation_registry

    def test_table_shape_matches_paper(self):
        import repro.edit  # noqa: F401
        import repro.media  # noqa: F401

        rows = {row[0]: row for row in derivation_registry.table()}
        assert rows["color-separation"][1:] == ("image", "image",
                                                "change of content")
        assert rows["audio-normalization"][1:] == ("audio", "audio",
                                                   "change of content")
        assert rows["video-edit"][1:] == ("video...", "video",
                                          "change of timing")
        assert rows["video-transition"][1:] == ("video, video", "video",
                                                "change of content")
        assert rows["midi-synthesis"][1:] == ("music", "audio",
                                              "change of type")
