"""Tests for intervals and Allen's relations."""

import pytest

from repro.core.intervals import (
    Interval,
    IntervalRelation,
    relate,
    span,
    total_covered,
)
from repro.core.rational import Rational
from repro.errors import MediaModelError


def iv(start, end):
    return Interval(Rational(start), Rational(end))


class TestInterval:
    def test_duration(self):
        assert iv(1, 4).duration == 3

    def test_of_constructor(self):
        assert Interval.of(2, 5) == iv(2, 7)

    def test_reversed_rejected(self):
        with pytest.raises(MediaModelError):
            iv(4, 1)

    def test_instant(self):
        assert iv(2, 2).is_instant
        assert not iv(2, 3).is_instant

    def test_contains_time_half_open(self):
        interval = iv(1, 3)
        assert interval.contains_time(1)
        assert interval.contains_time(2)
        assert not interval.contains_time(3)
        assert not interval.contains_time(0)

    def test_instant_contains_own_start(self):
        assert iv(2, 2).contains_time(2)
        assert not iv(2, 2).contains_time(3)

    def test_intersects(self):
        assert iv(0, 2).intersects(iv(1, 3))
        assert not iv(0, 2).intersects(iv(2, 3))  # half-open: meets, no overlap

    def test_instant_intersection_with_interval(self):
        assert iv(1, 1).intersects(iv(0, 2))
        assert iv(0, 2).intersects(iv(1, 1))

    def test_intersection_value(self):
        assert iv(0, 3).intersection(iv(1, 5)) == iv(1, 3)
        assert iv(0, 1).intersection(iv(2, 3)) is None

    def test_hull(self):
        assert iv(0, 1).hull(iv(3, 4)) == iv(0, 4)

    def test_translate(self):
        assert iv(1, 2).translate(3) == iv(4, 5)

    def test_scale(self):
        assert iv(1, 2).scale(2) == iv(2, 4)

    def test_scale_rejects_non_positive(self):
        with pytest.raises(MediaModelError):
            iv(1, 2).scale(0)

    def test_str(self):
        assert str(iv(0, 130)) == "[0:00.000, 2:10.000)"


class TestAllenRelations:
    CASES = [
        (iv(0, 1), iv(2, 3), IntervalRelation.BEFORE),
        (iv(2, 3), iv(0, 1), IntervalRelation.AFTER),
        (iv(0, 2), iv(2, 4), IntervalRelation.MEETS),
        (iv(2, 4), iv(0, 2), IntervalRelation.MET_BY),
        (iv(0, 3), iv(2, 5), IntervalRelation.OVERLAPS),
        (iv(2, 5), iv(0, 3), IntervalRelation.OVERLAPPED_BY),
        (iv(0, 2), iv(0, 5), IntervalRelation.STARTS),
        (iv(0, 5), iv(0, 2), IntervalRelation.STARTED_BY),
        (iv(2, 4), iv(0, 5), IntervalRelation.DURING),
        (iv(0, 5), iv(2, 4), IntervalRelation.CONTAINS),
        (iv(3, 5), iv(0, 5), IntervalRelation.FINISHES),
        (iv(0, 5), iv(3, 5), IntervalRelation.FINISHED_BY),
        (iv(1, 4), iv(1, 4), IntervalRelation.EQUAL),
    ]

    @pytest.mark.parametrize("a,b,expected", CASES)
    def test_relation(self, a, b, expected):
        assert relate(a, b) is expected

    @pytest.mark.parametrize("a,b,expected", CASES)
    def test_inverse_consistency(self, a, b, expected):
        assert relate(b, a) is expected.inverse

    def test_all_thirteen_reachable(self):
        seen = {relate(a, b) for a, b, _ in self.CASES}
        assert seen == set(IntervalRelation)

    def test_exactly_one_relation_holds(self):
        # Disjointness: every pair lands on exactly one relation; spot
        # check a grid of endpoints.
        endpoints = [(a, b) for a in range(4) for b in range(a, 4)]
        for sa, ea in endpoints:
            for sb, eb in endpoints:
                result = relate(iv(sa, ea), iv(sb, eb))
                assert isinstance(result, IntervalRelation)


class TestAggregates:
    def test_span(self):
        assert span([iv(1, 2), iv(5, 6), iv(0, 1)]) == iv(0, 6)

    def test_span_empty(self):
        assert span([]) is None

    def test_total_covered_disjoint(self):
        assert total_covered([iv(0, 1), iv(2, 3)]) == 2

    def test_total_covered_overlapping_counted_once(self):
        assert total_covered([iv(0, 3), iv(2, 5)]) == 5

    def test_total_covered_nested(self):
        assert total_covered([iv(0, 10), iv(2, 4)]) == 10

    def test_total_covered_unsorted_input(self):
        assert total_covered([iv(4, 6), iv(0, 2), iv(1, 5)]) == 6


class TestInstantRelations:
    """Instants must classify consistently with ``intersects``.

    The regression fixed here: an instant at another interval's start
    used to classify as MEETS (a disjoint relation) even though
    ``intersects`` says the pair shares time.
    """

    def test_instant_at_start_starts(self):
        assert relate(iv(1, 1), iv(1, 4)) is IntervalRelation.STARTS
        assert relate(iv(1, 4), iv(1, 1)) is IntervalRelation.STARTED_BY

    def test_instant_inside_is_during(self):
        assert relate(iv(2, 2), iv(1, 4)) is IntervalRelation.DURING
        assert relate(iv(1, 4), iv(2, 2)) is IntervalRelation.CONTAINS

    def test_instant_at_end_is_met_by(self):
        # [1, 4) does not present time 4, so the pair is disjoint and
        # adjacent: the instant is met by the interval.
        assert relate(iv(4, 4), iv(1, 4)) is IntervalRelation.MET_BY
        assert relate(iv(1, 4), iv(4, 4)) is IntervalRelation.MEETS

    def test_equal_instants(self):
        assert relate(iv(3, 3), iv(3, 3)) is IntervalRelation.EQUAL

    def test_adjacent_instants(self):
        assert relate(iv(1, 1), iv(2, 2)) is IntervalRelation.BEFORE
        assert relate(iv(2, 2), iv(1, 1)) is IntervalRelation.AFTER

    @pytest.mark.parametrize("a,b", [
        (iv(1, 1), iv(1, 4)), (iv(2, 2), iv(1, 4)), (iv(4, 4), iv(1, 4)),
        (iv(0, 0), iv(1, 4)), (iv(3, 3), iv(3, 3)), (iv(0, 2), iv(2, 5)),
    ])
    def test_relate_agrees_with_intersects(self, a, b):
        disjoint = {
            IntervalRelation.BEFORE, IntervalRelation.AFTER,
            IntervalRelation.MEETS, IntervalRelation.MET_BY,
        }
        assert (relate(a, b) in disjoint) == (not a.intersects(b))
        assert relate(a, b).inverse is relate(b, a)
