"""Tests for exact rational time arithmetic."""

import math
from fractions import Fraction

import pytest

from repro.core.rational import ONE, ZERO, Rational, as_rational


class TestConstruction:
    def test_from_ints(self):
        assert Rational(3, 4) == Fraction(3, 4)

    def test_from_string(self):
        assert Rational("29.97") == Fraction(2997, 100)

    def test_from_fraction(self):
        assert Rational(Fraction(1, 3)) == Fraction(1, 3)

    def test_from_tuple(self):
        assert Rational((30000, 1001)) == Fraction(30000, 1001)

    def test_tuple_with_denominator_rejected(self):
        with pytest.raises(TypeError):
            Rational((1, 2), 3)

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            Rational(0.5)

    def test_float_denominator_rejected(self):
        with pytest.raises(TypeError):
            Rational(1, 2.0)

    def test_from_float_explicit(self):
        assert Rational.from_float(0.5) == Fraction(1, 2)

    def test_from_float_limits_denominator(self):
        value = Rational.from_float(1 / 3)
        assert value == Fraction(1, 3)

    def test_normalization(self):
        assert Rational(2, 4) == Rational(1, 2)

    def test_zero_and_one_constants(self):
        assert ZERO == 0
        assert ONE == 1


class TestArithmeticClosure:
    """Arithmetic must return Rational, not plain Fraction."""

    @pytest.mark.parametrize("expression", [
        lambda: Rational(1, 2) + Rational(1, 3),
        lambda: Rational(1, 2) - Rational(1, 3),
        lambda: Rational(1, 2) * Rational(2, 3),
        lambda: Rational(1, 2) / Rational(2, 3),
        lambda: Rational(7, 2) % Rational(2),
        lambda: -Rational(1, 2),
        lambda: +Rational(1, 2),
        lambda: abs(Rational(-1, 2)),
        lambda: Rational(1, 2) ** 2,
        lambda: 1 + Rational(1, 2),
        lambda: 1 - Rational(1, 2),
        lambda: 2 * Rational(1, 2),
        lambda: 1 / Rational(1, 2),
    ])
    def test_closed(self, expression):
        assert isinstance(expression(), Rational)

    def test_ntsc_identity(self):
        ntsc = Rational(30000, 1001)
        assert ntsc * (1 / ntsc) == 1

    def test_exactness_over_an_hour(self):
        # 29.97 vs 30000/1001 diverge by ~3.6 frames/hour; exact math
        # keeps frame 107892 at exactly 3600.2892 seconds.
        frame = 107892
        seconds = Rational(frame) / Rational(30000, 1001)
        assert seconds == Rational(frame * 1001, 30000)


class TestHelpers:
    def test_to_seconds(self):
        assert Rational(1, 2).to_seconds() == 0.5

    def test_timestamp_minutes(self):
        assert Rational(130).to_timestamp() == "2:10.000"

    def test_timestamp_hours(self):
        assert Rational(3661).to_timestamp() == "1:01:01.000"

    def test_timestamp_millis(self):
        assert Rational(1, 4).to_timestamp() == "0:00.250"

    def test_timestamp_negative(self):
        assert Rational(-90).to_timestamp() == "-1:30.000"

    def test_repr(self):
        assert repr(Rational(3, 4)) == "Rational(3, 4)"

    def test_as_rational_passthrough(self):
        value = Rational(1, 3)
        assert as_rational(value) is value

    def test_as_rational_accepts_float(self):
        assert as_rational(0.25) == Rational(1, 4)

    def test_as_rational_accepts_int(self):
        assert as_rational(7) == Rational(7)

    def test_as_rational_accepts_string(self):
        assert as_rational("3/4") == Rational(3, 4)

    def test_hashable_like_fraction(self):
        assert hash(Rational(1, 2)) == hash(Fraction(1, 2))
