"""Tests for SMPTE timecode, including NTSC drop-frame."""

import pytest

from repro.core.rational import Rational
from repro.core.timecode import (
    Timecode,
    frame_to_timecode,
    timecode_seconds,
    timecode_to_frame,
)
from repro.errors import TimeSystemError


class TestTimecodeValue:
    def test_str_non_drop(self):
        assert str(Timecode(1, 2, 3, 4)) == "01:02:03:04"

    def test_str_drop_uses_semicolon(self):
        assert str(Timecode(0, 1, 0, 2, drop_frame=True)) == "00:01:00;02"

    def test_rejects_dropped_label(self):
        with pytest.raises(TimeSystemError):
            Timecode(0, 1, 0, 0, drop_frame=True)
        with pytest.raises(TimeSystemError):
            Timecode(0, 1, 0, 1, drop_frame=True)

    def test_tenth_minute_keeps_labels(self):
        # Minutes divisible by 10 do not drop labels 00/01.
        Timecode(0, 10, 0, 0, drop_frame=True)
        Timecode(0, 20, 0, 1, drop_frame=True)

    def test_range_validation(self):
        with pytest.raises(TimeSystemError):
            Timecode(0, 60, 0, 0)
        with pytest.raises(TimeSystemError):
            Timecode(0, 0, 60, 0)
        with pytest.raises(TimeSystemError):
            Timecode(-1, 0, 0, 0)


class TestNonDrop:
    @pytest.mark.parametrize("frame,expected", [
        (0, "00:00:00:00"),
        (29, "00:00:00:29"),
        (30, "00:00:01:00"),
        (1800, "00:01:00:00"),
        (108000, "01:00:00:00"),
    ])
    def test_frame_to_timecode_30fps(self, frame, expected):
        assert str(frame_to_timecode(frame, fps=30)) == expected

    def test_pal_25fps(self):
        assert str(frame_to_timecode(25, fps=25)) == "00:00:01:00"

    def test_roundtrip(self):
        for frame in (0, 1, 29, 30, 1799, 1800, 54321):
            tc = frame_to_timecode(frame, fps=30)
            assert timecode_to_frame(tc, fps=30) == frame

    def test_negative_frame_rejected(self):
        with pytest.raises(TimeSystemError):
            frame_to_timecode(-1)


class TestDropFrame:
    def test_first_dropped_label(self):
        # Frame 1800 is one minute in: labels ;00 and ;01 are dropped.
        assert str(frame_to_timecode(1800, fps=30, drop_frame=True)) == "00:01:00;02"

    def test_tenth_minute_not_dropped(self):
        frame = 17982  # exactly ten drop-frame minutes
        assert str(frame_to_timecode(frame, fps=30, drop_frame=True)) == "00:10:00;00"

    def test_end_of_first_minute(self):
        assert str(frame_to_timecode(1799, fps=30, drop_frame=True)) == "00:00:59;29"

    def test_roundtrip_dense(self):
        for frame in range(0, 20000, 37):
            tc = frame_to_timecode(frame, fps=30, drop_frame=True)
            assert timecode_to_frame(tc, fps=30) == frame

    def test_one_hour_drift_is_small(self):
        # Drop-frame labels track wall time within 3.6 ms/hour: the
        # label 01:00:00;00 must land within 0.1 s of 3600 s.
        frame = timecode_to_frame(
            Timecode(1, 0, 0, 0, drop_frame=True), fps=30
        )
        seconds = float(frame) * 1001 / 30000
        assert abs(seconds - 3600.0) < 0.1

    def test_requires_30fps(self):
        with pytest.raises(TimeSystemError):
            frame_to_timecode(10, fps=25, drop_frame=True)
        with pytest.raises(TimeSystemError):
            timecode_to_frame(Timecode(0, 0, 1, 0, drop_frame=True), fps=25)


class TestTimecodeSeconds:
    def test_ntsc_seconds_exact(self):
        tc = Timecode(0, 0, 1, 0)
        assert timecode_seconds(tc) == Rational(30 * 1001, 30000)

    def test_drop_frame_seconds(self):
        tc = Timecode(0, 1, 0, 2, drop_frame=True)
        assert timecode_seconds(tc) == Rational(1800 * 1001, 30000)
