"""Tests for media and element descriptors."""

import pytest

from repro.core.descriptors import ElementDescriptor, MediaDescriptor
from repro.errors import DescriptorError


class TestConstruction:
    def test_from_mapping(self):
        d = MediaDescriptor({"kind": "audio", "sample_rate": 44100})
        assert d["sample_rate"] == 44100

    def test_from_kwargs(self):
        d = MediaDescriptor(kind="video", frame_rate=25)
        assert d["frame_rate"] == 25

    def test_kwargs_override_mapping(self):
        d = MediaDescriptor({"a": 1}, a=2)
        assert d["a"] == 2

    def test_empty_key_rejected(self):
        with pytest.raises(DescriptorError):
            MediaDescriptor({"": 1})

    def test_non_string_key_rejected(self):
        with pytest.raises(DescriptorError):
            MediaDescriptor({3: 1})


class TestMappingBehaviour:
    def test_missing_attribute_error_lists_present(self):
        d = MediaDescriptor(kind="audio")
        with pytest.raises(DescriptorError, match="kind"):
            d["sample_rate"]

    def test_contains(self):
        d = MediaDescriptor(kind="audio")
        assert "kind" in d
        assert "missing" not in d

    def test_get_default(self):
        d = MediaDescriptor(kind="audio")
        assert d.get("missing", 7) == 7

    def test_len_and_iter(self):
        d = MediaDescriptor(a=1, b=2)
        assert len(d) == 2
        assert sorted(d) == ["a", "b"]

    def test_iteration_order_is_sorted(self):
        d = MediaDescriptor(z=1, a=2, m=3)
        assert list(d) == ["a", "m", "z"]

    def test_equality_with_dict(self):
        assert MediaDescriptor(a=1) == {"a": 1}

    def test_equality_between_descriptors(self):
        assert MediaDescriptor(a=1) == MediaDescriptor(a=1)
        assert MediaDescriptor(a=1) != MediaDescriptor(a=2)

    def test_hashable(self):
        assert hash(MediaDescriptor(a=1)) == hash(MediaDescriptor(a=1))

    def test_element_and_media_descriptors_hash_differently(self):
        assert hash(MediaDescriptor(a=1)) != hash(ElementDescriptor(a=1))


class TestImmutability:
    def test_with_updates_returns_new(self):
        d = MediaDescriptor(a=1)
        d2 = d.with_updates(a=2, b=3)
        assert d["a"] == 1
        assert d2["a"] == 2 and d2["b"] == 3
        assert isinstance(d2, MediaDescriptor)

    def test_without(self):
        d = MediaDescriptor(a=1, b=2)
        assert d.without("a") == {"b": 2}
        assert d.without("missing") == {"a": 1, "b": 2}

    def test_as_dict_is_a_copy(self):
        d = MediaDescriptor(a=1)
        copy = d.as_dict()
        copy["a"] = 99
        assert d["a"] == 1

    def test_no_item_assignment(self):
        d = MediaDescriptor(a=1)
        with pytest.raises(TypeError):
            d["a"] = 2


class TestDisplay:
    def test_describe_renders_figure2_style(self):
        d = MediaDescriptor(quality_factor="VHS quality", frame_rate=25)
        text = d.describe()
        assert "quality_factor = VHS quality" in text
        assert text.startswith("{")

    def test_repr_contains_values(self):
        assert "a=1" in repr(MediaDescriptor(a=1))
