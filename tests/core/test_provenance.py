"""Tests for the provenance graph."""

import pytest

from repro.core.provenance import ProvenanceGraph
from repro.errors import MediaModelError
from repro.media import frames
from repro.media.objects import video_object
from repro.edit import MediaEditor


@pytest.fixture
def production():
    """A small Figure 4-style derivation chain."""
    v1 = video_object(frames.scene(16, 16, 10, "orbit"), "video1")
    v2 = video_object(frames.scene(16, 16, 10, "cut"), "video2")
    editor = MediaEditor()
    cut1 = editor.cut(v1, 0, 5, name="cut1")
    cut2 = editor.cut(v2, 5, 10, name="cut2")
    fade = editor.transition(v1, v2, 4, kind="fade", a_start=5, b_start=0,
                             name="fade")
    final = editor.concat(cut1, fade, cut2, name="final")
    return v1, v2, cut1, cut2, fade, final, editor.provenance


class TestRegistration:
    def test_recursive_registration(self, production):
        v1, v2, cut1, cut2, fade, final, graph = production
        # Registering `final` pulled in the whole chain.
        assert len(graph) == 6
        assert v1 in graph and fade in graph

    def test_idempotent(self, production):
        *_, final, graph = production
        before = len(graph)
        graph.register(final)
        assert len(graph) == before

    def test_by_name(self, production):
        v1, *_, graph = production
        assert graph.by_name("video1") is v1
        with pytest.raises(MediaModelError):
            graph.by_name("nope")


class TestQueries:
    def test_antecedents(self, production):
        v1, v2, cut1, cut2, fade, final, graph = production
        assert graph.antecedents(final) == [cut1, fade, cut2]
        assert set(graph.antecedents(fade)) == {v1, v2}
        assert graph.antecedents(v1) == []

    def test_derivatives(self, production):
        v1, v2, cut1, cut2, fade, final, graph = production
        assert set(graph.derivatives(v1)) == {cut1, fade}
        assert graph.derivatives(final) == []

    def test_lineage(self, production):
        v1, v2, cut1, cut2, fade, final, graph = production
        lineage = graph.lineage(final)
        assert set(lineage) == {cut1, cut2, fade, v1, v2}
        # Nearest antecedents come first (BFS).
        assert lineage[0] in {cut1, cut2, fade}

    def test_descendants(self, production):
        v1, v2, cut1, cut2, fade, final, graph = production
        assert set(graph.descendants(v2)) == {cut2, fade, final}

    def test_roots(self, production):
        v1, v2, *_, graph = production
        assert set(graph.roots()) == {v1, v2}

    def test_production_order_topological(self, production):
        v1, v2, cut1, cut2, fade, final, graph = production
        order = graph.production_order()
        positions = {obj.object_id: i for i, obj in enumerate(order)}
        assert positions[v1.object_id] < positions[cut1.object_id]
        assert positions[fade.object_id] < positions[final.object_id]
        assert len(order) == 6

    def test_derivation_steps_readable(self, production):
        *_, final, graph = production
        steps = graph.derivation_steps(final)
        assert steps[-1].startswith("final = video-edit(")
        assert any("fade = video-transition" in s for s in steps)
