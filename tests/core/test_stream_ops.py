"""Tests for generic timing operations on streams."""

import pytest

from repro.core import stream_ops
from repro.core.elements import MediaElement
from repro.core.media_types import media_type_registry
from repro.core.rational import Rational
from repro.core.streams import TimedStream, TimedTuple
from repro.core.time_system import CD_AUDIO_TIME, PAL_TIME
from repro.errors import StreamError


@pytest.fixture
def video():
    return media_type_registry.get("pal-video")


@pytest.fixture
def stream(video):
    return TimedStream.from_elements(
        video, [MediaElement(payload=i, size=10) for i in range(6)]
    )


class TestTranslate:
    def test_offsets_starts(self, stream):
        moved = stream_ops.translate(stream, 100)
        assert [t.start for t in moved] == [100, 101, 102, 103, 104, 105]

    def test_preserves_durations_and_payloads(self, stream):
        moved = stream_ops.translate(stream, 7)
        assert [t.duration for t in moved] == [1] * 6
        assert [t.element.payload for t in moved] == list(range(6))

    def test_negative_offset(self, stream):
        moved = stream_ops.translate(stream, -2)
        assert moved.start == -2

    def test_original_untouched(self, stream):
        stream_ops.translate(stream, 50)
        assert stream.start == 0


class TestScale:
    def test_doubles_timing(self, stream):
        scaled = stream_ops.scale(stream, 2)
        assert [t.start for t in scaled] == [0, 2, 4, 6, 8, 10]
        assert all(t.duration == 2 for t in scaled)

    def test_halving_even_timings(self, stream):
        doubled = stream_ops.scale(stream, 2)
        halved = stream_ops.scale(doubled, Rational(1, 2))
        assert halved.tuples == stream.tuples

    def test_non_integral_result_rejected(self, stream):
        with pytest.raises(StreamError, match="integral"):
            stream_ops.scale(stream, Rational(1, 2))

    def test_non_positive_rejected(self, stream):
        with pytest.raises(StreamError):
            stream_ops.scale(stream, 0)


class TestSelectRange:
    def test_selects_and_rebases(self, stream):
        selected = stream_ops.select_range(stream, 2, 5)
        assert len(selected) == 3
        assert selected.start == 0
        assert [t.element.payload for t in selected] == [2, 3, 4]

    def test_without_rebase(self, stream):
        selected = stream_ops.select_range(stream, 2, 5, rebase=False)
        assert selected.start == 2

    def test_partial_elements_excluded(self, video):
        tuples = [TimedTuple(MediaElement(size=1), 0, 4)]
        long_stream = TimedStream(video, tuples, validate_constraints=False)
        assert len(stream_ops.select_range(long_stream, 0, 2)) == 0

    def test_events_at_range_edge(self, video):
        tuples = [TimedTuple(MediaElement(size=1), 2, 0)]
        events = TimedStream(video, tuples, validate_constraints=False)
        assert len(stream_ops.select_range(events, 0, 3)) == 1
        assert len(stream_ops.select_range(events, 0, 2)) == 0

    def test_reversed_range_rejected(self, stream):
        with pytest.raises(StreamError):
            stream_ops.select_range(stream, 5, 2)


class TestSelectElements:
    def test_by_index(self, stream):
        picked = stream_ops.select_elements(stream, [1, 3, 5])
        assert [t.element.payload for t in picked] == [1, 3, 5]
        assert picked.start == 0

    def test_order_must_be_temporal(self, stream):
        with pytest.raises(StreamError, match="time-ordered"):
            stream_ops.select_elements(stream, [3, 1])

    def test_empty_selection(self, stream):
        assert len(stream_ops.select_elements(stream, [])) == 0


class TestConcat:
    def test_appends_in_time(self, stream):
        joined = stream_ops.concat(stream, stream)
        assert len(joined) == 12
        assert joined.span_ticks == 12
        assert joined.is_continuous()

    def test_rejects_mixed_types(self, stream):
        cd = media_type_registry.get("cd-audio")
        audio = TimedStream.from_elements(cd, [MediaElement(size=4)])
        # "an audio sequence cannot be concatenated to a video sequence"
        with pytest.raises(StreamError, match="concatenate"):
            stream_ops.concat(stream, audio)

    def test_rejects_mixed_time_systems(self, stream, video):
        other = TimedStream.from_elements(
            video, [MediaElement(size=1)], time_system=CD_AUDIO_TIME,
        )
        with pytest.raises(StreamError, match="time systems"):
            stream_ops.concat(stream, other)

    def test_requires_input(self):
        with pytest.raises(StreamError):
            stream_ops.concat()

    def test_rebases_offset_sources(self, stream):
        shifted = stream_ops.translate(stream, 1000)
        joined = stream_ops.concat(stream, shifted)
        assert joined.span_ticks == 12


class TestMerge:
    def test_preserves_starts(self, stream):
        shifted = stream_ops.translate(stream, 3)
        merged = stream_ops.merge(stream, shifted)
        assert len(merged) == 12
        assert merged.start == 0
        assert merged.has_overlaps()

    def test_sorted_by_start(self, stream):
        shifted = stream_ops.translate(stream, 2)
        merged = stream_ops.merge(shifted, stream)
        starts = [t.start for t in merged]
        assert starts == sorted(starts)

    def test_type_mismatch_rejected(self, stream):
        cd = media_type_registry.get("cd-audio")
        audio = TimedStream.from_elements(cd, [MediaElement(size=4)])
        with pytest.raises(StreamError):
            stream_ops.merge(stream, audio)


class TestMapElements:
    def test_transform_preserves_timing(self, stream):
        doubled = stream_ops.map_elements(
            stream, lambda e: MediaElement(payload=e.payload * 2, size=e.size)
        )
        assert [t.element.payload for t in doubled] == [0, 2, 4, 6, 8, 10]
        assert [t.start for t in doubled] == [t.start for t in stream]


class TestGapsAndOverlaps:
    def test_gaps(self, video):
        tuples = [
            TimedTuple(MediaElement(size=1), 0, 2),
            TimedTuple(MediaElement(size=1), 5, 1),
            TimedTuple(MediaElement(size=1), 9, 1),
        ]
        stream = TimedStream(video, tuples, validate_constraints=False)
        assert stream_ops.gaps(stream) == [(2, 5), (6, 9)]

    def test_no_gaps_when_continuous(self, stream):
        assert stream_ops.gaps(stream) == []

    def test_overlaps_chord(self, video):
        tuples = [
            TimedTuple(MediaElement(size=1), 0, 4),
            TimedTuple(MediaElement(size=1), 0, 4),
            TimedTuple(MediaElement(size=1), 2, 4),
            TimedTuple(MediaElement(size=1), 10, 1),
        ]
        stream = TimedStream(video, tuples, validate_constraints=False)
        assert stream_ops.overlaps(stream) == [(0, 1), (0, 2), (1, 2)]

    def test_gap_covered_by_long_element(self, video):
        # A long element bridges what looks like a gap between later ones.
        tuples = [
            TimedTuple(MediaElement(size=1), 0, 10),
            TimedTuple(MediaElement(size=1), 1, 2),
            TimedTuple(MediaElement(size=1), 6, 2),
        ]
        stream = TimedStream(video, tuples, validate_constraints=False)
        assert stream_ops.gaps(stream) == []


class TestRetime:
    def test_pal_to_cd(self, stream):
        retimed = stream_ops.retime(stream, target_system=CD_AUDIO_TIME)
        # 1 PAL tick = 1764 CD ticks.
        assert [t.start for t in retimed] == [i * 1764 for i in range(6)]
        assert all(t.duration == 1764 for t in retimed)

    def test_target_media_type_sets_system(self, stream):
        block_audio = media_type_registry.get("block-audio")
        retimed = stream_ops.retime(stream, target_media_type=block_audio)
        assert retimed.time_system == CD_AUDIO_TIME
        assert retimed.media_type.name == "block-audio"
