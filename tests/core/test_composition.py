"""Tests for composition (Definition 7)."""

import pytest

from repro.core.composition import (
    CompositionRelationship,
    MultimediaObject,
    SpatialComposition,
    SpatialPlacement,
    TemporalComposition,
)
from repro.core.elements import MediaElement
from repro.core.intervals import IntervalRelation
from repro.core.media_object import StillMediaObject, StreamMediaObject
from repro.core.media_types import media_type_registry
from repro.core.rational import Rational
from repro.core.streams import TimedStream
from repro.errors import CompositionError


def make_video(name, frame_count):
    video_type = media_type_registry.get("pal-video")
    stream = TimedStream.from_elements(
        video_type, [MediaElement(size=8) for _ in range(frame_count)]
    )
    descriptor = video_type.make_media_descriptor(
        frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
        color_model="RGB",
        duration=video_type.time_system.to_continuous(frame_count),
    )
    return StreamMediaObject(video_type, descriptor, stream, name=name)


def make_image(name):
    image_type = media_type_registry.get("image")
    descriptor = image_type.make_media_descriptor(
        width=4, height=4, depth=24, color_model="RGB",
    )
    return StillMediaObject(image_type, descriptor, b"img", name=name)


@pytest.fixture
def clip_a():
    return make_video("a", 50)  # 2 s


@pytest.fixture
def clip_b():
    return make_video("b", 25)  # 1 s


class TestRelationships:
    def test_requires_temporal_or_spatial(self, clip_a):
        with pytest.raises(CompositionError):
            CompositionRelationship(clip_a)

    def test_temporal_interval_from_descriptor(self, clip_a):
        rel = TemporalComposition(clip_a, start_offset=1)
        assert rel.interval().start == 1
        assert rel.interval().end == 3

    def test_duration_falls_back_to_stream(self, clip_a):
        bare = make_video("bare", 50)
        bare.descriptor = bare.descriptor.without("duration")
        rel = TemporalComposition(bare, start_offset=0)
        assert rel.duration() == 2

    def test_explicit_duration_wins(self, clip_a):
        rel = TemporalComposition(clip_a, start_offset=0, duration=5)
        assert rel.duration() == 5

    def test_still_needs_explicit_duration(self):
        image = make_image("img")
        rel = TemporalComposition(image, start_offset=0, duration=3)
        assert rel.duration() == 3
        bare = TemporalComposition(image, start_offset=0)
        assert bare.duration() == 0

    def test_negative_offset_rejected(self, clip_a):
        with pytest.raises(CompositionError):
            TemporalComposition(clip_a, start_offset=-1)

    def test_spatial_placement(self, clip_a):
        rel = SpatialComposition(clip_a, x=10, y=20, z=2)
        assert rel.is_spatial and not rel.is_temporal
        assert rel.placement.x == 10
        assert rel.placement.z == 2

    def test_spatial_scale_positive(self, clip_a):
        with pytest.raises(CompositionError):
            SpatialPlacement(Rational(0), Rational(0), scale=Rational(0))

    def test_spatial_interval_raises(self, clip_a):
        rel = SpatialComposition(clip_a, x=0, y=0)
        with pytest.raises(CompositionError):
            rel.interval()


class TestMultimediaObject:
    def test_figure4_timeline(self, clip_a, clip_b):
        """The shape of Figure 4(b): three components, staggered."""
        m = MultimediaObject("m")
        m.add_temporal(clip_a, at=0, label="video3")
        m.add_temporal(clip_a, at=0, label="audio1")
        m.add_temporal(clip_b, at=1, label="audio2")
        assert m.duration() == 2
        labels = [label for label, _ in m.timeline()]
        assert labels == ["audio1", "video3", "audio2"]

    def test_duplicate_labels_rejected(self, clip_a):
        m = MultimediaObject("m")
        m.add_temporal(clip_a, at=0, label="x")
        with pytest.raises(CompositionError, match="already"):
            m.add_temporal(clip_a, at=1, label="x")

    def test_component_lookup(self, clip_a):
        m = MultimediaObject("m")
        m.add_temporal(clip_a, at=0, label="x")
        assert m.component("x").component is clip_a
        with pytest.raises(CompositionError, match="no component"):
            m.component("y")

    def test_empty_duration(self):
        assert MultimediaObject("m").duration() == 0

    def test_relation(self, clip_a, clip_b):
        m = MultimediaObject("m")
        m.add_temporal(clip_a, at=0, label="long")   # [0, 2)
        m.add_temporal(clip_b, at=Rational(1, 2), label="short")  # [0.5, 1.5)
        assert m.relation("short", "long") is IntervalRelation.DURING
        assert m.relation("long", "short") is IntervalRelation.CONTAINS

    def test_simultaneous_at(self, clip_a, clip_b):
        m = MultimediaObject("m")
        m.add_temporal(clip_a, at=0, label="x")
        m.add_temporal(clip_b, at=Rational(3, 2), label="y")
        assert m.simultaneous_at(1) == ["x"]
        assert set(m.simultaneous_at(Rational(8, 5))) == {"x", "y"}

    def test_spatial_components_span_presentation(self, clip_a):
        m = MultimediaObject("m")
        m.add_spatial(clip_a, x=0, y=0, label="bg")
        # Spatial-only components appear at time 0 with their duration.
        assert m.duration() == 2

    def test_len_iter(self, clip_a):
        m = MultimediaObject("m")
        m.add_temporal(clip_a, at=0)
        assert len(m) == 1
        assert list(m)[0].component is clip_a


class TestNesting:
    def test_flatten_resolves_offsets(self, clip_a, clip_b):
        inner = MultimediaObject("inner")
        inner.add_temporal(clip_b, at=1, label="leaf")
        outer = MultimediaObject("outer")
        outer.add_temporal(inner, at=2, label="nested")
        flat = outer.flatten()
        assert len(flat) == 1
        label, obj, interval = flat[0]
        assert label == "nested/leaf"
        assert obj is clip_b
        assert interval.start == 3
        assert interval.end == 4

    def test_nested_duration(self, clip_a, clip_b):
        inner = MultimediaObject("inner")
        inner.add_temporal(clip_b, at=1, label="leaf")  # ends at 2
        outer = MultimediaObject("outer")
        outer.add_temporal(inner, at=3, label="nested")
        assert outer.duration() == 5


class TestDiagram:
    def test_timeline_diagram_renders(self, clip_a, clip_b):
        m = MultimediaObject("m")
        m.add_temporal(clip_a, at=0, label="video3")
        m.add_temporal(clip_b, at=1, label="audio2")
        diagram = m.timeline_diagram(width=20)
        assert "video3" in diagram
        assert "#" in diagram

    def test_empty_diagram(self):
        assert "(empty)" in MultimediaObject("m").timeline_diagram()
