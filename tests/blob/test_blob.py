"""Tests for BLOBs (Definition 4)."""

import pytest

from repro.blob.blob import MemoryBlob, PagedBlob
from repro.blob.pages import MemoryPager, PageStore
from repro.errors import BlobBoundsError, BlobError


@pytest.fixture(params=["memory", "paged"])
def blob(request):
    """Both BLOB implementations satisfy the same Definition 4 contract."""
    if request.param == "memory":
        return MemoryBlob()
    return PagedBlob(PageStore(MemoryPager(page_size=16)))


class TestDefinition4Contract:
    def test_starts_empty(self, blob):
        assert len(blob) == 0

    def test_append_returns_offset(self, blob):
        assert blob.append(b"hello") == 0
        assert blob.append(b"world") == 5
        assert len(blob) == 10

    def test_read(self, blob):
        blob.append(b"hello world")
        assert blob.read(0, 5) == b"hello"
        assert blob.read(6, 5) == b"world"

    def test_read_all(self, blob):
        blob.append(b"abc")
        assert blob.read_all() == b"abc"

    def test_out_of_bounds_read_rejected(self, blob):
        blob.append(b"abc")
        with pytest.raises(BlobBoundsError):
            blob.read(0, 4)
        with pytest.raises(BlobBoundsError):
            blob.read(3, 1)
        with pytest.raises(BlobBoundsError):
            blob.read(-1, 1)

    def test_empty_read_at_end_ok(self, blob):
        blob.append(b"abc")
        assert blob.read(3, 0) == b""

    def test_large_append_roundtrip(self, blob):
        data = bytes(range(256)) * 40  # 10240 bytes, crosses many pages
        blob.append(data)
        assert blob.read(0, len(data)) == data

    def test_read_across_boundaries(self, blob):
        blob.append(bytes(range(100)))
        assert blob.read(10, 30) == bytes(range(10, 40))


class TestPagedBlobSpecifics:
    def test_page_chain_growth(self):
        store = PageStore(MemoryPager(page_size=16))
        blob = PagedBlob(store)
        blob.append(b"x" * 40)
        assert len(blob.pages) == 3

    def test_fragmentation_from_interleaved_growth(self):
        # Two blobs growing together fragment each other's chains —
        # the "BLOB ... may be fragmented" case.
        store = PageStore(MemoryPager(page_size=16))
        a = PagedBlob(store)
        b = PagedBlob(store)
        for _ in range(4):
            a.append(b"a" * 16)
            b.append(b"b" * 16)
        assert a.fragmentation() == 1.0
        assert b.fragmentation() == 1.0
        assert a.read_all() == b"a" * 64
        assert b.read_all() == b"b" * 64

    def test_contiguous_when_alone(self):
        store = PageStore(MemoryPager(page_size=16))
        blob = PagedBlob(store)
        blob.append(b"z" * 64)
        assert blob.fragmentation() == 0.0

    def test_release_returns_pages(self):
        store = PageStore(MemoryPager(page_size=16))
        blob = PagedBlob(store)
        blob.append(b"x" * 64)
        blob.release()
        assert len(blob) == 0
        assert store.free_pages == 4

    def test_inconsistent_length_rejected(self):
        store = PageStore(MemoryPager(page_size=16))
        with pytest.raises(BlobError):
            PagedBlob(store, pages=[], length=5)

    def test_partial_page_append_then_more(self):
        store = PageStore(MemoryPager(page_size=16))
        blob = PagedBlob(store)
        blob.append(b"x" * 10)
        blob.append(b"y" * 10)
        assert blob.read_all() == b"x" * 10 + b"y" * 10
        assert len(blob.pages) == 2
