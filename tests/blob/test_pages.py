"""Tests for the paged backing store."""

import pytest

from repro.blob.pages import PAGE_SIZE, FilePager, MemoryPager, PageStore
from repro.errors import BlobError
from repro.obs import Observability


class TestMemoryPager:
    def test_grow_and_read(self):
        pager = MemoryPager(page_size=64)
        assert pager.grow() == 0
        assert pager.grow() == 1
        assert pager.read_page(0) == b"\x00" * 64

    def test_write_at_offset(self):
        pager = MemoryPager(page_size=64)
        pager.grow()
        pager.write_page(0, b"abc", offset=10)
        assert pager.read_page(0)[10:13] == b"abc"

    def test_write_overflow_rejected(self):
        pager = MemoryPager(page_size=16)
        pager.grow()
        with pytest.raises(BlobError, match="exceeds"):
            pager.write_page(0, b"x" * 17)
        with pytest.raises(BlobError):
            pager.write_page(0, b"x" * 10, offset=10)

    def test_out_of_range(self):
        pager = MemoryPager()
        with pytest.raises(BlobError, match="out of range"):
            pager.read_page(0)


class TestFilePager:
    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "pages.dat"
        with FilePager(path, page_size=32) as pager:
            pager.grow()
            pager.write_page(0, b"hello")
        with FilePager(path, page_size=32) as pager:
            assert len(pager) == 1
            assert pager.read_page(0)[:5] == b"hello"

    def test_bad_size_rejected(self, tmp_path):
        path = tmp_path / "bad.dat"
        path.write_bytes(b"x" * 33)
        with pytest.raises(BlobError, match="multiple"):
            FilePager(path, page_size=32)

    def test_grow_extends_file(self, tmp_path):
        path = tmp_path / "grow.dat"
        with FilePager(path, page_size=16) as pager:
            pager.grow()
            pager.grow()
        assert path.stat().st_size == 32


class TestPageStore:
    def test_default_page_size(self):
        assert PageStore().page_size == PAGE_SIZE

    def test_allocate_reuses_freed(self):
        store = PageStore(MemoryPager(page_size=16))
        a = store.allocate()
        b = store.allocate()
        store.free(a)
        assert store.allocate() == a
        assert store.free_pages == 0
        assert store.allocated_pages == 2

    def test_double_free_rejected(self):
        store = PageStore(MemoryPager(page_size=16))
        page = store.allocate()
        store.free(page)
        with pytest.raises(BlobError, match="double free"):
            store.free(page)

    def test_allocate_many(self):
        store = PageStore(MemoryPager(page_size=16))
        pages = store.allocate_many(5)
        assert len(pages) == 5
        assert store.allocated_pages == 5

    def test_fragmentation_metric(self):
        store = PageStore(MemoryPager(page_size=16))
        assert store.fragmentation([0, 1, 2, 3]) == 0.0
        assert store.fragmentation([0, 2, 4]) == 1.0
        assert store.fragmentation([0, 1, 5]) == 0.5
        assert store.fragmentation([7]) == 0.0

    def test_reused_page_returns_zeroes_without_checksums(self):
        """Regression: zero-on-reuse must not depend on checksumming."""
        store = PageStore(MemoryPager(page_size=16))
        page = store.allocate()
        store.write(page, b"secret!!secret!!")
        store.free(page)
        again = store.allocate()
        assert again == page
        assert store.read(again) == bytes(16)

    def test_free_out_of_range_raises(self):
        """Regression: freeing a nonexistent page must not poison the
        free list."""
        store = PageStore(MemoryPager(page_size=16))
        store.allocate()
        with pytest.raises(BlobError, match="out of range"):
            store.free(1)
        with pytest.raises(BlobError, match="out of range"):
            store.free(-1)
        # The free list stayed clean: the next allocation grows.
        assert store.allocate() == 1

    def test_free_many_out_of_range_raises(self):
        store = PageStore(MemoryPager(page_size=16))
        pages = store.allocate_many(2)
        with pytest.raises(BlobError, match="out of range"):
            store.free_many([pages[0], 99])
        # The valid prefix was freed before the failure surfaced.
        assert store.free_pages == 1


class TestRawReadAccounting:
    """Maintenance re-reads are accounted apart from logical reads, so
    hit-ratio arithmetic over the read counters stays truthful."""

    def test_partial_write_counts_raw_read_not_logical(self):
        obs = Observability()
        store = PageStore(MemoryPager(page_size=16), checksums=True, obs=obs)
        page = store.allocate()
        store.write(page, b"abc", offset=4)  # partial: checksum re-read
        counters = obs.metrics
        assert counters.counter("blob.page.raw_reads").total() == 1
        assert counters.counter("blob.page.raw_bytes_read").total() == 16
        assert counters.counter("blob.page.reads").total() == 0
        assert counters.counter("blob.page.bytes_read").total() == 0

    def test_full_page_write_needs_no_raw_read(self):
        obs = Observability()
        store = PageStore(MemoryPager(page_size=16), checksums=True, obs=obs)
        page = store.allocate()
        store.write(page, b"x" * 16)
        assert obs.metrics.counter("blob.page.raw_reads").total() == 0

    def test_rebuild_checksums_counts_raw_reads(self):
        obs = Observability()
        store = PageStore(MemoryPager(page_size=16), checksums=True, obs=obs)
        store.allocate_many(3)
        store.rebuild_checksums()
        assert obs.metrics.counter("blob.page.raw_reads").total() == 3

    def test_logical_read_counts_pager_read(self):
        obs = Observability()
        store = PageStore(MemoryPager(page_size=16), obs=obs)
        page = store.allocate()
        store.read(page)
        counters = obs.metrics
        assert counters.counter("blob.page.reads").total() == 1
        assert counters.counter("blob.page.pager_reads").total() == 1
        assert counters.counter("blob.page.raw_reads").total() == 0


class TestFreeListScaling:
    """The free list is set-backed: bulk release must stay linear and
    reuse must remain LIFO."""

    def test_bulk_free_and_reuse_order(self):
        store = PageStore(MemoryPager(page_size=16))
        pages = store.allocate_many(500)
        store.free_many(pages)
        assert store.free_pages == 500
        # LIFO: the most recently freed page comes back first.
        assert store.allocate() == pages[-1]
        assert store.allocate() == pages[-2]
        assert store.free_pages == 498

    def test_interleaved_free_allocate(self):
        store = PageStore(MemoryPager(page_size=16))
        pages = store.allocate_many(10)
        store.free_many(pages[:5])
        got = {store.allocate() for _ in range(5)}
        assert got == set(pages[:5])
        with pytest.raises(BlobError, match="double free"):
            store.free_many([pages[5], pages[5]])


class TestChecksums:
    def test_disabled_by_default(self):
        store = PageStore(MemoryPager(page_size=16))
        assert not store.checksums

    def test_roundtrip_with_checksums(self):
        store = PageStore(MemoryPager(page_size=16), checksums=True)
        page = store.allocate()
        store.write(page, b"0123456789abcdef")
        assert store.read(page) == b"0123456789abcdef"

    def test_fresh_page_verifies(self):
        store = PageStore(MemoryPager(page_size=16), checksums=True)
        page = store.allocate()
        assert store.read(page) == bytes(16)

    def test_detects_underlying_corruption(self):
        from repro.errors import BlobCorruptionError

        pager = MemoryPager(page_size=16)
        store = PageStore(pager, checksums=True)
        page = store.allocate()
        store.write(page, b"a" * 16)
        pager._pages[page][3] ^= 0x01  # rot on the medium
        with pytest.raises(BlobCorruptionError, match="checksum"):
            store.read(page)
        assert store.read(page, verify=False)  # escape hatch for salvage

    def test_reused_page_is_zeroed_with_valid_checksum(self):
        """Regression: a reused free-list page must come back zeroed —
        never the previous owner's bytes — and verify cleanly."""
        store = PageStore(MemoryPager(page_size=16), checksums=True)
        page = store.allocate()
        store.write(page, b"b" * 16)
        store.free(page)
        again = store.allocate()
        assert again == page
        assert store.read(again) == bytes(16)
        assert store.verify_page(again)
