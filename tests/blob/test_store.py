"""Tests for the BLOB catalog."""

import pytest

from repro.blob.pages import FilePager, MemoryPager, PageStore
from repro.blob.store import BlobStore
from repro.errors import BlobError


class TestBlobStore:
    def test_create_get(self):
        store = BlobStore()
        blob = store.create("movie")
        blob.append(b"data")
        assert store.get("movie").read_all() == b"data"
        assert "movie" in store

    def test_duplicate_rejected(self):
        store = BlobStore()
        store.create("x")
        with pytest.raises(BlobError, match="already exists"):
            store.create("x")

    def test_unknown_lists_names(self):
        store = BlobStore()
        store.create("a")
        with pytest.raises(BlobError, match="a"):
            store.get("b")

    def test_delete_frees_pages(self):
        store = BlobStore(PageStore(MemoryPager(page_size=16)))
        blob = store.create("x")
        blob.append(b"z" * 64)
        store.delete("x")
        assert "x" not in store
        assert store.pages.free_pages == 4

    def test_names_sorted(self):
        store = BlobStore()
        store.create("b")
        store.create("a")
        assert store.names() == ["a", "b"]

    def test_stats(self):
        store = BlobStore(PageStore(MemoryPager(page_size=16)))
        store.create("a").append(b"x" * 20)
        stats = store.stats()
        assert stats["blobs"] == 1
        assert stats["total_bytes"] == 20
        assert stats["pages_allocated"] == 2
        assert stats["page_size"] == 16

    def test_file_backed(self, tmp_path):
        path = tmp_path / "store.dat"
        store = BlobStore.file_backed(path)
        store.create("x").append(b"persisted")
        assert store.get("x").read_all() == b"persisted"
        assert path.exists()


class TestLifecycle:
    def test_close_releases_file_handle(self, tmp_path):
        path = tmp_path / "store.dat"
        store = BlobStore.file_backed(path)
        store.create("x").append(b"payload")
        store.close()
        assert store.pages.pager._file.closed
        # Close is idempotent.
        store.close()

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "store.dat"
        with BlobStore.file_backed(path, page_size=16) as store:
            store.create("x").append(b"y" * 40)
        assert store.pages.pager._file.closed
        # Reopening sees the persisted pages.
        with BlobStore.file_backed(path, page_size=16) as reopened:
            assert reopened.pages.allocated_pages == 3

    def test_flush_persists_without_closing(self, tmp_path):
        path = tmp_path / "store.dat"
        with BlobStore.file_backed(path, page_size=16) as store:
            store.create("x").append(b"z" * 16)
            store.flush()
            assert path.stat().st_size == 16
            assert not store.pages.pager._file.closed

    def test_memory_store_close_is_noop(self):
        store = BlobStore()
        store.create("x").append(b"data")
        store.close()
        with BlobStore() as ctx_store:
            ctx_store.create("y")
