"""Tests for audio normalization and image filters."""

import numpy as np
import pytest

from repro.core.derivation import derivation_registry
from repro.edit.filters import box_blur, normalize_signal, sharpen
from repro.errors import DerivationError
from repro.media import frames, signals
from repro.media.objects import audio_object, image_object, signal_of


class TestNormalizeSignal:
    def test_whole_signal_normalized(self):
        samples = (signals.sine(440, 0.1, 8000) * 3000).astype(np.int16)
        normalized = normalize_signal(samples, target_peak=0.98)
        peak = np.abs(normalized.astype(int)).max()
        assert peak == pytest.approx(0.98 * 32767, rel=0.01)

    def test_region_only(self):
        samples = np.full(100, 1000, dtype=np.int16)
        normalized = normalize_signal(samples, start=0, end=50)
        assert np.abs(normalized[:50]).max() > 30000
        assert np.all(normalized[50:] == 1000)

    def test_defaults_to_whole_object(self):
        """'If no parameters are specified, normalization is performed
        for the whole audio object.'"""
        samples = np.full(100, 500, dtype=np.int16)
        normalized = normalize_signal(samples)
        assert np.abs(normalized).min() > 30000

    def test_silence_unchanged(self):
        silence = np.zeros(100, dtype=np.int16)
        assert np.array_equal(normalize_signal(silence), silence)

    def test_stereo(self):
        samples = np.full((100, 2), 1000, dtype=np.int16)
        normalized = normalize_signal(samples)
        assert normalized.shape == (100, 2)
        assert np.abs(normalized).max() > 30000

    def test_bad_range(self):
        samples = np.zeros(10, dtype=np.int16)
        with pytest.raises(DerivationError):
            normalize_signal(samples, start=5, end=2)
        with pytest.raises(DerivationError):
            normalize_signal(samples, start=0, end=11)

    def test_bad_target(self):
        with pytest.raises(DerivationError):
            normalize_signal(np.zeros(4, dtype=np.int16), target_peak=1.5)

    def test_no_clipping(self):
        samples = np.array([100, -32000], dtype=np.int16)
        normalized = normalize_signal(samples, target_peak=1.0)
        assert normalized.min() >= -32768


class TestNormalizationDerivation:
    def test_quiet_audio_boosted(self, tone):
        quiet = audio_object(tone * 0.1, "quiet", sample_rate=8000,
                             block_samples=250)
        derivation = derivation_registry.get("audio-normalization")
        derived = derivation([quiet], {})
        loud = derived.expand()
        assert np.abs(signal_of(loud)).max() > 30000
        # Source untouched (non-destructive).
        assert np.abs(signal_of(quiet)).max() < 5000

    def test_descriptor_preserved(self, tone):
        quiet = audio_object(tone * 0.1, "quiet", sample_rate=8000)
        derivation = derivation_registry.get("audio-normalization")
        derived = derivation([quiet], {})
        assert derived.descriptor["sample_rate"] == 8000


class TestImageFilters:
    def test_blur_smooths(self):
        image = frames.texture_frame(32, 32, seed=3, smoothness=1)
        blurred = box_blur(image, radius=2)
        assert blurred.std() < image.std()
        assert blurred.shape == image.shape

    def test_blur_preserves_constant(self):
        flat = np.full((16, 16, 3), 77, dtype=np.uint8)
        assert np.array_equal(box_blur(flat, radius=1), flat)

    def test_blur_radius_validation(self):
        with pytest.raises(DerivationError):
            box_blur(np.zeros((8, 8, 3), dtype=np.uint8), radius=0)

    def test_sharpen_increases_contrast(self):
        image = frames.gradient_frame(32, 32)
        sharpened = sharpen(image, amount=2.0)
        assert sharpened.astype(int).std() >= image.astype(int).std()

    def test_filter_derivation(self, small_frame):
        source = image_object(small_frame, "img")
        derivation = derivation_registry.get("image-filter")
        blurred = derivation([source], {"kind": "blur", "radius": 2}).expand()
        assert blurred.value().shape == small_frame.shape

    def test_unknown_filter_kind(self, small_frame):
        source = image_object(small_frame, "img")
        derivation = derivation_registry.get("image-filter")
        derived = derivation([source], {"kind": "emboss"})
        with pytest.raises(DerivationError):
            derived.expand()
