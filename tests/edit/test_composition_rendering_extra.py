"""Extra coverage: nested mixdown, explicit-duration rendering,
downscale compositing, edit-view descriptor preservation."""

import numpy as np
import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.adpcm import AdpcmCodec
from repro.core.composition import MultimediaObject, SpatialComposition
from repro.core.rational import Rational
from repro.edit.compositor import compose_frame, compose_sequence
from repro.edit.mixdown import mixdown
from repro.media import frames, signals
from repro.media.objects import audio_object, image_object, video_object


class TestNestedMixdown:
    def test_audio_inside_nested_composition(self):
        music = audio_object(signals.sine(330, 1.0, 8000) * 0.4, "music",
                             sample_rate=8000, block_samples=320)
        inner = MultimediaObject("inner")
        inner.add_temporal(music, at=Rational(1, 2), label="music")
        outer = MultimediaObject("outer")
        outer.add_temporal(inner, at=1, label="scene")
        mix = mixdown(outer, sample_rate=8000)
        # Music starts at 1 + 0.5 = 1.5 s on the outer timeline.
        assert np.abs(mix[:11_000]).max() < 1e-9
        assert np.abs(mix[12_500:13_500]).max() > 0.1


class TestComposeSequenceDuration:
    def test_explicit_duration_overrides(self):
        clip = video_object(frames.scene(16, 16, 25, "pan"), "clip")
        m = MultimediaObject("m")
        m.add_spatial(clip, x=0, y=0, label="v")
        short = compose_sequence(m, 16, 16, fps=10, duration=Rational(1, 2))
        assert len(short) == 5


class TestDownscaleCompositing:
    def test_reciprocal_scale(self):
        logo = image_object(
            np.full((16, 16, 3), 200, dtype=np.uint8), "logo",
        )
        m = MultimediaObject("m")
        m.add(SpatialComposition(logo, x=0, y=0, scale=Rational(1, 2),
                                 label="small"))
        frame = compose_frame(m, 0, 32, 32)
        assert tuple(frame[7, 7]) == (200, 200, 200)   # 16x16 -> 8x8
        assert tuple(frame[8, 8]) == (0, 0, 0)

    def test_irrational_scale_rejected(self):
        from repro.errors import CompositionError

        logo = image_object(
            np.full((8, 8, 3), 200, dtype=np.uint8), "logo",
        )
        m = MultimediaObject("m")
        m.add(SpatialComposition(logo, x=0, y=0, scale=Rational(3, 2),
                                 label="odd"))
        with pytest.raises(CompositionError, match="scale"):
            compose_frame(m, 0, 32, 32)


class TestEditViewDescriptors:
    def test_element_descriptors_survive_view(self):
        """Editing a heterogeneous (ADPCM) sequence keeps per-element
        state attached to the surviving rows."""
        from repro.core.interpretation import Interpretation, PlacementEntry
        from repro.core.media_types import media_type_registry

        adpcm_type = media_type_registry.get("adpcm-audio")
        codec = AdpcmCodec(block_samples=64)
        signal = (signals.sine(300, 0.08, 8000) * 8000)
        blocks = codec.encode_blocks(signal.astype(np.int16))

        blob = MemoryBlob()
        rows = []
        tick = 0
        for i, block in enumerate(blocks):
            data = block.to_bytes()
            offset = blob.append(data)
            descriptor = adpcm_type.make_element_descriptor(
                predictor=block.predictor, step_index=block.step_index,
            )
            rows.append(PlacementEntry(i, tick, block.count, len(data),
                                       offset, descriptor))
            tick += block.count
        interpretation = Interpretation(blob, "adpcm")
        media_descriptor = adpcm_type.make_media_descriptor(
            sample_rate=8000, channels=1, encoding="IMA-ADPCM",
            block_samples=64,
        )
        interpretation.add("a", adpcm_type, media_descriptor, rows)

        view = interpretation.edit_view("a", keep=[3, 1])
        surviving = view.sequence("a").entries
        assert surviving[0].element_descriptor == rows[3].element_descriptor
        assert surviving[1].element_descriptor == rows[1].element_descriptor
        # Decoding through the preserved state reproduces the block.
        raw = view.read_element("a", 0)
        from repro.codecs.adpcm import AdpcmBlock

        decoded = AdpcmBlock.from_bytes(raw).decode()
        assert len(decoded) == rows[3].duration
