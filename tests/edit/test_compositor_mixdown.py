"""Tests for rendered composition: spatial compositor and audio mixdown."""

import numpy as np
import pytest

from repro.core.composition import MultimediaObject
from repro.core.rational import Rational
from repro.edit.compositor import compose_frame, compose_sequence
from repro.edit.mixdown import channel_activity, mixdown
from repro.errors import CompositionError
from repro.media import frames, signals
from repro.media.objects import audio_object, image_object, video_object


@pytest.fixture
def logo():
    return image_object(
        np.full((8, 8, 3), 200, dtype=np.uint8), "logo",
    )


@pytest.fixture
def clip():
    shot = [
        np.full((16, 16, 3), 10 * (i + 1), dtype=np.uint8) for i in range(25)
    ]
    return video_object(shot, "clip")


class TestComposeFrame:
    def test_background_only(self):
        m = MultimediaObject("m")
        frame = compose_frame(m, 0, 32, 24, background=(1, 2, 3))
        assert frame.shape == (24, 32, 3)
        assert tuple(frame[0, 0]) == (1, 2, 3)

    def test_image_placed(self, logo):
        m = MultimediaObject("m")
        m.add_spatial(logo, x=4, y=6, label="logo")
        frame = compose_frame(m, 0, 32, 24)
        assert tuple(frame[6, 4]) == (200, 200, 200)
        assert tuple(frame[5, 4]) == (0, 0, 0)
        assert tuple(frame[13, 11]) == (200, 200, 200)
        assert tuple(frame[14, 12]) == (0, 0, 0)

    def test_video_frame_at_time(self, clip):
        m = MultimediaObject("m")
        m.add_spatial(clip, x=0, y=0, label="v")
        early = compose_frame(m, 0, 16, 16)
        later = compose_frame(m, Rational(10, 25), 16, 16)
        assert early[0, 0, 0] == 10   # frame 0
        assert later[0, 0, 0] == 110  # frame 10

    def test_video_outside_span_absent(self, clip):
        m = MultimediaObject("m")
        m.add_spatial(clip, x=0, y=0, label="v")
        after = compose_frame(m, Rational(2), 16, 16)
        assert after.max() == 0

    def test_z_order(self, logo, clip):
        m = MultimediaObject("m")
        m.add_spatial(clip, x=0, y=0, z=0, label="under")
        m.add_spatial(logo, x=0, y=0, z=1, label="over")
        frame = compose_frame(m, 0, 16, 16)
        assert tuple(frame[0, 0]) == (200, 200, 200)  # logo on top
        assert frame[12, 12, 0] == 10                 # clip below/beside

    def test_clipping_at_edges(self, logo):
        m = MultimediaObject("m")
        m.add_spatial(logo, x=28, y=20, label="corner")
        frame = compose_frame(m, 0, 32, 24)
        assert tuple(frame[23, 31]) == (200, 200, 200)

    def test_fully_offscreen(self, logo):
        m = MultimediaObject("m")
        m.add_spatial(logo, x=100, y=100, label="gone")
        frame = compose_frame(m, 0, 32, 24)
        assert frame.max() == 0

    def test_integer_scale(self, logo):
        from repro.core.composition import SpatialComposition

        m = MultimediaObject("m")
        m.add(SpatialComposition(logo, x=0, y=0, scale=2, label="big"))
        frame = compose_frame(m, 0, 32, 24)
        assert tuple(frame[15, 15]) == (200, 200, 200)  # 8x8 -> 16x16

    def test_temporal_only_components_skipped(self, clip, tone):
        m = MultimediaObject("m")
        m.add_temporal(clip, at=0, label="v")
        audio = audio_object(tone, "a", sample_rate=8000, block_samples=250)
        m.add_temporal(audio, at=0, label="a")
        frame = compose_frame(m, 0, 16, 16)
        assert frame.max() == 0  # nothing has a spatial placement


class TestComposeSequence:
    def test_sequence_length(self, clip):
        m = MultimediaObject("m")
        m.add_spatial(clip, x=0, y=0, label="v")
        rendered = compose_sequence(m, 16, 16, fps=25)
        assert len(rendered) == 25

    def test_motion_visible(self, clip):
        m = MultimediaObject("m")
        m.add_spatial(clip, x=0, y=0, label="v")
        rendered = compose_sequence(m, 16, 16, fps=25)
        assert not np.array_equal(rendered[0], rendered[10])


class TestMixdown:
    @pytest.fixture
    def narrated(self):
        music = audio_object(signals.sine(220, 2.0, 8000) * 0.3, "music",
                             sample_rate=8000, block_samples=320)
        narration = audio_object(signals.sine(880, 1.0, 8000) * 0.3,
                                 "narration", sample_rate=8000,
                                 block_samples=320)
        m = MultimediaObject("m")
        m.add_temporal(music, at=0, label="music")
        m.add_temporal(narration, at=1, label="narration")
        return m

    def test_mix_length(self, narrated):
        mix = mixdown(narrated, sample_rate=8000)
        assert len(mix) == pytest.approx(16000, abs=2)

    def test_narration_only_in_second_half(self, narrated):
        mix = mixdown(narrated, sample_rate=8000)
        first = np.abs(np.fft.rfft(mix[:8000]))
        second = np.abs(np.fft.rfft(mix[8000:16000]))
        hz_880_bin = int(880 * 8000 / 8000)  # bin index = Hz here
        assert second[hz_880_bin] > 10 * max(first[hz_880_bin], 1e-9)

    def test_music_throughout(self, narrated):
        mix = mixdown(narrated, sample_rate=8000)
        assert np.abs(mix[:4000]).max() > 0.1
        assert np.abs(mix[12000:15000]).max() > 0.1

    def test_resampling(self, narrated):
        mix = mixdown(narrated, sample_rate=16000)
        assert len(mix) == pytest.approx(32000, abs=2)

    def test_gain(self, narrated):
        quiet = mixdown(narrated, sample_rate=8000, gain=0.1)
        loud = mixdown(narrated, sample_rate=8000, gain=0.5)
        assert np.abs(loud).max() > np.abs(quiet).max()

    def test_no_audio_rejected(self, clip):
        m = MultimediaObject("m")
        m.add_temporal(clip, at=0, label="v")
        with pytest.raises(CompositionError, match="no audio"):
            mixdown(m)

    def test_channel_activity(self, narrated):
        assert channel_activity(narrated, Rational(1, 2)) == {
            "music": True, "narration": False,
        }
        assert channel_activity(narrated, Rational(3, 2)) == {
            "music": True, "narration": True,
        }


class TestVideoReverse:
    def test_reverse_order(self, clip):
        from repro.edit import MediaEditor

        reversed_clip = MediaEditor().reverse(clip, name="backwards")
        stream = reversed_clip.expand().stream()
        values = [t.element.payload[0, 0, 0] for t in stream]
        assert values == [10 * (25 - i) for i in range(25)]
        assert stream.is_continuous()
        assert stream.start == 0

    def test_double_reverse_identity(self, clip):
        from repro.edit import MediaEditor

        editor = MediaEditor()
        once = editor.reverse(clip)
        twice = editor.reverse(once.expand())
        restored = twice.expand().stream()
        original = clip.stream()
        assert [t.element.payload[0, 0, 0] for t in restored] == \
            [t.element.payload[0, 0, 0] for t in original]
