"""Tests for generic timing derivations and the editor facade."""

import pytest

from repro.core.derivation import derivation_registry
from repro.core.rational import Rational
from repro.errors import DerivationError
from repro.media import frames
from repro.media.music import demo_score
from repro.media.objects import audio_object, score_object, video_object
from repro.edit import MediaEditor
from repro.edit.edl import EditDecisionList


@pytest.fixture
def video():
    return video_object(frames.scene(32, 24, 20, "orbit"), "v")


@pytest.fixture
def audio(tone):
    return audio_object(tone, "a", sample_rate=8000, block_samples=250)


class TestTimingDerivations:
    def test_translate_applies_to_video(self, video):
        derivation = derivation_registry.get("temporal-translate")
        moved = derivation([video], {"offset_ticks": 100}).expand()
        assert moved.stream().start == 100

    def test_translate_applies_to_audio(self, audio):
        """'Generic in the sense that they apply to all time-based
        media' — the same derivation works on audio."""
        derivation = derivation_registry.get("temporal-translate")
        moved = derivation([audio], {"offset_ticks": 4000}).expand()
        assert moved.stream().start == 4000

    def test_translate_applies_to_music(self):
        source = score_object(demo_score(), "m")
        derivation = derivation_registry.get("temporal-translate")
        moved = derivation([source], {"offset_ticks": 960}).expand()
        assert moved.stream().start == demo_score().to_stream().start + 960

    def test_scale_doubles_duration(self, video):
        derivation = derivation_registry.get("temporal-scale")
        slowed = derivation([video], {"factor": 2})
        assert slowed.descriptor["duration"] == Rational(40, 25)
        assert slowed.expand().stream().span_ticks == 40


class TestEditorFacade:
    def test_cut_concat(self, video):
        editor = MediaEditor()
        head = editor.cut(video, 0, 8, name="head")
        tail = editor.cut(video, 12, 20, name="tail")
        joined = editor.concat(head, tail, name="joined")
        assert len(joined.expand().stream()) == 16

    def test_concat_requires_input(self):
        with pytest.raises(DerivationError):
            MediaEditor().concat()

    def test_multi_source_edit(self, video):
        other = video_object(frames.scene(32, 24, 20, "cut"), "w")
        editor = MediaEditor()
        edl = EditDecisionList().select(0, 0, 5).select(1, 0, 5)
        derived = editor.edit([video, other], edl, name="mix")
        assert len(derived.expand().stream()) == 10

    def test_transition_facade(self, video):
        other = video_object(frames.scene(32, 24, 20, "cut"), "w")
        editor = MediaEditor()
        fade = editor.transition(video, other, 5, kind="wipe-left")
        assert len(fade.expand().stream()) == 5

    def test_normalize_facade(self, audio):
        editor = MediaEditor()
        normalized = editor.normalize(audio, target_peak=0.5)
        assert normalized.is_derived

    def test_synthesize_and_render_facades(self):
        from repro.media.animation import demo_scene
        from repro.media.objects import animation_object

        editor = MediaEditor()
        music = score_object(demo_score(), "m")
        audio = editor.synthesize(music, sample_rate=8000)
        assert audio.media_type.kind.value == "audio"

        anim = animation_object(demo_scene(), "anim")
        video = editor.render(anim, frame_count=4)
        assert len(video.expand().stream()) == 4

    def test_provenance_tracked(self, video):
        editor = MediaEditor()
        head = editor.cut(video, 0, 5, name="head")
        steps = editor.steps(head)
        assert steps == ["head = video-edit(v)"]

    def test_chain_stays_tiny(self, video):
        """The 'sequences of derivations can be changed and reused'
        economics: a whole chain is a few hundred bytes."""
        editor = MediaEditor()
        current = video
        for i in range(5):
            current = editor.cut(current, 0, 20 - i, name=f"gen{i}")
        assert editor.total_derivation_bytes(current) < 1000
        assert video.stream().total_size() > 10000
