"""Tests for color separation (Table 1)."""

import numpy as np
import pytest

from repro.core.derivation import derivation_registry
from repro.edit.separation import PLATES, plate, roundtrip_error, separate
from repro.errors import DerivationError
from repro.media import frames
from repro.media.objects import image_object


class TestSeparate:
    def test_four_plates(self, small_frame):
        cmyk = separate(small_frame)
        assert cmyk.shape == small_frame.shape[:2] + (4,)

    def test_plate_extraction(self, small_frame):
        cmyk = separate(small_frame)
        for name in PLATES:
            plane = plate(cmyk, name)
            assert plane.shape == small_frame.shape[:2]
            assert plane.min() >= 0.0 and plane.max() <= 1.0

    def test_unknown_plate(self, small_frame):
        with pytest.raises(DerivationError):
            plate(separate(small_frame), "orange")

    def test_roundtrip_error_small(self, small_frame):
        assert roundtrip_error(small_frame) < 1.0

    def test_black_generation_parameter(self, small_frame):
        """'the mapping from RGB into the CMYK color model is not
        unique, additional information must be provided as parameters'"""
        full = separate(small_frame, black_generation=1.0)
        none = separate(small_frame, black_generation=0.0)
        assert not np.allclose(full, none)
        # Both recombine to (approximately) the same RGB.
        assert roundtrip_error(small_frame, 1.0) < 1.0
        assert roundtrip_error(small_frame, 0.0) < 1.0


class TestSeparationDerivation:
    def test_image_to_cmyk_image(self, small_frame):
        source = image_object(small_frame, "img")
        derivation = derivation_registry.get("color-separation")
        derived = derivation([source], {"black_generation": 0.8})
        assert derived.descriptor["color_model"] == "CMYK"
        expanded = derived.expand()
        assert expanded.value().shape == small_frame.shape[:2] + (4,)
        assert expanded.descriptor["color_model"] == "CMYK"

    def test_rejects_non_rgb(self, small_frame):
        source = image_object(separate(small_frame), "cmyk-img",
                              color_model="CMYK")
        derivation = derivation_registry.get("color-separation")
        derived = derivation([source], {})
        with pytest.raises(DerivationError, match="RGB"):
            derived.expand()
