"""Tests for video transitions and chroma keying."""

import numpy as np
import pytest

from repro.core.derivation import derivation_registry
from repro.edit.transitions import (
    chroma_key,
    fade_frames,
    iris_frames,
    transition_frame,
    wipe_frames,
)
from repro.errors import DerivationError
from repro.media import frames
from repro.media.objects import video_object


@pytest.fixture
def black():
    return np.zeros((24, 32, 3), dtype=np.uint8)


@pytest.fixture
def white():
    return np.full((24, 32, 3), 255, dtype=np.uint8)


class TestFade:
    def test_endpoints(self, black, white):
        assert np.array_equal(fade_frames(black, white, 0.0), black)
        assert np.array_equal(fade_frames(black, white, 1.0), white)

    def test_midpoint(self, black, white):
        mid = fade_frames(black, white, 0.5)
        assert np.all(mid == 128)

    def test_shape_mismatch(self, black):
        with pytest.raises(DerivationError):
            fade_frames(black, np.zeros((8, 8, 3), dtype=np.uint8), 0.5)


class TestWipe:
    def test_left_wipe_reveals_from_left(self, black, white):
        half = wipe_frames(black, white, 0.5, "left")
        assert np.all(half[:, :16] == 255)
        assert np.all(half[:, 16:] == 0)

    def test_right_wipe(self, black, white):
        half = wipe_frames(black, white, 0.5, "right")
        assert np.all(half[:, 16:] == 255)
        assert np.all(half[:, :16] == 0)

    def test_down_wipe(self, black, white):
        half = wipe_frames(black, white, 0.5, "down")
        assert np.all(half[:12] == 255)
        assert np.all(half[12:] == 0)

    def test_complete_wipe(self, black, white):
        assert np.array_equal(wipe_frames(black, white, 1.0, "left"), white)

    def test_unknown_direction(self, black, white):
        with pytest.raises(DerivationError):
            wipe_frames(black, white, 0.5, "diagonal")


class TestIris:
    def test_grows_from_center(self, black, white):
        small = iris_frames(black, white, 0.2)
        assert tuple(small[12, 16]) == (255, 255, 255)  # center revealed
        assert tuple(small[0, 0]) == (0, 0, 0)          # corner not yet

    def test_complete(self, black, white):
        assert np.array_equal(iris_frames(black, white, 1.0), white)


class TestDispatch:
    def test_kinds(self, black, white):
        for kind in ("fade", "wipe-left", "wipe-right", "wipe-down", "iris"):
            result = transition_frame(kind, black, white, 0.5)
            assert result.shape == black.shape

    def test_unknown_kind(self, black, white):
        with pytest.raises(DerivationError, match="unknown transition"):
            transition_frame("melt", black, white, 0.5)


class TestChromaKey:
    def test_key_color_replaced(self):
        fg = np.zeros((8, 8, 3), dtype=np.uint8)
        fg[:4] = (0, 255, 0)  # green screen top half
        bg = np.full((8, 8, 3), 200, dtype=np.uint8)
        keyed = chroma_key(fg, bg, key_color=(0, 255, 0), tolerance=30)
        assert np.all(keyed[:4] == 200)
        assert np.all(keyed[4:] == 0)

    def test_tolerance(self):
        fg = np.full((4, 4, 3), (10, 245, 10), dtype=np.uint8)
        bg = np.full((4, 4, 3), 99, dtype=np.uint8)
        tight = chroma_key(fg, bg, key_color=(0, 255, 0), tolerance=5)
        loose = chroma_key(fg, bg, key_color=(0, 255, 0), tolerance=50)
        assert np.all(tight == (10, 245, 10))
        assert np.all(loose == 99)


class TestTransitionDerivation:
    @pytest.fixture
    def sources(self):
        a = video_object(frames.scene(32, 24, 12, "orbit"), "a")
        b = video_object(frames.scene(32, 24, 12, "cut"), "b")
        return a, b

    def test_fade_derivation(self, sources):
        a, b = sources
        derivation = derivation_registry.get("video-transition")
        derived = derivation([a, b], {
            "duration_ticks": 6, "kind": "fade", "a_start": 6, "b_start": 0,
        })
        expanded = derived.expand()
        assert len(expanded.stream()) == 6
        # First transition frame is (nearly) pure a, last pure b.
        first = expanded.stream().tuples[0].element.payload
        assert np.array_equal(first, a.stream().tuples[6].element.payload)

    def test_duration_must_fit_sources(self, sources):
        a, b = sources
        derivation = derivation_registry.get("video-transition")
        derived = derivation([a, b], {
            "duration_ticks": 10, "a_start": 6, "b_start": 0,
        })
        with pytest.raises(DerivationError, match="exceeds"):
            derived.expand()

    def test_positive_duration_required(self, sources):
        a, b = sources
        derivation = derivation_registry.get("video-transition")
        derived = derivation([a, b], {"duration_ticks": 0})
        with pytest.raises(DerivationError):
            derived.expand()

    def test_chroma_key_derivation(self, sources):
        a, b = sources
        derivation = derivation_registry.get("chroma-key")
        derived = derivation([a, b], {"tolerance": 10.0})
        expanded = derived.expand()
        assert len(expanded.stream()) == 12
