"""Tests for edit decision lists (the 'video edit' derivation)."""

import pytest

from repro.core.derivation import derivation_registry
from repro.core.rational import Rational
from repro.edit.edl import EditDecision, EditDecisionList, apply_edl
from repro.errors import DerivationError
from repro.media import frames
from repro.media.objects import video_object


@pytest.fixture
def source_a():
    return video_object(frames.scene(32, 24, 20, "orbit"), "a")


@pytest.fixture
def source_b():
    return video_object(frames.scene(32, 24, 20, "cut"), "b")


class TestEditDecision:
    def test_length(self):
        assert EditDecision(0, 5, 12).length == 7

    def test_validation(self):
        with pytest.raises(DerivationError):
            EditDecision(-1, 0, 10)
        with pytest.raises(DerivationError):
            EditDecision(0, 10, 10)
        with pytest.raises(DerivationError):
            EditDecision(0, 10, 5)


class TestEditDecisionList:
    def test_fluent_select(self):
        edl = EditDecisionList().select(0, 0, 10).select(1, 5, 15)
        assert len(edl) == 2
        assert edl.total_ticks() == 20

    def test_params_roundtrip(self):
        edl = EditDecisionList().select(0, 0, 10).select(1, 5, 15)
        restored = EditDecisionList.from_params(edl.as_params())
        assert restored.as_params() == edl.as_params()


class TestApplyEdl:
    def test_single_source_cut(self, source_a):
        edl = EditDecisionList().select(0, 5, 15)
        edited = apply_edl([source_a], edl)
        stream = edited.stream()
        assert len(stream) == 10
        assert stream.start == 0
        assert edited.descriptor["duration"] == Rational(10, 25)

    def test_multi_source_assembly(self, source_a, source_b):
        edl = (EditDecisionList()
               .select(0, 0, 5)
               .select(1, 10, 15)
               .select(0, 15, 20))
        edited = apply_edl([source_a, source_b], edl)
        assert len(edited.stream()) == 15
        assert edited.stream().is_continuous()

    def test_reordering_allowed(self, source_a):
        """Cutting and reordering — the paper's editing semantics."""
        edl = EditDecisionList().select(0, 10, 20).select(0, 0, 10)
        edited = apply_edl([source_a], edl)
        original = source_a.stream()
        assert edited.stream().tuples[0].element.payload is \
            original.tuples[10].element.payload

    def test_repeated_material(self, source_a):
        edl = EditDecisionList().select(0, 0, 5).select(0, 0, 5)
        assert len(apply_edl([source_a], edl).stream()) == 10

    def test_selection_beyond_source_rejected(self, source_a):
        edl = EditDecisionList().select(0, 15, 30)
        with pytest.raises(DerivationError, match="exceeds"):
            apply_edl([source_a], edl)

    def test_unknown_source_rejected(self, source_a):
        edl = EditDecisionList().select(3, 0, 5)
        with pytest.raises(DerivationError, match="references source"):
            apply_edl([source_a], edl)

    def test_no_sources_rejected(self):
        with pytest.raises(DerivationError):
            apply_edl([], EditDecisionList())


class TestVideoEditDerivation:
    def test_non_destructive(self, source_a):
        """The edit is a derivation object; the source never changes."""
        derivation = derivation_registry.get("video-edit")
        derived = derivation([source_a], {"edit_list": [(0, 2, 8)]})
        assert derived.is_derived
        assert len(source_a.stream()) == 20
        assert len(derived.stream()) == 6

    def test_descriptor_duration_without_expansion(self, source_a):
        derivation = derivation_registry.get("video-edit")
        derived = derivation([source_a], {"edit_list": [(0, 0, 10)]})
        # describe() computed the duration cheaply.
        assert derived.descriptor["duration"] == Rational(10, 25)
        assert not derived.is_materialized

    def test_edit_list_orders_of_magnitude_smaller(self, source_a):
        """§4.2: 'a video edit list is likely many orders of magnitude
        smaller than a video object.'"""
        derivation = derivation_registry.get("video-edit")
        derived = derivation([source_a], {"edit_list": [(0, 0, 20)]})
        edl_bytes = derived.derivation_object.storage_size()
        video_bytes = source_a.stream().total_size()
        assert video_bytes / edl_bytes > 100
