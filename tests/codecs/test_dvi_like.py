"""Tests for the DVI-like PLV/RTV codec pair."""

import time

import numpy as np
import pytest

from repro.codecs.dvi_like import DviLikeCodec
from repro.codecs.jpeg_like import psnr
from repro.errors import CodecError
from repro.media import frames


@pytest.fixture
def frame():
    return frames.scene(128, 96, 2, "orbit")[1]


class TestFormats:
    def test_format_validation(self):
        with pytest.raises(CodecError):
            DviLikeCodec("SVHS")

    def test_both_formats_decode_to_original_geometry(self, frame):
        codec = DviLikeCodec()
        for data in (codec.encode_plv(frame), codec.encode_rtv(frame)):
            decoded = codec.decode(data)
            assert decoded.shape == frame.shape
            assert decoded.dtype == np.uint8

    def test_default_records_rtv(self, frame):
        """'record in the RTV format' — the capture-path default."""
        codec = DviLikeCodec()
        assert codec.video_format == "RTV"
        assert DviLikeCodec.format_of(codec.encode(frame)) == "RTV"

    def test_plv_encoder(self, frame):
        codec = DviLikeCodec("PLV")
        assert DviLikeCodec.format_of(codec.encode(frame)) == "PLV"

    def test_one_decoder_plays_both(self, frame):
        """'Applications can playback both the RTV and PLV formats.'"""
        recorder = DviLikeCodec("RTV")
        producer = DviLikeCodec("PLV")
        player = DviLikeCodec()
        for data in (recorder.encode(frame), producer.encode(frame)):
            assert player.decode(data).shape == frame.shape

    def test_plv_beats_rtv_quality(self, frame):
        """'the video quality is poorer' for RTV."""
        codec = DviLikeCodec()
        plv = codec.decode(codec.encode_plv(frame))
        rtv = codec.decode(codec.encode_rtv(frame))
        assert psnr(frame, plv) > psnr(frame, rtv) + 2.0

    def test_similar_data_rates(self, frame):
        """'The RTV format results in data rates similar to those of
        PLV' — within a factor of ~3 despite the quality gap."""
        codec = DviLikeCodec()
        plv_size = len(codec.encode_plv(frame))
        rtv_size = len(codec.encode_rtv(frame))
        ratio = plv_size / rtv_size
        assert 1.0 <= ratio < 6.0

    def test_rtv_encodes_faster(self, frame):
        """The asymmetry that justified RTV: real-time encode budget."""
        codec = DviLikeCodec()
        repeat = 5
        begin = time.perf_counter()
        for _ in range(repeat):
            codec.encode_rtv(frame)
        rtv_time = time.perf_counter() - begin
        begin = time.perf_counter()
        for _ in range(repeat):
            codec.encode_plv(frame)
        plv_time = time.perf_counter() - begin
        assert rtv_time < plv_time

    def test_frame_rate_reduction(self, frame):
        codec = DviLikeCodec()
        shot = frames.scene(64, 48, 10, "pan")
        reduced = codec.reduce_frame_rate(shot, keep_every=2)
        assert len(reduced) == 5
        with pytest.raises(CodecError):
            codec.reduce_frame_rate(shot, keep_every=0)

    def test_corrupt_wrapper(self, frame):
        codec = DviLikeCodec()
        data = bytearray(codec.encode(frame))
        data[0] ^= 0xFF
        with pytest.raises(CodecError, match="magic"):
            codec.decode(bytes(data))
        with pytest.raises(CodecError):
            codec.decode(b"RD")

    def test_unknown_format_code(self, frame):
        codec = DviLikeCodec()
        data = bytearray(codec.encode(frame))
        data[4] = 9
        with pytest.raises(CodecError, match="format code"):
            codec.decode(bytes(data))

    def test_odd_dimensions(self):
        frame = frames.gradient_frame(63, 41)
        codec = DviLikeCodec()
        assert codec.decode(codec.encode_rtv(frame)).shape == (41, 63, 3)
        assert codec.decode(codec.encode_plv(frame)).shape == (41, 63, 3)
