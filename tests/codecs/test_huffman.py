"""Tests for canonical Huffman coding."""

import numpy as np
import pytest

from repro.codecs.huffman import (
    HuffmanCodec,
    MAX_CODE_LENGTH,
    canonical_codes,
    code_lengths,
    huffman_compress,
    huffman_decompress,
)
from repro.errors import CodecError


class TestCodeLengths:
    def test_empty(self):
        assert code_lengths(b"") == [0] * 256

    def test_single_symbol_gets_length_one(self):
        lengths = code_lengths(b"aaaa")
        assert lengths[ord("a")] == 1
        assert sum(1 for l in lengths if l) == 1

    def test_two_symbols(self):
        lengths = code_lengths(b"aab")
        assert lengths[ord("a")] == 1
        assert lengths[ord("b")] == 1

    def test_skewed_distribution_shorter_codes_for_frequent(self):
        data = b"a" * 1000 + b"b" * 10 + b"c" * 10 + b"d"
        lengths = code_lengths(data)
        assert lengths[ord("a")] < lengths[ord("d")]

    def test_kraft_inequality(self):
        rng = np.random.default_rng(3)
        data = bytes(rng.integers(0, 256, 4000, dtype=np.uint8))
        lengths = [l for l in code_lengths(data) if l]
        assert sum(2.0 ** -l for l in lengths) <= 1.0 + 1e-12

    def test_length_cap(self):
        # An exponential distribution would want very long codes.
        data = b"".join(bytes([i]) * (2 ** min(i, 20)) for i in range(24))
        lengths = code_lengths(data)
        assert max(lengths) <= MAX_CODE_LENGTH


class TestCanonicalCodes:
    def test_prefix_free(self):
        lengths = code_lengths(b"abracadabra")
        codes = canonical_codes(lengths)
        items = list(codes.values())
        for i, (code_a, length_a) in enumerate(items):
            for code_b, length_b in items[i + 1:]:
                shorter, longer = sorted(
                    [(code_a, length_a), (code_b, length_b)],
                    key=lambda cl: cl[1],
                )
                prefix = longer[0] >> (longer[1] - shorter[1])
                assert prefix != shorter[0]

    def test_canonical_order(self):
        lengths = [0] * 256
        lengths[ord("a")] = 2
        lengths[ord("b")] = 1
        lengths[ord("c")] = 2
        codes = canonical_codes(lengths)
        assert codes[ord("b")] == (0, 1)
        assert codes[ord("a")] == (0b10, 2)
        assert codes[ord("c")] == (0b11, 2)


class TestCodec:
    def test_roundtrip_text(self):
        data = b"it was the best of times, it was the worst of times" * 20
        assert huffman_decompress(huffman_compress(data)) == data

    def test_roundtrip_random(self):
        rng = np.random.default_rng(9)
        data = bytes(rng.integers(0, 256, 10000, dtype=np.uint8))
        assert huffman_decompress(huffman_compress(data)) == data

    def test_roundtrip_empty(self):
        assert huffman_decompress(huffman_compress(b"")) == b""

    def test_roundtrip_single_symbol(self):
        data = b"\x07" * 500
        assert huffman_decompress(huffman_compress(data)) == data

    def test_compresses_skewed_data(self):
        data = b"\x00" * 9000 + bytes(range(256))
        compressed = huffman_compress(data)
        assert len(compressed) < len(data) / 4

    def test_decoder_rebuilt_from_header(self):
        data = b"the decoder only needs lengths" * 10
        codec = HuffmanCodec.for_data(data)
        encoded = codec.encode(data)
        rebuilt = HuffmanCodec.from_header(codec.header())
        assert rebuilt.decode(encoded) == data

    def test_unknown_symbol_rejected(self):
        codec = HuffmanCodec.for_data(b"aaabbb")
        with pytest.raises(CodecError, match="not in codebook"):
            codec.encode(b"xyz")

    def test_bad_header_size(self):
        with pytest.raises(CodecError):
            HuffmanCodec.from_header(b"short")
        with pytest.raises(CodecError):
            huffman_decompress(b"tiny")

    def test_truncated_frame(self):
        codec = HuffmanCodec.for_data(b"ab")
        with pytest.raises(CodecError):
            codec.decode(b"\x00")
