"""Tests for color conversion and subsampling."""

import numpy as np
import pytest

from repro.codecs.color import (
    SUBSAMPLING,
    bits_per_pixel,
    cmyk_to_rgb,
    rgb_to_cmyk,
    rgb_to_yuv,
    subsample,
    subsample_yuv,
    upsample,
    upsample_yuv,
    yuv_to_rgb,
)
from repro.errors import CodecError


@pytest.fixture
def image(rng):
    return rng.integers(0, 256, (33, 47, 3), dtype=np.uint8)


class TestYuv:
    def test_roundtrip_exact_within_rounding(self, image):
        back = yuv_to_rgb(*rgb_to_yuv(image))
        assert np.abs(back.astype(int) - image.astype(int)).max() <= 1

    def test_gray_has_neutral_chroma(self):
        gray = np.full((8, 8, 3), 128, dtype=np.uint8)
        y, u, v = rgb_to_yuv(gray)
        assert np.allclose(y, 128)
        assert np.allclose(u, 128)
        assert np.allclose(v, 128)

    def test_luma_weights(self):
        # Pure green contributes most luma; pure blue least (BT.601).
        green = np.zeros((1, 1, 3), dtype=np.uint8)
        green[..., 1] = 255
        blue = np.zeros((1, 1, 3), dtype=np.uint8)
        blue[..., 2] = 255
        y_green, *_ = rgb_to_yuv(green)
        y_blue, *_ = rgb_to_yuv(blue)
        assert y_green[0, 0] > y_blue[0, 0]

    def test_shape_validation(self):
        with pytest.raises(CodecError):
            rgb_to_yuv(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(CodecError):
            rgb_to_yuv(np.zeros((4, 4, 3), dtype=np.float32))


class TestSubsampling:
    def test_schemes(self):
        assert SUBSAMPLING["4:4:4"] == (1, 1)
        assert SUBSAMPLING["4:2:2"] == (1, 2)
        assert SUBSAMPLING["4:2:0"] == (2, 2)

    def test_422_halves_width(self, image):
        y, u, v = subsample_yuv(*rgb_to_yuv(image), "4:2:2")
        assert y.shape == (33, 47)
        assert u.shape == (33, 24)  # ceil(47/2)

    def test_420_halves_both(self, image):
        _, u, _ = subsample_yuv(*rgb_to_yuv(image), "4:2:0")
        assert u.shape == (17, 24)

    def test_upsample_restores_shape(self, image):
        planes = subsample_yuv(*rgb_to_yuv(image), "4:2:0")
        y, u, v = upsample_yuv(*planes, "4:2:0")
        assert u.shape == y.shape == (33, 47)

    def test_subsample_is_box_average(self):
        plane = np.array([[0.0, 2.0], [4.0, 6.0]])
        assert subsample(plane, 2, 2)[0, 0] == 3.0

    def test_unknown_scheme(self, image):
        with pytest.raises(CodecError, match="unknown subsampling"):
            subsample_yuv(*rgb_to_yuv(image), "5:5:5")

    def test_constant_plane_survives_roundtrip(self):
        plane = np.full((10, 10), 42.0)
        down = subsample(plane, 2, 2)
        up = upsample(down, 2, 2, 10, 10)
        assert np.allclose(up, 42.0)

    def test_bits_per_pixel_matches_paper(self):
        # "There are now 12 bits per pixel" for YUV with 2-bpp chroma —
        # the paper's 8:2:2 arithmetic corresponds to 4:2:0-style totals.
        assert bits_per_pixel("4:2:0") == 12.0
        assert bits_per_pixel("4:4:4") == 24.0
        assert bits_per_pixel("4:2:2") == 16.0


class TestCmyk:
    def test_roundtrip(self, image):
        back = cmyk_to_rgb(rgb_to_cmyk(image))
        assert np.abs(back.astype(int) - image.astype(int)).max() <= 1

    def test_black_generation_moves_ink_to_k(self):
        gray = np.full((2, 2, 3), 100, dtype=np.uint8)
        full_k = rgb_to_cmyk(gray, black_generation=1.0)
        no_k = rgb_to_cmyk(gray, black_generation=0.0)
        assert full_k[..., 3].max() > no_k[..., 3].max()
        assert np.allclose(no_k[..., 3], 0.0)

    def test_white_has_no_ink(self):
        white = np.full((1, 1, 3), 255, dtype=np.uint8)
        assert np.allclose(rgb_to_cmyk(white), 0.0)

    def test_black_is_pure_k(self):
        black = np.zeros((1, 1, 3), dtype=np.uint8)
        cmyk = rgb_to_cmyk(black)
        assert cmyk[0, 0, 3] == 1.0

    def test_parameter_range(self, image):
        with pytest.raises(CodecError):
            rgb_to_cmyk(image, black_generation=1.5)

    def test_shape_validation(self):
        with pytest.raises(CodecError):
            cmyk_to_rgb(np.zeros((4, 4, 3), dtype=np.float32))
