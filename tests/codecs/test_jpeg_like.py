"""Tests for the JPEG-like intra-frame codec."""

import numpy as np
import pytest

from repro.codecs.jpeg_like import (
    JpegLikeCodec,
    decode_plane_coefficients,
    encode_plane_coefficients,
    psnr,
)
from repro.errors import CodecError
from repro.media import frames


@pytest.fixture
def frame():
    return frames.gradient_frame(96, 64)


class TestCoefficientCoding:
    def test_roundtrip(self, rng):
        quantized = rng.integers(-30, 30, (12, 8, 8)).astype(np.int16)
        quantized[:, 4:, 4:] = 0  # sparsity like real quantization
        encoded = encode_plane_coefficients(quantized)
        decoded = decode_plane_coefficients(encoded, 12)
        assert np.array_equal(decoded, quantized)

    def test_all_zero_blocks_tiny(self):
        quantized = np.zeros((100, 8, 8), dtype=np.int16)
        encoded = encode_plane_coefficients(quantized)
        # one DC varint + one EOB byte per block
        assert len(encoded) == 200

    def test_dc_delta_coding(self):
        quantized = np.zeros((3, 8, 8), dtype=np.int16)
        quantized[:, 0, 0] = [1000, 1001, 1002]
        encoded = encode_plane_coefficients(quantized)
        decoded = decode_plane_coefficients(encoded, 3)
        assert decoded[:, 0, 0].tolist() == [1000, 1001, 1002]
        # deltas of 1 need 1 byte; absolute values would need 2.
        assert len(encoded) < 3 * 4

    def test_truncated_stream_rejected(self):
        quantized = np.zeros((2, 8, 8), dtype=np.int16)
        encoded = encode_plane_coefficients(quantized)
        with pytest.raises(CodecError):
            decode_plane_coefficients(encoded[:-1], 2)


class TestCodec:
    def test_roundtrip_shape_dtype(self, frame):
        codec = JpegLikeCodec(quality=75)
        decoded = codec.decode(codec.encode(frame))
        assert decoded.shape == frame.shape
        assert decoded.dtype == np.uint8

    def test_quality_controls_fidelity(self, frame):
        low = JpegLikeCodec(quality=10)
        high = JpegLikeCodec(quality=90)
        assert psnr(frame, high.decode(high.encode(frame))) > \
            psnr(frame, low.decode(low.encode(frame)))

    def test_quality_controls_size(self, frame):
        low = JpegLikeCodec(quality=10)
        high = JpegLikeCodec(quality=90)
        assert len(low.encode(frame)) < len(high.encode(frame))

    def test_reasonable_fidelity_at_mid_quality(self, frame):
        codec = JpegLikeCodec(quality=50)
        assert psnr(frame, codec.decode(codec.encode(frame))) > 30.0

    def test_compresses_smooth_content(self, frame):
        codec = JpegLikeCodec(quality=35)
        raw = frame.nbytes
        assert len(codec.encode(frame)) < raw / 10

    def test_variable_sizes_across_frames(self):
        # "the encoded video frames are variable sized" (Figure 2).
        codec = JpegLikeCodec(quality=50)
        shot = frames.scene(64, 48, 6, "texture")
        sizes = {len(codec.encode(f)) for f in shot}
        assert len(sizes) > 1

    def test_odd_dimensions(self):
        frame = frames.gradient_frame(61, 37)
        codec = JpegLikeCodec(quality=60)
        assert codec.decode(codec.encode(frame)).shape == (37, 61, 3)

    def test_subsampling_schemes(self, frame):
        for scheme in ("4:4:4", "4:2:2", "4:2:0"):
            codec = JpegLikeCodec(quality=60, subsampling=scheme)
            decoded = codec.decode(codec.encode(frame))
            assert decoded.shape == frame.shape

    def test_444_beats_420_on_chroma_detail(self):
        bars = frames.color_bars(64, 48)
        full = JpegLikeCodec(quality=90, subsampling="4:4:4")
        sub = JpegLikeCodec(quality=90, subsampling="4:2:0")
        assert psnr(bars, full.decode(full.encode(bars))) >= \
            psnr(bars, sub.decode(sub.encode(bars)))

    def test_unknown_subsampling(self):
        with pytest.raises(CodecError):
            JpegLikeCodec(subsampling="4:9:9")

    def test_bad_magic(self, frame):
        codec = JpegLikeCodec()
        data = bytearray(codec.encode(frame))
        data[0] = 0xFF
        with pytest.raises(CodecError, match="magic"):
            codec.decode(bytes(data))

    def test_short_frame(self):
        with pytest.raises(CodecError):
            JpegLikeCodec().decode(b"RJ")

    def test_is_lossy(self):
        assert JpegLikeCodec().is_lossy

    def test_bits_per_pixel(self, frame):
        codec = JpegLikeCodec(quality=35)
        bpp = codec.bits_per_pixel(frame)
        assert 0 < bpp < 24

    def test_decoder_independent_of_encoder_instance(self, frame):
        # All parameters travel in the frame header.
        encoded = JpegLikeCodec(quality=30, subsampling="4:2:0").encode(frame)
        decoded = JpegLikeCodec(quality=90, subsampling="4:4:4").decode(encoded)
        assert decoded.shape == frame.shape
        assert psnr(frame, decoded) > 25.0


class TestPsnr:
    def test_identical_is_infinite(self, frame):
        assert psnr(frame, frame) == float("inf")

    def test_known_value(self):
        a = np.zeros((4, 4, 3), dtype=np.uint8)
        b = np.full((4, 4, 3), 255, dtype=np.uint8)
        assert psnr(a, b) == pytest.approx(0.0, abs=1e-9)
