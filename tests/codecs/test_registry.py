"""Tests for the codec registry."""

import pytest

from repro.codecs import codec_registry
from repro.codecs.base import Codec
from repro.codecs.registry import CodecRegistry
from repro.errors import CodecError


class _Upper(Codec):
    name = "upper"

    def encode(self, payload):
        return payload.upper().encode()

    def decode(self, data):
        return data.decode().lower()


class TestRegistry:
    def test_builtins_registered(self):
        for name in ("jpeg-like", "pcm", "ima-adpcm"):
            assert name in codec_registry

    def test_get_with_params(self):
        codec = codec_registry.get("jpeg-like", quality=25)
        assert codec.quality == 25

    def test_instances_fresh_per_get(self):
        a = codec_registry.get("pcm")
        b = codec_registry.get("pcm")
        assert a is not b

    def test_unknown(self):
        with pytest.raises(CodecError, match="unknown codec"):
            codec_registry.get("nope")

    def test_duplicate_rejected(self):
        registry = CodecRegistry()
        registry.register("upper", _Upper)
        with pytest.raises(CodecError):
            registry.register("upper", _Upper)
        registry.register("upper", _Upper, replace=True)

    def test_custom_codec_roundtrip(self):
        registry = CodecRegistry()
        registry.register("upper", _Upper)
        codec = registry.get("upper")
        assert codec.decode(codec.encode("Hello")) == "hello"

    def test_names(self):
        assert "pcm" in codec_registry.names()
