"""Tests for bit I/O, RLE, and varint primitives."""

import pytest

from repro.codecs.bits import BitReader, BitWriter
from repro.codecs.rle import rle_decode, rle_encode, rle_ratio
from repro.codecs.varint import (
    read_svarint,
    read_uvarint,
    unzigzag_int,
    write_svarint,
    write_uvarint,
    zigzag_int,
)
from repro.errors import CodecError


class TestBits:
    def test_single_bits(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1, 0, 0, 0, 1):
            writer.write_bit(bit)
        assert writer.getvalue() == bytes([0b10110001])

    def test_partial_byte_padded(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.getvalue() == bytes([0b10100000])

    def test_bit_length(self):
        writer = BitWriter()
        writer.write_bits(0, 11)
        assert writer.bit_length == 11

    def test_roundtrip_bits(self):
        writer = BitWriter()
        values = [(5, 3), (0, 1), (1023, 10), (1, 1)]
        for value, width in values:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in values:
            assert reader.read_bits(width) == value

    def test_unary(self):
        writer = BitWriter()
        writer.write_unary(4)
        writer.write_unary(0)
        reader = BitReader(writer.getvalue())
        assert reader.read_unary() == 4
        assert reader.read_unary() == 0

    def test_exhaustion(self):
        reader = BitReader(b"")
        with pytest.raises(CodecError):
            reader.read_bit()

    def test_negative_width_rejected(self):
        with pytest.raises(CodecError):
            BitWriter().write_bits(1, -1)


class TestRle:
    def test_roundtrip(self):
        data = b"\x00" * 300 + b"abc" + b"\xff" * 5
        assert rle_decode(rle_encode(data)) == data

    def test_empty(self):
        assert rle_encode(b"") == b""
        assert rle_decode(b"") == b""

    def test_long_run_split_at_255(self):
        encoded = rle_encode(b"x" * 300)
        assert encoded == bytes([255, ord("x"), 45, ord("x")])

    def test_compresses_runs(self):
        assert rle_ratio(b"\x00" * 1000) > 100

    def test_worst_case_2x(self):
        data = bytes(range(256))
        assert len(rle_encode(data)) == 2 * len(data)

    def test_odd_length_rejected(self):
        with pytest.raises(CodecError):
            rle_decode(b"\x01")

    def test_zero_run_rejected(self):
        with pytest.raises(CodecError):
            rle_decode(b"\x00a")


class TestZigzag:
    @pytest.mark.parametrize("value,expected", [
        (0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4), (-100, 199), (100, 200),
    ])
    def test_mapping(self, value, expected):
        assert zigzag_int(value) == expected
        assert unzigzag_int(expected) == value

    def test_roundtrip_range(self):
        for value in range(-1000, 1000, 7):
            assert unzigzag_int(zigzag_int(value)) == value


class TestVarint:
    def test_small_values_one_byte(self):
        out = bytearray()
        write_uvarint(out, 127)
        assert len(out) == 1

    def test_large_value(self):
        out = bytearray()
        write_uvarint(out, 2 ** 40)
        value, offset = read_uvarint(bytes(out), 0)
        assert value == 2 ** 40
        assert offset == len(out)

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            write_uvarint(bytearray(), -1)

    def test_signed_roundtrip(self):
        out = bytearray()
        values = [0, -1, 1, -12345, 12345]
        for value in values:
            write_svarint(out, value)
        offset = 0
        for expected in values:
            value, offset = read_svarint(bytes(out), offset)
            assert value == expected

    def test_stream_exhaustion(self):
        with pytest.raises(CodecError):
            read_uvarint(b"\x80", 0)  # continuation bit with no next byte

    def test_sequential_offsets(self):
        out = bytearray()
        write_uvarint(out, 5)
        write_uvarint(out, 300)
        value1, offset = read_uvarint(bytes(out), 0)
        value2, offset = read_uvarint(bytes(out), offset)
        assert (value1, value2) == (5, 300)
        assert offset == len(out)
