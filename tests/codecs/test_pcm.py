"""Tests for linear PCM coding."""

import numpy as np
import pytest

from repro.codecs.pcm import PcmCodec, dequantize_samples, quantize_samples
from repro.errors import CodecError
from repro.media import signals


class TestQuantization:
    def test_full_scale(self):
        samples = quantize_samples(np.array([1.0, -1.0, 0.0]), 16)
        assert samples.tolist() == [32767, -32767, 0]

    def test_clipping(self):
        samples = quantize_samples(np.array([2.0, -3.0]), 16)
        assert samples.tolist() == [32767, -32767]

    def test_eight_bit(self):
        samples = quantize_samples(np.array([1.0]), 8)
        assert samples.dtype == np.int8
        assert samples[0] == 127

    def test_dequantize_roundtrip(self):
        signal = signals.sine(440, 0.01, 8000)
        restored = dequantize_samples(quantize_samples(signal, 16), 16)
        assert np.abs(restored - signal).max() < 1e-4

    def test_unsupported_size(self):
        with pytest.raises(CodecError):
            quantize_samples(np.zeros(4), 12)


class TestPcmCodec:
    def test_stereo_roundtrip(self):
        codec = PcmCodec(16, 2)
        samples = quantize_samples(
            signals.to_stereo(signals.sine(440, 0.01, 8000)), 16
        )
        decoded = codec.decode(codec.encode(samples))
        assert np.array_equal(decoded, samples)

    def test_mono_roundtrip(self):
        codec = PcmCodec(16, 1)
        samples = quantize_samples(signals.sine(100, 0.01, 8000), 16)
        decoded = codec.decode(codec.encode(samples))
        assert np.array_equal(decoded[:, 0], samples)

    def test_accepts_float_input(self):
        codec = PcmCodec(16, 1)
        encoded = codec.encode(np.array([0.5, -0.5]))
        assert len(encoded) == 4

    def test_little_endian_interleaved(self):
        codec = PcmCodec(16, 2)
        samples = np.array([[0x0102, 0x0304]], dtype=np.int16)
        assert codec.encode(samples) == b"\x02\x01\x04\x03"

    def test_channel_mismatch_rejected(self):
        codec = PcmCodec(16, 2)
        with pytest.raises(CodecError):
            codec.encode(np.zeros((10, 3), dtype=np.int16))

    def test_partial_frame_rejected(self):
        codec = PcmCodec(16, 2)
        with pytest.raises(CodecError):
            codec.decode(b"\x00\x00\x00")

    def test_cd_data_rate_matches_paper(self):
        # Figure 2: "the audio data rate is 172 kbyte/sec".
        codec = PcmCodec(16, 2)
        assert codec.data_rate(44100) == 176400
        assert codec.data_rate(44100) / 1024 == pytest.approx(172.3, abs=0.1)

    def test_bytes_per_frame(self):
        assert PcmCodec(16, 2).bytes_per_frame == 4
        assert PcmCodec(8, 1).bytes_per_frame == 1

    def test_invalid_parameters(self):
        with pytest.raises(CodecError):
            PcmCodec(24, 2)
        with pytest.raises(CodecError):
            PcmCodec(16, 0)

    def test_not_lossy(self):
        assert not PcmCodec().is_lossy
