"""Tests for the scalable (layered) video codec."""

import numpy as np
import pytest

from repro.codecs.jpeg_like import psnr
from repro.codecs.scalable import ScalableVideoCodec
from repro.errors import CodecError
from repro.media import frames


@pytest.fixture
def frame():
    return frames.gradient_frame(80, 56)


@pytest.fixture
def codec():
    return ScalableVideoCodec(levels=3, quality=70)


class TestLayerGeometry:
    def test_layer_shapes(self):
        shapes = ScalableVideoCodec.layer_shapes((120, 160), 3)
        assert shapes == [(30, 40), (60, 80), (120, 160)]

    def test_odd_dimensions_ceil(self):
        shapes = ScalableVideoCodec.layer_shapes((37, 51), 2)
        assert shapes == [(19, 26), (37, 51)]

    def test_levels_validation(self):
        with pytest.raises(CodecError):
            ScalableVideoCodec(levels=0)


class TestDecodeAtLevel:
    def test_full_resolution_roundtrip(self, codec, frame):
        decoded = codec.decode(codec.encode(frame))
        assert decoded.shape == frame.shape
        assert psnr(frame, decoded) > 28.0

    def test_each_level_has_expected_shape(self, codec, frame):
        data = codec.encode(frame)
        assert codec.decode_at_level(data, 0).shape == (14, 20, 3)
        assert codec.decode_at_level(data, 1).shape == (28, 40, 3)
        assert codec.decode_at_level(data, 2).shape == (56, 80, 3)

    def test_level_out_of_range(self, codec, frame):
        data = codec.encode(frame)
        with pytest.raises(CodecError):
            codec.decode_at_level(data, 3)
        with pytest.raises(CodecError):
            codec.decode_at_level(data, -1)

    def test_single_level_degenerates_to_intra(self, frame):
        codec = ScalableVideoCodec(levels=1, quality=70)
        decoded = codec.decode(codec.encode(frame))
        assert decoded.shape == frame.shape

    def test_bad_magic(self, codec, frame):
        data = bytearray(codec.encode(frame))
        data[0] ^= 0xFF
        with pytest.raises(CodecError, match="magic"):
            codec.decode(bytes(data))


class TestBandwidthSaving:
    """§2.2: 'bandwidth can be saved ... by ignoring parts of the
    storage unit'."""

    def test_bytes_at_level_monotone(self, codec, frame):
        data = codec.encode(frame)
        reads = [codec.bytes_at_level(data, level) for level in range(3)]
        assert reads[0] < reads[1] < reads[2]
        assert reads[2] == len(data)

    def test_base_layer_much_smaller(self, codec, frame):
        data = codec.encode(frame)
        assert codec.bytes_at_level(data, 0) < len(data) / 2

    def test_base_layer_content_recognizable(self, codec, frame):
        data = codec.encode(frame)
        base = codec.decode_at_level(data, 0)
        # The base layer should approximate a downsampled original.
        small = frame[::4, ::4][:14, :20]
        assert psnr(small, base) > 18.0

    def test_quality_improves_with_level(self, codec, frame):
        data = codec.encode(frame)
        upsampled = []
        for level in range(3):
            decoded = codec.decode_at_level(data, level)
            factor = 2 ** (2 - level)
            up = np.repeat(np.repeat(decoded, factor, axis=0), factor, axis=1)
            upsampled.append(psnr(frame, up[:56, :80]))
        assert upsampled[2] > upsampled[0]
