"""Tests for IMA ADPCM."""

import numpy as np
import pytest

from repro.codecs.adpcm import (
    AdpcmBlock,
    AdpcmCodec,
    STEP_TABLE,
    decode_block,
    encode_block,
)
from repro.codecs.pcm import quantize_samples
from repro.errors import CodecError
from repro.media import signals


@pytest.fixture
def speechish():
    """A tone plus harmonics at moderate level: ADPCM's natural diet."""
    signal = signals.mix(
        signals.sine(300, 0.1, 8000) * 0.4,
        signals.sine(600, 0.1, 8000) * 0.2,
    )
    return quantize_samples(signal, 16)


class TestStepTable:
    def test_standard_table(self):
        assert len(STEP_TABLE) == 89
        assert STEP_TABLE[0] == 7
        assert STEP_TABLE[88] == 32767
        assert list(STEP_TABLE) == sorted(STEP_TABLE)


class TestBlockCoding:
    def test_roundtrip_tracks_signal(self, speechish):
        encoded = encode_block(speechish, 0, 0)
        decoded = decode_block(encoded, len(speechish), 0, 0)
        error = np.abs(decoded.astype(int) - speechish.astype(int))
        # 4-bit ADPCM tracks a moderate signal within a few percent of
        # full scale once the step size adapts.
        assert error[50:].mean() < 1500

    def test_nibble_packing_size(self, speechish):
        encoded = encode_block(speechish, 0, 0)
        assert len(encoded) == (len(speechish) + 1) // 2

    def test_odd_sample_count(self):
        samples = np.array([100, -100, 100], dtype=np.int16)
        encoded = encode_block(samples, 0, 0)
        assert len(encoded) == 2
        decoded = decode_block(encoded, 3, 0, 0)
        assert len(decoded) == 3

    def test_silence_stays_quiet(self):
        silence = np.zeros(200, dtype=np.int16)
        decoded = decode_block(encode_block(silence, 0, 0), 200, 0, 0)
        assert np.abs(decoded).max() < 32


class TestAdpcmBlock:
    def test_serialization_roundtrip(self, speechish):
        block = AdpcmBlock(123, 17, len(speechish),
                           encode_block(speechish, 123, 17))
        restored = AdpcmBlock.from_bytes(block.to_bytes())
        assert restored.predictor == 123
        assert restored.step_index == 17
        assert restored.count == len(speechish)
        assert restored.data == block.data

    def test_bad_payload_size(self):
        header = AdpcmBlock(0, 0, 10, b"12345").to_bytes()[:6]
        with pytest.raises(CodecError):
            AdpcmBlock.from_bytes(header + b"xx")

    def test_too_short(self):
        with pytest.raises(CodecError):
            AdpcmBlock.from_bytes(b"abc")


class TestAdpcmCodec:
    def test_roundtrip(self, speechish):
        codec = AdpcmCodec(block_samples=100)
        decoded = codec.decode(codec.encode(speechish))
        assert len(decoded) == len(speechish)
        error = np.abs(decoded[100:].astype(int) - speechish[100:].astype(int))
        assert error.mean() < 1500

    def test_state_carries_across_blocks(self, speechish):
        """Block N's element descriptor is the state after block N-1 —
        the paper's 'parameters that vary over an audio sequence'."""
        codec = AdpcmCodec(block_samples=64)
        blocks = codec.encode_blocks(speechish)
        assert blocks[0].predictor == 0 and blocks[0].step_index == 0
        later = blocks[2:]
        assert any(b.predictor != 0 or b.step_index != 0 for b in later)

    def test_blocks_have_varying_descriptors(self, speechish):
        codec = AdpcmCodec(block_samples=64)
        blocks = codec.encode_blocks(speechish)
        states = {(b.predictor, b.step_index) for b in blocks}
        assert len(states) > 1  # heterogeneous stream material

    def test_compression_near_4x(self, speechish):
        codec = AdpcmCodec(block_samples=505)
        encoded = codec.encode(speechish)
        ratio = speechish.nbytes / len(encoded)
        assert 3.0 < ratio <= 4.0
        assert codec.compression_ratio() == pytest.approx(ratio, rel=0.15)

    def test_stereo_rejected(self):
        codec = AdpcmCodec()
        with pytest.raises(CodecError, match="mono"):
            codec.encode(np.zeros((10, 2), dtype=np.int16))

    def test_empty(self):
        codec = AdpcmCodec()
        assert codec.decode(codec.encode(np.zeros(0, dtype=np.int16))).size == 0

    def test_garbage_rejected(self):
        with pytest.raises(CodecError):
            AdpcmCodec().decode(b"xy")

    def test_is_lossy(self):
        assert AdpcmCodec().is_lossy
