"""Tests for blockwise DCT, quantization and zigzag."""

import numpy as np
import pytest

from repro.codecs import dct
from repro.errors import CodecError


@pytest.fixture
def plane(rng):
    return rng.uniform(-128, 127, (40, 56)).astype(np.float32)


class TestBlocking:
    def test_exact_tiling(self, plane):
        blocks, shape = dct.to_blocks(plane)
        assert blocks.shape == (5 * 7, 8, 8)
        assert shape == (40, 56)
        assert np.array_equal(dct.from_blocks(blocks, shape), plane)

    def test_padding_and_crop(self, rng):
        plane = rng.uniform(0, 1, (13, 19)).astype(np.float32)
        blocks, shape = dct.to_blocks(plane)
        assert blocks.shape == (2 * 3, 8, 8)
        restored = dct.from_blocks(blocks, shape)
        assert restored.shape == (13, 19)
        assert np.allclose(restored, plane)

    def test_block_content_matches_source(self, plane):
        blocks, _ = dct.to_blocks(plane)
        assert np.array_equal(blocks[0], plane[:8, :8])
        assert np.array_equal(blocks[1], plane[:8, 8:16])

    def test_wrong_dims_rejected(self):
        with pytest.raises(CodecError):
            dct.to_blocks(np.zeros((4, 4, 3), dtype=np.float32))

    def test_wrong_block_count_rejected(self):
        with pytest.raises(CodecError):
            dct.from_blocks(np.zeros((3, 8, 8)), (8, 8))


class TestTransform:
    def test_orthonormal_roundtrip(self, plane):
        blocks, _ = dct.to_blocks(plane)
        restored = dct.inverse_dct(dct.forward_dct(blocks))
        assert np.allclose(restored, blocks, atol=1e-4)

    def test_constant_block_concentrates_in_dc(self):
        block = np.full((1, 8, 8), 50.0, dtype=np.float32)
        coefficients = dct.forward_dct(block)
        assert coefficients[0, 0, 0] == pytest.approx(400.0)  # 50 * 8
        assert np.abs(coefficients[0].ravel()[1:]).max() < 1e-4

    def test_energy_preservation(self, plane):
        blocks, _ = dct.to_blocks(plane)
        coefficients = dct.forward_dct(blocks)
        assert np.sum(blocks ** 2) == pytest.approx(
            np.sum(coefficients ** 2), rel=1e-5
        )


class TestQuantization:
    def test_quality_50_is_reference(self):
        assert np.array_equal(
            dct.scale_quant_table(dct.LUMA_QUANT, 50), dct.LUMA_QUANT
        )

    def test_lower_quality_coarser(self):
        coarse = dct.scale_quant_table(dct.LUMA_QUANT, 10)
        fine = dct.scale_quant_table(dct.LUMA_QUANT, 90)
        assert coarse.mean() > dct.LUMA_QUANT.mean() > fine.mean()

    def test_quality_100_near_lossless(self):
        table = dct.scale_quant_table(dct.LUMA_QUANT, 100)
        assert table.max() == 1.0

    def test_quality_bounds(self):
        with pytest.raises(CodecError):
            dct.scale_quant_table(dct.LUMA_QUANT, 0)
        with pytest.raises(CodecError):
            dct.scale_quant_table(dct.LUMA_QUANT, 101)

    def test_quantize_dequantize_error_bounded(self, plane):
        blocks, _ = dct.to_blocks(plane)
        coefficients = dct.forward_dct(blocks)
        table = dct.scale_quant_table(dct.LUMA_QUANT, 50)
        restored = dct.dequantize(dct.quantize(coefficients, table), table)
        assert np.abs(restored - coefficients).max() <= table.max() / 2 + 1e-3

    def test_quantize_zeroes_small_coefficients(self):
        coefficients = np.full((1, 8, 8), 3.0, dtype=np.float32)
        table = np.full((8, 8), 100.0, dtype=np.float32)
        assert dct.quantize(coefficients, table).max() == 0


class TestZigzag:
    def test_permutation(self):
        assert sorted(dct.ZIGZAG.tolist()) == list(range(64))

    def test_classic_prefix(self):
        # The canonical JPEG scan starts 0, 1, 8, 16, 9, 2, 3, 10 ...
        assert dct.ZIGZAG[:8].tolist() == [0, 1, 8, 16, 9, 2, 3, 10]

    def test_scan_unscan_roundtrip(self, rng):
        blocks = rng.integers(-50, 50, (10, 8, 8)).astype(np.int16)
        assert np.array_equal(
            dct.zigzag_unscan(dct.zigzag_scan(blocks)), blocks
        )

    def test_low_frequency_first(self):
        block = np.zeros((1, 8, 8), dtype=np.int16)
        block[0, 0, 0] = 5
        block[0, 7, 7] = 7
        vector = dct.zigzag_scan(block)[0]
        assert vector[0] == 5
        assert vector[63] == 7
