"""Tests for MIDI event encoding."""

import pytest

from repro.codecs.midi import (
    MidiEvent,
    NOTE_OFF,
    NOTE_ON,
    PROGRAM_CHANGE,
    decode_events,
    encode_events,
)
from repro.errors import CodecError


class TestMidiEvent:
    def test_note_on(self):
        event = MidiEvent.note_on(10, 60, 100, channel=3)
        assert event.status == NOTE_ON
        assert event.channel == 3
        assert event.is_note_on
        assert not event.is_note_off

    def test_note_on_velocity_zero_is_off(self):
        event = MidiEvent(0, NOTE_ON, 0, 60, 0)
        assert event.is_note_off
        assert not event.is_note_on

    def test_note_off(self):
        assert MidiEvent.note_off(5, 60).is_note_off

    def test_validation(self):
        with pytest.raises(CodecError):
            MidiEvent(-1, NOTE_ON, 0, 60, 64)
        with pytest.raises(CodecError):
            MidiEvent(0, 0x42, 0, 60, 64)
        with pytest.raises(CodecError):
            MidiEvent(0, NOTE_ON, 16, 60, 64)
        with pytest.raises(CodecError):
            MidiEvent(0, NOTE_ON, 0, 200, 64)

    def test_encoded_size(self):
        assert MidiEvent.note_on(0, 60).encoded_size() == 4
        assert MidiEvent.program_change(0, 5).encoded_size() == 3


class TestWireFormat:
    def test_roundtrip(self):
        events = [
            MidiEvent.program_change(0, 12, channel=1),
            MidiEvent.note_on(0, 60, 90),
            MidiEvent.note_on(480, 64, 90),
            MidiEvent.note_off(960, 60),
            MidiEvent.note_off(960, 64),
        ]
        assert decode_events(encode_events(events)) == events

    def test_empty(self):
        assert decode_events(encode_events([])) == []

    def test_delta_times_compact(self):
        close = [MidiEvent.note_on(i, 60) for i in range(0, 50, 10)]
        encoded = encode_events(close)
        # 1 delta byte + 3 event bytes each.
        assert len(encoded) == 5 * 4

    def test_large_delta(self):
        events = [MidiEvent.note_on(0, 60), MidiEvent.note_on(1_000_000, 61)]
        assert decode_events(encode_events(events)) == events

    def test_out_of_order_rejected(self):
        events = [MidiEvent.note_on(10, 60), MidiEvent.note_on(5, 61)]
        with pytest.raises(CodecError, match="out of order"):
            encode_events(events)

    def test_truncation_detected(self):
        encoded = encode_events([MidiEvent.note_on(0, 60)])
        with pytest.raises(CodecError):
            decode_events(encoded[:-1])

    def test_simultaneous_events_allowed(self):
        chord = [MidiEvent.note_on(0, p) for p in (60, 64, 67)]
        assert decode_events(encode_events(chord)) == chord
