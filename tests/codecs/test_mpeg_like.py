"""Tests for the MPEG-like inter-frame codec (out-of-order elements)."""

import numpy as np
import pytest

from repro.codecs.jpeg_like import psnr
from repro.codecs.mpeg_like import MpegLikeCodec, decode_order
from repro.errors import CodecError
from repro.media import frames


@pytest.fixture
def shot():
    return frames.scene(64, 48, 8, "orbit")


class TestDecodeOrder:
    def test_paper_example(self):
        """§2.2: 'with a sequence of four elements where the first and
        last are keys, the placement order could be 1, 4, 2, 3.'"""
        assert decode_order(["I", "B", "B", "P"]) == [0, 3, 1, 2]

    def test_ipp_is_identity(self):
        assert decode_order(["I", "P", "P", "P"]) == [0, 1, 2, 3]

    def test_two_gops(self):
        assert decode_order(list("IBBP" * 2)) == [0, 3, 1, 2, 4, 7, 5, 6]

    def test_trailing_b_frames(self):
        assert decode_order(["I", "P", "B", "B"]) == [0, 1, 2, 3]

    def test_unknown_kind(self):
        with pytest.raises(CodecError):
            decode_order(["I", "X"])


class TestCodecStructure:
    def test_gop_must_start_with_i(self):
        with pytest.raises(CodecError):
            MpegLikeCodec(gop_pattern="PBB")
        with pytest.raises(CodecError):
            MpegLikeCodec(gop_pattern="IQ")

    def test_kinds_follow_pattern(self, shot):
        codec = MpegLikeCodec(quality=50, gop_pattern="IBBP")
        encoded = codec.encode_sequence(shot)
        by_display = sorted(encoded, key=lambda f: f.display_index)
        assert [f.kind for f in by_display] == list("IBBP" * 2)

    def test_storage_order_differs_from_display(self, shot):
        codec = MpegLikeCodec(quality=50, gop_pattern="IBBP")
        encoded = codec.encode_sequence(shot)
        display_in_decode_order = [f.display_index for f in encoded]
        assert display_in_decode_order == [0, 3, 1, 2, 4, 7, 5, 6]
        assert display_in_decode_order != sorted(display_in_decode_order)

    def test_decode_indices_sequential(self, shot):
        codec = MpegLikeCodec(quality=50)
        encoded = codec.encode_sequence(shot)
        assert [f.decode_index for f in encoded] == list(range(len(shot)))

    def test_placement_order_helper(self):
        codec = MpegLikeCodec(gop_pattern="IBBP")
        assert codec.placement_order(4) == [0, 3, 1, 2]

    def test_empty_sequence(self):
        assert MpegLikeCodec().encode_sequence([]) == []

    def test_is_key_flag(self, shot):
        codec = MpegLikeCodec(gop_pattern="IBBP")
        encoded = codec.encode_sequence(shot)
        keys = [f for f in encoded if f.is_key]
        assert all(f.kind == "I" for f in keys)
        assert len(keys) == 2


class TestFidelity:
    def _intra_floor(self, shot, quality):
        """Per-frame intra-codec PSNR: the fidelity ceiling inter coding
        can reach with the same quantization and 4:2:0 chroma."""
        from repro.codecs.jpeg_like import JpegLikeCodec

        intra = JpegLikeCodec(quality=quality, subsampling="4:2:0")
        return [psnr(f, intra.decode(intra.encode(f))) for f in shot]

    def test_roundtrip_all_frames(self, shot):
        codec = MpegLikeCodec(quality=60, gop_pattern="IBBP")
        decoded = codec.decode_sequence(codec.encode_sequence(shot))
        assert len(decoded) == len(shot)
        floors = self._intra_floor(shot, 60)
        for original, restored, floor in zip(shot, decoded, floors):
            assert psnr(original, restored) > min(floor - 2.0, 28.0)

    def test_ippp_roundtrip(self, shot):
        codec = MpegLikeCodec(quality=60, gop_pattern="IPPP")
        decoded = codec.decode_sequence(codec.encode_sequence(shot))
        floors = self._intra_floor(shot, 60)
        for original, restored, floor in zip(shot, decoded, floors):
            assert psnr(original, restored) > min(floor - 2.0, 28.0)

    def test_inter_coding_beats_intra_on_coherent_content(self, shot):
        """The point of exploiting 'similarities between consecutive
        elements': P/B residuals are smaller than I frames."""
        codec = MpegLikeCodec(quality=60, gop_pattern="IPPP")
        encoded = codec.encode_sequence(shot)
        i_sizes = [f.size for f in encoded if f.kind == "I"]
        p_sizes = [f.size for f in encoded if f.kind == "P"]
        assert sum(p_sizes) / len(p_sizes) < sum(i_sizes) / len(i_sizes)

    def test_static_scene_p_frames_tiny(self):
        frame = frames.gradient_frame(64, 48)
        codec = MpegLikeCodec(quality=60, gop_pattern="IPPP")
        encoded = codec.encode_sequence([frame] * 4)
        i_size = encoded[0].size
        for p in encoded[1:]:
            assert p.size < i_size / 3
