"""Tests for synthetic video frame generation."""

import numpy as np
import pytest

from repro.errors import MediaModelError
from repro.media import frames


class TestGenerators:
    def test_gradient_shape_dtype(self):
        frame = frames.gradient_frame(64, 48)
        assert frame.shape == (48, 64, 3)
        assert frame.dtype == np.uint8

    def test_gradient_phase_changes_content(self):
        assert not np.array_equal(
            frames.gradient_frame(32, 32, phase=0.0),
            frames.gradient_frame(32, 32, phase=0.3),
        )

    def test_color_bars_have_eight_colors(self):
        bars = frames.color_bars(80, 16)
        distinct = {tuple(c) for c in bars[0]}
        assert len(distinct) == 8

    def test_texture_seeded(self):
        assert np.array_equal(
            frames.texture_frame(32, 32, seed=1),
            frames.texture_frame(32, 32, seed=1),
        )
        assert not np.array_equal(
            frames.texture_frame(32, 32, seed=1),
            frames.texture_frame(32, 32, seed=2),
        )

    def test_moving_box_moves(self):
        a = frames.moving_box_frame(64, 48, t=0.0)
        b = frames.moving_box_frame(64, 48, t=0.5)
        assert not np.array_equal(a, b)

    def test_moving_box_stays_in_frame(self):
        for t in np.linspace(0, 1, 17):
            frame = frames.moving_box_frame(32, 32, t=float(t))
            assert frame.shape == (32, 32, 3)

    def test_too_small_rejected(self):
        with pytest.raises(MediaModelError):
            frames.gradient_frame(4, 4)


class TestScenes:
    @pytest.mark.parametrize("kind", ["orbit", "pan", "texture", "cut"])
    def test_scene_kinds(self, kind):
        shot = frames.scene(32, 24, 5, kind)
        assert len(shot) == 5
        assert all(f.shape == (24, 32, 3) for f in shot)

    def test_scene_coherence(self):
        # Consecutive frames differ less than distant ones (the property
        # inter-frame codecs exploit).
        shot = frames.scene(64, 48, 10, "orbit")
        near = np.abs(shot[1].astype(int) - shot[0].astype(int)).mean()
        # Frame 5 is on the opposite side of the orbit (frame 9 has come
        # almost back around, so it is near frame 0 again).
        far = np.abs(shot[5].astype(int) - shot[0].astype(int)).mean()
        assert near < far

    def test_unknown_kind(self):
        with pytest.raises(MediaModelError):
            frames.scene(32, 32, 2, "explosion")

    def test_zero_frames(self):
        assert frames.scene(32, 32, 0, "pan") == []


class TestFrameBytes:
    def test_paper_arithmetic(self):
        # Figure 2: 640x480 at 24 bpp = 921600 bytes per frame; at 25
        # fps that is the paper's ~22 MB/s.
        per_frame = frames.frame_bytes(640, 480, 24)
        assert per_frame == 921600
        assert per_frame * 25 / 2 ** 20 == pytest.approx(21.97, abs=0.01)
