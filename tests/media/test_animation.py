"""Tests for the animation model (non-continuous streams)."""

import pytest

from repro.errors import MediaModelError
from repro.media.animation import (
    AnimationOp,
    AnimationScene,
    Sprite,
    demo_scene,
)


class TestSprite:
    def test_validation(self):
        with pytest.raises(MediaModelError):
            Sprite("x", 0, 5, (1, 2, 3))


class TestAnimationOp:
    def test_end(self):
        assert AnimationOp("s", "move", 10, 5).end == 15

    def test_unknown_op(self):
        with pytest.raises(MediaModelError):
            AnimationOp("s", "explode", 0, 0)

    def test_negative_timing(self):
        with pytest.raises(MediaModelError):
            AnimationOp("s", "move", -1, 0)


class TestScene:
    def test_unknown_sprite_rejected(self):
        scene = AnimationScene()
        with pytest.raises(MediaModelError, match="unknown sprite"):
            scene.appear("ghost", 0, 0, 0)

    def test_duplicate_sprite_rejected(self):
        scene = AnimationScene()
        scene.add_sprite(Sprite("a", 5, 5, (0, 0, 0)))
        with pytest.raises(MediaModelError, match="already"):
            scene.add_sprite(Sprite("a", 5, 5, (0, 0, 0)))

    def test_span(self):
        scene = demo_scene()
        assert scene.span_ticks() == 125

    def test_rest_period_has_no_elements(self):
        """§3.3: 'At times when the animated object is at rest there are
        no associated media elements.'"""
        stream = demo_scene().to_stream()
        assert stream.at_tick(60) == []  # the rest: ticks 50-74
        assert stream.has_gaps()
        assert stream.is_non_continuous()

    def test_stream_elements_are_ops(self):
        stream = demo_scene().to_stream()
        assert all(t.element.descriptor["op"] in
                   ("move", "appear", "disappear", "recolor")
                   for t in stream)


class TestPositions:
    @pytest.fixture
    def scene(self):
        scene = AnimationScene(100, 100)
        scene.add_sprite(Sprite("box", 10, 10, (255, 0, 0)))
        scene.appear("box", 0, 0, 0)
        scene.move("box", 0, 10, 100, 0)
        return scene

    def test_before_appear(self):
        scene = AnimationScene(100, 100)
        scene.add_sprite(Sprite("box", 10, 10, (255, 0, 0)))
        scene.appear("box", 5, 0, 0)
        assert scene.positions_at(0) == {}

    def test_appear_position(self, scene):
        x, y, color = scene.positions_at(0)["box"]
        assert (x, y) == (0, 0)
        assert color == (255, 0, 0)

    def test_move_interpolates(self, scene):
        x, y, _ = scene.positions_at(5)["box"]
        assert 40 <= x <= 60
        assert y == 0

    def test_move_completes(self, scene):
        x, y, _ = scene.positions_at(10)["box"]
        assert (x, y) == (100, 0)

    def test_disappear(self, scene):
        scene.disappear("box", 20)
        assert scene.positions_at(25) == {}
        assert "box" in scene.positions_at(15)

    def test_recolor(self, scene):
        scene.recolor("box", 15, (0, 255, 0))
        _, _, color = scene.positions_at(16)["box"]
        assert color == (0, 255, 0)

    def test_demo_scene_rest(self):
        scene = demo_scene()
        at_rest = scene.positions_at(60)
        moving = scene.positions_at(30)
        assert "box" in at_rest and "box" in moving
