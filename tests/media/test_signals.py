"""Tests for audio signal generation."""

import numpy as np
import pytest

from repro.errors import MediaModelError
from repro.media import signals


class TestGenerators:
    def test_sine_length(self):
        assert len(signals.sine(440, 1.0, 8000)) == 8000

    def test_sine_frequency(self):
        # Count zero crossings: a 100 Hz tone over 1 s has ~200.
        tone = signals.sine(100, 1.0, 8000)
        crossings = np.sum(np.diff(np.signbit(tone)))
        assert abs(crossings - 200) <= 2

    def test_sine_amplitude(self):
        tone = signals.sine(440, 0.1, 8000, amplitude=0.5)
        assert 0.45 < np.abs(tone).max() <= 0.5

    def test_chirp_sweeps_up(self):
        sweep = signals.chirp(50, 400, 1.0, 8000)
        first = np.sum(np.diff(np.signbit(sweep[:4000])))
        last = np.sum(np.diff(np.signbit(sweep[4000:])))
        assert last > first

    def test_noise_seeded(self):
        assert np.array_equal(
            signals.noise(0.1, 8000, seed=5), signals.noise(0.1, 8000, seed=5)
        )
        assert not np.array_equal(
            signals.noise(0.1, 8000, seed=5), signals.noise(0.1, 8000, seed=6)
        )

    def test_silence(self):
        assert np.all(signals.silence(0.5, 1000) == 0)
        assert len(signals.silence(0.5, 1000)) == 500

    def test_negative_duration_rejected(self):
        with pytest.raises(MediaModelError):
            signals.sine(440, -1, 8000)

    def test_bad_rate_rejected(self):
        with pytest.raises(MediaModelError):
            signals.silence(1, 0)


class TestEnvelope:
    def test_shape(self):
        env = signals.adsr_envelope(1000)
        assert len(env) == 1000
        assert env[0] == 0.0
        assert env[-1] == pytest.approx(0.0, abs=0.01)
        assert env.max() <= 1.0

    def test_sustain_level(self):
        env = signals.adsr_envelope(1000, sustain=0.5)
        assert np.isclose(env[500], 0.5, atol=0.05)

    def test_empty(self):
        assert len(signals.adsr_envelope(0)) == 0

    def test_tiny(self):
        env = signals.adsr_envelope(3)
        assert len(env) == 3


class TestMixPan:
    def test_mix_sums(self):
        a = signals.sine(100, 0.1, 1000, amplitude=0.2)
        b = signals.sine(200, 0.1, 1000, amplitude=0.2)
        mixed = signals.mix(a, b, normalize=False)
        assert np.allclose(mixed, a + b)

    def test_mix_different_lengths(self):
        mixed = signals.mix(np.ones(10), np.ones(5), normalize=False)
        assert len(mixed) == 10
        assert mixed[7] == 1.0
        assert mixed[3] == 2.0

    def test_mix_normalizes_clipping(self):
        loud = signals.mix(np.ones(10), np.ones(10))
        assert np.abs(loud).max() == pytest.approx(1.0)

    def test_mix_requires_input(self):
        with pytest.raises(MediaModelError):
            signals.mix()

    def test_to_stereo_center(self):
        mono = signals.sine(440, 0.01, 8000)
        stereo = signals.to_stereo(mono)
        assert stereo.shape == (len(mono), 2)
        assert np.array_equal(stereo[:, 0], stereo[:, 1])

    def test_to_stereo_pan_right(self):
        mono = np.ones(10)
        stereo = signals.to_stereo(mono, pan=0.5)
        assert stereo[0, 1] > stereo[0, 0]

    def test_to_stereo_pan_left(self):
        stereo = signals.to_stereo(np.ones(10), pan=-0.5)
        assert stereo[0, 0] > stereo[0, 1]

    def test_stereo_passthrough(self):
        stereo = np.ones((10, 2))
        assert signals.to_stereo(stereo) is stereo

    def test_pan_range(self):
        with pytest.raises(MediaModelError):
            signals.to_stereo(np.ones(4), pan=2.0)


class TestMeters:
    def test_rms_of_sine(self):
        tone = signals.sine(440, 1.0, 44100, amplitude=1.0)
        assert signals.rms(tone) == pytest.approx(1 / np.sqrt(2), abs=0.01)

    def test_peak(self):
        assert signals.peak(np.array([0.1, -0.7, 0.3])) == pytest.approx(0.7)

    def test_empty(self):
        assert signals.rms(np.array([])) == 0.0
        assert signals.peak(np.array([])) == 0.0
