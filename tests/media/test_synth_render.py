"""Tests for the type-changing derivations: synthesis and rendering."""

import numpy as np
import pytest

from repro.core.derivation import derivation_registry
from repro.core.media_types import MediaKind
from repro.errors import DerivationError
from repro.media.animation import Sprite, AnimationScene, demo_scene
from repro.media.music import Note, Score, demo_score
from repro.media.objects import animation_object, midi_object, score_object
from repro.media.renderer import render_animation, render_frame
from repro.media.synthesizer import (
    INSTRUMENTS,
    synthesize_note,
    synthesize_score,
)


class TestSynthesizeNote:
    def test_length(self):
        wave = synthesize_note(440, 0.5, 8000)
        assert len(wave) == 4000

    def test_amplitude_scales_with_velocity(self):
        soft = synthesize_note(440, 0.2, 8000, velocity=30)
        loud = synthesize_note(440, 0.2, 8000, velocity=120)
        assert np.abs(loud).max() > np.abs(soft).max()

    def test_frequency_present(self):
        wave = synthesize_note(500, 0.5, 8000, instrument="sine")
        spectrum = np.abs(np.fft.rfft(wave))
        peak_hz = np.argmax(spectrum) * 8000 / len(wave)
        assert abs(peak_hz - 500) < 10

    def test_harmonics_differ_by_instrument(self):
        sine = synthesize_note(220, 0.3, 8000, instrument="sine")
        organ = synthesize_note(220, 0.3, 8000, instrument="organ")
        assert not np.allclose(sine, organ)

    def test_unknown_instrument(self):
        with pytest.raises(DerivationError, match="instrument"):
            synthesize_note(440, 0.1, 8000, instrument="kazoo")

    def test_zero_duration(self):
        assert len(synthesize_note(440, 0.0, 8000)) == 0

    def test_instruments_table(self):
        assert set(INSTRUMENTS) >= {"sine", "organ", "piano", "square"}


class TestSynthesizeScore:
    def test_duration_matches_score(self):
        score = demo_score()
        signal = synthesize_score(score, sample_rate=8000)
        expected = score.duration_seconds() * 8000
        assert abs(len(signal) - expected) <= 2

    def test_tempo_override_shortens(self):
        score = demo_score()
        normal = synthesize_score(score, 8000)
        fast = synthesize_score(score, 8000, tempo_bpm=240)
        assert len(fast) < len(normal)

    def test_bounded_output(self):
        signal = synthesize_score(demo_score(), 8000)
        assert np.abs(signal).max() <= 1.0

    def test_notes_audible_at_their_times(self):
        score = Score(tempo_bpm=120)
        score.add(Note(69, 0, 960))          # beat 1
        score.add(Note(69, 1920, 960))       # beat 3
        signal = synthesize_score(score, 8000)
        # Energy during notes, silence during the rest (beat 2).
        assert np.abs(signal[:3000]).max() > 0.05
        assert np.abs(signal[4300:4700]).max() < 0.02
        assert np.abs(signal[8200:8800]).max() > 0.05


class TestMidiSynthesisDerivation:
    def test_type_change(self):
        """Table 1: music (MIDI) -> audio."""
        source = score_object(demo_score(), "m")
        derived = derivation_registry.get("midi-synthesis")(
            [source], {"sample_rate": 8000}
        )
        assert derived.media_type.kind is MediaKind.AUDIO
        expanded = derived.expand()
        assert expanded.kind is MediaKind.AUDIO
        assert len(expanded.stream()) > 0

    def test_works_from_event_stream(self):
        """Without the symbolic score attached, events are re-paired."""
        source = midi_object(demo_score(), "m")
        del source.score
        derived = derivation_registry.get("midi-synthesis")(
            [source], {"sample_rate": 8000}
        )
        expanded = derived.expand()
        assert expanded.stream().total_size() > 0

    def test_rejects_audio_input(self, tone):
        from repro.media.objects import audio_object

        source = audio_object(tone, "a", sample_rate=8000)
        with pytest.raises(DerivationError):
            derivation_registry.get("midi-synthesis")([source], {})


class TestRenderer:
    def test_render_frame_background(self):
        scene = AnimationScene(32, 24, background=(1, 2, 3))
        frame = render_frame(scene, 0)
        assert frame.shape == (24, 32, 3)
        assert tuple(frame[0, 0]) == (1, 2, 3)

    def test_render_frame_sprite_visible(self):
        scene = AnimationScene(32, 24)
        scene.add_sprite(Sprite("b", 8, 8, (255, 0, 0)))
        scene.appear("b", 0, 4, 4)
        frame = render_frame(scene, 0)
        assert tuple(frame[8, 8]) == (255, 0, 0)

    def test_sprite_clipped_at_edges(self):
        scene = AnimationScene(32, 24)
        scene.add_sprite(Sprite("b", 16, 16, (255, 0, 0)))
        scene.appear("b", 0, 24, 16)  # extends past both edges
        frame = render_frame(scene, 0)
        assert frame.shape == (24, 32, 3)

    def test_render_animation_frame_count(self):
        shot = render_animation(demo_scene(), frame_count=10)
        assert len(shot) == 10

    def test_render_animation_default_span(self):
        scene = demo_scene()
        shot = render_animation(scene)
        assert len(shot) == scene.span_ticks() + 1

    def test_motion_visible(self):
        shot = render_animation(demo_scene(), frame_count=30)
        assert not np.array_equal(shot[0], shot[20])


class TestAnimationRenderDerivation:
    def test_type_change(self):
        source = animation_object(demo_scene(), "anim")
        derived = derivation_registry.get("animation-render")(
            [source], {"frame_count": 5}
        )
        assert derived.media_type.kind is MediaKind.VIDEO
        expanded = derived.expand()
        assert len(expanded.stream()) == 5

    def test_missing_scene_rejected(self):
        source = animation_object(demo_scene(), "anim")
        del source.scene
        derived = derivation_registry.get("animation-render")(
            [source], {"frame_count": 2}
        )
        with pytest.raises(DerivationError, match="scene"):
            derived.expand()
