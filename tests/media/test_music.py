"""Tests for the note/score model (non-continuous streams)."""

import pytest

from repro.errors import MediaModelError
from repro.media.music import (
    Note,
    PPQ,
    Score,
    demo_score,
    frequency_of,
    pitch_from_name,
)


class TestPitch:
    @pytest.mark.parametrize("name,expected", [
        ("A4", 69), ("C4", 60), ("C#5", 73), ("Bb3", 58), ("C-1", 0),
    ])
    def test_names(self, name, expected):
        assert pitch_from_name(name) == expected

    def test_bad_names(self):
        for bad in ("", "H4", "C", "Cx4"):
            with pytest.raises(MediaModelError):
                pitch_from_name(bad)

    def test_out_of_range(self):
        with pytest.raises(MediaModelError):
            pitch_from_name("C99")

    def test_frequency_a4(self):
        assert frequency_of(69) == pytest.approx(440.0)

    def test_frequency_octave_doubles(self):
        assert frequency_of(81) == pytest.approx(880.0)


class TestNote:
    def test_end(self):
        assert Note(60, 100, 50).end == 150

    def test_validation(self):
        with pytest.raises(MediaModelError):
            Note(200, 0, 10)
        with pytest.raises(MediaModelError):
            Note(60, -1, 10)
        with pytest.raises(MediaModelError):
            Note(60, 0, 0)
        with pytest.raises(MediaModelError):
            Note(60, 0, 10, velocity=0)


class TestScore:
    def test_melody_with_rest(self):
        score = Score().add_melody(["C4", None, "E4"], note_ticks=100)
        assert len(score) == 2
        assert score.notes[1].start == 200  # rest consumed a slot

    def test_chord(self):
        score = Score().add_chord(["C4", "E4", "G4"], start=0, duration=100)
        assert len(score) == 3
        assert all(n.start == 0 for n in score.notes)

    def test_notes_kept_sorted(self):
        score = Score()
        score.add(Note(60, 500, 100))
        score.add(Note(64, 0, 100))
        assert score.notes[0].start == 0

    def test_span_and_duration(self):
        score = Score(tempo_bpm=120).add_melody(["C4"], note_ticks=PPQ)
        # One quarter note at 120 bpm = 0.5 s.
        assert score.span_ticks() == PPQ
        assert score.duration_seconds() == pytest.approx(0.5)

    def test_tempo_validation(self):
        with pytest.raises(MediaModelError):
            Score(tempo_bpm=0)

    def test_transpose(self):
        score = Score().add_melody(["C4", "E4"])
        up = score.transpose(12)
        assert [n.pitch for n in up.notes] == [72, 76]
        # original untouched
        assert [n.pitch for n in score.notes] == [60, 64]


class TestStreamConversion:
    def test_chord_overlaps_and_rest_gaps(self):
        """The paper's §3.3 example: chords overlap, rests gap."""
        stream = demo_score().to_stream()
        assert stream.is_non_continuous()
        assert stream.has_overlaps()
        assert stream.has_gaps()

    def test_stream_elements_carry_descriptors(self):
        stream = demo_score().to_stream()
        first = stream.tuples[0]
        assert first.element.descriptor["pitch"] == first.element.payload.pitch

    def test_event_stream_is_event_based(self):
        stream = demo_score().to_event_stream()
        assert stream.is_event_based()
        assert all(t.duration == 0 for t in stream)

    def test_event_stream_has_on_off_pairs(self):
        score = Score().add_melody(["C4"])
        events = score.to_midi_events()
        assert len(events) == 2
        assert events[0].is_note_on
        assert events[1].is_note_off

    def test_midi_roundtrip(self):
        score = demo_score()
        events = score.to_midi_events()
        restored = Score.from_midi_events(events, tempo_bpm=score.tempo_bpm)
        assert len(restored) == len(score)
        original = {(n.pitch, n.start, n.duration) for n in score.notes}
        recovered = {(n.pitch, n.start, n.duration) for n in restored.notes}
        assert original == recovered

    def test_repr(self):
        assert "notes" in repr(demo_score())
