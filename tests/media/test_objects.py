"""Tests for media-object builders."""

import numpy as np
import pytest

from repro.core.media_types import MediaKind
from repro.core.rational import Rational
from repro.errors import MediaModelError
from repro.media import frames, signals
from repro.media.animation import demo_scene
from repro.media.music import demo_score
from repro.media.objects import (
    DEFAULT_BLOCK_SAMPLES,
    animation_object,
    audio_object,
    frames_of,
    image_object,
    midi_object,
    score_object,
    signal_of,
    video_object,
)


class TestVideoObject:
    def test_build(self, small_frames):
        obj = video_object(small_frames, "v")
        assert obj.kind is MediaKind.VIDEO
        assert len(obj.stream()) == 8
        assert obj.descriptor["frame_width"] == 64
        assert obj.descriptor["duration"] == Rational(8, 25)

    def test_stream_uniform(self, small_frames):
        assert video_object(small_frames, "v").stream().is_uniform()

    def test_empty_rejected(self):
        with pytest.raises(MediaModelError):
            video_object([], "v")

    def test_mismatched_shapes_rejected(self, small_frames):
        bad = small_frames + [frames.gradient_frame(32, 32)]
        with pytest.raises(MediaModelError, match="differs"):
            video_object(bad, "v")

    def test_frames_of_roundtrip(self, small_frames):
        obj = video_object(small_frames, "v")
        assert all(
            np.array_equal(a, b)
            for a, b in zip(frames_of(obj), small_frames)
        )

    def test_ntsc_type(self, small_frames):
        obj = video_object(small_frames, "v", media_type_name="ntsc-video")
        assert obj.media_type.name == "ntsc-video"
        assert obj.descriptor["duration"] == Rational(8 * 1001, 30000)


class TestAudioObject:
    def test_default_blocking_matches_paper(self, tone):
        # Default block = 1764 samples: the Figure 2 interleaving unit.
        assert DEFAULT_BLOCK_SAMPLES == 1764

    def test_blocks_and_duration(self, tone):
        obj = audio_object(tone, "a", sample_rate=8000, block_samples=500)
        stream = obj.stream()
        assert len(stream) == 4  # 2000 samples / 500
        assert stream.is_continuous()
        assert obj.descriptor["duration"] == Rational(2000, 8000)

    def test_final_partial_block(self, tone):
        obj = audio_object(tone, "a", sample_rate=8000, block_samples=1500)
        stream = obj.stream()
        assert [t.duration for t in stream] == [1500, 500]
        assert stream.is_continuous()

    def test_stereo_channels(self):
        stereo = signals.to_stereo(signals.sine(440, 0.1, 8000))
        obj = audio_object(stereo, "a", sample_rate=8000)
        assert obj.descriptor["channels"] == 2

    def test_signal_of_roundtrip(self, tone):
        obj = audio_object(tone, "a", sample_rate=8000, block_samples=320)
        samples = signal_of(obj)
        assert samples.shape == (2000, 1)

    def test_element_sizes(self, tone):
        obj = audio_object(tone, "a", sample_rate=8000, block_samples=500,
                           sample_size=16)
        assert obj.stream().tuples[0].element.size == 1000  # 500 * 2 bytes


class TestStillAndSymbolic:
    def test_image_object(self, small_frame):
        obj = image_object(small_frame, "img")
        assert obj.kind is MediaKind.IMAGE
        assert obj.value() is small_frame
        assert obj.descriptor["depth"] == 24

    def test_image_shape_validation(self):
        with pytest.raises(MediaModelError):
            image_object(np.zeros((4, 4)), "img")

    def test_score_object(self):
        obj = score_object(demo_score(), "music")
        assert obj.kind is MediaKind.MUSIC
        assert obj.stream().is_non_continuous()
        assert obj.score is not None

    def test_midi_object(self):
        obj = midi_object(demo_score(), "midi")
        assert obj.stream().is_event_based()
        assert obj.descriptor["division"] == 960

    def test_animation_object(self):
        obj = animation_object(demo_scene(), "anim")
        assert obj.kind is MediaKind.ANIMATION
        assert obj.stream().has_gaps()
        assert obj.descriptor["frame_width"] == 160
