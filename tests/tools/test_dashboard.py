"""Tests for the deterministic terminal dashboard."""

from repro.core.rational import Rational
from repro.obs.telemetry import TelemetryStore
from repro.tools.dashboard import (
    HEAT_CHARS,
    SPARK_CHARS,
    heat_row,
    render_dashboard,
    sparkline,
)


def counter_snapshot(name, value):
    return {name: {"type": "counter", "series": [{"value": value}]}}


def populated_store():
    store = TelemetryStore()
    for tick, (busy, idle) in enumerate([(0, 0), (40, 1), (90, 2)], start=1):
        store.record_scrape("shard0", Rational(tick),
                            counter_snapshot("shard0.reads", busy))
        store.record_scrape("shard1", Rational(tick),
                            counter_snapshot("shard1.reads", idle))
    store.record_alert("burn", "shard0", "pending", Rational(2), 2.0, 0.5)
    store.record_alert("burn", "shard0", "firing", Rational(3), 3.0, 2.5)
    return store


class TestSparkline:
    def test_scales_against_the_series_maximum(self):
        line = sparkline([0.0, 5.0, 10.0])
        assert line[0] == SPARK_CHARS[0]
        assert line[-1] == SPARK_CHARS[-1]
        assert line[1] not in (SPARK_CHARS[0], SPARK_CHARS[-1])

    def test_small_positive_values_stay_visible(self):
        # a tiny-but-nonzero point must not round down to the blank
        assert sparkline([0.001, 100.0])[0] == SPARK_CHARS[1]

    def test_keeps_the_newest_points_when_too_long(self):
        # the old spike scrolls off AND stops dominating the scale:
        # the surviving flat window normalizes to its own maximum
        line = sparkline([9000.0] + [1.0] * 60, width=8)
        assert line == SPARK_CHARS[-1] * 8

    def test_empty_and_all_zero_series(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == SPARK_CHARS[0] * 2


class TestHeatRow:
    def test_busiest_shard_glows_hottest(self):
        text = heat_row(populated_store())
        assert f"shard0:{HEAT_CHARS[-1]}" in text
        assert f"shard1:{HEAT_CHARS[-1]}" not in text

    def test_empty_store(self):
        assert "(no scrapes)" in heat_row(TelemetryStore())


class TestRenderDashboard:
    def test_sections_present(self):
        text = render_dashboard(populated_store())
        assert "telemetry dashboard" in text
        assert "series (sparkline per scrape)" in text
        assert "alert timeline" in text
        assert "shard heat" in text
        assert "firing" in text

    def test_plain_render_has_no_escapes_and_is_deterministic(self):
        first = render_dashboard(populated_store())
        assert "\x1b[" not in first
        assert first == render_dashboard(populated_store())

    def test_ansi_colors_alert_states(self):
        text = render_dashboard(populated_store(), ansi=True)
        assert "\x1b[31mfiring\x1b[0m" in text

    def test_empty_store_short_circuits(self):
        text = render_dashboard(TelemetryStore())
        assert "(no scrapes recorded)" in text
