"""Tests for the container-inspection CLI."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.engine.recorder import Recorder
from repro.media import frames
from repro.media.objects import video_object
from repro.storage.container import write_container
from repro.tools.inspect import main


@pytest.fixture(scope="module")
def container_path(tmp_path_factory):
    video = video_object(frames.scene(32, 24, 6, "orbit"), "video1")
    movie = Recorder(MemoryBlob()).record([video])
    path = tmp_path_factory.mktemp("inspect") / "movie.rmf"
    write_container(movie, path)
    return str(path)


class TestInspectCli:
    def test_describe(self, container_path, capsys):
        assert main([container_path]) == 0
        out = capsys.readouterr().out
        assert "video1" in out
        assert "media type" in out

    def test_placement_table(self, container_path, capsys):
        assert main([container_path, "--table", "video1"]) == 0
        out = capsys.readouterr().out
        assert "placement table" in out

    def test_play(self, container_path, capsys):
        assert main([container_path, "--play", "2000000"]) == 0
        out = capsys.readouterr().out
        assert "playback at" in out
        assert "elements" in out

    def test_play_with_obs_prints_metric_table(self, container_path, capsys):
        assert main([container_path, "--play", "2000000", "--obs"]) == 0
        out = capsys.readouterr().out
        assert "engine.play.runs" in out
        assert "counter" in out

    def test_obs_without_play_is_quiet(self, container_path, capsys):
        assert main([container_path, "--obs"]) == 0
        out = capsys.readouterr().out
        assert "engine.play.runs" not in out

    def test_verify_clean_container(self, container_path, capsys):
        assert main([container_path, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s), 0 error(s)" in out

    def test_missing_file_fails(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.rmf")]) == 1
        err = capsys.readouterr().err
        assert "error:" in err

    def test_health_prints_status_and_slo(self, container_path, capsys):
        assert main([container_path, "--health", "3"]) == 0
        out = capsys.readouterr().out
        assert "status:" in out
        assert "sessions: 3" in out
        assert "slo startup-latency" in out
        assert "pipeline stage profile" in out

    def test_health_default_client_count(self, container_path, capsys):
        assert main([container_path, "--health"]) == 0
        out = capsys.readouterr().out
        assert "sessions: 2" in out

    def test_timeline_writes_valid_trace(self, container_path, tmp_path,
                                         capsys):
        import json

        trace_path = tmp_path / "trace.json"
        assert main([container_path, "--timeline", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote Chrome trace" in out
        document = json.loads(trace_path.read_text())
        assert document["traceEvents"]
        names = {row["name"] for row in document["traceEvents"]}
        assert "vod.session" in names


class TestWalInspection:
    @pytest.fixture
    def wal_dir(self, tmp_path):
        from repro.durability import WriteAheadLog

        directory = str(tmp_path / "wal")
        with WriteAheadLog(directory) as wal:
            txn = wal.begin()
            wal.log_write(txn, 0, b"\x42" * 64)
            wal.commit(txn)
        return directory

    def test_wal_summary(self, wal_dir, capsys):
        assert main([wal_dir, "--wal"]) == 0
        out = capsys.readouterr().out
        assert "write-ahead log" in out
        assert "committed txns: 1" in out
        assert "torn tail     : no" in out

    def test_missing_wal_directory_fails(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent"), "--wal"]) == 1
        assert "error" in capsys.readouterr().err


class TestIndexCensus:
    def test_index_census_output(self, container_path, capsys):
        assert main([container_path, "--index"]) == 0
        out = capsys.readouterr().out
        assert "temporal index census" in out
        assert "objects" in out
        assert "writes" in out


class TestDashboard:
    def test_dash_renders_sections(self, container_path, capsys):
        assert main([container_path, "--dash", "3"]) == 0
        out = capsys.readouterr().out
        assert "telemetry dashboard" in out
        assert "series (sparkline per scrape)" in out
        assert "shard heat" in out

    def test_dash_default_client_count(self, container_path, capsys):
        assert main([container_path, "--dash"]) == 0
        out = capsys.readouterr().out
        assert "telemetry dashboard" in out


class TestCfgDump:
    def test_cfg_dump_prints_the_graph(self, tmp_path, capsys):
        source = tmp_path / "mod.py"
        source.write_text(
            "class Pool:\n"
            "    def grab(self, page):\n"
            "        if page:\n"
            "            return self.pin(page)\n"
            "        return None\n"
        )
        assert main([str(source), "--cfg", "Pool.grab"]) == 0
        out = capsys.readouterr().out
        assert "cfg mod.py::Pool.grab" in out
        assert "(true)" in out and "(exc)" in out

    def test_unknown_qualname_lists_what_exists(self, tmp_path, capsys):
        source = tmp_path / "mod.py"
        source.write_text("def only():\n    return 1\n")
        assert main([str(source), "--cfg", "missing"]) == 1
        err = capsys.readouterr().err
        assert "no function 'missing'" in err
        assert "only" in err

    def test_cfg_on_unparseable_file_fails_cleanly(self, tmp_path, capsys):
        source = tmp_path / "broken.py"
        source.write_text("def broken(:\n")
        assert main([str(source), "--cfg", "broken"]) == 1
        assert "error:" in capsys.readouterr().err
