"""Tests for the static-verification CLI gate."""

import json

from repro.tools.check import list_rules_text, main, run_external, run_graph


class TestCheckCli:
    def test_list_rules_prints_the_registry(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("MG001", "MG009", "LN001", "LN006"):
            assert rule in out

    def test_lint_stage_passes_on_this_repo(self, capsys):
        assert main(["--lint"]) == 0
        out = capsys.readouterr().out
        assert "lint:repro: 0 finding(s)" in out
        assert "check passed" in out

    def test_lint_json_output(self, capsys):
        assert main(["--lint", "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[:out.rindex("}") + 1])
        assert payload["ok"] is True
        assert payload["subject"] == "lint:repro"

    def test_graph_stage_passes_on_the_exemplars(self, capsys):
        assert main(["--graph", "--ignore", "MG005"]) == 0
        out = capsys.readouterr().out
        assert "graph:exemplars" in out

    def test_missing_external_tools_skip_not_fail(self, capsys):
        status, detail = run_external("definitely-not-a-tool", [])
        assert status == "skipped"
        assert "not installed" in detail


class TestGraphStage:
    def test_exemplars_have_no_errors(self):
        report = run_graph()
        assert report.ok
        # Overlapping audio tracks in the exemplars surface as
        # warnings; nothing else fires on a clean tree.
        assert set(report.rules()) <= {"MG005"}

    def test_rule_table_text_is_deterministic(self):
        assert list_rules_text() == list_rules_text()


class TestCrashStage:
    def test_crash_stage_passes(self, capsys):
        assert main(["--crash"]) == 0
        out = capsys.readouterr().out
        assert "crash matrix [container]" in out
        assert "crash matrix [page-store]" in out
        assert "0 failures" in out
        assert "check passed" in out


class TestQueryStage:
    def test_query_stage_passes(self, capsys):
        assert main(["--query"]) == 0
        out = capsys.readouterr().out
        assert "dual-backend agreement smoke" in out
        assert "check passed" in out

    def test_query_stage_reports_per_seed_rows(self, capsys):
        from repro.tools.check import run_query

        passed, text = run_query(seeds=(7,))
        assert passed
        assert "7" in text
        assert "ok" in text


class TestTelemetryStage:
    def test_telemetry_stage_passes(self, capsys):
        assert main(["--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "telemetry pipeline smoke" in out
        assert "alert fired during serve" in out
        assert "check passed" in out

    def test_smoke_reports_full_alert_lifecycle(self):
        from repro.tools.check import run_telemetry

        passed, text = run_telemetry()
        assert passed
        for check in ("firing visible in health() mid-serve",
                      "alert resolved before serve returned",
                      "store dump byte-identical",
                      "alert timeline identical"):
            assert check in text


class TestBenchCompare:
    def write_baseline(self, tmp_path, metrics):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"experiment": "telemetry", "metrics": metrics}))
        return baseline

    def write_current(self, tmp_path, metrics):
        results = tmp_path / "results"
        results.mkdir(exist_ok=True)
        (results / "BENCH_telemetry.json").write_text(json.dumps(
            {"experiment": "telemetry", "metrics": metrics}))
        return results

    def test_matching_throughput_passes(self, tmp_path):
        from repro.tools.check import run_bench_compare

        baseline = self.write_baseline(
            tmp_path, {"serves_per_second_bare": 10.0})
        results = self.write_current(
            tmp_path, {"serves_per_second_bare": 9.5})
        passed, text = run_bench_compare(str(baseline), results)
        assert passed
        assert "ok" in text

    def test_large_regression_fails(self, tmp_path):
        from repro.tools.check import run_bench_compare

        baseline = self.write_baseline(
            tmp_path, {"serves_per_second_bare": 10.0})
        results = self.write_current(
            tmp_path, {"serves_per_second_bare": 5.0})
        passed, text = run_bench_compare(str(baseline), results)
        assert not passed
        assert "FAIL" in text

    def test_informational_metrics_never_gate(self, tmp_path):
        from repro.tools.check import run_bench_compare

        baseline = self.write_baseline(tmp_path, {"scrapes": 14.0})
        results = self.write_current(tmp_path, {"scrapes": 2.0})
        passed, _ = run_bench_compare(str(baseline), results)
        assert passed

    def test_missing_current_result_fails_gating_metric(self, tmp_path):
        from repro.tools.check import run_bench_compare

        baseline = self.write_baseline(
            tmp_path, {"serves_per_second_bare": 10.0})
        results = tmp_path / "results"
        results.mkdir()
        passed, text = run_bench_compare(str(baseline), results)
        assert not passed

    def test_missing_baseline_fails(self, tmp_path):
        from repro.tools.check import run_bench_compare

        passed, text = run_bench_compare(str(tmp_path / "nope.json"))
        assert not passed
        assert "no baseline" in text


class TestDataflowStage:
    PIN_LEAK = (
        "def leak(pool, page):\n"
        "    pool.pin(page)\n"
        "    pool.use(page)\n"
    )

    def test_dataflow_stage_runs_clean_on_this_repo(self, capsys):
        assert main(["--dataflow"]) == 0
        out = capsys.readouterr().out
        assert "dataflow:repro: 0 finding(s)" in out
        assert "check passed" in out

    def test_list_rules_includes_every_engine(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("MG001", "LN001", "DF001", "DF008"):
            assert rule in out

    def test_rule_ranges_cover_all_engines(self):
        from repro.tools.check import rule_ranges

        ranges = rule_ranges()
        assert "DF001-DF008" in ranges
        assert "MG001-" in ranges and "LN001-" in ranges

    def test_pin_leak_fixture_fails_the_stage(self, tmp_path, capsys):
        (tmp_path / "scratch.py").write_text(self.PIN_LEAK)
        assert main(["--dataflow", "--dataflow-root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "DF001" in out
        assert "check failed: dataflow" in out

    def test_custom_root_passes_when_clean(self, tmp_path, capsys):
        (tmp_path / "fine.py").write_text("def ok():\n    return 1\n")
        assert main(["--dataflow", "--dataflow-root", str(tmp_path)]) == 0
        assert "check passed" in capsys.readouterr().out

    def test_sarif_output_round_trips(self, tmp_path, capsys):
        from repro.analysis.dataflow import validate_sarif

        (tmp_path / "scratch.py").write_text(self.PIN_LEAK)
        sarif_path = tmp_path / "findings.sarif"
        assert main(["--dataflow", "--dataflow-root", str(tmp_path),
                     "--sarif", str(sarif_path)]) == 1
        payload = json.loads(sarif_path.read_text())
        validate_sarif(payload)
        assert payload["runs"][0]["results"][0]["ruleId"] == "DF001"
        assert "SARIF written" in capsys.readouterr().out

    def test_committed_baseline_is_current(self):
        # the shipped baseline must describe the tree as committed: a
        # regeneration produces byte-identical content (and today the
        # tree is clean, so the baseline is empty)
        from repro.analysis.dataflow import (
            DEFAULT_BASELINE,
            baseline_payload,
            check_repo,
        )

        assert DEFAULT_BASELINE.is_file()
        assert baseline_payload(check_repo()) == \
            DEFAULT_BASELINE.read_bytes()

    def test_update_baseline_refuses_custom_roots(self, tmp_path, capsys):
        assert main(["--dataflow", "--dataflow-root", str(tmp_path),
                     "--update-baseline"]) == 1
        assert "only applies to the default root" in \
            capsys.readouterr().out

    def test_update_baseline_writes_deterministic_payload(
            self, tmp_path, monkeypatch, capsys):
        # redirect the committed baseline into tmp and regenerate twice
        import repro.tools.check as check_mod
        from repro.analysis import dataflow

        target = tmp_path / "dataflow_baseline.json"
        monkeypatch.setattr(dataflow, "DEFAULT_BASELINE", target)
        assert check_mod.main(["--dataflow", "--update-baseline"]) == 0
        first = target.read_bytes()
        assert check_mod.main(["--dataflow", "--update-baseline"]) == 0
        assert target.read_bytes() == first
        assert "baseline rewritten" in capsys.readouterr().out
