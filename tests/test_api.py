"""Smoke tests for the public API facade."""

import importlib

import repro.api


class TestFacade:
    def test_all_names_import_cleanly(self):
        module = importlib.import_module("repro.api")
        for name in module.__all__:
            assert getattr(module, name, None) is not None, name

    def test_star_import_exposes_exactly_all(self):
        namespace = {}
        exec("from repro.api import *", namespace)
        exported = {k for k in namespace if not k.startswith("__")}
        assert exported == set(repro.api.__all__)

    def test_no_duplicates_in_all(self):
        assert len(repro.api.__all__) == len(set(repro.api.__all__))

    def test_facade_reexports_identity(self):
        # The facade defines nothing: objects are the originals.
        from repro.engine.player import Player
        from repro.query.database import MediaDatabase

        assert repro.api.Player is Player
        assert repro.api.MediaDatabase is MediaDatabase

    def test_core_surface_present(self):
        for name in ("Rational", "TimedStream", "Interpretation",
                     "Player", "VodServer", "MediaDatabase",
                     "Observability", "FaultPlan", "BlobStore"):
            assert name in repro.api.__all__, name

    def test_errors_namespace_exported(self):
        from repro import errors

        assert repro.api.errors is errors
