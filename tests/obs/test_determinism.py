"""The tentpole guarantee: same-seed faulted runs export identically.

Two full ``VodServer.serve`` runs against the same fault plan, each with
a fresh observability sink, must produce byte-identical JSON-lines
exports — every counter, histogram bucket and span timestamp derives
from simulated or logical time, never the wall clock.
"""

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.engine.recorder import Recorder
from repro.engine.vod import VodServer
from repro.faults import FaultPlan
from repro.media import frames
from repro.media.objects import video_object
from repro.obs import (
    Observability,
    Severity,
    to_chrome_trace,
    to_json_lines,
)


@pytest.fixture(scope="module")
def movie():
    video = video_object(frames.scene(64, 48, 25, "orbit"), "feature")
    return Recorder(MemoryBlob()).record(
        [video], encoders={"feature": JpegLikeCodec(quality=40).encode},
    )


def faulted_run(movie, event_capacity=1024):
    obs = Observability(event_capacity=event_capacity)
    server = VodServer(bandwidth=2_000_000, prefetch_depth=8, obs=obs)
    server.publish("feature", movie)
    plan = FaultPlan(seed=55, transient_rate=0.2, bad_page_rate=0.1,
                     corruption_rate=0.1, degraded_fraction=0.3)
    server.serve([(f"c{i}", "feature") for i in range(3)], fault_plan=plan)
    return obs


def faulted_export(movie):
    return to_json_lines(faulted_run(movie))


def starved_run(movie):
    """A bandwidth-starved, heavily faulted serve: retries, skips and
    SLO violations all occur."""
    obs = Observability()
    server = VodServer(bandwidth=15_000, prefetch_depth=8, obs=obs)
    server.publish("feature", movie)
    plan = FaultPlan(seed=7, transient_rate=0.5, bad_page_rate=0.3,
                     corruption_rate=0.1, degraded_fraction=1.0)
    server.serve([(f"c{i}", "feature") for i in range(3)],
                 enforce_admission=False, fault_plan=plan)
    return obs


class TestDeterminism:
    def test_same_seed_runs_export_byte_identically(self, movie):
        first = faulted_export(movie)
        second = faulted_export(movie)
        assert first == second

    def test_export_actually_captured_faulted_playback(self, movie):
        text = faulted_export(movie)
        assert "faults.injected" in text
        assert "vod.session" in text
        assert "engine.play" in text

    def test_different_seed_diverges(self, movie):
        def export_with_seed(seed):
            obs = Observability()
            server = VodServer(bandwidth=2_000_000, prefetch_depth=8,
                               obs=obs)
            server.publish("feature", movie)
            plan = FaultPlan(seed=seed, transient_rate=0.3,
                             bad_page_rate=0.1)
            server.serve([("c0", "feature")], fault_plan=plan)
            return to_json_lines(obs)

        assert export_with_seed(1) != export_with_seed(2)

    def test_clean_playback_also_deterministic(self, movie):
        def clean_export():
            obs = Observability()
            server = VodServer(bandwidth=2_000_000, prefetch_depth=8,
                               obs=obs)
            server.publish("feature", movie)
            server.serve([("c0", "feature")])
            return to_json_lines(obs)

        assert clean_export() == clean_export()

    def test_cached_runs_export_byte_identically(self):
        """The caching layer honors the contract too: with a buffer
        pool under the page store and a derivation cache on the server,
        hit/miss/eviction metrics replay byte-identically."""
        from repro.blob.blob import PagedBlob
        from repro.blob.pages import MemoryPager, PageStore
        from repro.cache import BufferPool, DerivationCache

        def cached_export():
            obs = Observability()
            pool = BufferPool(32, obs=obs)
            store = PageStore(MemoryPager(page_size=512), checksums=True,
                              buffer_pool=pool, obs=obs)
            title = Recorder(PagedBlob(store)).record(
                [video_object(frames.scene(32, 24, 12, "pan"), "feature")],
            )
            cache = DerivationCache(budget_bytes=1 << 20, obs=obs)
            server = VodServer(bandwidth=2_000_000, prefetch_depth=8,
                               derivation_cache=cache, obs=obs)
            server.publish("feature", title)
            server.prefetch("feature")
            server.serve([("c0", "feature"), ("c1", "feature")])
            server.prefetch("feature")
            return to_json_lines(obs)

        first = cached_export()
        second = cached_export()
        assert first == second
        assert "cache.pool.hits" in first
        assert "vod.prefetch" in first


class TestFlightRecorderDeterminism:
    def test_same_seed_event_logs_identical(self, movie):
        first = faulted_run(movie).events.export()
        second = faulted_run(movie).events.export()
        assert first == second
        assert first  # faults were actually recorded

    def test_chrome_trace_byte_identical(self, movie):
        assert to_chrome_trace(faulted_run(movie)) == \
            to_chrome_trace(faulted_run(movie))

    def test_events_capture_faults_and_slo(self, movie):
        """A starved, heavily-faulted serve records the full event mix:
        retries, skipped elements and SLO violations."""
        recorder = starved_run(movie).events
        names = {e.name for e in recorder.events()}
        assert "read.retry" in names
        assert "element.skipped" in names
        assert "slo.violation" in names

    def test_ring_overflow_keeps_newest(self, movie):
        full = faulted_run(movie).events
        assert full.dropped == 0
        capacity = max(len(full) // 2, 1)
        clipped = faulted_run(movie, event_capacity=capacity).events
        assert len(clipped) == capacity
        assert clipped.dropped == len(full) - capacity
        # The retained window is exactly the tail of the full log.
        assert clipped.export() == full.export()[-capacity:]

    def test_severity_filter_is_ordered(self, movie):
        recorder = starved_run(movie).events
        all_events = recorder.events()
        errors = recorder.events(min_severity=Severity.ERROR)
        assert errors
        assert len(errors) < len(all_events)
        assert all(e.severity >= Severity.ERROR for e in errors)
        # Filtering preserves emission order.
        sequence = [e.seq for e in errors]
        assert sequence == sorted(sequence)
