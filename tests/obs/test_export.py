"""Tests for snapshot exporters."""

import json

from repro.obs import Observability, to_json_lines, to_table
from repro.obs.export import metrics_rows, spans_to_table, to_dict


def populated_obs():
    obs = Observability()
    obs.metrics.counter("blob.page.reads").inc(3)
    obs.metrics.counter("faults.injected").inc(2, kind="transient")
    obs.metrics.gauge("engine.play.buffer_high_water").set(5)
    obs.metrics.histogram("lateness", buckets=(0.1, 1.0)).observe(0.05)
    with obs.tracer.span("engine.retry", attempt=1):
        pass
    return obs


class TestToDict:
    def test_has_metrics_and_spans(self):
        snap = to_dict(populated_obs())
        assert set(snap) == {"metrics", "spans"}
        assert "blob.page.reads" in snap["metrics"]
        assert snap["spans"][0]["name"] == "engine.retry"


class TestJsonLines:
    def test_every_line_is_json(self):
        text = to_json_lines(populated_obs())
        lines = text.splitlines()
        assert len(lines) == 5  # 4 metrics + 1 span
        for line in lines:
            json.loads(line)

    def test_metrics_precede_spans_and_are_sorted(self):
        parsed = [json.loads(l) for l in
                  to_json_lines(populated_obs()).splitlines()]
        metric_names = [p["metric"] for p in parsed if "metric" in p]
        assert metric_names == sorted(metric_names)
        assert "span" in parsed[-1]

    def test_identical_observations_export_identically(self):
        assert to_json_lines(populated_obs()) == to_json_lines(populated_obs())


class TestTables:
    def test_metrics_rows_flatten_series(self):
        rows = metrics_rows(populated_obs())
        by_name = {row[0]: row for row in rows}
        assert by_name["blob.page.reads"][1:] == ("counter", "", "3")
        assert by_name["faults.injected"][2] == "kind=transient"
        assert "count=1" in by_name["lateness"][3]

    def test_to_table_renders_every_metric(self):
        text = to_table(populated_obs(), title="obs")
        assert text.startswith("obs")
        for name in ("blob.page.reads", "faults.injected", "lateness"):
            assert name in text

    def test_spans_table_renders_and_limits(self):
        obs = populated_obs()
        obs.tracer.event("second")
        text = spans_to_table(obs, limit=1)
        assert "engine.retry" in text
        assert "second" not in text
