"""Tests for snapshot exporters."""

import json
from collections import defaultdict

import pytest

from repro.core.rational import Rational
from repro.obs import Observability, Severity, to_json_lines, to_table
from repro.obs.export import (
    events_to_table,
    metrics_rows,
    spans_to_table,
    to_chrome_trace,
    to_dict,
    trace_events,
)


def populated_obs():
    obs = Observability()
    obs.metrics.counter("blob.page.reads").inc(3)
    obs.metrics.counter("faults.injected").inc(2, kind="transient")
    obs.metrics.gauge("engine.play.buffer_high_water").set(5)
    obs.metrics.histogram("lateness", buckets=(0.1, 1.0)).observe(0.05)
    with obs.tracer.span("engine.retry", attempt=1):
        pass
    return obs


class TestToDict:
    def test_has_metrics_and_spans(self):
        snap = to_dict(populated_obs())
        assert set(snap) == {"metrics", "spans", "events"}
        assert "blob.page.reads" in snap["metrics"]
        assert snap["spans"][0]["name"] == "engine.retry"


class TestJsonLines:
    def test_every_line_is_json(self):
        text = to_json_lines(populated_obs())
        lines = text.splitlines()
        assert len(lines) == 5  # 4 metrics + 1 span
        for line in lines:
            json.loads(line)

    def test_metrics_precede_spans_and_are_sorted(self):
        parsed = [json.loads(l) for l in
                  to_json_lines(populated_obs()).splitlines()]
        metric_names = [p["metric"] for p in parsed if "metric" in p]
        assert metric_names == sorted(metric_names)
        assert "span" in parsed[-1]

    def test_identical_observations_export_identically(self):
        assert to_json_lines(populated_obs()) == to_json_lines(populated_obs())


class TestTables:
    def test_metrics_rows_flatten_series(self):
        rows = metrics_rows(populated_obs())
        by_name = {row[0]: row for row in rows}
        assert by_name["blob.page.reads"][1:] == ("counter", "", "3")
        assert by_name["faults.injected"][2] == "kind=transient"
        assert "count=1" in by_name["lateness"][3]

    def test_to_table_renders_every_metric(self):
        text = to_table(populated_obs(), title="obs")
        assert text.startswith("obs")
        for name in ("blob.page.reads", "faults.injected", "lateness"):
            assert name in text

    def test_spans_table_renders_and_limits(self):
        obs = populated_obs()
        obs.tracer.event("second")
        text = spans_to_table(obs, limit=1)
        assert "engine.retry" in text
        assert "second" not in text

    def test_events_table_filters_severity(self):
        obs = populated_obs()
        obs.events.record(Severity.DEBUG, "cache", "evicted")
        obs.events.record(Severity.ERROR, "pager", "fault", page=3)
        text = events_to_table(obs, min_severity=Severity.WARNING)
        assert "fault" in text
        assert "evicted" not in text


@pytest.fixture(scope="module")
def figure5_obs():
    """The figure-5 pipeline — capture, derive, compose, serve — played
    through an instrumented VOD server (two sessions)."""
    from repro.blob import MemoryBlob
    from repro.core.composition import MultimediaObject
    from repro.edit import MediaEditor
    from repro.engine import CostModel, Player, Recorder
    from repro.engine.vod import VodServer
    from repro.media import frames, signals
    from repro.media.objects import audio_object, video_object

    shot1 = video_object(frames.scene(32, 24, 10, "orbit"), "shot1")
    shot2 = video_object(frames.scene(32, 24, 10, "cut"), "shot2")
    tape = Recorder(MemoryBlob()).record(
        [shot1, shot2], interpretation_name="tape1",
    )
    editor = MediaEditor()
    cut1 = editor.cut(shot1, 0, 8, name="cut1")
    cut2 = editor.cut(shot2, 2, 10, name="cut2")
    final = editor.concat(cut1, cut2, name="final")
    movie = MultimediaObject("movie")
    movie.add_temporal(final, at=0, label="picture")
    music = audio_object(signals.sine(330, 0.64, 8000), "music",
                         sample_rate=8000, block_samples=320)
    movie.add_temporal(music, at=0, label="music")

    obs = Observability()
    server = VodServer(bandwidth=8_000_000, obs=obs)
    server.publish("tape1", tape)
    server.serve([("c0", "tape1"), ("c1", "tape1")],
                 enforce_admission=False)
    with obs.tracer.span("edit.render"):  # same-domain nesting
        Player(CostModel(bandwidth=8_000_000), obs=obs).play(movie)
    return obs


class TestChromeTrace:
    def test_document_is_valid_json(self, figure5_obs):
        document = json.loads(to_chrome_trace(figure5_obs))
        assert document["displayTimeUnit"] == "ms"
        assert document["traceEvents"]

    def test_ts_monotonic_per_track(self, figure5_obs):
        by_track = defaultdict(list)
        for row in trace_events(figure5_obs):
            if row["ph"] in ("X", "i"):
                by_track[row["tid"]].append(row["ts"])
        assert by_track
        for stamps in by_track.values():
            assert stamps == sorted(stamps)

    def test_sessions_nest_playback_spans(self, figure5_obs):
        rows = trace_events(figure5_obs)
        sessions = [r for r in rows
                    if r["ph"] == "X" and r["name"] == "vod.session"]
        assert len(sessions) == 2
        session_ids = {r["args"]["span_id"] for r in sessions}
        plays = [r for r in rows
                 if r["ph"] == "X" and r["name"] == "engine.play"]
        assert plays
        assert any(r["args"].get("parent_id") in session_ids
                   for r in plays)

    def test_containers_precede_contents(self, figure5_obs):
        """An enclosing span's row sorts before every same-domain row it
        contains (cross-domain parents live on other tracks)."""
        rows = [r for r in trace_events(figure5_obs) if r["ph"] == "X"]
        index = {r["args"]["span_id"]: i for i, r in enumerate(rows)}
        checked = 0
        for i, row in enumerate(rows):
            parent = row["args"].get("parent_id")
            if parent in index and rows[index[parent]]["cat"] == row["cat"]:
                assert index[parent] < i
                checked += 1
        assert checked > 0

    def test_derivation_expansion_visible(self, figure5_obs):
        names = {r["name"] for r in trace_events(figure5_obs)}
        assert "engine.expand" in names

    def test_track_metadata_names_every_tid(self, figure5_obs):
        rows = trace_events(figure5_obs)
        named = {r["tid"] for r in rows
                 if r["ph"] == "M" and r["name"] == "thread_name"}
        used = {r["tid"] for r in rows if r["ph"] != "M"}
        assert used <= named

    def test_instant_events_appear_with_severity_category(self):
        obs = Observability()
        obs.events.record(Severity.ERROR, "pager", "fault",
                          at=Rational(1, 2), page=9)
        (meta, row) = trace_events(obs)
        assert meta["ph"] == "M"
        assert row["ph"] == "i"
        assert row["cat"] == "ERROR"
        assert row["ts"] == 500_000.0
        assert row["args"]["page"] == 9


@pytest.fixture(scope="module")
def fleet_obs():
    """A three-shard fleet serving four correlated sessions."""
    from repro.blob import MemoryBlob
    from repro.codecs.jpeg_like import JpegLikeCodec
    from repro.engine import Recorder
    from repro.engine.fleet import Fleet
    from repro.engine.vod import SessionRequest
    from repro.media import frames
    from repro.media.objects import video_object

    def title(name):
        video = video_object(frames.scene(32, 24, 8, "orbit"), name)
        return Recorder(MemoryBlob()).record(
            [video], encoders={name: JpegLikeCodec(quality=40).encode},
        )

    obs = Observability()
    fleet = Fleet(bandwidth=2_000_000, shards=3, obs=obs)
    fleet.publish("feature", title("feature"))
    fleet.publish("short", title("short"))
    fleet.serve([
        SessionRequest(client=f"client-{i}", title=name)
        for i, name in enumerate(["feature", "short", "feature", "short"])
    ])
    return obs


class TestFleetChromeTrace:
    def test_one_track_per_session(self, fleet_obs):
        document = json.loads(to_chrome_trace(fleet_obs))
        labels = [row["args"]["name"] for row in document["traceEvents"]
                  if row["ph"] == "M"]
        trace_tracks = [l for l in labels if l.startswith("trace:")]
        # four sessions, four distinct correlation tracks
        assert len(trace_tracks) == len(set(trace_tracks)) == 4

    def test_session_spans_share_their_trace_track(self, fleet_obs):
        document = json.loads(to_chrome_trace(fleet_obs))
        rows = [r for r in document["traceEvents"] if r["ph"] != "M"]
        by_trace = {}
        for row in rows:
            trace_id = row.get("args", {}).get("trace_id")
            if trace_id is not None:
                by_trace.setdefault(trace_id, set()).add(row["tid"])
        assert len(by_trace) == 4
        for tids in by_trace.values():
            assert len(tids) == 1

    def test_track_assignment_is_deterministic(self, fleet_obs):
        assert to_chrome_trace(fleet_obs) == to_chrome_trace(fleet_obs)
