"""Tests for instrumentation wiring across the stack."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.blob.pages import MemoryPager, PageStore
from repro.blob.store import BlobStore
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.core.derivation import (
    Derivation,
    DerivationCategory,
    DerivationObject,
)
from repro.core.media_types import MediaKind
from repro.engine.recorder import Recorder
from repro.errors import BlobCorruptionError, ObservabilityError
from repro.faults import FaultPlan, FaultyPager
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object
from repro.obs import NULL_OBS, Instrumented, Observability, Severity
from repro.query.database import MediaDatabase


@pytest.fixture
def obs():
    return Observability()


class TestInstrumentedMixin:
    def test_defaults_to_null_sink(self):
        class Thing(Instrumented):
            pass

        thing = Thing()
        assert thing.obs is NULL_OBS
        assert not thing.obs.enabled
        # hooks on the null sink are inert and record nothing
        thing.obs.metrics.counter("x").inc()
        assert thing.obs.metrics.snapshot() == {}

    def test_instrument_attaches_and_detaches(self, obs):
        class Thing(Instrumented):
            pass

        thing = Thing()
        assert thing.instrument(obs) is thing
        assert thing.obs is obs
        thing.instrument(None)
        assert thing.obs is NULL_OBS

    def test_children_hook_propagates(self, obs):
        class Child(Instrumented):
            pass

        class Parent(Instrumented):
            def __init__(self):
                self.child = Child()

            def _instrument_children(self, obs):
                self.child.instrument(obs)

        parent = Parent()
        parent.instrument(obs)
        assert parent.child.obs is obs


class TestPageStoreMetrics:
    def test_counts_reads_writes_and_checksums(self, obs):
        store = PageStore(MemoryPager(page_size=64), checksums=True, obs=obs)
        page = store.allocate()
        store.write(page, b"x" * 64)
        store.read(page)
        metrics = obs.metrics
        assert metrics.counter("blob.page.writes").value() == 1
        assert metrics.counter("blob.page.bytes_written").value() == 64
        assert metrics.counter("blob.page.reads").value() == 1
        assert metrics.counter("blob.page.bytes_read").value() == 64
        assert metrics.counter("blob.page.checksum_verifications").value() == 1
        assert metrics.counter("blob.page.checksum_failures").value() == 0

    def test_allocation_sources_labeled(self, obs):
        store = PageStore(MemoryPager(page_size=64), obs=obs)
        first = store.allocate()
        store.free(first)
        store.allocate()  # reuses the freed page
        allocations = obs.metrics.counter("blob.page.allocations")
        assert allocations.value(source="grow") == 1
        assert allocations.value(source="reuse") == 1
        assert obs.metrics.counter("blob.page.frees").value() == 1

    def test_checksum_failure_counted_before_raise(self, obs):
        store = PageStore(MemoryPager(page_size=64), checksums=True, obs=obs)
        page = store.allocate()
        store.write(page, b"x" * 64)
        store.pager.write_page(page, b"y" * 64)  # corrupt behind the store
        with pytest.raises(BlobCorruptionError):
            store.read(page)
        assert obs.metrics.counter("blob.page.checksum_failures").value() == 1


class TestBlobStoreMetrics:
    def test_creates_deletes_and_blob_gauge(self, obs):
        store = BlobStore(obs=obs)
        store.create("a")
        store.create("b")
        store.delete("a")
        assert obs.metrics.counter("blob.store.creates").value() == 2
        assert obs.metrics.counter("blob.store.deletes").value() == 1
        assert obs.metrics.gauge("blob.store.blobs").value() == 1

    def test_sink_propagates_to_page_store(self, obs):
        store = BlobStore(obs=obs)
        assert store.pages.obs is obs


class TestFaultyPagerMetrics:
    def test_injections_counted_by_kind(self, obs):
        pager = MemoryPager(page_size=64)
        store = PageStore(pager)
        pages = [store.allocate() for _ in range(40)]
        for page in pages:
            store.write(page, b"x" * 64)
        plan = FaultPlan(seed=7, page_size=64, transient_rate=0.5)
        faulty = FaultyPager(pager, plan, obs=obs)
        for page in pages:
            try:
                faulty.read_page(page)
            except Exception:
                pass
        injected = obs.metrics.counter("faults.injected")
        reads = obs.metrics.counter("faults.pager.reads")
        assert reads.value() == len(pages)
        assert injected.value(kind="transient") > 0
        assert injected.value(kind="transient") == faulty.fault_counts["transient"]

    def test_wrapping_in_page_store_propagates_sink(self, obs):
        pager = MemoryPager(page_size=64)
        plan = FaultPlan(seed=7, page_size=64)
        faulty = FaultyPager(pager, plan)
        store = PageStore(faulty, obs=obs)
        assert faulty.obs is obs
        assert store.obs is obs


class TestInterpretationMetrics:
    @pytest.fixture
    def movie(self):
        video = video_object(frames.scene(32, 24, 6, "orbit"), "video1")
        audio = audio_object(signals.sine(440, 0.2, 8000), "audio1",
                             sample_rate=8000)
        return Recorder(MemoryBlob()).record(
            [video, audio],
            encoders={"video1": JpegLikeCodec(quality=40).encode},
        )

    def test_materialize_counts_and_traces(self, movie, obs):
        movie.instrument(obs)
        movie.materialize("video1")
        materializations = obs.metrics.counter(
            "core.interpretation.materializations"
        )
        assert materializations.value(sequence="video1") == 1
        assert obs.metrics.counter(
            "core.interpretation.bytes_read"
        ).value() > 0
        (span,) = obs.tracer.named("core.materialize")
        assert span.attributes["sequence"] == "video1"
        assert span.attributes["elements"] == 6

    def test_element_reads_counted(self, movie, obs):
        movie.instrument(obs)
        movie.read_element("audio1", 0)
        reads = obs.metrics.counter("core.interpretation.element_reads")
        assert reads.value(sequence="audio1") == 1


class TestDerivedObjectMetrics:
    @pytest.fixture
    def derived(self):
        source = video_object(frames.scene(32, 24, 6, "orbit"), "src")
        identity = Derivation(
            name="identity",
            category=DerivationCategory.CHANGE_OF_CONTENT,
            input_kinds=(MediaKind.VIDEO,),
            result_kind=MediaKind.VIDEO,
            expand=lambda inputs, params: inputs[0],
            describe=lambda inputs, params: (inputs[0].media_type,
                                             inputs[0].descriptor),
        )
        return DerivationObject(identity, [source], {}).derive("derived")

    def test_expansion_counted_and_traced(self, derived, obs):
        derived.instrument(obs)
        derived.expand()
        expansions = obs.metrics.counter("core.derivation.expansions")
        assert expansions.value(derivation="identity") == 1
        assert len(obs.tracer.named("core.expand")) == 1

    def test_materialization_then_cache_hits(self, derived, obs):
        derived.instrument(obs)
        derived.materialize()
        derived.stream()  # served from the cached expansion
        metrics = obs.metrics
        assert metrics.counter("core.derivation.materializations").value(
            derivation="identity"
        ) == 1
        assert metrics.counter("core.derivation.cache_hits").value(
            derivation="identity"
        ) == 1

    def test_unmaterialized_access_expands_each_time(self, derived, obs):
        derived.instrument(obs)
        derived.stream()
        derived.stream()
        expansions = obs.metrics.counter("core.derivation.expansions")
        assert expansions.value(derivation="identity") == 2


class TestDatabaseMetrics:
    def test_catalog_lookups_and_misses(self, obs):
        db = MediaDatabase(obs=obs)
        video = video_object(frames.scene(32, 24, 4, "orbit"), "clip")
        db.add_object(video, title="Clip")
        db.get_object("clip")
        with pytest.raises(Exception):
            db.get_object("missing")
        assert obs.metrics.counter("query.catalog.lookups").value() == 2
        assert obs.metrics.counter("query.catalog.misses").value() == 1

    def test_objects_query_selectivity(self, obs):
        db = MediaDatabase(obs=obs)
        for i in range(4):
            clip = video_object(frames.scene(32, 24, 2, "orbit"), f"clip{i}")
            db.add_object(clip, topic="news" if i % 2 else "sport")
        db.objects(topic="news")
        assert obs.metrics.counter("query.objects.calls").value() == 1
        assert obs.metrics.counter("query.objects.candidates").value() == 4
        assert obs.metrics.counter("query.objects.matches").value() == 2
        (span,) = obs.tracer.named("query.objects")
        assert span.attributes["candidates"] == 4
        assert span.attributes["matches"] == 2

    def test_sink_propagates_to_blob_store_and_interpretations(self, obs):
        db = MediaDatabase(obs=obs)
        assert db.blobs.obs is obs
        video = video_object(frames.scene(32, 24, 4, "orbit"), "video1")
        movie = Recorder(MemoryBlob()).record([video])
        db.add_interpretation(movie)
        assert movie.obs is obs


class TestScopedViews:
    def test_scoped_metrics_prefix_names(self, obs):
        shard = obs.scoped("shard0")
        shard.metrics.counter("engine.play.underruns").inc(3)
        assert obs.metrics.get("shard0.engine.play.underruns").total() == 3
        assert shard.metrics.names() == ["shard0.engine.play.underruns"]

    def test_duplicate_scope_prefix_rejected(self, obs):
        obs.scoped("shard0")
        with pytest.raises(ObservabilityError, match="already claimed"):
            obs.scoped("shard0")

    def test_nested_scoping_composes_flat_prefix(self, obs):
        inner = obs.scoped("fleet").scoped("shard1")
        assert inner.scope == "fleet.shard1"
        inner.metrics.counter("reads").inc()
        assert "fleet.shard1.reads" in obs.metrics.names()

    def test_nested_collision_caught_against_flat_namespace(self, obs):
        obs.scoped("fleet").scoped("shard1")
        with pytest.raises(ObservabilityError, match="already claimed"):
            obs.scoped("fleet.shard1")

    def test_scoped_spans_and_events_tagged(self, obs):
        shard = obs.scoped("shard2")
        with shard.tracer.span("serve"):
            pass
        shard.events.record(Severity.INFO, "engine", "start", at=0)
        (span,) = obs.tracer.spans
        (event,) = obs.events.events()
        assert span.attributes["scope"] == "shard2"
        assert event.attributes["scope"] == "shard2"
