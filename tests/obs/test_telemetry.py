"""Tests for the clock-driven telemetry pipeline.

Store rollups (delta / rate / windowed quantile via bucket merges),
burn-rate rules, the alert state machine, the scraper's kernel
integration, the mid-serve health degradation, and the byte-identity
contract of :meth:`TelemetryStore.dump`.
"""

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.core.rational import Rational
from repro.engine.kernel import EventLoop
from repro.engine.recorder import Recorder
from repro.engine.vod import SessionRequest, VodServer
from repro.errors import ObservabilityError
from repro.media import frames
from repro.media.objects import video_object
from repro.obs import Observability, Severity
from repro.obs.slo import Slo, default_slo_policy
from repro.obs.telemetry import (
    AlertManager,
    BurnRateRule,
    Telemetry,
    TelemetryStore,
    default_burn_rate_rules,
)


def counter_snapshot(name, value, **labels):
    series = {"value": value}
    if labels:
        series["labels"] = labels
    return {name: {"type": "counter", "series": [series]}}


def scrape_counter(store, values, name="hits", source="srv", step=1):
    """Record one counter series at t = step, 2*step, ..."""
    for tick, value in enumerate(values, start=1):
        store.record_scrape(source, Rational(tick * step),
                            counter_snapshot(name, value))


class TestStoreRollups:
    def test_delta_over_trailing_window(self):
        store = TelemetryStore()
        scrape_counter(store, [0, 10, 25, 45])
        assert store.delta("hits", window=2) == 45 - 10
        assert store.delta("hits", window=3) == 45 - 0
        assert store.rate("hits", window=2) == (45 - 10) / 2.0

    def test_series_born_inside_window_counts_from_zero(self):
        store = TelemetryStore()
        store.record_scrape("srv", Rational(10),
                            counter_snapshot("hits", 7))
        assert store.delta("hits", window=1, at=Rational(10)) == 7

    def test_delta_at_a_past_time_uses_only_older_samples(self):
        store = TelemetryStore()
        scrape_counter(store, [0, 10, 25, 45])
        # time travel: at t=3 the newest reading is 25
        assert store.delta("hits", window=2, at=Rational(3)) == 25 - 0

    def test_suffix_match_covers_shard_prefixes(self):
        store = TelemetryStore()
        store.record_scrape("shard0", Rational(1), counter_snapshot(
            "shard0.engine.play.underruns", 4))
        store.record_scrape("shard1", Rational(1), counter_snapshot(
            "shard1.engine.play.underruns", 2))
        assert store.delta("engine.play.underruns", window=1,
                           at=Rational(1)) == 6
        assert store.delta("engine.play.underruns", window=1,
                           at=Rational(1), source="shard1") == 2

    def test_delta_field_and_window_validation(self):
        store = TelemetryStore()
        with pytest.raises(ObservabilityError):
            store.delta("hits", window=1, field="bogus")
        scrape_counter(store, [1])
        with pytest.raises(ObservabilityError):
            store.delta("hits", window=0)

    def test_empty_store_rolls_up_to_zero(self):
        store = TelemetryStore()
        assert store.delta("hits", window=1) == 0.0
        assert store.quantile("lat", 0.5, window=1) == 0.0
        assert store.latest_time() is None

    def test_metric_kinds_and_census(self):
        store = TelemetryStore()
        scrape_counter(store, [1])
        assert store.metrics() == ["hits"]
        assert store.metric_kinds() == {"hits": "counter"}
        assert store.sources() == ["srv"]
        assert store.scrape_count == 1


def hist_snapshot(name, counts, total, buckets=(0.1, 1.0)):
    return {name: {"type": "histogram", "series": [{"value": {
        "buckets": list(buckets), "counts": list(counts),
        "count": sum(counts), "sum": total,
    }}]}}


class TestStoreQuantile:
    def test_windowed_quantile_merges_bucket_deltas(self):
        store = TelemetryStore()
        store.record_scrape("srv", Rational(1),
                            hist_snapshot("lat", [5, 0, 0], 0.1))
        # window (1, 2]: 10 new observations, all in the second bucket
        store.record_scrape("srv", Rational(2),
                            hist_snapshot("lat", [5, 10, 0], 4.0))
        q = store.quantile("lat", 0.5, window=1, at=Rational(2))
        assert 0.1 < q <= 1.0
        # the whole history includes the 5 fast observations
        q_all = store.quantile("lat", 0.25, window=2, at=Rational(2))
        assert q_all <= 0.1

    def test_overflow_ranks_clamp_to_last_boundary(self):
        store = TelemetryStore()
        store.record_scrape("srv", Rational(1),
                            hist_snapshot("lat", [0, 0, 0], 0.0))
        store.record_scrape("srv", Rational(2),
                            hist_snapshot("lat", [0, 0, 9], 90.0))
        assert store.quantile("lat", 0.99, window=1, at=Rational(2)) == 1.0

    def test_quantile_bounds_validation(self):
        store = TelemetryStore()
        with pytest.raises(ObservabilityError):
            store.quantile("lat", 1.5, window=1)


class TestDump:
    def test_dump_is_byte_identical_for_identical_writes(self):
        def build():
            store = TelemetryStore()
            scrape_counter(store, [0, 3, 9])
            store.record_scrape("srv", Rational(4),
                                hist_snapshot("lat", [1, 2, 3], 5.5))
            store.record_alert("r", "srv", "pending", Rational(4), 2.0, 1.0)
            return store
        assert build().dump() == build().dump()

    def test_dump_carries_exact_timestamps(self):
        store = TelemetryStore()
        store.record_scrape("srv", Rational(1, 3), counter_snapshot("c", 1))
        assert '"at": "1/3"' in store.dump()

    def test_alert_rows_in_transition_order(self):
        store = TelemetryStore()
        store.record_alert("r", "srv", "pending", Rational(1), 2.0, 0.5)
        store.record_alert("r", "srv", "firing", Rational(2), 3.0, 2.0)
        states = [row["state"] for row in store.alert_rows()]
        assert states == ["pending", "firing"]


class TestBurnRateRule:
    def test_window_and_threshold_validation(self):
        slo = Slo(name="x", measurement="deadline_miss_rate", threshold=0.1)
        with pytest.raises(ObservabilityError):
            BurnRateRule(name="r", slo=slo, numerator="m",
                         short_window=4, long_window=1)
        with pytest.raises(ObservabilityError):
            BurnRateRule(name="r", slo=slo, numerator="m",
                         short_window=0)
        with pytest.raises(ObservabilityError):
            BurnRateRule(name="r", slo=slo, numerator="m",
                         burn_threshold=0.0)

    def test_measured_ratio_and_per_second(self):
        store = TelemetryStore()
        for tick, (err, total) in enumerate([(0, 0), (5, 50)], start=1):
            snap = {}
            snap.update(counter_snapshot("errors", err))
            snap.update(counter_snapshot("requests", total))
            store.record_scrape("srv", Rational(tick), snap)
        slo = Slo(name="x", measurement="deadline_miss_rate", threshold=0.05)
        ratio_rule = BurnRateRule(name="ratio", slo=slo, numerator="errors",
                                  denominator="requests")
        assert ratio_rule.measured(store, "srv", Rational(2), 1) == 0.1
        rate_rule = BurnRateRule(name="rate", slo=slo, numerator="errors")
        assert rate_rule.measured(store, "srv", Rational(2), 1) == 5.0

    def test_default_rules_cover_windowable_slos(self):
        names = {rule.name for rule in default_burn_rate_rules()}
        assert names == {"deadline-miss-burn", "rebuffer-burn"}
        for rule in default_burn_rate_rules(default_slo_policy()):
            assert rule.short_window < rule.long_window


class TestAlertLifecycle:
    def make_manager(self, store):
        slo = Slo(name="err", measurement="deadline_miss_rate",
                  threshold=0.05)
        rule = BurnRateRule(name="err-burn", slo=slo, numerator="errors",
                            denominator="requests",
                            short_window=Rational(1), long_window=Rational(2))
        return AlertManager((rule,), store)

    def feed(self, store, tick, errors, requests):
        snap = {}
        snap.update(counter_snapshot("errors", errors))
        snap.update(counter_snapshot("requests", requests))
        store.record_scrape("srv", Rational(tick), snap)

    def test_pending_firing_resolved(self):
        store = TelemetryStore()
        manager = self.make_manager(store)

        self.feed(store, 1, 0, 100)
        assert manager.evaluate("srv", Rational(1)) == []

        # hot short window only -> pending
        self.feed(store, 2, 50, 200)
        (alert,) = manager.evaluate("srv", Rational(2))
        assert alert.state == "pending"

        # both windows hot -> firing
        self.feed(store, 3, 120, 300)
        (alert,) = manager.evaluate("srv", Rational(3))
        assert alert.state == "firing"
        assert manager.firing() == [alert]

        # short window cools -> resolved
        self.feed(store, 4, 120, 400)
        (alert,) = manager.evaluate("srv", Rational(4))
        assert alert.state == "resolved"
        assert manager.active() == []
        states = [row["state"] for row in store.alert_rows()]
        assert states == ["pending", "firing", "resolved"]
        assert [s for s, _ in alert.transitions] == states

    def test_pending_cancels_when_short_cools(self):
        store = TelemetryStore()
        manager = self.make_manager(store)
        self.feed(store, 1, 0, 100)
        manager.evaluate("srv", Rational(1))
        self.feed(store, 2, 50, 200)
        (alert,) = manager.evaluate("srv", Rational(2))
        assert alert.state == "pending"
        self.feed(store, 3, 50, 300)
        (alert,) = manager.evaluate("srv", Rational(3))
        assert alert.state == "inactive"

    def test_transitions_recorded_as_events_and_counter(self):
        store = TelemetryStore()
        manager = self.make_manager(store)
        obs = Observability()
        self.feed(store, 1, 0, 100)
        manager.evaluate("srv", Rational(1), events=obs.events,
                         metrics=obs.metrics)
        self.feed(store, 2, 50, 200)
        manager.evaluate("srv", Rational(2), events=obs.events,
                         metrics=obs.metrics)
        (event,) = obs.events.events()
        assert event.name == "alert.pending"
        assert event.severity is Severity.WARNING
        assert event.at == Rational(2)
        counter = obs.metrics.get("telemetry.alert.transitions")
        assert counter.total() == 1

    def test_duplicate_rule_names_rejected(self):
        store = TelemetryStore()
        slo = Slo(name="x", measurement="deadline_miss_rate", threshold=1.0)
        rule = BurnRateRule(name="dup", slo=slo, numerator="m")
        with pytest.raises(ObservabilityError):
            AlertManager((rule, rule), store)


class TestScraperKernel:
    def test_scraper_samples_on_interval_and_stops_with_loop(self):
        obs = Observability()
        obs.metrics.counter("work.items")
        loop = EventLoop()

        def work(step):
            obs.metrics.counter("work.items").inc()
            if step < 8:
                loop.after(Rational(1, 4), work, step + 1)

        telemetry = Telemetry(interval=Rational(1, 2), rules=())
        loop.after(Rational(0), work, 0)
        telemetry.attach(loop, obs, "job")
        loop.run()
        # work spans [0, 2]; scrapes land at 1/2, 1, 3/2, 2 and one
        # trailing scrape at 5/2 (the t=2 scrape still sees the final
        # work event pending) — after which the timer stops for good
        assert telemetry.store.scrape_count == 5
        assert telemetry.store.latest_time() == Rational(5, 2)
        assert loop.pending == 0

    def test_scrape_interval_validation(self):
        with pytest.raises(ObservabilityError):
            Telemetry(interval=0)

    def test_overflow_counter_mirrors_histogram_saturation(self):
        obs = Observability()
        hist = obs.metrics.histogram("lat", buckets=(0.1, 1.0))
        hist.observe(50.0)
        hist.observe(60.0)
        telemetry = Telemetry(rules=())
        telemetry.sample(obs, "srv", at=Rational(1))
        counter = obs.metrics.get("telemetry.histogram.overflow")
        assert counter.value(metric="lat") == 2
        # no double counting on the next sample
        telemetry.sample(obs, "srv", at=Rational(2))
        assert obs.metrics.get(
            "telemetry.histogram.overflow").value(metric="lat") == 2


def make_movie():
    video = video_object(frames.scene(48, 36, 20, "orbit"), "feature")
    return Recorder(MemoryBlob()).record(
        [video], encoders={"feature": JpegLikeCodec(quality=40).encode},
    )


def overloaded_serve(movie, telemetry):
    server = VodServer(21_000, obs=Observability(), telemetry=telemetry)
    server.publish("feature", movie)
    server.serve(
        [SessionRequest(client=f"client-{i}", title="feature",
                        arrival_time=Rational(i, 8)) for i in range(6)],
        enforce_admission=False,
    )
    return server


@pytest.fixture(scope="module")
def movie():
    return make_movie()


class TestServeIntegration:
    def test_alert_fires_and_resolves_during_serve(self, movie):
        telemetry = Telemetry()
        mid_serve = []
        server_box = []

        def observe(alert, at):
            health = server_box[0].health()
            mid_serve.append((alert.name, alert.state, health.status,
                              tuple(a["name"] for a in
                                    health.firing_alerts)))

        telemetry.alerts.on_transition = observe
        server = VodServer(21_000, obs=Observability(),
                           telemetry=telemetry)
        server_box.append(server)
        server.publish("feature", movie)
        server.serve(
            [SessionRequest(client=f"client-{i}", title="feature",
                            arrival_time=Rational(i, 8))
             for i in range(6)],
            enforce_admission=False,
        )
        states = [state for _, state, _, _ in mid_serve]
        assert "pending" in states and "firing" in states \
            and "resolved" in states
        # while firing, health() already reports it and degrades
        firing_rows = [row for row in mid_serve if row[1] == "firing"]
        assert firing_rows
        for name, _, status, firing_names in firing_rows:
            assert status != "ok"
            assert name in firing_names
        # after the serve the alerts have cooled: health keeps the
        # resolved alerts visible but none firing
        health = server.health()
        assert health.firing_alerts == ()
        assert {a["state"] for a in health.alerts} == {"resolved"}

    def test_same_seed_serves_dump_byte_identically(self, movie):
        first = Telemetry()
        overloaded_serve(movie, first)
        second = Telemetry()
        overloaded_serve(movie, second)
        assert first.store.dump() == second.store.dump()
        assert first.store.alert_rows() == second.store.alert_rows()

    def test_underrun_series_has_a_time_axis(self, movie):
        telemetry = Telemetry()
        overloaded_serve(movie, telemetry)
        series = telemetry.store.series("engine.play.underruns")
        (samples,) = series.values()
        values = [v for _, v in samples]
        assert values[-1] > 0
        assert values[0] < values[-1]  # accrued over the run, not at once
