"""Flight recorder: ring semantics, severity, timestamps, export."""

import pytest

from repro.core.rational import Rational
from repro.errors import ObservabilityError
from repro.obs import FlightRecorder, Observability, Severity
from repro.obs.events import events_rows


class TestSeverity:
    def test_ordering(self):
        assert Severity.DEBUG < Severity.INFO < Severity.WARNING \
            < Severity.ERROR < Severity.CRITICAL

    def test_coerce_accepts_member_int_and_name(self):
        assert Severity.coerce(Severity.ERROR) is Severity.ERROR
        assert Severity.coerce(40) is Severity.ERROR
        assert Severity.coerce("error") is Severity.ERROR
        assert Severity.coerce("CRITICAL") is Severity.CRITICAL

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ObservabilityError, match="unknown severity"):
            Severity.coerce("loud")


class TestRecord:
    def test_sequence_numbers_are_emission_order(self):
        recorder = FlightRecorder()
        for i in range(5):
            event = recorder.record(Severity.INFO, "c", "tick", n=i)
            assert event.seq == i

    def test_default_timestamps_tick_logically(self):
        recorder = FlightRecorder()
        first = recorder.record(Severity.INFO, "c", "a")
        second = recorder.record(Severity.INFO, "c", "b")
        assert isinstance(first.at, int)
        assert second.at == first.at + 1

    def test_explicit_clock_supplies_timestamps(self):
        ticks = iter([Rational(1, 2), Rational(3, 4)])
        recorder = FlightRecorder(clock=lambda: next(ticks))
        assert recorder.record(Severity.INFO, "c", "a").at == Rational(1, 2)
        assert recorder.record(Severity.INFO, "c", "b").at == Rational(3, 4)

    def test_explicit_at_wins_over_clock(self):
        recorder = FlightRecorder(clock=lambda: 99)
        event = recorder.record(Severity.INFO, "c", "a", at=Rational(7))
        assert event.at == Rational(7)

    def test_attributes_preserved(self):
        recorder = FlightRecorder()
        event = recorder.record(Severity.WARNING, "cache", "evicted",
                                page=3, reason="full")
        assert event.attributes == {"page": 3, "reason": "full"}


class TestRing:
    def test_overflow_drops_oldest_keeps_newest(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder.record(Severity.INFO, "c", "tick", n=i)
        kept = [e.attributes["n"] for e in recorder.events()]
        assert kept == [7, 8, 9]
        assert recorder.dropped == 7
        assert len(recorder) == 3

    def test_seq_survives_drops(self):
        recorder = FlightRecorder(capacity=2)
        for _ in range(5):
            recorder.record(Severity.INFO, "c", "tick")
        assert [e.seq for e in recorder.events()] == [3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ObservabilityError, match="capacity"):
            FlightRecorder(capacity=0)


class TestFilters:
    def build(self):
        recorder = FlightRecorder()
        recorder.record(Severity.DEBUG, "cache", "evicted")
        recorder.record(Severity.WARNING, "pager", "fault")
        recorder.record(Severity.ERROR, "pager", "fault")
        recorder.record(Severity.CRITICAL, "player", "abort")
        return recorder

    def test_min_severity(self):
        recorder = self.build()
        assert len(recorder.events(min_severity=Severity.WARNING)) == 3
        assert len(recorder.events(min_severity="error")) == 2

    def test_component_and_name(self):
        recorder = self.build()
        assert len(recorder.events(component="pager")) == 2
        assert len(recorder.events(name="fault")) == 2
        assert len(recorder.events(component="pager",
                                   min_severity=Severity.ERROR)) == 1

    def test_recent_returns_newest(self):
        recorder = self.build()
        recent = recorder.recent(2)
        assert [e.name for e in recent] == ["fault", "abort"]
        assert recorder.recent(0) == []


class TestExport:
    def test_export_shape_and_key_order(self):
        recorder = FlightRecorder()
        recorder.record(Severity.ERROR, "pager", "fault",
                        page=1, at=Rational(1, 4))
        (row,) = recorder.export()
        assert row == {
            "seq": 0,
            "at": "1/4",
            "severity": "ERROR",
            "component": "pager",
            "name": "fault",
            "attributes": {"page": 1},
        }

    def test_events_rows_flatten_attributes_sorted(self):
        recorder = FlightRecorder()
        recorder.record(Severity.INFO, "c", "e", zeta=1, alpha=2)
        (row,) = events_rows(recorder.events())
        assert row[5] == "alpha=2,zeta=1"


class TestObservabilityIntegration:
    def test_snapshot_includes_events(self):
        obs = Observability()
        obs.events.record(Severity.INFO, "c", "hello")
        snap = obs.snapshot()
        assert [e["name"] for e in snap["events"]] == ["hello"]

    def test_event_capacity_configurable(self):
        obs = Observability(event_capacity=4)
        assert obs.events.capacity == 4

    def test_null_observability_swallows_events(self):
        from repro.obs import NULL_OBS

        NULL_OBS.events.record(Severity.CRITICAL, "c", "ignored")
        assert NULL_OBS.events.events() == []
        assert NULL_OBS.events.recent(5) == []
        assert NULL_OBS.events.export() == []
