"""Tests for the deterministic span tracer."""

from repro.core.rational import Rational
from repro.obs import LogicalClock, Tracer


class TestLogicalClock:
    def test_ticks_monotonically(self):
        clock = LogicalClock()
        assert clock.now() == 0
        assert clock.tick() == 1
        assert clock.tick() == 2
        assert clock.now() == 2


class TestTracer:
    def test_span_uses_logical_ticks_by_default(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        (span,) = tracer.spans
        assert span.start == 1
        assert span.end == 2

    def test_nesting_links_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        # ids are assigned in creation order
        assert [s.span_id for s in tracer.spans] == [0, 1]

    def test_span_attributes_settable_mid_flight(self):
        tracer = Tracer()
        with tracer.span("work", phase="setup") as span:
            span.set(bytes=100)
        assert span.attributes == {"phase": "setup", "bytes": 100}

    def test_record_takes_explicit_simulated_times(self):
        tracer = Tracer()
        span = tracer.record("engine.play", Rational(0), Rational(3, 2),
                             mode="clean")
        assert span.start == Rational(0)
        assert span.end == Rational(3, 2)
        # explicit timestamps must not advance the logical clock
        with tracer.span("next") as nxt:
            pass
        assert nxt.start == 1

    def test_event_is_zero_length(self):
        tracer = Tracer()
        span = tracer.event("glitch", at=Rational(5))
        assert span.start == span.end == Rational(5)

    def test_named_filters(self):
        tracer = Tracer()
        tracer.event("a")
        tracer.event("b")
        tracer.event("a")
        assert len(tracer.named("a")) == 2
        assert len(tracer) == 3

    def test_custom_clock_source(self):
        times = iter([10, 20])
        tracer = Tracer(clock=lambda: next(times))
        with tracer.span("timed") as span:
            pass
        assert (span.start, span.end) == (10, 20)

    def test_export_sorts_attribute_keys(self):
        tracer = Tracer()
        tracer.event("e", at=0, zebra=1, apple=2)
        (exported,) = tracer.export()
        assert list(exported["attributes"]) == ["apple", "zebra"]
        assert exported["start"] == 0

    def test_export_stringifies_rational_times(self):
        tracer = Tracer()
        tracer.record("r", Rational(1, 3), Rational(2, 3))
        (exported,) = tracer.export()
        assert exported["start"] == str(Rational(1, 3))
        assert exported["end"] == str(Rational(2, 3))
