"""SLO declarations, burn-rate arithmetic and policy evaluation."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.engine.player import CostModel, Player
from repro.engine.recorder import Recorder
from repro.errors import ObservabilityError
from repro.media import frames
from repro.media.objects import video_object
from repro.obs import (
    Severity,
    Slo,
    SloPolicy,
    default_slo_policy,
    report_measurements,
    worst_verdicts,
)


class TestSloValidation:
    def test_unknown_measurement_rejected(self):
        with pytest.raises(ObservabilityError, match="unknown measurement"):
            Slo(name="x", measurement="cpu_seconds", threshold=1.0)

    def test_objective_direction_validated(self):
        with pytest.raises(ObservabilityError, match="objective"):
            Slo(name="x", measurement="startup_seconds", threshold=1.0,
                objective="exactly")

    def test_burn_bounds_validated(self):
        with pytest.raises(ObservabilityError, match="warn_burn"):
            Slo(name="x", measurement="startup_seconds", threshold=1.0,
                warn_burn=1.5)
        with pytest.raises(ObservabilityError, match="critical_burn"):
            Slo(name="x", measurement="startup_seconds", threshold=1.0,
                critical_burn=0.5)


class TestBurnAndVerdicts:
    def slo(self, **overrides):
        base = dict(name="startup", measurement="startup_seconds",
                    threshold=2.0, objective="max")
        base.update(overrides)
        return Slo(**base)

    def test_max_objective_burn_is_linear(self):
        slo = self.slo()
        assert slo.burn(0.0) == 0.0
        assert slo.burn(1.0) == 0.5
        assert slo.burn(2.0) == 1.0
        assert slo.burn(4.0) == 2.0

    def test_min_objective_burn_counts_shortfall(self):
        slo = Slo(name="quality", measurement="delivered_quality",
                  threshold=0.5, objective="min")
        assert slo.burn(1.0) == 0.0
        assert slo.burn(0.75) == pytest.approx(0.5)
        assert slo.burn(0.5) == pytest.approx(1.0)
        assert slo.burn(0.0) == pytest.approx(2.0)

    def test_verdict_severity_ladder(self):
        slo = self.slo(warn_burn=0.75, critical_burn=2.0)
        assert slo.evaluate(0.5).severity is Severity.INFO
        warn = slo.evaluate(1.8)
        assert warn.ok and warn.severity is Severity.WARNING
        error = slo.evaluate(2.5)
        assert not error.ok and error.severity is Severity.ERROR
        critical = slo.evaluate(5.0)
        assert not critical.ok and critical.severity is Severity.CRITICAL

    def test_verdict_export_and_summary(self):
        verdict = self.slo().evaluate(3.0)
        exported = verdict.export()
        assert exported["slo"] == "startup"
        assert exported["ok"] is False
        assert exported["severity"] == "ERROR"
        assert "startup: ERROR" in verdict.summary()
        assert "burn 1.50" in verdict.summary()


class TestPolicy:
    def test_duplicate_names_rejected(self):
        slo = Slo(name="a", measurement="startup_seconds", threshold=1.0)
        with pytest.raises(ObservabilityError, match="duplicate"):
            SloPolicy([slo, slo])

    def test_evaluate_skips_missing_measurements(self):
        policy = SloPolicy([
            Slo(name="a", measurement="startup_seconds", threshold=1.0),
            Slo(name="b", measurement="rebuffer_ratio", threshold=0.1),
        ])
        verdicts = policy.evaluate({"startup_seconds": 0.5})
        assert [v.slo for v in verdicts] == ["a"]

    def test_default_policy_covers_all_measurements(self):
        policy = default_slo_policy()
        assert len(policy) == 4
        assert {s.measurement for s in policy} == {
            "startup_seconds", "deadline_miss_rate",
            "rebuffer_ratio", "delivered_quality",
        }


def record_movie():
    video = video_object(frames.scene(32, 24, 8, "pan"), "v")
    return Recorder(MemoryBlob()).record([video])


class TestReportIntegration:
    def play(self, bandwidth):
        return Player(CostModel(bandwidth=bandwidth)).play(record_movie())

    def test_report_measurements_vector(self):
        report = self.play(8_000_000)
        measured = report_measurements(report)
        assert set(measured) == {
            "startup_seconds", "deadline_miss_rate",
            "rebuffer_ratio", "delivered_quality",
        }
        assert measured["startup_seconds"] == float(report.startup_delay)
        assert measured["delivered_quality"] == 1.0

    def test_uninstrumented_player_attaches_no_verdicts(self):
        assert self.play(8_000_000).slo == []

    def test_explicit_policy_attaches_verdicts_without_obs(self):
        player = Player(CostModel(bandwidth=8_000_000),
                        slo_policy=default_slo_policy())
        report = player.play(record_movie())
        assert len(report.slo) == 4
        assert report.slo_ok()
        assert "SLO 4/4 met" in report.summary()

    def test_starved_playback_violates_startup(self):
        player = Player(CostModel(bandwidth=2_000),
                        slo_policy=default_slo_policy())
        report = player.play(record_movie())
        violated = {v.slo for v in report.slo_violations()}
        assert "startup-latency" in violated
        assert not report.slo_ok()
        assert "violated" in report.summary()


class TestWorstVerdicts:
    def test_keeps_highest_burn_per_slo_in_first_seen_order(self):
        slo = Slo(name="s", measurement="startup_seconds", threshold=2.0)
        other = Slo(name="q", measurement="delivered_quality",
                    threshold=0.5, objective="min")
        lists = [
            [slo.evaluate(1.0), other.evaluate(0.9)],
            [slo.evaluate(3.0), other.evaluate(0.8)],
            [slo.evaluate(0.5)],
        ]
        worst = worst_verdicts(lists)
        assert [v.slo for v in worst] == ["s", "q"]
        assert worst[0].measured == 3.0
        assert worst[1].measured == 0.8
