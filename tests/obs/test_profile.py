"""Stage profiler and span self-time breakdown."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.core.rational import Rational
from repro.engine.player import CostModel, Player
from repro.engine.recorder import Recorder
from repro.errors import ObservabilityError
from repro.media import frames
from repro.media.objects import video_object
from repro.obs import (
    NULL_OBS,
    Observability,
    STAGE_BUCKETS,
    STAGE_METRIC,
    profile_stages,
    self_time_breakdown,
    self_time_table,
)


@pytest.fixture()
def played_obs():
    obs = Observability()
    movie = Recorder(MemoryBlob()).record(
        [video_object(frames.scene(32, 24, 8, "pan"), "v")]
    )
    Player(CostModel(bandwidth=2_000_000), obs=obs).play(movie)
    return obs


class TestHistogramQuantiles:
    def histogram(self):
        obs = Observability()
        return obs.metrics.histogram("h", buckets=(1.0, 2.0, 4.0))

    def test_quantile_interpolates_within_bucket(self):
        hist = self.histogram()
        for value in (0.5, 1.5, 3.0, 3.5):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.0
        # Target rank 2 of 4 lands at the boundary of the (1, 2] bucket.
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(1.0) == 4.0

    def test_quantile_of_empty_is_zero(self):
        assert self.histogram().quantile(0.5) == 0.0

    def test_quantile_overflow_bucket_clamps_to_last_boundary(self):
        hist = self.histogram()
        hist.observe(100.0)
        assert hist.quantile(0.99) == 4.0

    def test_quantile_validates_range(self):
        with pytest.raises(ObservabilityError, match="quantile"):
            self.histogram().quantile(1.5)

    def test_sum_per_label_series(self):
        hist = self.histogram()
        hist.observe(1.0, stage="a")
        hist.observe(2.0, stage="a")
        hist.observe(5.0, stage="b")
        assert hist.sum(stage="a") == 3.0
        assert hist.sum(stage="b") == 5.0
        assert hist.sum(stage="zzz") == 0.0


class TestProfileStages:
    def test_clean_playback_attributes_stages(self, played_obs):
        profile = profile_stages(played_obs)
        names = [s.stage for s in profile.stages]
        assert "page_read" in names
        assert "deliver" in names
        assert profile.total_seconds > 0

    def test_shares_sum_to_one(self, played_obs):
        profile = profile_stages(played_obs)
        assert sum(s.share for s in profile.stages) == pytest.approx(1.0)

    def test_stage_lookup_and_dominant(self, played_obs):
        profile = profile_stages(played_obs)
        stats = profile.stage("page_read")
        assert stats is not None and stats.count > 0
        assert profile.stage("nonexistent") is None
        assert profile.dominant_stage() in [s.stage for s in profile.stages]

    def test_quantiles_bounded_by_buckets(self, played_obs):
        for stats in profile_stages(played_obs).stages:
            assert 0.0 <= stats.p50 <= stats.p99 <= STAGE_BUCKETS[-1]

    def test_table_renders(self, played_obs):
        text = profile_stages(played_obs).table()
        assert "pipeline stage profile" in text
        assert "page_read" in text

    def test_empty_when_uninstrumented(self):
        assert profile_stages(NULL_OBS).stages == ()
        assert profile_stages(Observability()).stages == ()
        assert profile_stages(NULL_OBS).dominant_stage() is None

    def test_stage_metric_name_matches_player(self, played_obs):
        assert STAGE_METRIC in played_obs.metrics


class TestSelfTime:
    def test_subtracts_children_same_domain(self):
        obs = Observability()
        obs.tracer.record("parent", Rational(0), Rational(10))
        child = obs.tracer.record("child", Rational(2), Rational(5))
        child.parent_id = obs.tracer.spans[0].span_id
        rows = {r.name: r for r in self_time_breakdown(obs)}
        assert rows["parent"].total == Rational(10)
        assert rows["parent"].self_time == Rational(7)
        assert rows["child"].self_time == Rational(3)

    def test_cross_domain_child_not_subtracted(self):
        obs = Observability()
        with obs.tracer.span("outer"):  # logical ticks
            obs.tracer.record("inner", Rational(0), Rational(5))
        rows = {r.name: r for r in self_time_breakdown(obs)}
        assert rows["outer"].total == rows["outer"].self_time
        assert rows["inner"].total == Rational(5)

    def test_table_renders(self, played_obs):
        text = self_time_table(played_obs)
        assert "self-time breakdown" in text
        assert "engine.play" in text
