"""Tests for the deterministic metrics registry."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import DEFAULT_TIME_BUCKETS, MetricsRegistry
from repro.obs.metrics import export_value


class TestCounter:
    def test_starts_at_zero(self):
        counter = MetricsRegistry().counter("x")
        assert counter.value() == 0
        assert counter.total() == 0

    def test_increments(self):
        counter = MetricsRegistry().counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_labels_partition_the_series(self):
        counter = MetricsRegistry().counter("faults.injected")
        counter.inc(kind="transient")
        counter.inc(2, kind="bad_page")
        assert counter.value(kind="transient") == 1
        assert counter.value(kind="bad_page") == 2
        assert counter.value(kind="corrupted") == 0
        assert counter.total() == 3

    def test_rejects_decrement(self):
        counter = MetricsRegistry().counter("x")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_label_order_is_irrelevant(self):
        counter = MetricsRegistry().counter("x")
        counter.inc(a=1, b=2)
        assert counter.value(b=2, a=1) == 1


class TestGauge:
    def test_set_and_read(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(7)
        assert gauge.value() == 7
        gauge.set(3)
        assert gauge.value() == 3

    def test_set_max_keeps_high_water(self):
        gauge = MetricsRegistry().gauge("high_water")
        gauge.set_max(3)
        gauge.set_max(9)
        gauge.set_max(5)
        assert gauge.value() == 9

    def test_default_when_unset(self):
        assert MetricsRegistry().gauge("g").value(default=-1) == -1


class TestHistogram:
    def test_observations_land_in_buckets(self):
        hist = MetricsRegistry().histogram("t", buckets=(0.1, 1.0))
        hist.observe(0.05)   # <= 0.1
        hist.observe(0.5)    # <= 1.0
        hist.observe(2.0)    # overflow
        assert hist.bucket_counts() == [1, 1, 1]
        assert hist.count() == 3

    def test_boundary_is_inclusive(self):
        hist = MetricsRegistry().histogram("t", buckets=(0.1,))
        hist.observe(0.1)
        assert hist.bucket_counts() == [1, 0]

    def test_labeled_series_are_independent(self):
        hist = MetricsRegistry().histogram("lateness")
        hist.observe(0.002, sequence="video1")
        hist.observe(0.002, sequence="audio1")
        assert hist.count(sequence="video1") == 1
        assert hist.count(sequence="audio1") == 1
        assert hist.count() == 0

    def test_rejects_empty_or_unsorted_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.histogram("a", buckets=())
        with pytest.raises(ObservabilityError):
            registry.histogram("b", buckets=(1.0, 0.5))

    def test_default_buckets(self):
        hist = MetricsRegistry().histogram("t")
        assert hist.buckets == DEFAULT_TIME_BUCKETS


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")

    def test_bucket_clash_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_get_unknown_raises(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().get("missing")

    def test_contains_and_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z")
        registry.counter("a")
        assert "z" in registry
        assert "missing" not in registry
        assert registry.names() == ["a", "z"]

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2, kind="transient")
        registry.gauge("g").set(5)
        snap = registry.snapshot()
        assert snap["c"] == {
            "type": "counter",
            "series": [{"labels": {"kind": "transient"}, "value": 2}],
        }
        assert snap["g"] == {"type": "gauge", "series": [{"value": 5}]}

    def test_snapshot_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zz").inc()
        registry.counter("aa").inc()
        assert list(registry.snapshot()) == ["aa", "zz"]


class TestExportValue:
    def test_scalars_pass_through(self):
        assert export_value(3) == 3
        assert export_value(0.5) == 0.5
        assert export_value(True) is True
        assert export_value(None) is None

    def test_rational_exports_exact_string(self):
        from repro.core.rational import Rational

        assert export_value(Rational(1, 3)) == str(Rational(1, 3))


class TestHelpText:
    def test_help_round_trips_through_export(self):
        registry = MetricsRegistry()
        registry.counter("c", help="bytes delivered").inc(3)
        snap = registry.snapshot()
        assert snap["c"]["help"] == "bytes delivered"

    def test_help_omitted_when_unset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        assert "help" not in registry.snapshot()["c"]

    def test_first_help_wins_and_late_help_fills_in(self):
        registry = MetricsRegistry()
        registry.gauge("g", help="first")
        registry.gauge("g", help="second")
        assert registry.snapshot()["g"]["help"] == "first"
        registry.counter("late")
        registry.counter("late", help="attached later")
        assert registry.snapshot()["late"]["help"] == "attached later"


class TestGaugeSetMaxTypes:
    def test_mixed_uncomparable_types_raise_taxonomy_error(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set_max(3)
        with pytest.raises(ObservabilityError):
            gauge.set_max("seven")

    def test_comparable_types_still_work(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set_max(3)
        gauge.set_max(4.5)
        assert gauge.value() == 4.5


class TestHistogramOverflow:
    def test_overflow_count_tracks_last_bucket(self):
        hist = MetricsRegistry().histogram("t", buckets=(0.1, 1.0))
        assert hist.overflow_count() == 0
        hist.observe(0.05)
        hist.observe(5.0)
        hist.observe(7.0)
        assert hist.overflow_count() == 2

    def test_overflow_count_per_label_set(self):
        hist = MetricsRegistry().histogram("t", buckets=(0.1,))
        hist.observe(9.0, sequence="video")
        assert hist.overflow_count(sequence="video") == 1
        assert hist.overflow_count() == 0

    def test_overflow_quantile_clamps_to_last_boundary(self):
        hist = MetricsRegistry().histogram("t", buckets=(0.1, 1.0))
        hist.observe(50.0)
        hist.observe(60.0)
        assert hist.quantile(0.99) == 1.0
