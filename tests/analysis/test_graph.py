"""Tests for the static media-graph checker (rules MG001-MG009)."""

import pytest

from repro.analysis import (
    GraphChecker,
    blocking_diagnostics,
    check_media_graph,
    classify_derivations,
    static_bytes,
    static_duration,
    static_rate,
)
from repro.analysis.graph import GraphWalker
from repro.blob.blob import MemoryBlob
from repro.core.composition import MultimediaObject
from repro.core.media_object import DerivedMediaObject
from repro.core.rational import Rational
from repro.edit.editor import MediaEditor
from repro.engine.player import CostModel
from repro.engine.recorder import Recorder
from repro.errors import AnalysisError
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object

FAST = CostModel(bandwidth=40_000_000)


def tiny_video(name="v1", count=6, content="orbit", **kw):
    return video_object(frames.scene(32, 24, count, content), name, **kw)


def tiny_audio(name="a1", seconds=0.25, tone=440):
    return audio_object(signals.sine(tone, seconds, 8000) * 0.5, name,
                        sample_rate=8000, block_samples=80)


@pytest.fixture
def editor():
    return MediaEditor()


class TestStaticEstimates:
    def test_duration_from_descriptor(self):
        video = tiny_video()
        assert static_duration(video) == Rational(6, 25)

    def test_bytes_of_stream_object(self):
        video = tiny_video()
        assert static_bytes(video) == video.stream().total_size()

    def test_derived_bytes_sum_inputs_without_expanding(self, editor):
        video = tiny_video()
        cut = editor.cut(video, 0, 4, name="c1")
        assert static_bytes(cut) == static_bytes(video)
        assert not cut.is_materialized  # nothing expanded

    def test_rate_falls_back_to_bytes_over_duration(self):
        audio = tiny_audio()
        rate = static_rate(audio)
        assert rate == Rational(static_bytes(audio)) / static_duration(audio)


class TestCleanPipeline:
    def test_figure5_style_pipeline_checks_clean(self, editor):
        """The paper's production pipeline yields zero diagnostics."""
        video = tiny_video(count=8)
        audio = tiny_audio(seconds=0.32)
        cut = editor.cut(video, 0, 8, name="picture-cut")
        movie = MultimediaObject("movie")
        movie.add_temporal(cut, at=0, label="picture")
        movie.add_temporal(audio, at=0, label="music")
        report = check_media_graph(movie, cost_model=FAST)
        assert report.ok
        assert len(report) == 0

    def test_recorded_interpretation_checks_clean(self):
        interp = Recorder(MemoryBlob()).record([tiny_video()])
        report = check_media_graph(interp, cost_model=FAST)
        assert len(report) == 0
        assert report.subject == f"interpretation:{interp.name}"


class TestCycles:
    def test_composition_cycle_is_mg001_not_recursion(self):
        outer = MultimediaObject("outer")
        inner = MultimediaObject("inner")
        outer.add_temporal(inner, at=0, label="inner")
        inner.add_temporal(outer, at=0, label="outer")
        report = check_media_graph(outer, cost_model=FAST)
        findings = report.by_rule("MG001")
        assert [d.location for d in findings] == ["outer/inner/outer"]
        assert not report.ok

    def test_derivation_cycle_is_mg001(self, editor):
        cut = editor.cut(tiny_video(), 0, 4, name="cyc")
        cut.derivation_object.inputs = (cut,)
        report = check_media_graph(cut, cost_model=FAST)
        findings = report.by_rule("MG001")
        assert len(findings) == 1
        assert findings[0].location == "cyc<-cyc"


class TestDangling:
    def test_blob_truncation_is_mg002(self):
        interp = Recorder(MemoryBlob()).record([tiny_video()])
        interp.blob = MemoryBlob()  # placements now point past the BLOB
        report = check_media_graph(interp, cost_model=FAST)
        locations = [d.location for d in report.by_rule("MG002")]
        assert f"{interp.name}/v1" in locations
        assert f"interpretation:{interp.name}" in locations
        assert not report.ok


class TestKinds:
    def test_declared_kind_contradicting_derivation_is_mg003(self, editor):
        video = tiny_video()
        audio = tiny_audio()
        cut = editor.cut(video, 0, 4, name="c1")
        mislabeled = DerivedMediaObject(
            audio.media_type, audio.descriptor, cut.derivation_object,
            name="badkind",
        )
        report = check_media_graph(mislabeled, cost_model=FAST)
        findings = report.by_rule("MG003")
        assert [d.location for d in findings] == ["derived:badkind"]
        assert "video-edit" in findings[0].message


class TestTimeSystems:
    def test_non_commensurate_overlap_is_mg004(self):
        ntsc = tiny_video("nv", media_type_name="ntsc-video")
        audio = tiny_audio()  # 8000 Hz vs 30000/1001: non-commensurate
        movie = MultimediaObject("m")
        movie.add_temporal(ntsc, at=0, label="video")
        movie.add_temporal(audio, at=0, label="audio")
        report = check_media_graph(movie, cost_model=FAST)
        assert report.rules() == ["MG004"]
        assert report.ok  # a warning, not an error

    def test_commensurate_pal_and_audio_are_silent(self):
        movie = MultimediaObject("m")
        movie.add_temporal(tiny_video(), at=0, label="video")
        movie.add_temporal(tiny_audio(), at=0, label="audio")  # 8000 = 320*25
        report = check_media_graph(movie, cost_model=FAST)
        assert report.by_rule("MG004") == []

    def test_derivation_inputs_checked_too(self, editor):
        ntsc = tiny_video("nv", media_type_name="ntsc-video")
        pal = tiny_video("pv")
        fade = editor.transition(ntsc, pal, 2, kind="fade", name="f")
        report = check_media_graph(fade, cost_model=FAST)
        findings = report.by_rule("MG004")
        assert [d.location for d in findings] == ["derived:f"]


class TestOverlapsAndGaps:
    def test_video_overlap_is_an_error(self):
        movie = MultimediaObject("m")
        movie.add_temporal(tiny_video("v1"), at=0, label="v1")
        movie.add_temporal(tiny_video("v2", content="cut"), at=0, label="v2")
        report = check_media_graph(movie, cost_model=FAST)
        findings = report.by_rule("MG005")
        assert len(findings) == 1
        assert findings[0].is_error
        assert not report.ok

    def test_spatial_placement_disambiguates(self):
        movie = MultimediaObject("m")
        movie.add_temporal(tiny_video("v1"), at=0, label="v1")
        movie.add_spatial(tiny_video("v2", content="cut"), 10, 20)
        report = check_media_graph(movie, cost_model=FAST)
        assert report.by_rule("MG005") == []

    def test_audio_overlap_is_only_a_warning(self):
        movie = MultimediaObject("m")
        movie.add_temporal(tiny_audio("a1"), at=0, label="a1")
        movie.add_temporal(tiny_audio("a2", tone=330), at=0, label="a2")
        report = check_media_graph(movie, cost_model=FAST)
        findings = report.by_rule("MG005")
        assert len(findings) == 1
        assert not findings[0].is_error
        assert report.ok

    def test_interior_gap_is_mg006(self):
        movie = MultimediaObject("m")
        movie.add_temporal(tiny_video("v1"), at=0, label="v1")
        movie.add_temporal(tiny_video("v2", content="cut"), at=5, label="v2")
        report = check_media_graph(movie, cost_model=FAST)
        findings = report.by_rule("MG006")
        assert len(findings) == 1
        assert findings[0].location == "multimedia:m"
        assert "0:05.000" in findings[0].message


class TestQuality:
    def make_downgrade(self, editor):
        video = tiny_video(quality_factor="production quality")
        low = tiny_video("low", quality_factor="VHS quality")
        cut = editor.cut(video, 0, 4, name="c1")
        return DerivedMediaObject(
            video.media_type, low.descriptor, cut.derivation_object,
            name="down",
        )

    def test_silent_downgrade_is_mg007(self, editor):
        report = check_media_graph(self.make_downgrade(editor),
                                   cost_model=FAST)
        findings = report.by_rule("MG007")
        assert [d.location for d in findings] == ["derived:down"]
        assert "VHS quality" in findings[0].message

    def test_quality_floor_scopes_the_rule(self, editor):
        downgrade = self.make_downgrade(editor)
        # VHS rank 20 stays above a floor of 10: tolerated.
        lenient = GraphChecker(cost_model=FAST, quality_floor=10)
        assert lenient.check(downgrade).by_rule("MG007") == []
        # ... but crosses a floor of 30: flagged.
        strict = GraphChecker(cost_model=FAST, quality_floor=30)
        assert len(strict.check(downgrade).by_rule("MG007")) == 1

    def test_preserved_quality_is_silent(self, editor):
        video = tiny_video(quality_factor="production quality")
        cut = editor.cut(video, 0, 4, name="c1")
        report = check_media_graph(cut, cost_model=FAST)
        assert report.by_rule("MG007") == []


class TestFeasibility:
    def test_tight_budget_forces_materialization_mg008(self, editor):
        movie = MultimediaObject("m")
        movie.add_temporal(editor.cut(tiny_video(), 0, 4, name="c1"),
                           at=0, label="picture")
        checker = GraphChecker(cost_model=CostModel(),
                               startup_budget=Rational(1, 1000))
        report = checker.check(movie)
        findings = report.by_rule("MG008")
        assert [d.location for d in findings] == ["m/picture"]
        assert report.ok  # advisory: a warning under the default gate

    def test_materialized_derivation_needs_no_warning(self, editor):
        cut = editor.cut(tiny_video(), 0, 4, name="c1")
        cut.materialize()
        movie = MultimediaObject("m")
        movie.add_temporal(cut, at=0, label="picture")
        checker = GraphChecker(cost_model=CostModel(),
                               startup_budget=Rational(1, 1000))
        assert checker.check(movie).by_rule("MG008") == []

    def test_classify_derivations_prices_the_choice(self, editor):
        movie = MultimediaObject("m")
        movie.add_temporal(editor.cut(tiny_video(), 0, 4, name="c1"),
                           at=0, label="picture")
        walker = GraphWalker("multimedia:m")
        context = walker.walk_multimedia(movie)
        context.cost_model = CostModel()
        context.startup_budget = Rational(1, 1000)
        verdicts = classify_derivations(context)
        assert len(verdicts) == 1
        assert verdicts[0].must_materialize
        assert verdicts[0].cost > verdicts[0].budget

    def test_overcommitted_bandwidth_is_mg009(self):
        movie = MultimediaObject("m")
        movie.add_temporal(tiny_audio("a1"), at=0, label="a1")
        movie.add_temporal(tiny_audio("a2", tone=330), at=0, label="a2")
        report = GraphChecker(bandwidth=20_000).check(movie)
        findings = report.by_rule("MG009")
        assert len(findings) == 1
        assert findings[0].is_error
        # Either track alone fits the same bandwidth.
        solo = MultimediaObject("solo")
        solo.add_temporal(tiny_audio("a1"), at=0, label="a1")
        assert GraphChecker(bandwidth=20_000).check(solo).by_rule("MG009") \
            == []


class TestCheckerApi:
    def test_unknown_target_rejected(self):
        with pytest.raises(AnalysisError):
            check_media_graph(object())

    def test_ignore_suppresses_by_id(self):
        movie = MultimediaObject("m")
        movie.add_temporal(tiny_video("v1"), at=0, label="v1")
        movie.add_temporal(tiny_video("v2", content="cut"), at=0, label="v2")
        report = check_media_graph(movie, cost_model=FAST, ignore=("MG005",))
        assert report.by_rule("MG005") == []

    def test_negative_startup_budget_rejected(self):
        with pytest.raises(AnalysisError):
            GraphChecker(startup_budget=-1)

    def test_blocking_policies(self):
        movie = MultimediaObject("m")
        movie.add_temporal(tiny_audio("a1"), at=0, label="a1")
        movie.add_temporal(tiny_audio("a2", tone=330), at=0, label="a2")
        report = GraphChecker(bandwidth=20_000).check(movie)
        assert blocking_diagnostics(report, "off") == []
        assert blocking_diagnostics(report, "check") == []  # MG009 not structural
        assert [d.rule for d in blocking_diagnostics(report, "strict")] \
            == ["MG009"]
        with pytest.raises(AnalysisError):
            blocking_diagnostics(report, "paranoid")
