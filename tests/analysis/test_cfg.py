"""Golden tests for the dataflow engine's CFG builder.

Each test pins one lowering decision documented in
:mod:`repro.analysis.cfg`: branch edge kinds, loop back edges,
finally-suite duplication per continuation, catch-all handler
semantics, dead-code elision, and the every-node-reachable invariant
the property suite generalizes.
"""

import ast
import textwrap

import pytest

from repro.analysis.cfg import (
    CFG,
    build_cfg,
    function_defs,
    may_raise,
)
from repro.errors import AnalysisError


def cfg_of(source: str, qualname: str | None = None) -> CFG:
    tree = ast.parse(textwrap.dedent(source))
    defs = function_defs(tree)
    if qualname is None:
        qualname, _, func = defs[0]
    else:
        func = next(f for q, _, f in defs if q == qualname)
    return build_cfg(func, name="fixture.py", qualname=qualname)


def nodes_matching(cfg: CFG, text: str) -> list[int]:
    """Ids of statement nodes whose source unparse equals ``text``."""
    return [
        node.node_id for node in cfg.statement_nodes()
        if ast.unparse(node.stmt) == text
    ]


def edges(cfg: CFG, kind: str) -> list[tuple[int, int]]:
    return [
        (src, dst)
        for src, out in cfg.succs.items()
        for dst, k in out
        if k == kind
    ]


def reaches(cfg: CFG, start: int, goal: int,
            banned: frozenset[int] = frozenset()) -> bool:
    stack, seen = [start], {start}
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        for succ, _ in cfg.succs[node]:
            if succ not in seen and succ not in banned:
                seen.add(succ)
                stack.append(succ)
    return False


class TestStraightLine:
    def test_entry_body_exit_chain(self):
        cfg = cfg_of("""\
            def f():
                a = g()
                return a
            """)
        assert cfg.succs[cfg.entry] == [(nodes_matching(cfg, "a = g()")[0],
                                         "normal")]
        assert reaches(cfg, cfg.entry, cfg.exit)
        assert cfg.reachable_from_entry() == set(cfg.nodes)

    def test_call_statements_get_exc_edges(self):
        cfg = cfg_of("""\
            def f():
                work()
            """)
        node = nodes_matching(cfg, "work()")[0]
        assert (node, cfg.raise_exit) in edges(cfg, "exc")

    def test_trivial_statements_get_no_exc_edges(self):
        cfg = cfg_of("""\
            def f():
                a = 1
                pass
                return a
            """)
        assert edges(cfg, "exc") == []


class TestBranches:
    def test_if_else_true_false_edges(self):
        cfg = cfg_of("""\
            def f(flag):
                if flag:
                    a = then_branch()
                else:
                    a = else_branch()
                return a
            """)
        test = nodes_matching(cfg, "flag")[0]
        then = nodes_matching(cfg, "a = then_branch()")[0]
        other = nodes_matching(cfg, "a = else_branch()")[0]
        assert (test, then) in edges(cfg, "true")
        assert (test, other) in edges(cfg, "false")
        ret = nodes_matching(cfg, "return a")[0]
        assert reaches(cfg, then, ret) and reaches(cfg, other, ret)

    def test_if_without_else_falls_through(self):
        cfg = cfg_of("""\
            def f(flag):
                if flag:
                    extra()
                done()
            """)
        test = nodes_matching(cfg, "flag")[0]
        done = nodes_matching(cfg, "done()")[0]
        assert (test, done) in edges(cfg, "false")


class TestLoops:
    def test_while_back_edge_and_exit(self):
        cfg = cfg_of("""\
            def f(n):
                while n:
                    n = step(n)
                return n
            """)
        test = nodes_matching(cfg, "n")[0]
        body = nodes_matching(cfg, "n = step(n)")[0]
        assert (test, body) in edges(cfg, "true")
        assert (body, test) in edges(cfg, "back")
        assert reaches(cfg, test, cfg.exit)

    def test_for_iter_and_exhaust_edges(self):
        cfg = cfg_of("""\
            def f(items):
                for item in items:
                    emit(item)
                return None
            """)
        heads = [n.node_id for n in cfg.statement_nodes()
                 if n.label == "loop-head"]
        assert len(heads) == 1
        body = nodes_matching(cfg, "emit(item)")[0]
        assert (heads[0], body) in edges(cfg, "iter")
        assert edges(cfg, "exhaust") != []
        assert (body, heads[0]) in edges(cfg, "back")

    def test_break_exits_continue_loops(self):
        cfg = cfg_of("""\
            def f(items):
                for item in items:
                    if item:
                        break
                    continue
                return None
            """)
        head = next(n.node_id for n in cfg.statement_nodes()
                    if n.label == "loop-head")
        brk = next(n.node_id for n in cfg.nodes.values()
                   if n.label == "break")
        cont = next(n.node_id for n in cfg.nodes.values()
                    if n.label == "continue")
        assert (cont, head) in edges(cfg, "back")
        # break reaches the return without going back through the head
        ret = nodes_matching(cfg, "return None")[0]
        assert reaches(cfg, brk, ret, banned=frozenset({head}))
        assert cfg.reachable_from_entry() == set(cfg.nodes)


class TestTry:
    def test_exc_edge_lands_on_handler_head(self):
        cfg = cfg_of("""\
            def f():
                try:
                    risky()
                except ValueError:
                    fallback()
            """)
        body = nodes_matching(cfg, "risky()")[0]
        head = cfg.handler_regions[0].head
        assert (body, head) in edges(cfg, "exc")
        # ValueError is narrow: the unmatched exception still escapes
        assert (body, cfg.raise_exit) in edges(cfg, "exc")

    def test_catch_all_suppresses_escape(self):
        cfg = cfg_of("""\
            def f():
                try:
                    risky()
                except Exception:
                    fallback()
            """)
        body = nodes_matching(cfg, "risky()")[0]
        assert (body, cfg.raise_exit) not in edges(cfg, "exc")

    def test_finally_duplicated_per_continuation(self):
        cfg = cfg_of("""\
            def f():
                try:
                    return work()
                finally:
                    cleanup()
            """)
        copies = nodes_matching(cfg, "cleanup()")
        # one copy on the return path, one on the exception path
        assert len(copies) == 2
        assert any(reaches(cfg, c, cfg.exit,
                           banned=frozenset({cfg.raise_exit}))
                   for c in copies)
        assert any(reaches(cfg, c, cfg.raise_exit,
                           banned=frozenset({cfg.exit}))
                   for c in copies)

    def test_every_escape_route_passes_the_finally(self):
        cfg = cfg_of("""\
            def f():
                try:
                    a = work()
                    return a
                finally:
                    cleanup()
            """)
        banned = frozenset(nodes_matching(cfg, "cleanup()"))
        assert not reaches(cfg, cfg.entry, cfg.exit, banned=banned)
        assert not reaches(cfg, cfg.entry, cfg.raise_exit, banned=banned)

    def test_handler_region_records_body_and_names(self):
        cfg = cfg_of("""\
            def f():
                try:
                    risky()
                except (ValueError, faults.SimulatedCrash):
                    note()
                    raise
            """)
        region = cfg.handler_regions[0]
        assert region.names_exception("SimulatedCrash")
        assert region.names_exception("ValueError")
        assert not region.names_exception("KeyError")
        assert nodes_matching(cfg, "note()")[0] in region.body_ids


class TestWithAndMatch:
    def test_with_body_keeps_exc_edges(self):
        cfg = cfg_of("""\
            def f(lock):
                with lock:
                    work()
            """)
        body = nodes_matching(cfg, "work()")[0]
        assert (body, cfg.raise_exit) in edges(cfg, "exc")

    def test_match_fans_out_per_case(self):
        cfg = cfg_of("""\
            def f(value):
                match value:
                    case 1:
                        one()
                    case 2:
                        two()
                return None
            """)
        subject = next(n.node_id for n in cfg.statement_nodes()
                       if n.label == "match")
        assert len([e for e in edges(cfg, "true") if e[0] == subject]) == 2
        ret = nodes_matching(cfg, "return None")[0]
        assert (subject, ret) in edges(cfg, "false")


class TestDeadCode:
    def test_statements_after_return_get_no_nodes(self):
        cfg = cfg_of("""\
            def f():
                return early()
                never()
            """)
        assert nodes_matching(cfg, "never()") == []
        assert cfg.reachable_from_entry() == set(cfg.nodes)

    def test_statements_after_raise_get_no_nodes(self):
        cfg = cfg_of("""\
            def f():
                raise ValueError("no")
                never()
            """)
        assert nodes_matching(cfg, "never()") == []
        assert not reaches(cfg, cfg.entry, cfg.exit)
        assert reaches(cfg, cfg.entry, cfg.raise_exit)


class TestHelpers:
    def test_may_raise_classification(self):
        raising = ast.parse("x = f()").body[0]
        trivial = ast.parse("x = 1").body[0]
        assert may_raise(raising)
        assert not may_raise(trivial)
        assert not may_raise(ast.parse("pass").body[0])
        assert may_raise(ast.parse("x.y = 1").body[0])

    def test_function_defs_finds_methods_nested_and_guarded(self):
        tree = ast.parse(textwrap.dedent("""\
            class Box:
                def get(self):
                    def helper():
                        return 1
                    return helper()

            if True:
                def guarded():
                    return 2
            """))
        names = [qualname for qualname, _, _ in function_defs(tree)]
        assert names == ["Box.get", "Box.get.helper", "guarded"]
        by_name = {q: cls for q, cls, _ in function_defs(tree)}
        assert by_name["Box.get"].name == "Box"
        assert by_name["guarded"] is None

    def test_build_cfg_rejects_non_functions(self):
        with pytest.raises(AnalysisError):
            build_cfg(ast.parse("x = 1").body[0])

    def test_dump_is_deterministic_and_labeled(self):
        source = """\
            def f(flag):
                if flag:
                    work()
            """
        first, second = cfg_of(source).dump(), cfg_of(source).dump()
        assert first == second
        assert "cfg fixture.py::f" in first
        assert "(true)" in first and "(false)" in first
