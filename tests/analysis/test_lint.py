"""Tests for the determinism/taxonomy linter (rules LN001-LN008)."""

import textwrap

import pytest

from repro.analysis import LintEngine, lint_paths
from repro.analysis.lint import (
    RAW_WRITE_ALLOWLIST,
    RNG_ALLOWLIST,
    WALLCLOCK_ALLOWLIST,
)
from repro.errors import AnalysisError
from repro.obs import Severity


def lint_source(tmp_path, source, name="fixture.py", ignore=()):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], ignore=ignore)


class TestWallClock:
    def test_time_time_flagged_with_line(self, tmp_path):
        report = lint_source(tmp_path, """\
            import time

            def stamp():
                return time.time()
            """)
        findings = report.by_rule("LN001")
        assert len(findings) == 1
        assert findings[0].line == 4
        assert findings[0].location.endswith("fixture.py")

    def test_monotonic_and_sleep_flagged(self, tmp_path):
        report = lint_source(tmp_path, """\
            import time

            def nap():
                time.sleep(1)
                return time.monotonic()
            """)
        assert len(report.by_rule("LN001")) == 2

    def test_simulated_clock_calls_pass(self, tmp_path):
        report = lint_source(tmp_path, """\
            def advance(clock):
                return clock.now() + clock.tick()
            """)
        assert report.by_rule("LN001") == []

    def test_resources_module_is_sanctioned(self):
        assert "repro/engine/resources.py" in WALLCLOCK_ALLOWLIST


class TestRandomness:
    def test_global_random_import_flagged(self, tmp_path):
        report = lint_source(tmp_path, "import random\n")
        assert len(report.by_rule("LN002")) == 1

    def test_from_random_import_flagged(self, tmp_path):
        report = lint_source(tmp_path, "from random import shuffle\n")
        assert len(report.by_rule("LN002")) == 1

    def test_unseeded_default_rng_flagged(self, tmp_path):
        report = lint_source(tmp_path, """\
            import numpy as np

            rng = np.random.default_rng()
            """)
        findings = report.by_rule("LN002")
        assert len(findings) == 1
        assert findings[0].line == 3

    def test_seeded_default_rng_passes(self, tmp_path):
        report = lint_source(tmp_path, """\
            import numpy as np

            rng = np.random.default_rng(7)
            other = np.random.default_rng(seed=11)
            """)
        assert report.by_rule("LN002") == []

    def test_seeded_media_modules_are_allowlisted(self):
        assert RNG_ALLOWLIST == {
            "repro/media/frames.py",
            "repro/media/signals.py",
            "repro/bench/workloads.py",
        }


class TestErrorTaxonomy:
    def test_builtin_raise_flagged(self, tmp_path):
        report = lint_source(tmp_path, """\
            def f(x):
                raise ValueError(f"bad {x}")
            """)
        findings = report.by_rule("LN003")
        assert len(findings) == 1
        assert "ValueError" in findings[0].message

    def test_taxonomy_and_sanctioned_raises_pass(self, tmp_path):
        report = lint_source(tmp_path, """\
            from repro.errors import EngineError

            def f():
                raise EngineError("nope")

            def g():
                raise NotImplementedError
            """)
        assert report.by_rule("LN003") == []

    def test_unparsable_file_is_critical(self, tmp_path):
        report = lint_source(tmp_path, "def broken(:\n")
        findings = report.by_rule("LN003")
        assert len(findings) == 1
        assert findings[0].severity is Severity.CRITICAL


class TestMutableDefaults:
    def test_list_and_dict_call_defaults_flagged(self, tmp_path):
        report = lint_source(tmp_path, """\
            def f(items=[], table=dict()):
                return items, table
            """)
        assert len(report.by_rule("LN004")) == 2

    def test_immutable_defaults_pass(self, tmp_path):
        report = lint_source(tmp_path, """\
            def f(items=(), name=None, flags=frozenset()):
                return items, name, flags
            """)
        assert report.by_rule("LN004") == []


class TestApiAllSync:
    def lint_facade(self, tmp_path, source):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "api.py").write_text(textwrap.dedent(source))
        return LintEngine(root).run()

    def test_matching_all_passes(self, tmp_path):
        report = self.lint_facade(tmp_path, """\
            from __future__ import annotations

            from os.path import join

            __all__ = ["join"]
            """)
        assert report.by_rule("LN005") == []

    def test_both_drift_directions_flagged(self, tmp_path):
        report = self.lint_facade(tmp_path, """\
            from os.path import join, split

            __all__ = ["join", "phantom"]
            """)
        messages = [d.message for d in report.by_rule("LN005")]
        assert any("phantom" in m for m in messages)
        assert any("split" in m for m in messages)

    def test_missing_all_flagged(self, tmp_path):
        report = self.lint_facade(tmp_path, "from os.path import join\n")
        assert len(report.by_rule("LN005")) == 1


class TestEventSeverity:
    def test_record_without_severity_flagged(self, tmp_path):
        report = lint_source(tmp_path, """\
            def emit(obs):
                obs.events.record("engine", "started")
            """)
        assert len(report.by_rule("LN006")) == 1

    def test_severity_first_passes(self, tmp_path):
        report = lint_source(tmp_path, """\
            def emit(obs, verdict):
                obs.events.record(Severity.WARNING, "engine", "late")
                obs.events.record(verdict.severity, "engine", "slo")
            """)
        assert report.by_rule("LN006") == []

    def test_media_recorder_record_not_confused(self, tmp_path):
        report = lint_source(tmp_path, """\
            def capture(recorder, objects):
                return recorder.record(objects)
            """)
        assert report.by_rule("LN006") == []


class TestRawWrites:
    def test_write_mode_open_flagged(self, tmp_path):
        report = lint_source(tmp_path, """\
            def save(path, data):
                with open(path, "wb") as handle:
                    handle.write(data)
            """)
        findings = report.by_rule("LN007")
        assert len(findings) == 1
        assert findings[0].line == 2
        assert "durability" in findings[0].hint

    def test_append_exclusive_and_update_modes_flagged(self, tmp_path):
        report = lint_source(tmp_path, """\
            def f(path):
                open(path, "a").close()
                open(path, mode="x").close()
                open(path, "r+b").close()
            """)
        assert len(report.by_rule("LN007")) == 3

    def test_read_mode_and_default_pass(self, tmp_path):
        report = lint_source(tmp_path, """\
            def load(path):
                with open(path) as a, open(path, "rb") as b:
                    return a.read(), b.read()
            """)
        assert report.by_rule("LN007") == []

    def test_method_named_open_not_confused(self, tmp_path):
        report = lint_source(tmp_path, """\
            def save(fs, path, data):
                with fs.open(path, "wb") as handle:
                    handle.write(data)
            """)
        assert report.by_rule("LN007") == []

    def test_variable_mode_passes(self, tmp_path):
        """A non-constant mode cannot be judged statically; the rule
        stays quiet rather than guessing."""
        report = lint_source(tmp_path, """\
            def reopen(path, mode):
                return open(path, mode)
            """)
        assert report.by_rule("LN007") == []

    def test_fs_module_is_the_only_sanctioned_writer(self):
        assert RAW_WRITE_ALLOWLIST == {"repro/durability/fs.py"}


class TestEngineApi:
    def test_ignore_suppresses_by_id(self, tmp_path):
        report = lint_source(tmp_path, "import random\n", ignore=("LN002",))
        assert len(report) == 0

    def test_missing_root_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            LintEngine(tmp_path / "absent")

    def test_locations_are_root_relative(self, tmp_path):
        pkg = tmp_path / "pkg" / "sub"
        pkg.mkdir(parents=True)
        (pkg / "mod.py").write_text("import random\n")
        report = LintEngine(tmp_path / "pkg").run()
        assert [d.location for d in report] == ["pkg/sub/mod.py"]


class TestEventTimestamps:
    def test_wallclock_at_flagged_anywhere(self, tmp_path):
        report = lint_source(tmp_path, """\
            import time

            def emit(obs):
                obs.events.record(Severity.INFO, "engine", "started",
                                  at=time.time())
            """)
        findings = report.by_rule("LN008")
        assert len(findings) == 1
        assert "wall clock" in findings[0].message

    def test_simulated_at_passes(self, tmp_path):
        report = lint_source(tmp_path, """\
            def emit(obs, clock):
                obs.events.record(Severity.INFO, "engine", "started",
                                  at=clock.now())
            """)
        assert report.by_rule("LN008") == []

    def test_missing_at_tolerated_outside_simclock_modules(self, tmp_path):
        report = lint_source(tmp_path, """\
            def emit(obs):
                obs.events.record(Severity.INFO, "engine", "started")
            """)
        assert report.by_rule("LN008") == []

    def test_missing_at_flagged_in_simclock_modules(self, tmp_path):
        module = tmp_path / "repro" / "obs" / "telemetry.py"
        module.parent.mkdir(parents=True)
        module.write_text(textwrap.dedent("""\
            def emit(events, state):
                events.record(Severity.WARNING, "telemetry", "alert")
            """))
        report = lint_paths([tmp_path / "repro"])
        findings = report.by_rule("LN008")
        assert len(findings) == 1
        assert "simulated-clock" in findings[0].message

    def test_severity_subscript_accepted_by_ln006(self, tmp_path):
        report = lint_source(tmp_path, """\
            SEVERITY_OF = {"firing": Severity.ERROR}

            def emit(obs, state, when):
                obs.events.record(SEVERITY_OF[state], "telemetry", "alert",
                                  at=when)
            """)
        assert report.by_rule("LN006") == []

    def test_shipped_telemetry_module_passes_the_gate(self):
        from pathlib import Path
        root = Path(__file__).resolve().parents[2] / "src" / "repro"
        report = LintEngine(root).run()
        assert report.by_rule("LN008") == []


class TestProtocolRaises:
    def test_module_getattr_may_raise_attribute_error(self, tmp_path):
        report = lint_source(tmp_path, """\
            def __getattr__(name):
                raise AttributeError(f"no attribute {name!r}")
            """)
        assert report.by_rule("LN003") == []

    def test_attribute_error_elsewhere_still_flagged(self, tmp_path):
        report = lint_source(tmp_path, """\
            def lookup(name):
                raise AttributeError(name)
            """)
        assert len(report.by_rule("LN003")) == 1
