"""Tests for the dataflow engine: solver, DF rules, suppressions,
baseline and SARIF.

Every DF rule gets a *firing* fixture asserting the exact line and a
*silent* fixture showing the compliant form of the same code — the
pair documents what the rule means better than its docstring can.
"""

import ast
import json
import textwrap

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    Analysis,
    baseline_payload,
    check_paths,
    exit_states,
    is_suppressed,
    load_baseline,
    parse_suppressions,
    sarif_report,
    solve,
    split_baselined,
    validate_sarif,
)
from repro.analysis.lattice import MapLattice, PowersetLattice
from repro.errors import AnalysisError


def df(tmp_path, source, name="fixture.py", ignore=()):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return check_paths([path], ignore=ignore)


def fired(report, rule):
    return report.by_rule(rule)


def cfg_of(source):
    func = ast.parse(textwrap.dedent(source)).body[0]
    return build_cfg(func, name="fixture.py")


# ---------------------------------------------------------------------------
# lattices and solver
# ---------------------------------------------------------------------------

class TestLattices:
    def test_powerset_join_is_union(self):
        lattice = PowersetLattice()
        assert lattice.bottom() == frozenset()
        joined = lattice.join(frozenset({1}), frozenset({2}))
        assert joined == frozenset({1, 2})
        assert lattice.leq(frozenset({1}), joined)
        assert not lattice.leq(joined, frozenset({1}))

    def test_map_lattice_joins_pointwise_and_drops_bottom(self):
        lattice = MapLattice(PowersetLattice())
        a = frozenset({("x", frozenset({1}))})
        b = frozenset({("x", frozenset({2})), ("y", frozenset())})
        joined = lattice.join(a, b)
        assert dict(joined) == {"x": frozenset({1, 2})}
        assert lattice.leq(a, joined)

    def test_map_lattice_rejects_non_lattice_values(self):
        with pytest.raises(AnalysisError):
            MapLattice(object())


class GenAtCalls(Analysis):
    """Toy typestate: every call statement generates its line."""

    def transfer(self, node, state):
        if node.stmt is not None and any(
                isinstance(n, ast.Call) for n in ast.walk(node.stmt)):
            return state | {node.line}
        return state


class TestSolver:
    def test_facts_accumulate_along_paths(self):
        cfg = cfg_of("""\
            def f(flag):
                if flag:
                    a = one()
                else:
                    a = two()
                return a
            """)
        normal, _ = exit_states(cfg, GenAtCalls())
        assert normal == frozenset({3, 5})  # both branches joined

    def test_loop_converges_to_fixpoint(self):
        cfg = cfg_of("""\
            def f(n):
                while n:
                    n = step(n)
                return n
            """)
        states = solve(cfg, GenAtCalls())
        # the solution is a fixpoint: pushing any edge changes nothing
        analysis = GenAtCalls()
        for src, out in cfg.succs.items():
            for dst, kind in out:
                carried = (analysis.transfer_exc(cfg.nodes[src], states[src])
                           if kind == "exc"
                           else analysis.transfer(cfg.nodes[src],
                                                  states[src]))
                assert carried <= states[dst]

    def test_solve_is_deterministic(self):
        cfg = cfg_of("""\
            def f(items):
                for item in items:
                    use(item)
                return done()
            """)
        assert solve(cfg, GenAtCalls()) == solve(cfg, GenAtCalls())

    def test_non_monotone_transfer_is_caught(self):
        class Runaway(Analysis):
            def transfer(self, node, state):
                return frozenset({max(state, default=0) + 1})

        cfg = cfg_of("""\
            def f(n):
                while n:
                    n = step(n)
            """)
        with pytest.raises(AnalysisError, match="not.*monotone|monotone"):
            solve(cfg, Runaway())


# ---------------------------------------------------------------------------
# DF001 — pin/unpin
# ---------------------------------------------------------------------------

class TestDF001:
    def test_fires_on_pin_without_unpin(self, tmp_path):
        report = df(tmp_path, """\
            def leak(pool, page):
                pool.pin(page)
                pool.use(page)
            """)
        findings = fired(report, "DF001")
        assert len(findings) == 1
        assert findings[0].line == 2
        assert "pool.pin(page)" in findings[0].message

    def test_fires_when_only_the_exception_path_leaks(self, tmp_path):
        report = df(tmp_path, """\
            def partial(pool, page):
                pool.pin(page)
                pool.use(page)
                pool.unpin(page)
            """)
        assert len(fired(report, "DF001")) == 1

    def test_silent_with_try_finally(self, tmp_path):
        report = df(tmp_path, """\
            def safe(pool, page):
                pool.pin(page)
                try:
                    pool.use(page)
                finally:
                    pool.unpin(page)
            """)
        assert fired(report, "DF001") == []

    def test_silent_when_teardown_clears_everything(self, tmp_path):
        report = df(tmp_path, """\
            def teardown(pool, page):
                pool.pin(page)
                pool.clear()
            """)
        assert fired(report, "DF001") == []


# ---------------------------------------------------------------------------
# DF002 — WAL commit-or-rollback
# ---------------------------------------------------------------------------

class TestDF002:
    def test_fires_on_uncommitted_write(self, tmp_path):
        report = df(tmp_path, """\
            def torn(wal):
                wal.begin()
                wal.log_write(b"x")
            """)
        findings = fired(report, "DF002")
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_silent_with_commit_and_rollback_paths(self, tmp_path):
        # the handler must be a catch-all: with `except ValueError` an
        # unmatched exception would escape log_write uncommitted, and
        # the rule (correctly) flags that path too
        report = df(tmp_path, """\
            def committed(wal):
                wal.begin()
                try:
                    wal.log_write(b"x")
                    wal.commit()
                except Exception:
                    wal.rollback()
                    raise
            """)
        assert fired(report, "DF002") == []


# ---------------------------------------------------------------------------
# DF003 — float taint into exact-rational sinks
# ---------------------------------------------------------------------------

class TestDF003:
    def test_float_literal_reaches_clock(self, tmp_path):
        report = df(tmp_path, """\
            def drift(clock):
                delay = 0.5
                clock.advance_to(delay)
            """)
        findings = fired(report, "DF003")
        assert len(findings) == 1
        assert findings[0].line == 3
        assert "float literal" in findings[0].message

    def test_wall_clock_read_reaches_loop(self, tmp_path):
        report = df(tmp_path, """\
            import time

            def stamp(loop):
                now = time.monotonic()
                loop.at(now)
            """)
        findings = fired(report, "DF003")
        assert len(findings) == 1
        assert "wall-clock time.monotonic()" in findings[0].message

    def test_float_literal_direct_into_rational(self, tmp_path):
        report = df(tmp_path, """\
            def direct():
                return Rational(0.1)
            """)
        assert len(fired(report, "DF003")) == 1

    def test_silent_through_sanctioned_conversion(self, tmp_path):
        report = df(tmp_path, """\
            def clean(clock):
                delay = as_rational(0.5)
                clock.advance_to(delay)
            """)
        assert fired(report, "DF003") == []

    def test_silent_on_exact_arguments(self, tmp_path):
        report = df(tmp_path, """\
            def exact(clock):
                delay = Rational(1, 10)
                clock.advance_to(delay)
            """)
        assert fired(report, "DF003") == []

    def test_reassignment_cleanses(self, tmp_path):
        report = df(tmp_path, """\
            def rebound(clock):
                delay = 0.5
                delay = as_rational(delay)
                clock.advance_to(delay)
            """)
        assert fired(report, "DF003") == []


# ---------------------------------------------------------------------------
# DF004 — unordered iteration
# ---------------------------------------------------------------------------

class TestDF004:
    def test_for_loop_over_set_variable(self, tmp_path):
        report = df(tmp_path, """\
            def scan(items):
                seen = set(items)
                for item in seen:
                    emit(item)
            """)
        findings = fired(report, "DF004")
        assert len(findings) == 1
        assert findings[0].line == 3
        assert "set()" in findings[0].message

    def test_comprehension_over_set_literal(self, tmp_path):
        report = df(tmp_path, """\
            def combo():
                return [x for x in {1, 2, 3}]
            """)
        assert len(fired(report, "DF004")) == 1

    def test_listdir_order_is_flagged(self, tmp_path):
        report = df(tmp_path, """\
            import os

            def walk(root):
                for name in os.listdir(root):
                    emit(name)
            """)
        findings = fired(report, "DF004")
        assert len(findings) == 1
        assert "os.listdir" in findings[0].message

    def test_materializing_a_set_attribute(self, tmp_path):
        report = df(tmp_path, """\
            class Box:
                def __init__(self):
                    self.members = set()

                def dump(self):
                    return list(self.members)
            """)
        findings = fired(report, "DF004")
        assert len(findings) == 1
        assert "self.members" in findings[0].message

    def test_silent_under_sorted_and_folds(self, tmp_path):
        report = df(tmp_path, """\
            def stable(items):
                seen = set(items)
                for item in sorted(seen):
                    emit(item)
                return sum(x for x in seen) + len(seen)
            """)
        assert fired(report, "DF004") == []


# ---------------------------------------------------------------------------
# DF005 — resource close-or-escape
# ---------------------------------------------------------------------------

class TestDF005:
    def test_fires_on_leaked_connection(self, tmp_path):
        report = df(tmp_path, """\
            import sqlite3

            def leaky(path):
                conn = sqlite3.connect(path)
                conn.execute("select 1")
            """)
        findings = fired(report, "DF005")
        assert len(findings) == 1
        assert findings[0].line == 4
        assert "'conn'" in findings[0].message

    def test_fires_on_exception_path_only(self, tmp_path):
        report = df(tmp_path, """\
            def fragile(path):
                store = open_tuned(path)
                store.warm()
                store.close()
            """)
        assert len(fired(report, "DF005")) == 1

    def test_silent_with_close_in_finally(self, tmp_path):
        report = df(tmp_path, """\
            import sqlite3

            def tidy(path):
                conn = sqlite3.connect(path)
                try:
                    conn.execute("select 1")
                finally:
                    conn.close()
            """)
        assert fired(report, "DF005") == []

    def test_silent_when_handle_escapes(self, tmp_path):
        report = df(tmp_path, """\
            import sqlite3

            def handoff(path, registry):
                conn = sqlite3.connect(path)
                registry.adopt(conn)
                other = sqlite3.connect(path)
                return other
            """)
        assert fired(report, "DF005") == []


# ---------------------------------------------------------------------------
# DF006 — silent swallow
# ---------------------------------------------------------------------------

class TestDF006:
    def test_fires_on_bare_pass(self, tmp_path):
        report = df(tmp_path, """\
            def quiet():
                try:
                    risky()
                except ValueError:
                    pass
            """)
        findings = fired(report, "DF006")
        assert len(findings) == 1
        assert findings[0].line == 4
        assert "ValueError" in findings[0].message

    def test_fires_when_one_path_is_dark(self, tmp_path):
        report = df(tmp_path, """\
            def partial(events, flag):
                try:
                    risky()
                except ValueError:
                    if flag:
                        events.record("degraded")
            """)
        assert len(fired(report, "DF006")) == 1

    def test_silent_when_every_path_emits(self, tmp_path):
        report = df(tmp_path, """\
            def observed(events):
                try:
                    risky()
                except ValueError:
                    events.record("degraded")
            """)
        assert fired(report, "DF006") == []

    def test_silent_on_reraise(self, tmp_path):
        report = df(tmp_path, """\
            def propagates():
                try:
                    risky()
                except ValueError:
                    raise
            """)
        assert fired(report, "DF006") == []

    def test_stop_iteration_is_protocol_not_swallowing(self, tmp_path):
        report = df(tmp_path, """\
            def drain(it):
                try:
                    next(it)
                except StopIteration:
                    pass
            """)
        assert fired(report, "DF006") == []


# ---------------------------------------------------------------------------
# DF007 — shard-shared state ownership
# ---------------------------------------------------------------------------

class TestDF007:
    def test_fires_on_direct_mutation_from_fleet_code(self, tmp_path):
        report = df(tmp_path, """\
            class Fleet:
                def __init__(self):
                    self._shards = {}
                    self.cache = DerivationCache()

                def poke(self, key):
                    self.cache.put(key, 1)
            """)
        findings = fired(report, "DF007")
        assert len(findings) == 1
        assert findings[0].line == 7
        assert "self.cache.put" in findings[0].message

    def test_silent_inside_scoped_namespace(self, tmp_path):
        report = df(tmp_path, """\
            class Fleet:
                def __init__(self):
                    self._shards = {}
                    self.telemetry = TelemetryStore()

                def poke(self, obs, key):
                    with obs.scoped("shard-0"):
                        self.telemetry.record(key)
            """)
        assert fired(report, "DF007") == []

    def test_silent_outside_shard_owning_classes(self, tmp_path):
        report = df(tmp_path, """\
            class Worker:
                def __init__(self):
                    self.cache = DerivationCache()

                def poke(self, key):
                    self.cache.put(key, 1)
            """)
        assert fired(report, "DF007") == []


# ---------------------------------------------------------------------------
# DF008 — SimulatedCrash re-raise
# ---------------------------------------------------------------------------

class TestDF008:
    def test_fires_when_crash_is_absorbed(self, tmp_path):
        report = df(tmp_path, """\
            def absorb(run):
                try:
                    run()
                except SimulatedCrash:
                    cleanup()
            """)
        findings = fired(report, "DF008")
        assert len(findings) == 1
        assert findings[0].line == 4

    def test_silent_when_every_path_reraises(self, tmp_path):
        report = df(tmp_path, """\
            def faithful(run):
                try:
                    run()
                except SimulatedCrash:
                    cleanup()
                    raise
            """)
        assert fired(report, "DF008") == []


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------

class TestSuppressions:
    def test_trailing_comment_silences_its_line(self, tmp_path):
        report = df(tmp_path, """\
            def quiet():
                try:
                    risky()
                # repro: suppress DF006 — degradation is the contract here
                except ValueError:
                    pass
            """)
        assert fired(report, "DF006") == []

    def test_comment_above_silences_the_next_line(self, tmp_path):
        report = df(tmp_path, """\
            def leak(pool, page):
                # repro: suppress DF001 — pin outlives the call on purpose
                pool.pin(page)
                pool.use(page)
            """)
        assert fired(report, "DF001") == []

    def test_reason_is_mandatory(self, tmp_path):
        report = df(tmp_path, """\
            def quiet():
                try:
                    risky()
                # repro: suppress DF006
                except ValueError:
                    pass
            """)
        assert len(fired(report, "DF006")) == 1

    def test_suppression_only_covers_named_rules(self, tmp_path):
        report = df(tmp_path, """\
            def leak(pool, page):
                # repro: suppress DF002 — wrong rule named
                pool.pin(page)
                pool.use(page)
            """)
        assert len(fired(report, "DF001")) == 1

    def test_parse_and_match_multi_rule_comments(self):
        parsed = parse_suppressions(
            "x = 1\n"
            "# repro: suppress DF001, DF005 — teardown owns both\n"
            "y = 2\n"
        )
        assert len(parsed) == 1
        assert parsed[0].rules == frozenset({"DF001", "DF005"})
        assert parsed[0].reason == "teardown owns both"

        class Fake:
            rule = "DF005"
            line = 3

        assert is_suppressed(Fake(), parsed)


# ---------------------------------------------------------------------------
# ignore= and baseline
# ---------------------------------------------------------------------------

class TestIgnoreAndBaseline:
    SOURCE = """\
        def leak(pool, page):
            pool.pin(page)
            pool.use(page)
        """

    def test_ignore_drops_a_rule_id(self, tmp_path):
        assert fired(df(tmp_path, self.SOURCE, ignore=("DF001",)),
                     "DF001") == []

    def test_baseline_grandfathers_known_findings(self, tmp_path):
        report = df(tmp_path, self.SOURCE)
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_bytes(baseline_payload(report))
        fresh, grandfathered = split_baselined(
            report, load_baseline(baseline_file))
        assert grandfathered == 1
        assert fresh.diagnostics == []

    def test_baseline_survives_line_shifts(self, tmp_path):
        baseline = load_baseline_bytes(
            baseline_payload(df(tmp_path, self.SOURCE)))
        moved = df(tmp_path, "# pushed down two lines\n\n"
                   + textwrap.dedent(self.SOURCE))
        fresh, grandfathered = split_baselined(moved, baseline)
        assert grandfathered == 1
        assert fresh.diagnostics == []

    def test_new_findings_stay_fresh(self, tmp_path):
        report = df(tmp_path, self.SOURCE)
        fresh, grandfathered = split_baselined(report, set())
        assert grandfathered == 0
        assert len(fresh.diagnostics) == 1

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()


def load_baseline_bytes(payload: bytes):
    return {
        (row["rule"], row["location"], row["message"])
        for row in json.loads(payload)["findings"]
    }


# ---------------------------------------------------------------------------
# SARIF
# ---------------------------------------------------------------------------

class TestSarif:
    def test_round_trip_validates(self, tmp_path):
        report = df(tmp_path, """\
            def leak(pool, page):
                pool.pin(page)
                pool.use(page)
            """)
        payload = json.loads(json.dumps(sarif_report(report)))
        validate_sarif(payload)  # must not raise
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-dataflow"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["DF001"]
        result = run["results"][0]
        assert result["ruleId"] == "DF001"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2

    def test_empty_report_is_valid_sarif(self, tmp_path):
        payload = sarif_report(df(tmp_path, "def fine():\n    return 1\n"))
        validate_sarif(payload)
        assert payload["runs"][0]["results"] == []

    def test_validator_rejects_structural_damage(self, tmp_path):
        payload = sarif_report(df(tmp_path, "def fine():\n    return 1\n"))
        payload["version"] = "2.0.0"
        with pytest.raises(AnalysisError, match="2.1.0"):
            validate_sarif(payload)


# ---------------------------------------------------------------------------
# engine plumbing
# ---------------------------------------------------------------------------

class TestEngine:
    def test_syntax_error_is_df000_critical(self, tmp_path):
        report = df(tmp_path, "def broken(:\n")
        findings = fired(report, "DF000")
        assert len(findings) == 1
        assert not report.ok

    def test_reports_are_deterministic(self, tmp_path):
        source = """\
            def leak(pool, page):
                pool.pin(page)
                pool.use(page)

            def quiet():
                try:
                    risky()
                except ValueError:
                    pass
            """
        first = df(tmp_path, source).to_json()
        second = df(tmp_path, source).to_json()
        assert first == second

    def test_qualname_lands_in_the_message(self, tmp_path):
        report = df(tmp_path, """\
            class Pool:
                def grab(self, pool, page):
                    pool.pin(page)
                    pool.use(page)
            """)
        assert "[Pool.grab]" in fired(report, "DF001")[0].message
