"""The repo lints itself: the contracts the linter enforces hold here.

This is the CI teeth of the determinism/taxonomy contracts — a wall
clock, an unseeded RNG or a stray builtin raise introduced anywhere in
``src/repro`` fails this test.
"""

from repro.analysis import lint_repo


def test_repo_is_clean():
    report = lint_repo()
    assert report.ok, "\n" + report.render_text()
    assert len(report) == 0, "\n" + report.render_text()


def test_self_lint_covers_the_whole_package():
    from repro.analysis.lint import LintEngine

    files = LintEngine().files()
    names = {path.name for path in files}
    # Spot-check that the sweep reaches every layer, facade included.
    assert "api.py" in names
    assert "player.py" in names
    assert "lint.py" in names
    assert len(files) > 40


def test_self_lint_is_deterministic():
    assert lint_repo().to_json() == lint_repo().to_json()
