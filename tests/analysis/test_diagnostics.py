"""Tests for the shared diagnostic core."""

import json

import pytest

from repro.analysis import Diagnostic, DiagnosticReport, RuleRegistry, rule_registry
from repro.errors import AnalysisError
from repro.obs import Severity


def make(rule="MG001", severity=Severity.ERROR, location="multimedia:m",
         message="boom", **kw):
    return Diagnostic(rule=rule, severity=severity, location=location,
                      message=message, **kw)


class TestDiagnostic:
    def test_str_carries_rule_location_and_hint(self):
        d = make(hint="fix it")
        assert str(d) == (
            "multimedia:m: error [MG001] boom (hint: fix it)"
        )

    def test_where_appends_line_when_known(self):
        assert make().where() == "multimedia:m"
        assert make(line=12).where() == "multimedia:m:12"

    def test_severity_coerced_from_string(self):
        d = make(severity="warning")
        assert d.severity is Severity.WARNING
        assert not d.is_error

    def test_is_error_includes_critical(self):
        assert make(severity=Severity.CRITICAL).is_error
        assert not make(severity=Severity.INFO).is_error

    def test_empty_rule_rejected(self):
        with pytest.raises(AnalysisError):
            Diagnostic(rule="", severity=Severity.ERROR,
                       location="x", message="y")

    def test_export_keys_are_stable(self):
        assert list(make().export()) == [
            "rule", "severity", "location", "line", "message", "hint",
        ]


class TestDiagnosticReport:
    def test_ordering_is_insertion_independent(self):
        a = make(location="b", rule="MG002", message="second")
        b = make(location="a", rule="MG001", message="first")
        assert (DiagnosticReport([a, b]).diagnostics
                == DiagnosticReport([b, a]).diagnostics == [b, a])

    def test_ok_only_without_errors(self):
        report = DiagnosticReport([make(severity=Severity.WARNING)])
        assert report.ok
        report.add(make())
        assert not report.ok

    def test_errors_warnings_split(self):
        report = DiagnosticReport([
            make(), make(severity=Severity.WARNING, rule="MG006"),
            make(severity=Severity.INFO, rule="MG007"),
        ])
        assert [d.rule for d in report.errors()] == ["MG001"]
        assert [d.rule for d in report.warnings()] == ["MG006"]

    def test_by_rule_and_rules(self):
        report = DiagnosticReport([make(), make(message="again"),
                                   make(rule="MG005")])
        assert len(report.by_rule("MG001")) == 2
        assert report.rules() == ["MG001", "MG005"]

    def test_render_text_footer(self):
        report = DiagnosticReport([make()], subject="multimedia:m")
        text = report.render_text()
        assert text.splitlines()[-1] == (
            "multimedia:m: 1 finding(s), 1 error(s), 0 warning(s)"
        )

    def test_merge_combines(self):
        left = DiagnosticReport([make()], subject="s")
        left.merge(DiagnosticReport([make(rule="MG002")]))
        assert len(left) == 2

    def test_json_golden(self):
        report = DiagnosticReport(
            [make(hint="break the cycle", line=None)], subject="multimedia:m",
        )
        assert report.to_json() == (
            '{\n'
            '  "counts": {\n'
            '    "errors": 1,\n'
            '    "total": 1,\n'
            '    "warnings": 0\n'
            '  },\n'
            '  "findings": [\n'
            '    {\n'
            '      "hint": "break the cycle",\n'
            '      "line": null,\n'
            '      "location": "multimedia:m",\n'
            '      "message": "boom",\n'
            '      "rule": "MG001",\n'
            '      "severity": "ERROR"\n'
            '    }\n'
            '  ],\n'
            '  "ok": false,\n'
            '  "subject": "multimedia:m"\n'
            '}'
        )

    def test_json_roundtrips_deterministically(self):
        report = DiagnosticReport([make(), make(rule="MG005")], subject="s")
        assert report.to_json() == report.to_json()
        payload = json.loads(report.to_json())
        assert payload["counts"]["total"] == 2
        assert payload["ok"] is False


class TestRuleRegistry:
    def test_process_registry_has_both_engines(self):
        assert rule_registry.ids("graph") == [
            f"MG{n:03d}" for n in range(1, 10)
        ]
        assert rule_registry.ids("lint") == [
            f"LN{n:03d}" for n in range(1, 9)
        ]

    def test_duplicate_registration_rejected(self):
        registry = RuleRegistry()
        registry.register("XX001", "x", Severity.ERROR, engine="graph")
        with pytest.raises(AnalysisError):
            registry.register("XX001", "x", Severity.ERROR, engine="graph")

    def test_unknown_rule_lookup_fails(self):
        with pytest.raises(AnalysisError):
            RuleRegistry().get("nope")

    def test_table_rows_match_ids(self):
        rows = rule_registry.table()
        assert [row[0] for row in rows] == rule_registry.ids()
        assert ("MG001", "graph", "ERROR", "derivation/composition cycle") \
            in rows
