"""The static checker gating Player, VodServer and MediaDatabase."""

import pytest

from repro.analysis import GraphChecker
from repro.blob.blob import MemoryBlob
from repro.core.composition import MultimediaObject
from repro.engine.player import CostModel, Player
from repro.engine.recorder import Recorder
from repro.engine.vod import VodServer
from repro.errors import CatalogError, EngineError, PlanRejectedError
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object
from repro.obs import Observability
from repro.query.database import MediaDatabase


def tiny_video(name="v1"):
    return video_object(frames.scene(32, 24, 6, "orbit"), name)


def tiny_audio(name="a1", tone=440):
    return audio_object(signals.sine(tone, 0.25, 8000) * 0.5, name,
                        sample_rate=8000, block_samples=80)


def cyclic_movie():
    outer = MultimediaObject("outer")
    inner = MultimediaObject("inner")
    outer.add_temporal(inner, at=0, label="inner")
    inner.add_temporal(outer, at=0, label="outer")
    return outer


def overcommitted_movie():
    movie = MultimediaObject("m")
    movie.add_temporal(tiny_audio("a1"), at=0, label="a1")
    movie.add_temporal(tiny_audio("a2", tone=330), at=0, label="a2")
    return movie


def broken_interpretation():
    interp = Recorder(MemoryBlob()).record([tiny_video()])
    interp.blob = MemoryBlob()  # placements now dangle
    return interp


class TestPlayerGate:
    def test_cycle_rejected_before_any_work(self):
        obs = Observability()
        player = Player(CostModel(bandwidth=40_000_000), obs=obs)
        with pytest.raises(PlanRejectedError) as exc:
            player.plan_multimedia(cyclic_movie())
        assert [d.rule for d in exc.value.diagnostics] == ["MG001"]
        assert obs.metrics.counter("engine.plan.rejections").total() == 1
        # No element was planned or read: the rejection was static.
        assert obs.metrics.counter("engine.play.runs").total() == 0

    def test_rejection_lands_in_flight_recorder(self):
        obs = Observability()
        player = Player(CostModel(bandwidth=40_000_000), obs=obs)
        with pytest.raises(PlanRejectedError):
            player.play(cyclic_movie())
        assert any(e.name == "plan.MG001" for e in obs.events.events())

    def test_check_policy_lets_infeasible_play_and_reports(self):
        player = Player(CostModel(bandwidth=20_000))
        report = player.play(overcommitted_movie())
        rules = [d.rule for d in report.plan_diagnostics]
        assert "MG009" in rules  # attached, not blocking

    def test_strict_policy_rejects_infeasible(self):
        player = Player(CostModel(bandwidth=20_000), plan_check="strict")
        with pytest.raises(PlanRejectedError) as exc:
            player.plan_multimedia(overcommitted_movie())
        assert [d.rule for d in exc.value.diagnostics] == ["MG009"]

    def test_off_policy_skips_the_check(self):
        player = Player(CostModel(bandwidth=20_000), plan_check="off")
        assert player.verify_plan(overcommitted_movie()) is None

    def test_clean_plan_passes_with_empty_diagnostics(self):
        movie = MultimediaObject("movie")
        movie.add_temporal(tiny_video(), at=0, label="picture")
        movie.add_temporal(tiny_audio(), at=0, label="music")
        player = Player(CostModel(bandwidth=40_000_000))
        report = player.play(movie)
        assert report.plan_diagnostics == []

    def test_invalid_policy_rejected_at_construction(self):
        with pytest.raises(EngineError):
            Player(plan_check="paranoid")

    def test_custom_checker_overrides_default(self):
        player = Player(CostModel(bandwidth=40_000_000),
                        plan_checker=GraphChecker(ignore=("MG001",)))
        report = player.verify_plan(cyclic_movie())
        assert report.by_rule("MG001") == []


class TestVodGate:
    def test_broken_title_refused_at_publish(self):
        obs = Observability()
        server = VodServer(2_000_000, obs=obs)
        with pytest.raises(PlanRejectedError) as exc:
            server.publish("bad", broken_interpretation())
        assert any(d.rule == "MG002" for d in exc.value.diagnostics)
        assert obs.metrics.counter("vod.publish.rejections").total() == 1
        assert any(e.name == "publish.rejected" for e in obs.events.events())

    def test_off_policy_falls_back_to_plain_validation(self):
        from repro.errors import InterpretationError

        server = VodServer(2_000_000, plan_check="off")
        with pytest.raises(InterpretationError):  # no diagnostics attached
            server.publish("bad", broken_interpretation())

    def test_verify_title_reports_on_published_content(self):
        server = VodServer(2_000_000)
        server.publish("good", Recorder(MemoryBlob()).record([tiny_video()]))
        report = server.verify_title("good")
        assert report.ok
        with pytest.raises(EngineError):
            server.verify_title("absent")


class TestCatalogGate:
    def test_verified_multimedia_insert_rejects_cycles(self):
        db = MediaDatabase()
        with pytest.raises(PlanRejectedError):
            db.add_multimedia(cyclic_movie(), verify=True)
        assert db.multimedia() == []

    def test_unverified_insert_still_accepts(self):
        db = MediaDatabase()
        db.add_multimedia(cyclic_movie())
        assert db.multimedia() == ["outer"]

    def test_verified_interpretation_insert_rejects_dangling(self):
        db = MediaDatabase()
        with pytest.raises(PlanRejectedError):
            db.add_interpretation(broken_interpretation(), verify=True)

    def test_verified_object_insert_accepts_clean(self):
        db = MediaDatabase()
        db.add_object(tiny_video(), verify=True, title="The Timed Stream")
        assert db.attributes_of("v1") == {"title": "The Timed Stream"}

    def test_duplicate_still_caught_before_verification(self):
        db = MediaDatabase()
        db.add_object(tiny_video())
        with pytest.raises(CatalogError):
            db.add_object(tiny_video(), verify=True)
