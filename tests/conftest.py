"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.elements import MediaElement
from repro.core.media_types import media_type_registry
from repro.core.streams import TimedStream, TimedTuple
from repro.media import frames, signals


@pytest.fixture
def rng():
    return np.random.default_rng(20260704)


@pytest.fixture
def small_frame():
    """A smooth 64x48 RGB frame."""
    return frames.gradient_frame(64, 48)


@pytest.fixture
def small_frames():
    """Eight coherent 64x48 frames (a tiny shot)."""
    return frames.scene(64, 48, 8, "orbit")


@pytest.fixture
def tone():
    """0.25 s of a 440 Hz tone at 8 kHz."""
    return signals.sine(440, 0.25, 8000)


@pytest.fixture
def video_type():
    return media_type_registry.get("pal-video")


@pytest.fixture
def cd_type():
    return media_type_registry.get("cd-audio")


@pytest.fixture
def uniform_video_stream(video_type):
    """Ten uniform raw-video elements."""
    return TimedStream.from_elements(
        video_type, [MediaElement(size=1536) for _ in range(10)]
    )


@pytest.fixture
def gapped_stream(video_type):
    """A non-continuous stream with one gap."""
    tuples = [
        TimedTuple(MediaElement(size=10), 0, 2),
        TimedTuple(MediaElement(size=10), 2, 2),
        TimedTuple(MediaElement(size=10), 6, 2),  # gap at [4, 6)
    ]
    return TimedStream(video_type, tuples, validate_constraints=False)
