"""Tests for the exception hierarchy."""

import inspect

import pytest

from repro import errors


def all_error_classes():
    return [
        obj for _, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, Exception)
    ]


class TestHierarchy:
    def test_single_root(self):
        """Every library error derives from MediaModelError."""
        for cls in all_error_classes():
            assert issubclass(cls, errors.MediaModelError), cls

    def test_specific_parentage(self):
        assert issubclass(errors.BlobBoundsError, errors.BlobError)
        assert issubclass(errors.StreamConstraintError, errors.StreamError)
        assert issubclass(errors.ContainerFormatError, errors.StorageError)
        assert issubclass(errors.SchedulingError, errors.EngineError)
        assert issubclass(errors.ResourceError, errors.EngineError)
        assert issubclass(errors.CatalogError, errors.QueryError)
        assert issubclass(errors.TransientBlobError, errors.BlobError)
        assert issubclass(errors.BlobCorruptionError, errors.BlobError)
        assert issubclass(errors.PlaybackAbortError, errors.EngineError)

    def test_authorization_error_in_query_family(self):
        from repro.query.authorization import AuthorizationError

        assert issubclass(AuthorizationError, errors.QueryError)
        assert issubclass(AuthorizationError, errors.MediaModelError)

    def test_catchable_as_root(self):
        with pytest.raises(errors.MediaModelError):
            raise errors.CodecError("boom")

    def test_count_is_stable(self):
        """The hierarchy is part of the public API; additions are fine
        but should be deliberate (update this count when extending)."""
        assert len(all_error_classes()) == 35
