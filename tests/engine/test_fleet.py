"""Tests for the sharded VOD fleet: routing, serving, failover, health."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.engine.fleet import Fleet, place
from repro.engine.recorder import Recorder
from repro.engine.vod import ServeOptions, SessionRequest
from repro.errors import EngineError, SimulatedCrash
from repro.faults.crash import CrashInjector, CrashSite
from repro.faults.disk import SimulatedMedium
from repro.media import frames
from repro.media.objects import video_object
from repro.obs import Observability


def make_title(name, frame_count=25, size=48):
    video = video_object(frames.scene(size, size * 3 // 4, frame_count,
                                      "orbit"), name)
    return Recorder(MemoryBlob()).record(
        [video], encoders={name: JpegLikeCodec(quality=40).encode},
        interpretation_name=f"{name}-capture",
    )


@pytest.fixture(scope="module")
def movie():
    return make_title("feature")


@pytest.fixture(scope="module")
def short():
    return make_title("short", frame_count=12)


def build_fleet(movie, short, **kwargs):
    fleet = Fleet(bandwidth=2_000_000, shards=3, **kwargs)
    fleet.publish("feature", movie)
    fleet.publish("short", short)
    return fleet


def requests(n, title="feature"):
    return [SessionRequest(client=f"client-{i}", title=title)
            for i in range(n)]


class TestRouting:
    def test_deterministic(self):
        shards = ["shard0", "shard1", "shard2"]
        for title in ("feature", "short", "news", "archive-1994"):
            assert place(title, shards) == place(title, list(shards))

    def test_total(self):
        shards = ["shard0", "shard1", "shard2"]
        for i in range(50):
            assert place(f"title-{i}", shards) in shards

    def test_needs_a_live_shard(self):
        with pytest.raises(EngineError, match="at least one"):
            place("feature", [])

    def test_kill_only_moves_the_dead_shards_titles(self, movie, short):
        fleet = build_fleet(movie, short)
        titles = [f"t{i}" for i in range(40)]
        before = {t: place(t, fleet.live_shards) for t in titles}
        fleet.kill_shard("shard1")
        after = {t: place(t, fleet.live_shards) for t in titles}
        for title in titles:
            if before[title] != "shard1":
                assert after[title] == before[title]
            else:
                assert after[title] != "shard1"

    def test_route_uses_live_set(self, movie, short):
        fleet = build_fleet(movie, short)
        owner = fleet.route("feature")
        fleet.kill_shard(owner)
        assert fleet.route("feature") != owner
        assert fleet.route("feature") in fleet.live_shards

    def test_whole_fleet_dead(self, movie, short):
        fleet = build_fleet(movie, short)
        for name in fleet.shard_names:
            fleet.kill_shard(name)
        with pytest.raises(EngineError, match="dead"):
            fleet.route("feature")


class TestCatalogAndAdmission:
    def test_publish_replicates(self, movie, short):
        fleet = build_fleet(movie, short)
        for name in fleet.shard_names:
            assert fleet.shard(name).titles() == ["feature", "short"]
        assert fleet.titles() == ["feature", "short"]

    def test_capacity_sums_live_shards(self, movie, short):
        fleet = build_fleet(movie, short)
        per_shard = fleet.shard("shard0").capacity("feature")
        assert fleet.capacity("feature") == 3 * per_shard
        fleet.kill_shard("shard2")
        assert fleet.capacity("feature") == 2 * per_shard

    def test_fleet_admission_uses_owning_shard_budget(self, movie, short):
        fleet = build_fleet(movie, short)
        owner_capacity = fleet.shard(
            fleet.route("feature")).capacity("feature")
        admitted, rejected = fleet.admit(requests(owner_capacity + 5))
        assert len(admitted) == owner_capacity
        assert len(rejected) == 5

    def test_admit_mirrors_legacy_shape(self, movie, short):
        fleet = build_fleet(movie, short)
        with pytest.deprecated_call():
            admitted, rejected = fleet.admit([("a", "feature")])
        assert admitted == [("a", "feature")] and rejected == []


class TestFleetServe:
    def test_merged_report(self, movie, short):
        fleet = build_fleet(movie, short)
        report = fleet.serve(requests(4) + requests(3, "short"))
        assert report.admitted_count == 7
        assert report.failed == []
        assert {s.identity for s in report.admitted} == {
            r.key for r in requests(4) + requests(3, "short")
        }

    def test_checkpoint_to_rejected(self, movie, short):
        fleet = build_fleet(movie, short, checkpoint_fs=SimulatedMedium())
        with pytest.raises(EngineError, match="manages shard checkpoints"):
            fleet.serve(requests(1),
                        ServeOptions(checkpoint_to="/x", checkpoint_fs=None))

    def test_scoped_metric_namespaces(self, movie, short):
        obs = Observability()
        fleet = build_fleet(movie, short, obs=obs)
        fleet.serve(requests(2))
        names = obs.metrics.names()
        owner = fleet.route("feature")
        assert f"{owner}.vod.requests" in names
        assert "fleet.requests" in names
        assert "vod.requests" not in names

    def test_unarmed_crash_propagates_without_checkpoint_fs(
            self, movie, short):
        owner = None
        probe = build_fleet(movie, short)
        owner = probe.route("feature")
        fleet = build_fleet(movie, short, crash={
            owner: CrashInjector(CrashSite("vod.serve.session", 1)),
        })
        with pytest.raises(SimulatedCrash):
            fleet.serve(requests(4))


class TestFailover:
    def run_failover(self, movie, short, clients=5, occurrence=2):
        probe = build_fleet(movie, short)
        owner = probe.route("feature")
        obs = Observability()
        fleet = build_fleet(
            movie, short, obs=obs,
            checkpoint_fs=SimulatedMedium(),
            crash={owner: CrashInjector(
                CrashSite("vod.serve.session", occurrence))},
        )
        report = fleet.serve(requests(clients))
        return fleet, report, owner, obs

    def test_crash_absorbed_and_accounted_exactly_once(self, movie, short):
        fleet, report, owner, _ = self.run_failover(movie, short)
        assert owner in fleet.dead_shards
        # occurrence=2 -> two sessions completed durably before the
        # crash; they carry over as recovered, the rest re-serve.
        assert report.recovered == 2
        assert report.recovered + report.admitted_count \
            + len(report.failed) == 5
        assert all(s.resumed for s in report.admitted)

    def test_failover_health_rollup(self, movie, short):
        fleet, _, owner, _ = self.run_failover(movie, short)
        health = fleet.health()
        assert health.status == "degraded"
        assert owner in health.dead
        # Exactly-once accounting: identities that finished before the
        # crash are recovered; every displaced identity re-serves once.
        assert health.recovered == 2
        assert health.sessions == 3
        assert health.sessions + health.recovered == 5
        assert health.clean + health.underrun + health.degraded \
            + health.failed == health.sessions
        assert "fleet:" in health.summary()

    def test_failover_keeps_deadline_slo_green(self, movie, short):
        _, _, _, obs = self.run_failover(movie, short)
        fleet2, report, _, _ = self.run_failover(movie, short)
        health = fleet2.health()
        deadline = [v for v in health.slo
                    if v.slo == "deadline-miss-rate"]
        assert deadline, "deadline-miss-rate verdict missing"
        assert all(v.ok for v in deadline)

    def test_crash_before_any_checkpoint_reserves_whole_group(
            self, movie, short):
        fleet, report, owner, _ = self.run_failover(
            movie, short, occurrence=0)
        assert report.recovered == 0
        assert report.admitted_count + len(report.failed) == 5
        assert owner in fleet.dead_shards


class TestFleetHealth:
    def test_clean_fleet_is_ok(self, movie, short):
        fleet = build_fleet(movie, short)
        fleet.serve(requests(3))
        health = fleet.health()
        assert health.ok
        assert health.sessions == 3 and health.clean == 3
        assert health.dead == ()
        exported = health.export()
        assert exported["status"] == "ok"
        assert set(exported["shards"]) == set(fleet.shard_names)

    def test_admin_kill_degrades_status(self, movie, short):
        fleet = build_fleet(movie, short)
        fleet.serve(requests(2))
        fleet.kill_shard("shard0")
        assert fleet.health().status == "degraded"

    def test_rejections_counted_distinctly(self, movie, short):
        fleet = build_fleet(movie, short)
        owner_capacity = fleet.shard(
            fleet.route("feature")).capacity("feature")
        fleet.serve(requests(owner_capacity + 3))
        assert fleet.health().rejected == 3


class TestFleetTelemetry:
    def overloaded_serve(self, movie, short):
        from repro.core.rational import Rational
        from repro.obs.telemetry import Telemetry

        telemetry = Telemetry()
        fleet = Fleet(bandwidth=21_000, shards=3,
                      obs=Observability(), telemetry=telemetry)
        fleet.publish("feature", movie)
        fleet.publish("short", short)
        transitions = []

        def watch(alert, at):
            health = fleet.health()
            transitions.append((str(at), alert.name, alert.state,
                                health.status,
                                tuple(a["name"]
                                      for a in health.firing_alerts)))

        telemetry.alerts.on_transition = watch
        fleet.serve(
            [SessionRequest(client=f"client-{i}", title="feature",
                            arrival_time=Rational(i, 8))
             for i in range(6)],
            enforce_admission=False,
        )
        return fleet, telemetry, transitions

    def test_alert_lifecycle_runs_during_fleet_serve(self, movie, short):
        fleet, telemetry, transitions = self.overloaded_serve(movie, short)
        states = [t[2] for t in transitions]
        assert "pending" in states and "firing" in states
        assert "resolved" in states
        # mid-serve, a firing alert degrades fleet health and is named
        firing = [t for t in transitions if t[2] == "firing"]
        assert firing
        for _, name, _, status, firing_names in firing:
            assert status != "ok"
            assert name in firing_names
        assert fleet.telemetry is telemetry

    def test_fleet_scrapes_are_byte_identical_across_runs(self, movie,
                                                          short):
        first = self.overloaded_serve(movie, short)[1]
        second = self.overloaded_serve(movie, short)[1]
        assert first.store.dump() == second.store.dump()
        assert first.store.alert_rows() == second.store.alert_rows()
