"""Tests for deadline scheduling of presentation events."""

import pytest

from repro.core.rational import Rational
from repro.engine.scheduler import (
    PresentationEvent,
    schedule_events,
    utilization,
)
from repro.errors import SchedulingError


def event(label, release, cost, deadline):
    return PresentationEvent(label, Rational(*release) if isinstance(release, tuple) else release,
                             Rational(*cost) if isinstance(cost, tuple) else cost,
                             Rational(*deadline) if isinstance(deadline, tuple) else deadline)


class TestValidation:
    def test_negative_cost(self):
        with pytest.raises(SchedulingError):
            event("a", 0, -1, 1)

    def test_negative_release(self):
        with pytest.raises(SchedulingError):
            event("a", -1, 0, 1)

    def test_duplicate_labels(self):
        with pytest.raises(SchedulingError):
            schedule_events([event("a", 0, 1, 2), event("a", 0, 1, 3)])


class TestFeasibleSets:
    def test_underloaded_meets_all_deadlines(self):
        # 25 fps frames each costing 10 ms: utilization 0.25.
        events = [
            event(f"f{i}", 0, (1, 100), ((i + 1), 25)) for i in range(25)
        ]
        report = schedule_events(events)
        assert report.miss_count == 0
        assert report.max_lateness <= 0
        assert report.on_time_fraction() == 1.0

    def test_makespan(self):
        events = [event("a", 0, 2, 10), event("b", 0, 3, 10)]
        assert schedule_events(events).makespan == 5

    def test_respects_release_times(self):
        events = [event("a", 5, 1, 10)]
        report = schedule_events(events)
        assert report.completion["a"] == 6

    def test_idle_gap_between_releases(self):
        events = [event("a", 0, 1, 2), event("b", 10, 1, 12)]
        report = schedule_events(events)
        assert report.completion["b"] == 11


class TestEdfOrdering:
    def test_earliest_deadline_first(self):
        events = [
            event("late", 0, 1, 100),
            event("urgent", 0, 1, 2),
        ]
        report = schedule_events(events)
        assert report.completion["urgent"] < report.completion["late"]

    def test_overload_misses_reported(self):
        # Two unit-cost jobs both due at 1: one must be late.
        events = [event("a", 0, 1, 1), event("b", 0, 1, 1)]
        report = schedule_events(events)
        assert report.miss_count == 1
        assert report.max_lateness == 1

    def test_jitter_zero_when_all_on_time(self):
        events = [event(f"e{i}", 0, (1, 10), i + 1) for i in range(5)]
        report = schedule_events(events)
        assert report.jitter == 0

    def test_jitter_positive_under_overload(self):
        events = [event(f"e{i}", 0, 1, 1) for i in range(4)]
        report = schedule_events(events)
        assert report.jitter > 0

    def test_empty(self):
        report = schedule_events([])
        assert report.makespan == 0
        assert report.miss_count == 0


class TestUtilization:
    def test_value(self):
        events = [event(f"e{i}", 0, (1, 10), (i + 1, 2)) for i in range(4)]
        # 0.4 s of work over a 2 s horizon.
        assert utilization(events) == Rational(1, 5)

    def test_empty(self):
        assert utilization([]) == 0

    def test_instant_horizon(self):
        events = [event("a", 0, 1, 0)]
        assert utilization(events) > 1
