"""Tests for the activity dataflow engine (§6's forward pointer)."""

import pytest

from repro.core.elements import MediaElement
from repro.core.media_types import media_type_registry
from repro.core.rational import Rational
from repro.core.streams import TimedStream, TimedTuple
from repro.engine.activities import (
    ActivityGraph,
    Consumer,
    Port,
    Producer,
    Transform,
    pipeline,
)
from repro.errors import EngineError


@pytest.fixture
def stream():
    video = media_type_registry.get("pal-video")
    return TimedStream.from_elements(
        video, [MediaElement(payload=i, size=10) for i in range(8)]
    )


class TestPort:
    def test_fifo(self):
        port = Port("p", capacity=2)
        a = TimedTuple(MediaElement(size=1), 0, 1)
        b = TimedTuple(MediaElement(size=1), 1, 1)
        port.put(a)
        port.put(b)
        assert port.take() is a
        assert port.take() is b
        assert port.take() is None

    def test_overflow(self):
        port = Port("p", capacity=1)
        port.put(TimedTuple(MediaElement(size=1), 0, 1))
        with pytest.raises(EngineError, match="overflow"):
            port.put(TimedTuple(MediaElement(size=1), 1, 1))

    def test_capacity_validation(self):
        with pytest.raises(EngineError):
            Port("p", capacity=0)


class TestPipeline:
    def test_identity_flow(self, stream):
        consumer = pipeline(stream)
        assert consumer.count == 8
        assert consumer.bytes == 80
        assert [t.element.payload for t in consumer.collected] == list(range(8))

    def test_transform_applied(self, stream):
        double = lambda e: MediaElement(payload=e.payload * 2, size=e.size)
        consumer = pipeline(stream, double)
        assert [t.element.payload for t in consumer.collected] == \
            [0, 2, 4, 6, 8, 10, 12, 14]

    def test_filter_drops(self, stream):
        keep_even = lambda e: e if e.payload % 2 == 0 else None
        consumer = pipeline(stream, keep_even)
        assert consumer.count == 4

    def test_chained_transforms(self, stream):
        add1 = lambda e: MediaElement(payload=e.payload + 1, size=e.size)
        consumer = pipeline(stream, add1, add1, add1)
        assert consumer.collected[0].element.payload == 3

    def test_timing_preserved(self, stream):
        consumer = pipeline(stream, lambda e: e)
        assert [t.start for t in consumer.collected] == list(range(8))


class TestClockedExecution:
    def test_arrival_times_follow_element_starts(self, stream):
        graph = ActivityGraph()
        producer = graph.add(Producer("src", stream))
        consumer = graph.add(Consumer("sink"))
        graph.connect(producer, consumer)
        final = graph.run()
        # Element i becomes available at i/25 s; the last at 7/25.
        assert final == Rational(7, 25)
        assert consumer.arrival_times[0] == 0
        assert consumer.arrival_times[-1] == Rational(7, 25)

    def test_two_producers_merge_in_time(self, stream):
        from repro.core import stream_ops

        shifted = stream_ops.translate(stream, 4)
        graph = ActivityGraph()
        a = graph.add(Producer("a", stream))
        b = graph.add(Producer("b", shifted))
        consumer = graph.add(Consumer("sink"))
        graph.connect(a, consumer)
        graph.connect(b, consumer)
        graph.run()
        assert consumer.count == 16
        # Arrivals are non-decreasing in media time.
        assert consumer.arrival_times == sorted(consumer.arrival_times)

    def test_fan_out(self, stream):
        graph = ActivityGraph()
        producer = graph.add(Producer("src", stream))
        left = graph.add(Consumer("left"))
        right = graph.add(Consumer("right"))
        graph.connect(producer, left)
        graph.connect(producer, right)
        graph.run()
        assert left.count == right.count == 8

    def test_backpressure_through_small_ports(self, stream):
        graph = ActivityGraph()
        producer = graph.add(Producer("src", stream))
        slow = graph.add(Transform("slow", lambda e: e))
        consumer = graph.add(Consumer("sink"))
        graph.connect(producer, slow, capacity=1)
        graph.connect(slow, consumer, capacity=1)
        graph.run()
        assert consumer.count == 8

    def test_transform_counters(self, stream):
        graph = ActivityGraph()
        producer = graph.add(Producer("src", stream))
        filt = graph.add(Transform("f", lambda e: None))
        consumer = graph.add(Consumer("sink"))
        graph.connect(producer, filt)
        graph.connect(filt, consumer)
        graph.run()
        assert filt.processed == 8
        assert filt.dropped == 8
        assert consumer.count == 0

    def test_duplicate_names_rejected(self, stream):
        graph = ActivityGraph()
        graph.add(Producer("x", stream))
        with pytest.raises(EngineError, match="already"):
            graph.add(Consumer("x"))

    def test_connect_requires_membership(self, stream):
        graph = ActivityGraph()
        producer = Producer("src", stream)
        consumer = graph.add(Consumer("sink"))
        with pytest.raises(EngineError):
            graph.connect(producer, consumer)

    def test_empty_stream(self):
        video = media_type_registry.get("pal-video")
        empty = TimedStream(video, [])
        consumer = pipeline(empty)
        assert consumer.count == 0

    def test_consumer_without_retention(self, stream):
        graph = ActivityGraph()
        producer = graph.add(Producer("src", stream))
        consumer = graph.add(Consumer("sink", keep_elements=False))
        graph.connect(producer, consumer)
        graph.run()
        assert consumer.count == 8
        assert consumer.collected == []
