"""Equivalence suite: kernel-scheduled serve vs the seed stepping loop.

The kernel rebuild of :meth:`VodServer.serve` must be a pure refactor
for uniform-arrival batches: byte-identical observability exports and
identical :class:`ServerReport`\\s against :meth:`serve_stepping`, the
seed loop retained verbatim as the oracle — including for same-seed
faulted runs, adaptation runs and checkpointed runs.
"""

import dataclasses

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.engine.player import AdaptationPolicy, RetryPolicy
from repro.engine.recorder import Recorder
from repro.engine.vod import ServeOptions, SessionRequest, VodServer
from repro.faults.disk import SimulatedMedium
from repro.faults.plan import FaultPlan
from repro.media import frames
from repro.media.objects import video_object
from repro.obs import Observability, to_json_lines


def make_title(name, frame_count=25, size=48):
    video = video_object(frames.scene(size, size * 3 // 4, frame_count,
                                      "orbit"), name)
    return Recorder(MemoryBlob()).record(
        [video], encoders={name: JpegLikeCodec(quality=40).encode},
        interpretation_name=f"{name}-capture",
    )


@pytest.fixture(scope="module")
def movie():
    return make_title("feature")


@pytest.fixture(scope="module")
def short():
    return make_title("short", frame_count=12)


def build_server(movie, short, obs=None):
    server = VodServer(bandwidth=2_000_000, prefetch_depth=8, obs=obs)
    server.publish("feature", movie)
    server.publish("short", short)
    return server


def requests(n, title="feature"):
    return [SessionRequest(client=f"client-{i}", title=title)
            for i in range(n)]


def run_both(movie, short, reqs, options=None):
    """Serve the same batch through the kernel and the seed loop.

    Separate servers, separate observability sinks — the only shared
    inputs are the published titles and the request batch. Returns
    ``(kernel_report, seed_report, kernel_obs, seed_obs)``.
    """
    obs_a, obs_b = Observability(), Observability()
    server_a = build_server(movie, short, obs=obs_a)
    server_b = build_server(movie, short, obs=obs_b)
    report_a = server_a.serve(reqs, options)
    report_b = server_b.serve_stepping(reqs, options)
    return report_a, report_b, obs_a, obs_b


class TestCleanEquivalence:
    def test_reports_and_exports_identical(self, movie, short):
        reqs = requests(3) + requests(2, "short")
        report_a, report_b, obs_a, obs_b = run_both(movie, short, reqs)
        assert report_a == report_b
        assert to_json_lines(obs_a) == to_json_lines(obs_b)

    def test_single_session(self, movie, short):
        report_a, report_b, obs_a, obs_b = run_both(
            movie, short, requests(1))
        assert report_a == report_b
        assert to_json_lines(obs_a) == to_json_lines(obs_b)

    def test_overloaded_batch_same_rejections(self, movie, short):
        obs_a, obs_b = Observability(), Observability()
        server_a = build_server(movie, short, obs=obs_a)
        server_b = build_server(movie, short, obs=obs_b)
        capacity = server_a.capacity("feature")
        reqs = requests(capacity + 4)
        report_a = server_a.serve(reqs)
        report_b = server_b.serve_stepping(reqs)
        assert report_a == report_b
        assert len(report_a.rejected) == 4
        assert to_json_lines(obs_a) == to_json_lines(obs_b)

    def test_legacy_tuples_match_native_requests(self, movie, short):
        obs_a, obs_b = Observability(), Observability()
        server_a = build_server(movie, short, obs=obs_a)
        server_b = build_server(movie, short, obs=obs_b)
        native = requests(3)
        legacy = [(r.client, r.title) for r in native]
        report_a = server_a.serve(native)
        with pytest.deprecated_call():
            report_b = server_b.serve(legacy)
        assert report_a == report_b
        assert to_json_lines(obs_a) == to_json_lines(obs_b)


class TestFaultedEquivalence:
    def test_same_seed_faulted_run(self, movie, short):
        plan = FaultPlan(seed=55, page_size=512, bad_page_rate=0.05)
        report_a, report_b, obs_a, obs_b = run_both(
            movie, short, requests(3),
            ServeOptions(fault_plan=plan),
        )
        assert report_a == report_b
        assert to_json_lines(obs_a) == to_json_lines(obs_b)

    def test_faulted_run_with_fallbacks(self, movie, short):
        # A strict retry policy forces some sessions through the
        # degraded-fallback path; the kernel must replay it in the
        # same order with the same fault-visit counters.
        plan = FaultPlan(seed=55, page_size=512, bad_page_rate=0.2)
        strict = RetryPolicy(max_retries=0, abort_skip_fraction=0.01)
        report_a, report_b, obs_a, obs_b = run_both(
            movie, short, requests(4),
            ServeOptions(fault_plan=plan, retry_policy=strict),
        )
        assert report_a == report_b
        assert to_json_lines(obs_a) == to_json_lines(obs_b)

    def test_adaptation_run(self, movie, short):
        plan = FaultPlan(seed=7, page_size=512, bad_page_rate=0.1)
        adaptation = AdaptationPolicy(levels=3)
        report_a, report_b, obs_a, obs_b = run_both(
            movie, short, requests(3),
            ServeOptions(fault_plan=plan, adaptation=adaptation),
        )
        assert report_a == report_b
        assert to_json_lines(obs_a) == to_json_lines(obs_b)


class TestCheckpointedEquivalence:
    def test_durable_checkpoint_bytes_identical(self, movie, short):
        fs_a, fs_b = SimulatedMedium(), SimulatedMedium()
        server_a = build_server(movie, short)
        server_b = build_server(movie, short)
        reqs = requests(3)
        server_a.serve(reqs, ServeOptions(
            checkpoint_to="/ckpt/batch.json", checkpoint_fs=fs_a))
        server_b.serve_stepping(reqs, ServeOptions(
            checkpoint_to="/ckpt/batch.json", checkpoint_fs=fs_b))
        from repro.durability.atomic import read_bytes
        assert read_bytes("/ckpt/batch.json", fs=fs_a) == \
            read_bytes("/ckpt/batch.json", fs=fs_b)


class TestReplayMemo:
    def test_memo_off_when_observed(self, movie, short):
        # With a live sink every session must run for real: per-session
        # spans are part of the export contract.
        obs = Observability()
        server = build_server(movie, short, obs=obs)
        server.serve(requests(5))
        assert len(obs.tracer.named("vod.session")) == 5

    def test_memo_results_match_real_runs(self, movie, short):
        observed = build_server(movie, short, obs=Observability())
        memoized = build_server(movie, short)
        reqs = requests(6)
        report_a = observed.serve(reqs)
        report_b = memoized.serve(reqs)
        # PlaybackReport carries obs-derived extras (metrics snapshot,
        # SLO verdicts) that a null sink legitimately omits; the
        # simulation outcome itself must match exactly.
        def projection(report):
            return [dataclasses.replace(s.report, metrics=None, slo=[])
                    for s in report.admitted]
        assert projection(report_a) == projection(report_b)
        assert report_a.per_client_bandwidth == report_b.per_client_bandwidth
