"""Tests for the polymorphic ``Player.play`` front door, the deprecated
shims, and the policy ``replace`` helpers."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.core.composition import MultimediaObject
from repro.core.rational import Rational
from repro.engine.player import (
    AdaptationPolicy,
    CostModel,
    Player,
    RetryPolicy,
)
from repro.engine.recorder import Recorder
from repro.errors import EngineError
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object
from repro.obs import Observability


@pytest.fixture(scope="module")
def movie():
    video = video_object(frames.scene(32, 24, 8, "orbit"), "video1")
    audio = audio_object(signals.sine(440, 0.2, 8000), "audio1",
                         sample_rate=8000)
    return Recorder(MemoryBlob()).record([video, audio])


@pytest.fixture
def player():
    return Player(CostModel(bandwidth=2_000_000))


def _multimedia():
    video = video_object(frames.scene(16, 16, 10, "pan"), "v")
    audio = audio_object(signals.sine(440, 0.4, 8000), "a",
                         sample_rate=8000, block_samples=320)
    multimedia = MultimediaObject("mm")
    multimedia.add_temporal(video, at=0, label="v")
    multimedia.add_temporal(audio, at=Rational(1, 5), label="a")
    return multimedia


class TestPolymorphicPlay:
    def test_plays_interpretation(self, player, movie):
        report = player.play(movie)
        assert report.element_count == len(movie.sequence("video1")) + len(
            movie.sequence("audio1")
        )

    def test_interpretation_with_names_and_offsets(self, player, movie):
        restricted = player.play(movie, names=["video1"])
        assert restricted.element_count == len(movie.sequence("video1"))
        shifted = player.play(movie, names=["video1"],
                              offsets={"video1": Rational(1)})
        assert shifted.duration >= restricted.duration

    def test_plays_multimedia_object(self, player):
        multimedia = _multimedia()
        report = player.play(multimedia)
        assert report.element_count > 0
        assert report == player.play(player.plan_multimedia(multimedia))

    def test_plays_planned_read_list(self, player, movie):
        reads = player.plan_interpretation(movie)
        assert player.play(reads) == player.play(movie)

    def test_empty_read_list(self, player):
        report = player.play([])
        assert report.element_count == 0

    def test_rejects_unknown_target(self, player):
        with pytest.raises(EngineError, match="cannot play"):
            player.play(42)

    def test_rejects_names_with_non_interpretation(self, player, movie):
        reads = player.plan_interpretation(movie)
        with pytest.raises(EngineError, match="names/offsets"):
            player.play(reads, names=["video1"])

    def test_rejects_mixed_list(self, player):
        with pytest.raises(EngineError, match="cannot play"):
            player.play([1, 2, 3])


class TestDeprecatedShims:
    def test_play_reads_warns_and_delegates(self, player, movie):
        reads = player.plan_interpretation(movie)
        with pytest.warns(DeprecationWarning, match="play_reads"):
            report = player.play_reads(reads)
        assert report == player.play(reads)

    def test_play_multimedia_warns_and_delegates(self, player):
        multimedia = _multimedia()
        with pytest.warns(DeprecationWarning, match="play_multimedia"):
            report = player.play_multimedia(multimedia)
        assert report == player.play(multimedia)


class TestKeywordOnlyPolicies:
    def test_retry_policy_rejects_positional(self):
        with pytest.raises(TypeError):
            RetryPolicy(5)

    def test_adaptation_policy_rejects_positional(self):
        with pytest.raises(TypeError):
            AdaptationPolicy(3)


class TestReplaceHelpers:
    def test_cost_model_replace(self):
        base = CostModel(bandwidth=1_000_000)
        faster = base.replace(bandwidth=2_000_000)
        assert faster.bandwidth == Rational(2_000_000)
        assert faster.seek_time == base.seek_time
        assert base.bandwidth == Rational(1_000_000)  # original untouched

    def test_retry_policy_replace(self):
        lenient = RetryPolicy(abort_skip_fraction=0.5)
        unbounded = lenient.replace(abort_skip_fraction=None)
        assert unbounded.abort_skip_fraction is None
        assert unbounded.max_retries == lenient.max_retries

    def test_adaptation_policy_replace(self):
        policy = AdaptationPolicy(levels=3)
        pinned = policy.replace(max_level=0)
        assert pinned.max_level == 0
        assert pinned.levels == 3

    def test_replace_revalidates(self):
        with pytest.raises(EngineError):
            CostModel().replace(bandwidth=0)
        with pytest.raises(EngineError):
            RetryPolicy().replace(max_retries=-1)
        with pytest.raises(EngineError):
            AdaptationPolicy(levels=3).replace(min_level=5)


class TestReportMetrics:
    def test_instrumented_play_embeds_snapshot(self, movie):
        obs = Observability()
        player = Player(CostModel(bandwidth=2_000_000), obs=obs)
        report = player.play(movie)
        assert report.metrics is not None
        assert "engine.play.runs" in report.metrics
        assert "metrics:" in report.summary()
        assert "engine.play.elements" in report.metrics_summary()

    def test_uninstrumented_play_has_no_snapshot(self, player, movie):
        report = player.play(movie)
        assert report.metrics is None
        assert report.metrics_summary() == "metrics: (none captured)"
