"""Tests for resilient playback under injected storage faults."""

import pytest

from repro.core.rational import Rational
from repro.engine.player import (
    AdaptationPolicy,
    CostModel,
    Player,
    RetryPolicy,
    _PlannedRead,
)
from repro.errors import EngineError, PlaybackAbortError
from repro.faults import FaultPlan


def make_reads(count=50, size=1000, fps=25):
    return [
        _PlannedRead(f"v[{i}]", i * size, size, Rational(i, fps))
        for i in range(count)
    ]


def play(reads, plan=None, policy=None, adaptation=None, bandwidth=100_000,
         **player_kwargs):
    player = Player(CostModel(bandwidth=bandwidth), fault_plan=plan,
                    retry_policy=policy, adaptation=adaptation,
                    **player_kwargs)
    return player.play_reads(reads)


class TestCleanPathUnchanged:
    def test_no_plan_reports_clean_defaults(self):
        report = play(make_reads())
        assert report.retries == 0
        assert report.skipped_elements == 0
        assert report.glitches == 0
        assert report.delivered_quality == 1

    def test_zero_rate_plan_matches_clean_run(self):
        """An all-zero plan exercises the faulted path but must agree
        with the clean path on every metric."""
        reads = make_reads()
        clean = play(reads)
        faulted = play(reads, plan=FaultPlan(seed=4))
        assert faulted == clean


class TestRetries:
    def test_retries_charge_simulated_time(self):
        reads = make_reads()
        plan = FaultPlan(seed=9, transient_rate=0.3)
        calm = play(reads, plan=plan,
                    policy=RetryPolicy(max_retries=10, backoff=Rational(0)))
        slow = play(reads, plan=plan,
                    policy=RetryPolicy(max_retries=10,
                                       backoff=Rational(1, 10)))
        assert calm.retries == slow.retries > 0
        # Backoff pauses are simulated time: they push lateness/underruns up.
        assert slow.max_lateness > calm.max_lateness
        assert slow.underruns >= calm.underruns

    def test_all_elements_recovered_with_enough_retries(self):
        reads = make_reads()
        report = play(reads, plan=FaultPlan(seed=9, transient_rate=0.3),
                      policy=RetryPolicy(max_retries=50))
        assert report.skipped_elements == 0
        assert report.element_count == len(reads)
        assert report.retries > 0

    def test_same_seed_runs_are_identical(self):
        reads = make_reads()
        plan = FaultPlan(seed=123, transient_rate=0.2, bad_page_rate=0.05,
                         corruption_rate=0.1, degraded_fraction=0.3)
        adaptation = AdaptationPolicy(levels=3)
        a = play(reads, plan=plan, adaptation=adaptation)
        b = play(reads, plan=plan, adaptation=adaptation)
        assert a == b

    def test_different_seeds_differ(self):
        reads = make_reads(count=200)
        a = play(reads, plan=FaultPlan(seed=1, transient_rate=0.3))
        b = play(reads, plan=FaultPlan(seed=2, transient_rate=0.3))
        assert a != b


class TestSkipsAndGlitches:
    def test_bad_pages_skip_with_glitch(self):
        reads = make_reads()
        report = play(reads, plan=FaultPlan(seed=31, bad_page_rate=0.2))
        assert report.skipped_elements > 0
        assert 0 < report.glitches <= report.skipped_elements
        assert report.element_count == len(reads) - report.skipped_elements
        assert len(report.per_read) == report.element_count

    def test_consecutive_skips_merge_into_one_glitch(self):
        reads = make_reads(count=10)
        # Every page bad: one long glitch, ten skips.
        report = play(reads, plan=FaultPlan(seed=31, bad_page_rate=1.0))
        assert report.skipped_elements == 10
        assert report.glitches == 1
        assert report.element_count == 0

    def test_exhausted_retries_skip(self):
        reads = make_reads()
        report = play(reads, plan=FaultPlan(seed=17, transient_rate=0.9),
                      policy=RetryPolicy(max_retries=1))
        assert report.skipped_elements > 0

    def test_timeline_is_not_shortened_by_skips(self):
        reads = make_reads()
        clean = play(reads)
        faulted = play(reads, plan=FaultPlan(seed=31, bad_page_rate=0.2))
        assert faulted.duration == clean.duration

    def test_abort_when_skips_exceed_tolerance(self):
        reads = make_reads()
        with pytest.raises(PlaybackAbortError, match="beyond"):
            play(reads, plan=FaultPlan(seed=31, bad_page_rate=0.9),
                 policy=RetryPolicy(abort_skip_fraction=0.25))


class TestAdaptation:
    def test_degraded_bandwidth_lowers_delivered_quality(self):
        reads = make_reads()
        plan = FaultPlan(seed=41, degraded_fraction=0.6, degradation_span=8,
                         degraded_bandwidth_factor=Rational(1, 4))
        report = play(reads, plan=plan, adaptation=AdaptationPolicy(levels=3))
        assert report.skipped_elements == 0
        assert report.delivered_quality < 1
        assert report.delivered_quality > 0

    def test_adaptation_reduces_required_rate(self):
        reads = make_reads()
        plan = FaultPlan(seed=41, degraded_fraction=0.6, degradation_span=8,
                         degraded_bandwidth_factor=Rational(1, 4))
        fixed = play(reads, plan=plan)
        adapted = play(reads, plan=plan, adaptation=AdaptationPolicy(levels=3))
        assert adapted.required_rate < fixed.required_rate

    def test_full_bandwidth_keeps_full_quality(self):
        reads = make_reads()
        report = play(reads, plan=FaultPlan(seed=41),
                      adaptation=AdaptationPolicy(levels=3))
        assert report.delivered_quality == 1

    def test_sequences_filter(self):
        policy = AdaptationPolicy(levels=2, sequences=frozenset({"video"}))
        assert policy.applies_to("video[3]")
        assert not policy.applies_to("audio[3]")

    def test_max_level_caps_quality(self):
        policy = AdaptationPolicy(levels=3, max_level=0)
        assert policy.level_for(Rational(1)) == 0

    def test_level_selection(self):
        policy = AdaptationPolicy(levels=3)
        assert policy.level_for(Rational(1)) == 2
        assert policy.level_for(Rational(1, 2)) == 0
        assert policy.level_for(Rational(2, 3)) == 1
        assert policy.level_for(Rational(1, 100)) == 0  # never below base

    def test_validation(self):
        with pytest.raises(EngineError, match="levels"):
            AdaptationPolicy(levels=0)
        with pytest.raises(EngineError, match="fractions"):
            AdaptationPolicy(levels=2, fractions=(Rational(1),))
        with pytest.raises(EngineError, match="non-decreasing"):
            AdaptationPolicy(
                levels=2, fractions=(Rational(1), Rational(1, 2))
            )
        with pytest.raises(EngineError, match="full element"):
            AdaptationPolicy(
                levels=2, fractions=(Rational(1, 4), Rational(1, 2))
            )
        with pytest.raises(EngineError, match="max_level"):
            AdaptationPolicy(levels=3, min_level=1, max_level=0)


class TestSatellites:
    def test_stream_lateness_does_not_conflate_prefixes(self):
        from repro.engine.player import PlaybackReport

        report = PlaybackReport(
            element_count=2, duration=Rational(1), required_rate=Rational(1),
            startup_delay=Rational(0), underruns=0, underrun_fraction=0.0,
            max_lateness=Rational(0), jitter=Rational(0), prefetch_depth=1,
            seeks=0,
            per_read=[
                ("audio[0]", Rational(0), Rational(0)),
                ("audio2[0]", Rational(1), Rational(1)),
            ],
        )
        lateness, deadlines = report.stream_lateness("audio")
        assert deadlines == [Rational(0)]
        # Explicit bracketed prefixes still match verbatim.
        lateness2, deadlines2 = report.stream_lateness("audio2[")
        assert deadlines2 == [Rational(1)]

    def test_cost_model_rejects_negative_seek(self):
        with pytest.raises(EngineError, match="seek_time"):
            CostModel(seek_time=Rational(-1, 100))

    def test_cost_model_rejects_nonpositive_decode_rate(self):
        with pytest.raises(EngineError, match="decode_rate"):
            CostModel(decode_rate=Rational(0))

    def test_retry_policy_validation(self):
        with pytest.raises(EngineError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(EngineError, match="backoff_factor"):
            RetryPolicy(backoff_factor=Rational(1, 2))
        with pytest.raises(EngineError, match="abort_skip_fraction"):
            RetryPolicy(abort_skip_fraction=0.0)

    def test_degraded_bandwidth_scales_only_transfer(self):
        model = CostModel(bandwidth=1000, seek_time=Rational(1, 10),
                          decode_rate=Rational(500))
        full = model.element_cost(100, contiguous=False)
        halved = model.element_cost(100, contiguous=False,
                                    bandwidth_factor=Rational(1, 2))
        # Transfer term doubles; seek and decode terms do not.
        assert halved - full == Rational(100, 1000)
