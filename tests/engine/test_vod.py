"""Tests for the video-on-demand server simulation."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.engine.recorder import Recorder
from repro.engine.vod import VodServer
from repro.errors import EngineError, ResourceError
from repro.media import frames
from repro.media.objects import video_object


def make_title(name, frame_count=25, size=48):
    video = video_object(frames.scene(size, size * 3 // 4, frame_count,
                                      "orbit"), name)
    return Recorder(MemoryBlob()).record(
        [video], encoders={name: JpegLikeCodec(quality=40).encode},
        interpretation_name=f"{name}-capture",
    )


@pytest.fixture(scope="module")
def movie():
    return make_title("feature")


@pytest.fixture
def server(movie):
    server = VodServer(bandwidth=2_000_000, prefetch_depth=8)
    server.publish("feature", movie)
    return server


class TestCatalog:
    def test_publish_and_titles(self, server):
        assert server.titles() == ["feature"]

    def test_duplicate_title_rejected(self, server, movie):
        with pytest.raises(EngineError, match="already"):
            server.publish("feature", movie)

    def test_unknown_title(self, server):
        with pytest.raises(EngineError, match="unknown title"):
            server.required_rate("nope")

    def test_required_rate_from_descriptors(self, server, movie):
        rate = server.required_rate("feature")
        descriptor = movie.sequence("feature").media_descriptor
        assert rate == descriptor["average_data_rate"]

    def test_unrecorded_title_lacks_rates(self):
        from repro.core.interpretation import Interpretation, PlacementEntry
        from repro.core.media_types import media_type_registry

        video_type = media_type_registry.get("pal-video")
        blob = MemoryBlob(b"x" * 10)
        bare = Interpretation(blob)
        descriptor = video_type.make_media_descriptor(
            frame_rate=25, frame_width=8, frame_height=8, frame_depth=24,
            color_model="RGB",
        )
        bare.add("v", video_type, descriptor, [PlacementEntry(0, 0, 1, 10, 0)])
        server = VodServer(bandwidth=1_000_000)
        server.publish("bare", bare)
        with pytest.raises(ResourceError, match="average_data_rate"):
            server.required_rate("bare")


class TestAdmission:
    def test_capacity(self, server):
        capacity = server.capacity("feature")
        assert capacity >= 1
        rate = float(server.required_rate("feature"))
        assert capacity == int(2_000_000 / rate)

    def test_admit_up_to_capacity(self, server):
        capacity = server.capacity("feature")
        requests = [(f"c{i}", "feature") for i in range(capacity + 3)]
        admitted, rejected = server.admit(requests)
        assert len(admitted) == capacity
        assert len(rejected) == 3

    def test_margin_reduces_capacity(self, movie):
        tight = VodServer(bandwidth=2_000_000)
        tight.publish("feature", movie)
        careful = VodServer(bandwidth=2_000_000, admission_margin=2.0)
        careful.publish("feature", movie)
        assert careful.capacity("feature") <= tight.capacity("feature") // 2 + 1

    def test_parameter_validation(self):
        with pytest.raises(EngineError):
            VodServer(bandwidth=0)
        with pytest.raises(EngineError):
            VodServer(bandwidth=1, admission_margin=0.5)


class TestServing:
    def test_admitted_sessions_play_clean(self, server):
        capacity = server.capacity("feature")
        count = max(1, capacity // 2)
        report = server.serve([(f"c{i}", "feature") for i in range(count)])
        assert report.admitted_count == count
        assert report.clean_sessions() == count
        assert report.underrun_sessions() == 0

    def test_overload_without_admission_underruns(self, server):
        capacity = server.capacity("feature")
        overload = capacity * 3
        report = server.serve(
            [(f"c{i}", "feature") for i in range(overload)],
            enforce_admission=False,
        )
        assert report.admitted_count == overload
        assert report.underrun_sessions() > 0

    def test_admission_protects_service(self, server):
        """The point of admission control: the same overload, admitted
        properly, keeps every served session clean."""
        capacity = server.capacity("feature")
        requests = [(f"c{i}", "feature") for i in range(capacity * 3)]
        protected = server.serve(requests, enforce_admission=True)
        assert protected.underrun_sessions() == 0
        assert len(protected.rejected) == capacity * 2

    def test_empty_rejected(self, server):
        with pytest.raises(EngineError):
            server.serve([])

    def test_per_client_bandwidth(self, server):
        report = server.serve([("a", "feature"), ("b", "feature")])
        assert report.per_client_bandwidth == 1_000_000
