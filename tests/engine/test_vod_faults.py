"""Tests for VOD failover under storage faults."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.core.rational import Rational
from repro.engine.player import AdaptationPolicy, RetryPolicy
from repro.engine.recorder import Recorder
from repro.engine.vod import VodServer
from repro.faults import FaultPlan
from repro.media import frames
from repro.media.objects import video_object


@pytest.fixture(scope="module")
def movie():
    video = video_object(frames.scene(64, 48, 25, "orbit"), "feature")
    return Recorder(MemoryBlob()).record(
        [video], encoders={"feature": JpegLikeCodec(quality=40).encode},
    )


@pytest.fixture
def server(movie):
    server = VodServer(bandwidth=2_000_000, prefetch_depth=8)
    server.publish("feature", movie)
    return server


def requests(n):
    return [(f"c{i}", "feature") for i in range(n)]


class TestFaultedServing:
    def test_serve_with_faults_never_raises(self, server):
        plan = FaultPlan(seed=55, transient_rate=0.2, bad_page_rate=0.1,
                         corruption_rate=0.1, degraded_fraction=0.3)
        report = server.serve(requests(3), fault_plan=plan)
        assert report.admitted_count + report.failed_sessions() == 3

    def test_faulted_sessions_account_as_degraded(self, server):
        plan = FaultPlan(seed=55, page_size=512, bad_page_rate=0.15)
        report = server.serve(requests(2), fault_plan=plan)
        assert report.degraded_sessions() > 0
        assert report.clean_sessions() + report.underrun_sessions() >= 0
        total = report.degraded_sessions() + sum(
            1 for s in report.admitted
            if not report._is_degraded(s)
        )
        assert total == report.admitted_count

    def test_aborting_session_is_readmitted_degraded(self, server):
        plan = FaultPlan(seed=55, page_size=512, bad_page_rate=0.5)
        strict = RetryPolicy(abort_skip_fraction=0.01)
        report = server.serve(requests(2), fault_plan=plan,
                              retry_policy=strict)
        # The strict policy aborts first service; the server re-admits
        # in fallback mode rather than propagating or dropping.
        assert report.admitted_count == 2
        assert report.degraded_sessions() == 2
        assert all(s.degraded for s in report.admitted)
        assert report.failed_sessions() == 0

    def test_adaptation_degrades_instead_of_underrunning(self, server):
        plan = FaultPlan(seed=66, degraded_fraction=0.7, degradation_span=8,
                         degraded_bandwidth_factor=Rational(1, 4))
        adapted = server.serve(
            requests(2), fault_plan=plan,
            adaptation=AdaptationPolicy(levels=3),
        )
        assert adapted.mean_delivered_quality() < 1.0
        assert adapted.degraded_sessions() == 2

    def test_same_seed_serves_identically(self, server):
        plan = FaultPlan(seed=77, transient_rate=0.2, bad_page_rate=0.05)
        a = server.serve(requests(3), fault_plan=plan)
        b = server.serve(requests(3), fault_plan=plan)
        assert a == b

    def test_clean_serving_unchanged_by_fault_machinery(self, server):
        before = server.serve(requests(2))
        after = server.serve(requests(2), fault_plan=None)
        assert before == after
        assert before.degraded_sessions() == 0
        assert before.failed_sessions() == 0
        assert before.clean_sessions() == 2
