"""Tests for the player and recorder (capture -> interpretation -> play)."""

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.codecs.pcm import PcmCodec
from repro.core.rational import Rational
from repro.engine.player import CostModel, Player
from repro.engine.recorder import Recorder
from repro.errors import EngineError
from repro.media import frames, signals
from repro.media.objects import audio_object, video_object


@pytest.fixture
def captured():
    """A recorded interleaved movie: 1 s of video + audio."""
    video = video_object(frames.scene(48, 32, 25, "orbit"), "video1")
    audio = audio_object(
        signals.sine(440, 1.0, 8000), "audio1",
        sample_rate=8000, block_samples=320,
    )
    blob = MemoryBlob()
    recorder = Recorder(blob)
    interpretation = recorder.record(
        [video, audio],
        encoders={
            "video1": JpegLikeCodec(quality=40).encode,
            "audio1": PcmCodec(16, 1).encode,
        },
    )
    return interpretation


class TestRecorder:
    def test_interpretation_complete(self, captured):
        assert captured.names() == ["audio1", "video1"]
        assert len(captured.sequence("video1")) == 25
        assert len(captured.sequence("audio1")) == 25
        captured.validate()

    def test_interleaving(self, captured):
        video_offsets = [e.blob_offset for e in captured.sequence("video1")]
        audio_offsets = [e.blob_offset for e in captured.sequence("audio1")]
        # Each audio block lands between its frame and the next.
        for i in range(24):
            assert video_offsets[i] < audio_offsets[i] < video_offsets[i + 1]

    def test_rates_annotated(self, captured):
        descriptor = captured.sequence("audio1").media_descriptor
        # 8000 samples/s * 2 bytes mono = 16000 B/s.
        assert descriptor["average_data_rate"] == 16000
        assert descriptor["peak_data_rate"] == 16000

    def test_video_rate_positive(self, captured):
        descriptor = captured.sequence("video1").media_descriptor
        assert descriptor["average_data_rate"] > 0
        assert descriptor["peak_data_rate"] >= descriptor["average_data_rate"]

    def test_decoded_frames_recognizable(self, captured):
        from repro.codecs.jpeg_like import psnr
        codec = JpegLikeCodec()
        stream = captured.materialize(
            "video1", decode=lambda raw, entry: codec.decode(raw)
        )
        original = frames.scene(48, 32, 25, "orbit")
        # Quality 40 on a small saturated frame: recognizable, not pristine.
        assert psnr(original[0], stream.tuples[0].element.payload) > 20

    def test_raw_ndarray_default_encoder(self):
        video = video_object(frames.scene(16, 16, 3, "pan"), "v")
        interpretation = Recorder(MemoryBlob()).record([video])
        entry = interpretation.sequence("v").entry(0)
        assert entry.size == 16 * 16 * 3

    def test_empty_rejected(self):
        with pytest.raises(EngineError):
            Recorder(MemoryBlob()).record([])

    def test_sequential_mode(self):
        video = video_object(frames.scene(16, 16, 3, "pan"), "v")
        audio = audio_object(signals.sine(440, 0.1, 8000), "a",
                             sample_rate=8000, block_samples=266)
        recorder = Recorder(MemoryBlob(), interleave=False)
        interpretation = recorder.record([video, audio])
        video_end = max(
            e.blob_offset + e.size for e in interpretation.sequence("v")
        )
        audio_start = min(e.blob_offset for e in interpretation.sequence("a"))
        assert audio_start >= video_end


class TestPlayer:
    def test_plays_clean_with_ample_bandwidth(self, captured):
        player = Player(CostModel(bandwidth=10_000_000), prefetch_depth=2)
        report = player.play(captured)
        assert report.element_count == 50
        assert report.underruns == 0
        assert report.jitter == 0

    def test_underruns_when_bandwidth_starved(self, captured):
        starved = Player(CostModel(bandwidth=20_000), prefetch_depth=2)
        report = starved.play(captured)
        assert report.underruns > 0
        assert report.max_lateness > 0

    def test_interleaved_playback_is_seek_free(self, captured):
        player = Player(CostModel(bandwidth=1_000_000))
        report = player.play(captured)
        assert report.seeks == 0

    def test_required_rate_positive(self, captured):
        report = Player().play(captured)
        assert report.required_rate > 0
        assert report.duration == Rational(24, 25)

    def test_subset_playback(self, captured):
        report = Player().play(captured, names=["audio1"])
        assert report.element_count == 25

    def test_offsets_shift_deadlines(self, captured):
        player = Player()
        shifted = player.plan_interpretation(
            captured, offsets={"audio1": Rational(10)}
        )
        # Video now entirely precedes audio in presentation order.
        assert shifted[0].label.startswith("video1")
        assert shifted[-1].label.startswith("audio1")

    def test_empty_plan(self):
        report = Player().play_reads([])
        assert report.element_count == 0

    def test_prefetch_depth_validation(self):
        with pytest.raises(EngineError):
            Player(prefetch_depth=0)

    def test_deeper_prefetch_never_hurts(self, captured):
        starved = CostModel(bandwidth=120_000)
        shallow = Player(starved, prefetch_depth=1).play(captured)
        deep = Player(starved, prefetch_depth=16).play(captured)
        assert deep.underruns <= shallow.underruns

    def test_summary_text(self, captured):
        text = Player().play(captured).summary()
        assert "elements" in text and "jitter" in text


class TestPlayMultimedia:
    def test_composed_playback(self):
        from repro.core.composition import MultimediaObject

        video = video_object(frames.scene(16, 16, 10, "pan"), "v")
        audio = audio_object(signals.sine(440, 0.4, 8000), "a",
                             sample_rate=8000, block_samples=320)
        multimedia = MultimediaObject("m")
        multimedia.add_temporal(video, at=0, label="v")
        multimedia.add_temporal(audio, at=Rational(1, 5), label="a")
        report = Player(CostModel(bandwidth=10_000_000)).play_multimedia(multimedia)
        assert report.element_count == 20
        assert report.underruns == 0
