"""Tests for the simulated media clock."""

import pytest

from repro.core.rational import Rational
from repro.engine.clock import MediaClock
from repro.errors import EngineError


class TestMediaClock:
    def test_normal_rate(self):
        clock = MediaClock()
        assert clock.now() == 0
        clock.advance(Rational(1, 2))
        assert clock.now() == Rational(1, 2)

    def test_double_speed(self):
        clock = MediaClock(rate=2)
        clock.advance(3)
        assert clock.now() == 6

    def test_pause(self):
        clock = MediaClock()
        clock.advance(1)
        clock.set_rate(0)
        clock.advance(10)
        assert clock.now() == 1

    def test_reverse(self):
        clock = MediaClock(start=10, rate=-1)
        clock.advance(4)
        assert clock.now() == 6

    def test_reference_time_monotone(self):
        clock = MediaClock()
        with pytest.raises(EngineError):
            clock.advance(-1)

    def test_seek(self):
        clock = MediaClock()
        clock.seek(Rational(130))
        assert clock.now() == 130

    def test_until(self):
        clock = MediaClock(rate=2)
        assert clock.until(10) == 5

    def test_until_unreachable(self):
        clock = MediaClock(start=5)
        with pytest.raises(EngineError):
            clock.until(1)
        clock.set_rate(0)
        with pytest.raises(EngineError):
            clock.until(10)

    def test_until_backwards_rate(self):
        clock = MediaClock(start=10, rate=-1)
        assert clock.until(4) == 6

    def test_exact_arithmetic(self):
        clock = MediaClock(rate=Rational(30000, 1001))
        for _ in range(1001):
            clock.advance(Rational(1, 30000))
        assert clock.now() == 1  # exactly
