"""VodServer.health(): SLO verdicts, stage attribution, event tails.

The PR's acceptance scenario lives here: a faulted serve must surface
the violated SLO, the responsible pipeline stage and the correlated
critical events through one ``health()`` call.
"""

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.engine.recorder import Recorder
from repro.engine.vod import ServerHealth, VodServer
from repro.faults import FaultPlan
from repro.media import frames
from repro.media.objects import video_object
from repro.obs import Observability, Severity


@pytest.fixture(scope="module")
def movie():
    video = video_object(frames.scene(64, 48, 25, "orbit"), "feature")
    return Recorder(MemoryBlob()).record(
        [video], encoders={"feature": JpegLikeCodec(quality=40).encode},
    )


def serve(movie, bandwidth=2_000_000, clients=2, fault_plan=None, obs=None):
    server = VodServer(bandwidth=bandwidth, prefetch_depth=8, obs=obs)
    server.publish("feature", movie)
    server.serve([(f"c{i}", "feature") for i in range(clients)],
                 enforce_admission=False, fault_plan=fault_plan)
    return server


class TestMeanDeliveredQuality:
    def test_no_admitted_sessions_is_zero(self, movie):
        """Regression: an empty batch used to claim perfect quality."""
        server = VodServer(bandwidth=1, prefetch_depth=8)
        server.publish("feature", movie)
        report = server.serve([("c0", "feature")])
        assert report.admitted_count == 0
        assert report.mean_delivered_quality() == 0.0

    def test_served_sessions_average_normally(self, movie):
        report = serve(movie)._reports[0]
        assert report.mean_delivered_quality() == 1.0


class TestHealthyServer:
    def test_clean_serve_is_ok(self, movie):
        health = serve(movie, obs=Observability()).health()
        assert isinstance(health, ServerHealth)
        assert health.status == "ok"
        assert health.ok
        assert health.sessions == 2
        assert health.clean == 2
        assert health.failed == 0
        assert all(v.ok for v in health.slo)
        assert health.recent_critical == ()

    def test_health_without_obs_still_counts_sessions(self, movie):
        health = serve(movie).health()
        assert health.sessions == 2
        assert health.slo == ()  # no policy without instrumentation
        assert health.dominant_stage is None

    def test_health_before_any_serve(self, movie):
        server = VodServer(bandwidth=2_000_000, obs=Observability())
        server.publish("feature", movie)
        health = server.health()
        assert health.status == "ok"
        assert health.sessions == 0

    def test_export_round_trips_to_sorted_dict(self, movie):
        import json

        health = serve(movie, obs=Observability()).health()
        exported = health.export()
        assert exported["status"] == "ok"
        json.dumps(exported)  # JSON-serializable


class TestFaultedHealth:
    def faulted_health(self, movie):
        obs = Observability()
        plan = FaultPlan(seed=7, transient_rate=0.5, bad_page_rate=0.3,
                         corruption_rate=0.1, degraded_fraction=1.0)
        server = serve(movie, bandwidth=15_000, clients=3,
                       fault_plan=plan, obs=obs)
        return server.health(), obs

    def test_violated_slo_surfaces(self, movie):
        health, _ = self.faulted_health(movie)
        assert health.status != "ok"
        violated = [v for v in health.slo if not v.ok]
        assert violated
        assert any(v.slo == "startup-latency" for v in violated)

    def test_responsible_stage_identified(self, movie):
        health, _ = self.faulted_health(movie)
        # Startup blew the SLO because recovery overhead (retries,
        # wasted probes) dominates the pipeline: the deliver stage.
        assert health.dominant_stage == "deliver"

    def test_correlated_critical_events_in_tail(self, movie):
        health, obs = self.faulted_health(movie)
        assert health.recent_critical
        assert all(event["severity"] in ("ERROR", "CRITICAL")
                   for event in health.recent_critical)
        # The tail is the newest slice of the full event log.
        full = [e.export() for e in
                obs.events.events(min_severity=Severity.ERROR)]
        assert list(health.recent_critical) == full[-10:]

    def test_summary_is_readable(self, movie):
        health, _ = self.faulted_health(movie)
        text = health.summary()
        assert "status:" in text
        assert "slo startup-latency" in text
        assert "dominant stage: deliver" in text
        assert "event [" in text

    def test_health_is_deterministic(self, movie):
        first, _ = self.faulted_health(movie)
        second, _ = self.faulted_health(movie)
        assert first.export() == second.export()


class TestCriticalHealth:
    def test_critical_burn_flips_status(self, movie):
        """A starved server burns the startup budget past the critical
        rate; aborted first attempts leave fallback + abort events."""
        from repro.engine.player import RetryPolicy

        obs = Observability()
        plan = FaultPlan(seed=7, transient_rate=0.5, bad_page_rate=0.3,
                         corruption_rate=0.1, degraded_fraction=1.0)
        server = VodServer(bandwidth=6_000, prefetch_depth=8, obs=obs)
        server.publish("feature", movie)
        server.serve([("c0", "feature"), ("c1", "feature")],
                     enforce_admission=False, fault_plan=plan,
                     retry_policy=RetryPolicy(abort_skip_fraction=0.2))
        health = server.health()
        assert health.status == "critical"
        assert any(v.severity is Severity.CRITICAL for v in health.slo)
        names = {e.name for e in obs.events.events()}
        assert "playback.aborted" in names
        assert "session.fallback" in names

    def test_cache_hit_ratios_reported(self, movie):
        from repro.cache import DerivationCache

        obs = Observability()
        cache = DerivationCache(budget_bytes=1 << 20, obs=obs)
        server = VodServer(bandwidth=2_000_000, derivation_cache=cache,
                           obs=obs)
        server.publish("feature", movie)
        server.serve([("c0", "feature")], enforce_admission=False)
        ratios = server.health().cache_hit_ratios
        assert "derivation" in ratios
