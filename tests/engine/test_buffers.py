"""Tests for ring buffers and prefetch simulation."""

import pytest

from repro.core.rational import Rational
from repro.engine.buffers import RingBuffer, simulate_prefetch
from repro.errors import EngineError


class TestRingBuffer:
    def test_fifo(self):
        buffer = RingBuffer(3)
        buffer.push(1)
        buffer.push(2)
        assert buffer.pop() == 1
        assert buffer.pop() == 2

    def test_overflow(self):
        buffer = RingBuffer(1)
        buffer.push(1)
        with pytest.raises(EngineError, match="overflow"):
            buffer.push(2)
        assert not buffer.try_push(2)

    def test_underflow(self):
        buffer = RingBuffer(1)
        with pytest.raises(EngineError, match="underflow"):
            buffer.pop()
        assert buffer.try_pop() is None

    def test_capacity_validation(self):
        with pytest.raises(EngineError):
            RingBuffer(0)

    def test_state_flags(self):
        buffer = RingBuffer(2)
        assert buffer.is_empty
        buffer.push(1)
        buffer.push(2)
        assert buffer.is_full
        assert len(buffer) == 2


def rationals(values):
    return [Rational(*v) if isinstance(v, tuple) else Rational(v) for v in values]


class TestPrefetchSimulation:
    def test_fast_producer_no_underruns(self):
        # Production finishes well ahead of each (shifted) deadline.
        production = rationals([(1, 100), (2, 100), (3, 100), (4, 100)])
        deadlines = rationals([0, 1, 2, 3])
        report = simulate_prefetch(production, deadlines, depth=1)
        assert report.underruns == 0
        assert report.startup_delay == Rational(1, 100)

    def test_slow_producer_underruns_without_buffering(self):
        # Elements take 1.5x their presentation interval to produce.
        production = rationals([(3, 2), 3, (9, 2), 6])
        deadlines = rationals([0, 1, 2, 3])
        report = simulate_prefetch(production, deadlines, depth=1)
        assert report.underruns > 0

    def test_deeper_prefetch_absorbs_jitter(self):
        # Bursty production: slow elements early, fast later.
        production = rationals([2, 4, (17, 4), (18, 4), (19, 4), (20, 4)])
        deadlines = rationals([0, 1, 2, 3, 4, 5])
        shallow = simulate_prefetch(production, deadlines, depth=1)
        deep = simulate_prefetch(production, deadlines, depth=3)
        assert deep.underruns < shallow.underruns

    def test_startup_delay_grows_with_depth(self):
        production = rationals([1, 2, 3, 4])
        deadlines = rationals([0, 1, 2, 3])
        d1 = simulate_prefetch(production, deadlines, depth=1)
        d3 = simulate_prefetch(production, deadlines, depth=3)
        assert d3.startup_delay > d1.startup_delay

    def test_depth_capped_by_element_count(self):
        production = rationals([1, 2])
        deadlines = rationals([0, 1])
        report = simulate_prefetch(production, deadlines, depth=10)
        assert report.startup_delay == 2

    def test_underrun_fraction(self):
        production = rationals([1, 10])
        deadlines = rationals([0, 1])
        report = simulate_prefetch(production, deadlines, depth=1)
        assert report.underrun_fraction == 0.5
        assert report.max_wait == 10 - (1 + 1)

    def test_empty(self):
        report = simulate_prefetch([], [], depth=3)
        assert report.presented == 0
        assert report.underrun_fraction == 0.0

    def test_validation(self):
        with pytest.raises(EngineError):
            simulate_prefetch([Rational(1)], [], depth=1)
        with pytest.raises(EngineError):
            simulate_prefetch([Rational(1)], [Rational(0)], depth=0)
