"""Tests for the session-object serving API.

:class:`SessionRequest` / :class:`ServeOptions` are the redesigned
request surface; legacy ``(client, title)`` tuples and bare keywords
remain as a deprecation shim. Identity normalization on
:meth:`ServerReport.outcomes` is what fleet rollups count with.
"""

import warnings

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.core.rational import Rational
from repro.engine.player import AdaptationPolicy, RetryPolicy
from repro.engine.recorder import Recorder
from repro.engine.vod import (
    PlaybackReport,
    ServeOptions,
    ServerReport,
    Session,
    SessionRequest,
    VodServer,
    normalize_requests,
)
from repro.errors import EngineError
from repro.faults.plan import FaultPlan
from repro.media import frames
from repro.media.objects import video_object


def make_title(name, frame_count=25, size=48):
    video = video_object(frames.scene(size, size * 3 // 4, frame_count,
                                      "orbit"), name)
    return Recorder(MemoryBlob()).record(
        [video], encoders={name: JpegLikeCodec(quality=40).encode},
        interpretation_name=f"{name}-capture",
    )


@pytest.fixture(scope="module")
def movie():
    return make_title("feature")


@pytest.fixture
def server(movie):
    server = VodServer(bandwidth=2_000_000, prefetch_depth=8)
    server.publish("feature", movie)
    return server


class TestSessionRequest:
    def test_kw_only(self):
        with pytest.raises(TypeError):
            SessionRequest("alice", "feature")

    def test_defaults(self):
        request = SessionRequest(client="alice", title="feature")
        assert request.arrival_time == Rational(0)
        assert request.retry_policy is None
        assert request.adaptation is None
        assert request.key == ("alice", "feature")

    def test_negative_arrival_rejected(self):
        with pytest.raises(EngineError, match="arrival"):
            SessionRequest(client="a", title="t", arrival_time=-1)

    def test_replace(self):
        request = SessionRequest(client="alice", title="feature")
        later = request.replace(arrival_time=Rational(3, 2))
        assert later.arrival_time == Rational(3, 2)
        assert later.client == "alice"
        assert request.arrival_time == Rational(0)


class TestServeOptions:
    def test_kw_only_and_defaults(self):
        with pytest.raises(TypeError):
            ServeOptions(False)
        opts = ServeOptions()
        assert opts.enforce_admission is True
        assert opts.granularity == "auto"

    def test_bad_granularity(self):
        with pytest.raises(EngineError, match="granularity"):
            ServeOptions(granularity="frame")

    def test_replace(self):
        opts = ServeOptions(granularity="read")
        off = opts.replace(enforce_admission=False)
        assert off.granularity == "read"
        assert off.enforce_admission is False


class TestNormalization:
    def test_tuples_warn_once_per_call(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            reqs, legacy = normalize_requests(
                [("a", "feature"), ("b", "feature")])
        assert legacy
        assert [r.key for r in reqs] == [("a", "feature"), ("b", "feature")]
        assert len([w for w in caught
                    if issubclass(w.category, DeprecationWarning)]) == 1

    def test_native_requests_pass_through_silently(self):
        native = [SessionRequest(client="a", title="feature")]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            reqs, legacy = normalize_requests(native)
        assert not legacy
        assert reqs[0] is native[0]

    def test_strings_rejected(self):
        with pytest.raises(EngineError):
            normalize_requests(["alice:feature"])


class TestServeSurface:
    def test_legacy_tuples_deprecated_but_served(self, server):
        with pytest.deprecated_call():
            report = server.serve([("alice", "feature")])
        assert report.admitted_count == 1
        assert report.admitted[0].identity == ("alice", "feature")

    def test_native_requests_emit_no_warning(self, server):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = server.serve(
                [SessionRequest(client="alice", title="feature")])
        assert report.admitted_count == 1

    def test_options_and_kwargs_conflict(self, server):
        with pytest.raises(EngineError, match="not both"):
            server.serve(
                [SessionRequest(client="a", title="feature")],
                ServeOptions(granularity="read"),
                enforce_admission=False,
            )

    def test_admit_mirrors_input_shape(self, server):
        native = [SessionRequest(client="a", title="feature")]
        admitted, rejected = server.admit(native)
        assert admitted == native and rejected == []
        with pytest.deprecated_call():
            admitted, rejected = server.admit([("a", "feature")])
        assert admitted == [("a", "feature")] and rejected == []

    def test_session_carries_its_request(self, server):
        request = SessionRequest(client="alice", title="feature")
        report = server.serve([request])
        assert report.admitted[0].request == request

    def test_per_request_retry_override(self, server):
        plan = FaultPlan(seed=55, page_size=512, bad_page_rate=0.2)
        strict = SessionRequest(
            client="strict", title="feature",
            retry_policy=RetryPolicy(max_retries=0,
                                     abort_skip_fraction=0.01),
        )
        lenient = SessionRequest(
            client="lenient", title="feature",
            retry_policy=RetryPolicy(abort_skip_fraction=None),
        )
        report = server.serve([strict, lenient],
                              ServeOptions(fault_plan=plan))
        by_client = {s.client: s for s in report.admitted}
        # The strict session aborts and is re-served degraded; the
        # lenient one tolerates every skip in-band.
        assert by_client["strict"].degraded
        assert not by_client["lenient"].degraded

    def test_per_request_adaptation_override(self, server):
        plan = FaultPlan(seed=55, page_size=512, degraded_fraction=0.5,
                        degradation_span=4096)
        adaptive = SessionRequest(
            client="adaptive", title="feature",
            adaptation=AdaptationPolicy(levels=3),
        )
        fixed = SessionRequest(client="fixed", title="feature")
        report = server.serve([adaptive, fixed],
                              ServeOptions(fault_plan=plan))
        by_client = {s.client: s for s in report.admitted}
        assert by_client["adaptive"].report.delivered_quality <= \
            by_client["fixed"].report.delivered_quality


class TestReadGranularity:
    def test_staggered_arrivals_auto_select_read(self, server):
        reqs = [
            SessionRequest(client="early", title="feature"),
            SessionRequest(client="late", title="feature",
                           arrival_time=Rational(1, 2)),
        ]
        report = server.serve(reqs)
        assert report.admitted_count == 2
        stats = server.last_loop_stats
        # One event per element read, not one event per session.
        assert stats["events_processed"] > 2 * 2
        assert stats["pending"] == 0

    def test_explicit_read_granularity(self, server):
        report = server.serve(
            [SessionRequest(client="a", title="feature"),
             SessionRequest(client="b", title="feature")],
            ServeOptions(granularity="read"),
        )
        assert report.admitted_count == 2
        assert all(s.report.element_count == 25 for s in report.admitted)

    def test_read_granularity_faulted_fallback(self, server):
        plan = FaultPlan(seed=55, page_size=512, bad_page_rate=0.2)
        report = server.serve(
            [SessionRequest(client=f"c{i}", title="feature")
             for i in range(3)],
            ServeOptions(
                fault_plan=plan, granularity="read",
                retry_policy=RetryPolicy(max_retries=0,
                                         abort_skip_fraction=0.01),
            ),
        )
        assert report.admitted_count + len(report.failed) == 3
        assert report.degraded_sessions() >= 1


def _session(client, title, *, degraded=False, resumed=False):
    report = PlaybackReport(
        element_count=1, duration=Rational(1), required_rate=Rational(1),
        startup_delay=Rational(0), underruns=0, underrun_fraction=0.0,
        max_lateness=Rational(0), jitter=Rational(0), prefetch_depth=1,
        seeks=0,
    )
    return Session(client=client, title=title, report=report,
                   degraded=degraded, resumed=resumed)


def _report(admitted, failed=()):
    return ServerReport(admitted=admitted, rejected=[], bandwidth=1,
                        per_client_bandwidth=1, failed=list(failed))


class TestOutcomes:
    def test_each_identity_counted_once_worst_wins(self):
        # A session resumed after a crash and then degraded appears as
        # one identity with the worst outcome, not two sessions.
        report = _report([
            _session("alice", "feature", resumed=True),
            _session("alice", "feature", degraded=True),
            _session("bob", "feature"),
        ])
        outcomes = report.outcomes()
        assert outcomes == {
            ("alice", "feature"): "degraded",
            ("bob", "feature"): "clean",
        }

    def test_failed_outranks_degraded(self):
        report = _report(
            [_session("alice", "feature", degraded=True)],
            failed=[("alice", "feature", "gave out")],
        )
        assert report.outcomes() == {("alice", "feature"): "failed"}
