"""Unit tests for the discrete-event kernel."""

import pytest

from repro.core.rational import Rational
from repro.engine.kernel import (
    DONE,
    FAILED,
    PENDING,
    STREAMING,
    BandwidthLedger,
    EventLoop,
    SessionMachine,
    SimulatedClock,
)
from repro.errors import EngineError, MediaModelError, SimulatedCrash


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == Rational(0)

    def test_advances_forward(self):
        clock = SimulatedClock()
        assert clock.advance_to(Rational(3, 2)) == Rational(3, 2)
        assert clock.now() == Rational(3, 2)

    def test_never_runs_backwards(self):
        clock = SimulatedClock(start=5)
        with pytest.raises(EngineError, match="backwards"):
            clock.advance_to(4)

    def test_advance_to_now_is_fine(self):
        clock = SimulatedClock(start=5)
        assert clock.advance_to(5) == Rational(5)


class TestEventLoop:
    def test_fires_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.at(3, fired.append, "late")
        loop.at(1, fired.append, "early")
        loop.at(2, fired.append, "middle")
        assert loop.run() == 3
        assert fired == ["early", "middle", "late"]

    def test_same_instant_fires_in_insertion_order(self):
        loop = EventLoop()
        fired = []
        for tag in ("a", "b", "c", "d"):
            loop.at(1, fired.append, tag)
        loop.run()
        assert fired == ["a", "b", "c", "d"]

    def test_callbacks_may_schedule_more_events(self):
        loop = EventLoop()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                loop.after(1, chain, n + 1)

        loop.at(0, chain, 0)
        loop.run()
        assert fired == [0, 1, 2, 3]
        assert loop.clock.now() == Rational(3)

    def test_cannot_schedule_into_the_past(self):
        loop = EventLoop()
        loop.at(2, lambda: None)
        loop.run()
        with pytest.raises(EngineError, match="past"):
            loop.at(1, lambda: None)

    def test_run_until_leaves_later_events_pending(self):
        loop = EventLoop()
        fired = []
        loop.at(1, fired.append, "in")
        loop.at(2, fired.append, "boundary")
        loop.at(3, fired.append, "out")
        assert loop.run(until=2) == 2
        assert fired == ["in", "boundary"]
        assert loop.pending == 1
        loop.run()
        assert fired == ["in", "boundary", "out"]

    def test_crash_propagates_and_preserves_heap(self):
        loop = EventLoop()

        def die():
            raise SimulatedCrash("armed")

        loop.at(1, die)
        loop.at(2, lambda: None)
        with pytest.raises(SimulatedCrash):
            loop.run()
        # The survivor event is the work the dead process lost.
        assert loop.pending == 1

    def test_stats_are_deterministic_counters(self):
        loop = EventLoop()
        loop.at(1, lambda: None)
        loop.at(1, lambda: None)
        loop.run()
        stats = loop.stats()
        assert stats["events_processed"] == 2
        assert stats["pending"] == 0
        assert stats["peak_pending"] == 2
        assert stats["now"] == Rational(1)


class TestBandwidthLedger:
    def test_factor_is_planned_over_active(self):
        ledger = BandwidthLedger(4)
        ledger.enter()
        assert ledger.factor() == Rational(4, 1)
        ledger.enter()
        assert ledger.factor() == Rational(2, 1)
        ledger.leave()
        assert ledger.factor() == Rational(4, 1)

    def test_peak_active_tracks_high_water(self):
        ledger = BandwidthLedger(3)
        ledger.enter()
        ledger.enter()
        ledger.leave()
        ledger.enter()
        assert ledger.peak_active == 2

    def test_underflow_rejected(self):
        ledger = BandwidthLedger(1)
        with pytest.raises(EngineError, match="underflow"):
            ledger.leave()

    def test_needs_a_planned_session(self):
        with pytest.raises(EngineError):
            BandwidthLedger(0)


def counting_stepper(durations, result="report"):
    """A stepper yielding fixed durations and returning ``result``."""
    def factory():
        def gen():
            for d in durations:
                yield Rational(d)
            return result
        return gen()
    return factory


class TestSessionMachine:
    def test_needs_exactly_one_drive_mode(self):
        loop = EventLoop()
        with pytest.raises(EngineError, match="exactly one"):
            SessionMachine("s", loop)
        with pytest.raises(EngineError, match="exactly one"):
            SessionMachine(
                "s", loop, runner=lambda: None,
                stepper_factory=counting_stepper([]),
            )

    def test_runner_mode_runs_whole_session_in_one_event(self):
        loop = EventLoop()
        machine = SessionMachine("s", loop, runner=lambda: "done")
        machine.start(Rational(2))
        assert machine.state == PENDING
        loop.run()
        assert machine.state == DONE
        assert machine.result == "done"
        assert machine.started_at == Rational(2)
        assert loop.events_processed == 1

    def test_runner_none_result_fails_session(self):
        loop = EventLoop()
        machine = SessionMachine("s", loop, runner=lambda: None)
        machine.start(0)
        loop.run()
        assert machine.state == FAILED

    def test_stepper_mode_advances_one_element_per_event(self):
        loop = EventLoop()
        machine = SessionMachine(
            "s", loop, stepper_factory=counting_stepper([1, 2, 3]),
        )
        machine.start(0)
        loop.run()
        assert machine.state == DONE
        assert machine.result == "report"
        assert machine.finished_at == Rational(6)
        # begin + first-advance + one event per element.
        assert loop.events_processed == 5

    def test_two_sessions_interleave_on_one_clock(self):
        loop = EventLoop()
        order = []

        def tracked(key, durations):
            def factory():
                def gen():
                    for d in durations:
                        order.append((key, loop.clock.now()))
                        yield Rational(d)
                    return key
                return gen()
            return factory

        a = SessionMachine("a", loop, stepper_factory=tracked("a", [2, 2]))
        b = SessionMachine("b", loop, stepper_factory=tracked("b", [3]))
        a.start(0)
        b.start(0)
        loop.run()
        assert order == [
            ("a", Rational(0)), ("b", Rational(0)), ("a", Rational(2)),
        ]
        assert a.finished_at == Rational(4)
        assert b.finished_at == Rational(3)

    def test_ledger_entered_before_any_element_prices(self):
        loop = EventLoop()
        ledger = BandwidthLedger(2)
        factors = []

        def factory():
            def gen():
                factors.append(ledger.factor())
                yield Rational(1)
                return "ok"
            return gen()
        for key in ("a", "b"):
            SessionMachine(
                key, loop, stepper_factory=factory, ledger=ledger,
            ).start(0)
        loop.run()
        # Both arrivals at t=0 enter before either prices a read.
        assert factors == [Rational(1), Rational(1)]
        assert ledger.active == 0
        assert ledger.peak_active == 2

    def test_on_error_replacement_stepper_restarts(self):
        loop = EventLoop()

        def broken():
            def gen():
                yield Rational(1)
                raise MediaModelError("storage gave out")
            return gen()

        def on_error(machine, exc):
            return counting_stepper([1], result="fallback")()

        machine = SessionMachine(
            "s", loop, stepper_factory=broken, on_error=on_error,
        )
        machine.start(0)
        loop.run()
        assert machine.state == DONE
        assert machine.result == "fallback"
        assert machine.restarts == 1

    def test_on_error_none_fails_session(self):
        loop = EventLoop()

        def broken():
            def gen():
                raise MediaModelError("dead")
                yield  # pragma: no cover
            return gen()

        machine = SessionMachine(
            "s", loop, stepper_factory=broken,
            on_error=lambda machine, exc: None,
        )
        machine.start(0)
        loop.run()
        assert machine.state == FAILED
        assert machine.result is None

    def test_crash_always_propagates(self):
        loop = EventLoop()

        def dying():
            def gen():
                raise SimulatedCrash("armed")
                yield  # pragma: no cover
            return gen()

        SessionMachine(
            "s", loop, stepper_factory=dying,
            on_error=lambda machine, exc: counting_stepper([])(),
        ).start(0)
        with pytest.raises(SimulatedCrash):
            loop.run()

    def test_cannot_start_twice(self):
        loop = EventLoop()
        machine = SessionMachine("s", loop, runner=lambda: "x")
        machine.start(0)
        with pytest.raises(EngineError, match="already started"):
            machine.start(1)

    def test_on_start_and_on_complete_hooks(self):
        loop = EventLoop()
        calls = []
        machine = SessionMachine(
            "s", loop, runner=lambda: "r",
            on_start=lambda m: calls.append(("start", m.state)),
            on_complete=lambda m, result: calls.append(("done", result)),
        )
        machine.start(0)
        loop.run()
        assert calls == [("start", STREAMING), ("done", "r")]
