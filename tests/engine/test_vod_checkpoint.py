"""Tests for VodServer checkpoint/restore/resume failover."""

import json

import pytest

from repro.blob.blob import MemoryBlob
from repro.cache import DerivationCache
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.engine.recorder import Recorder
from repro.engine.vod import CHECKPOINT_VERSION, VodServer
from repro.errors import CheckpointError, SimulatedCrash
from repro.faults import CrashInjector, CrashSite, SimulatedMedium
from repro.media import frames
from repro.media.objects import video_object

BANDWIDTH = 50_000_000


def make_title(name, frame_count=6):
    video = video_object(frames.scene(16, 12, frame_count, "orbit"), name)
    return Recorder(MemoryBlob()).record(
        [video], encoders={name: JpegLikeCodec(quality=40).encode},
        interpretation_name=f"{name}-capture",
    )


@pytest.fixture(scope="module")
def movie():
    return make_title("feature")


def make_server(movie):
    server = VodServer(bandwidth=BANDWIDTH)
    server.publish("feature", movie)
    return server


class TestCheckpointPayload:
    def test_versioned_and_self_contained(self, movie):
        server = make_server(movie)
        payload = server.checkpoint()
        assert payload["version"] == CHECKPOINT_VERSION
        assert payload["config"]["bandwidth"] == BANDWIDTH
        assert list(payload["titles"]) == ["feature"]
        assert payload["batch"] is None  # not mid-serve

    def test_json_safe_and_deterministic(self, movie):
        server = make_server(movie)
        first = json.dumps(server.checkpoint(), sort_keys=True)
        second = json.dumps(server.checkpoint(), sort_keys=True)
        assert first == second

    def test_cache_manifest_rides_along(self, movie):
        cache = DerivationCache(budget_bytes=1 << 16)
        server = VodServer(bandwidth=BANDWIDTH, derivation_cache=cache)
        server.publish("feature", movie)
        manifest = server.checkpoint()["derivation_cache"]
        assert manifest is not None
        assert manifest["budget_bytes"] == 1 << 16


class TestRestoreFromDict:
    def test_roundtrip_catalog(self, movie):
        payload = make_server(movie).checkpoint()
        restored = VodServer.restore(payload)
        assert restored.titles() == ["feature"]
        assert restored.bandwidth == BANDWIDTH

    def test_restored_title_replays_identically(self, movie):
        payload = make_server(movie).checkpoint()
        restored = VodServer.restore(payload)
        report = restored.serve([("c", "feature")])
        assert len(report.admitted) == 1
        assert report.admitted[0].report.underruns == 0

    def test_wrong_version_rejected(self, movie):
        payload = make_server(movie).checkpoint()
        payload["version"] = 99
        with pytest.raises(CheckpointError, match="version"):
            VodServer.restore(payload)

    def test_mangled_payload_is_typed_error(self, movie):
        payload = make_server(movie).checkpoint()
        del payload["config"]
        with pytest.raises(CheckpointError):
            VodServer.restore(payload)

    def test_resume_without_pending_batch_rejected(self, movie):
        restored = VodServer.restore(make_server(movie).checkpoint())
        with pytest.raises(CheckpointError, match="nothing to resume"):
            restored.resume()


class TestRestoreFromFile:
    def test_file_roundtrip(self, movie):
        fs = SimulatedMedium()
        fs.makedirs("/srv")
        server = make_server(movie)
        server.checkpoint_to("/srv/vod.ckpt", fs=fs)
        restored = VodServer.restore("/srv/vod.ckpt", fs=fs)
        assert restored.titles() == ["feature"]

    def test_missing_file_is_typed_error(self):
        fs = SimulatedMedium()
        with pytest.raises(CheckpointError):
            VodServer.restore("/srv/absent.ckpt", fs=fs)

    def test_corrupt_json_is_typed_error(self):
        fs = SimulatedMedium()
        with fs.open("/srv/vod.ckpt", "wb") as handle:
            handle.write(b"{not json")
        with pytest.raises(CheckpointError):
            VodServer.restore("/srv/vod.ckpt", fs=fs)


class TestFailover:
    def serve_until_crash(self, fs, movie, occurrence):
        """Serve three clients, dying at the given session boundary."""
        crash = CrashInjector(CrashSite("vod.serve.session", occurrence))
        server = VodServer(bandwidth=BANDWIDTH, crash=crash)
        server.publish("feature", movie)
        requests = [(f"client-{i}", "feature") for i in range(3)]
        with pytest.raises(SimulatedCrash):
            server.serve(requests, checkpoint_to="/srv/vod.ckpt",
                         checkpoint_fs=fs)
        fs.crash()

    def test_mid_batch_crash_resumes_remainder(self, movie):
        fs = SimulatedMedium()
        fs.makedirs("/srv")
        self.serve_until_crash(fs, movie, occurrence=2)
        restored = VodServer.restore("/srv/vod.ckpt", fs=fs)
        report = restored.resume()
        # Two sessions finished before the crash, one is re-served.
        assert report.recovered == 2
        assert len(report.admitted) == 1
        assert report.admitted[0].resumed
        assert report.recovered + len(report.admitted) == 3

    def test_resumed_sessions_count_as_degraded(self, movie):
        fs = SimulatedMedium()
        fs.makedirs("/srv")
        self.serve_until_crash(fs, movie, occurrence=1)
        restored = VodServer.restore("/srv/vod.ckpt", fs=fs)
        report = restored.resume()
        assert restored.health().degraded >= len(report.admitted)

    def test_checkpoint_written_after_every_session(self, movie):
        fs = SimulatedMedium()
        fs.makedirs("/srv")
        server = make_server(movie)
        report = server.serve(
            [("a", "feature"), ("b", "feature")],
            checkpoint_to="/srv/vod.ckpt", checkpoint_fs=fs,
        )
        assert len(report.admitted) == 2
        payload = json.loads(
            fs.durable_bytes("/srv/vod.ckpt").decode()
        )
        # The final checkpoint records the finished batch.
        assert payload["batch"]["remaining"] == []
        assert len(payload["batch"]["completed"]) == 2

    def test_unpublished_resume_title_rejected(self, movie):
        payload = make_server(movie).checkpoint()
        payload["batch"] = {
            "requests": [["c", "ghost"]],
            "rejected": [],
            "completed": [],
            "failed": [],
            "remaining": [["c", "ghost"]],
            "share": 1.0,
        }
        restored = VodServer.restore(payload)
        with pytest.raises(CheckpointError, match="unpublished"):
            restored.resume()
