"""Tests for sync measurement and the resource model."""

import pytest

from repro.core.rational import Rational
from repro.engine.resources import ExpansionDecision, ResourceModel
from repro.engine.scheduler import PresentationEvent
from repro.engine.sync import measure_sync
from repro.errors import EngineError, ResourceError
from repro.media import frames
from repro.media.objects import video_object
from repro.edit import MediaEditor


def rl(values):
    return [Rational(*v) if isinstance(v, tuple) else Rational(v) for v in values]


class TestMeasureSync:
    def test_perfect_sync(self):
        lateness = rl([0, 0, 0])
        deadlines = rl([0, 1, 2])
        report = measure_sync(lateness, deadlines, lateness, deadlines)
        assert report.max_skew == 0
        assert report.within_tolerance(Rational(1, 100))

    def test_one_stream_lags(self):
        deadlines = rl([0, 1, 2])
        a = rl([0, 0, 0])
        b = rl([(1, 10), (1, 10), (1, 10)])
        report = measure_sync(a, deadlines, b, deadlines)
        assert report.max_skew == Rational(1, 10)
        assert not report.within_tolerance(Rational(8, 100))  # > 80 ms

    def test_nearest_deadline_pairing(self):
        a_deadlines = rl([0, 1])
        b_deadlines = rl([(1, 2), (3, 2)])
        a = rl([0, 0])
        b = rl([(1, 20), (3, 20)])
        report = measure_sync(a, a_deadlines, b, b_deadlines)
        assert report.samples == 2
        assert report.max_skew == Rational(3, 20)

    def test_mismatched_lists_rejected(self):
        with pytest.raises(EngineError):
            measure_sync(rl([0]), [], rl([0]), rl([0]))

    def test_empty(self):
        report = measure_sync([], [], [], [])
        assert report.samples == 0


@pytest.fixture
def derived_clip():
    video = video_object(frames.scene(24, 16, 10, "pan"), "v")
    return MediaEditor().cut(video, 0, 5, name="clip")


class TestResourceModel:
    def test_fast_machine_stores_derivation(self, derived_clip):
        model = ResourceModel(speed_factor=10_000.0)
        decision = model.assess_expansion(derived_clip)
        assert decision.real_time
        assert decision.recommendation == "store derivation object"
        assert decision.margin > 1

    def test_slow_machine_materializes(self, derived_clip):
        model = ResourceModel(speed_factor=0.0)
        decision = model.assess_expansion(derived_clip)
        assert not decision.real_time
        assert decision.recommendation == "materialize"

    def test_choose_storage_follows_rule(self, derived_clip):
        fast = ResourceModel(speed_factor=10_000.0)
        assert fast.choose_storage(derived_clip) is derived_clip
        slow = ResourceModel(speed_factor=0.0)
        stored = slow.choose_storage(derived_clip)
        assert stored is not derived_clip
        assert derived_clip.is_materialized

    def test_needs_duration(self, derived_clip):
        bare = MediaEditor().cut(
            video_object(frames.scene(24, 16, 4, "pan"), "w"), 0, 2,
        )
        bare.descriptor = bare.descriptor.without("duration")
        with pytest.raises(ResourceError, match="duration"):
            ResourceModel().assess_expansion(bare)

    def test_parameter_validation(self):
        with pytest.raises(ResourceError):
            ResourceModel(speed_factor=-1)
        with pytest.raises(ResourceError):
            ResourceModel(safety_margin=0.5)

    def test_admission_control(self):
        light = [PresentationEvent(f"e{i}", Rational(0), Rational(1, 100),
                                   Rational(i + 1)) for i in range(5)]
        heavy = [PresentationEvent(f"e{i}", Rational(0), Rational(2),
                                   Rational(i + 1)) for i in range(5)]
        model = ResourceModel(speed_factor=1.0)
        assert model.admit(light)
        assert not model.admit(heavy)
