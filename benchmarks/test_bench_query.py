"""E-query — the relational temporal index at catalog scale.

§6's argument for a relational encoding of media structure is that the
queries §1.2 motivates stay interactive when the catalog stops fitting
in a linear scan. This benchmark builds a million-object catalog (and a
deep composition over it), runs the headline query classes through both
the SQLite-backed temporal index and the pure-Python linear oracle, and
asserts the two backends return byte-identical answers — including
after a ``set_attribute`` mutation — while the indexed path is at least
an order of magnitude faster.

Scale down with ``REPRO_BENCH_QUERY_OBJECTS`` /
``REPRO_BENCH_QUERY_COMPONENTS`` for smoke runs.
"""

import os
import time

import pytest

from repro.core.composition import MultimediaObject
from repro.core.media_object import StillMediaObject
from repro.core.media_types import media_type_registry
from repro.query.database import MediaDatabase

N_OBJECTS = int(os.environ.get("REPRO_BENCH_QUERY_OBJECTS", 1_000_000))
N_COMPONENTS = int(os.environ.get("REPRO_BENCH_QUERY_COMPONENTS", 200_000))
SPEEDUP_FLOOR = 10.0

GENRES = ("news", "drama", "sport", "nature", "archive")


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


@pytest.fixture(scope="module")
def catalog():
    """A million-object catalog plus one wide composition, indexed."""
    text_type = media_type_registry.get("text")
    descriptor = text_type.make_media_descriptor()
    db = MediaDatabase("million", index=True)
    build_start = time.perf_counter()
    for i in range(N_OBJECTS):
        name = f"obj-{i:07d}"
        obj = StillMediaObject(text_type, descriptor, name, name=name)
        db.add_object(
            obj,
            genre=GENRES[i % len(GENRES)],
            year=1970 + (i % 57),
            reel=i % 999,
        )
    # Components draw on a pool of catalog objects so any one object
    # appears a realistic handful of times in the program.
    pool = max(1, N_COMPONENTS // 20)
    m = MultimediaObject("program")
    for i in range(N_COMPONENTS):
        # Overlapping, multi-scale placements: starts sweep the whole
        # timeline, durations cycle 1..8 so windows cut mid-component.
        m.add_temporal(db.get_object(f"obj-{i % pool:07d}"),
                       at=2 * i, duration=1 + i % 8, label=f"c{i:06d}")
    db.add_multimedia(m)
    db.index.ensure_multimedia(m)      # encode outside the timed region
    build_seconds = time.perf_counter() - build_start
    return db, build_seconds


def _gates(db):
    """The benchmark's query gates: (name, callable(backend))."""
    window = (2 * N_COMPONENTS // 2, 2 * N_COMPONENTS // 2 + 40)
    return [
        # genre cycles with period 5 and reel with period 999 (coprime),
        # so the conjunction is selective: ~1 in 4,995 objects.
        ("objects genre+reel",
         lambda backend: [o.name for o in db.objects(
             backend=backend, genre="sport", reel=123)]),
        ("components_during",
         lambda backend: db.components_during(
             "program", *window, backend=backend)),
        ("components_overlapping",
         lambda backend: db.components_overlapping(
             "program", f"c{N_COMPONENTS // 3:06d}", backend=backend)),
        ("occurrences_of",
         lambda backend: db.occurrences_of(
             "obj-0000000", backend=backend)),
    ]


def test_million_object_speedup(report, catalog):
    db, build_seconds = catalog
    rows = []
    speedups = {}
    for name, gate in _gates(db):
        indexed, hot = _timed(lambda g=gate: g("index"))
        linear, cold = _timed(lambda g=gate: g("linear"))
        assert indexed == linear, f"{name}: backends disagree"
        speedups[name] = cold / hot if hot else float("inf")
        rows.append((name, str(len(indexed)), f"{cold * 1e3:9.1f}",
                     f"{hot * 1e3:9.3f}", f"{speedups[name]:8.1f}x"))
    report.table(
        "query",
        ("query", "results", "linear ms", "indexed ms", "speedup"),
        rows,
        title=f"temporal index vs linear oracle "
              f"({N_OBJECTS:,} objects, {N_COMPONENTS:,} components; "
              f"build+index {build_seconds:.1f}s)",
    )
    for name, speedup in speedups.items():
        assert speedup >= SPEEDUP_FLOOR, (
            f"{name}: {speedup:.1f}x < {SPEEDUP_FLOOR}x floor"
        )


def test_mutation_keeps_backends_identical(report, catalog):
    db, _ = catalog
    victim = f"obj-{N_OBJECTS // 2:07d}"
    db.set_attribute(victim, "genre", "restored")
    db.set_attribute(victim, "year", 2001)
    indexed, hot = _timed(lambda: [o.name for o in db.objects(
        backend="index", genre="restored")])
    linear, cold = _timed(lambda: [o.name for o in db.objects(
        backend="linear", genre="restored")])
    assert indexed == linear == [victim]
    # The sport/2001 cohort must not have picked up the victim twice,
    # and both backends must agree on the post-mutation world.
    for name, gate in _gates(db):
        assert gate("index") == gate("linear"), name
    census = db.index.census()
    report.kv(
        "query",
        [("mutated object", victim),
         ("post-mutation lookup (indexed)", f"{hot * 1e3:.3f} ms"),
         ("post-mutation lookup (linear)", f"{cold * 1e3:.1f} ms"),
         ("index writes (total)", census["writes"]),
         ("index size", f"{census['size_bytes'] / 1e6:.1f} MB")],
        title="write-through under mutation (dual-backend identical)",
    )
