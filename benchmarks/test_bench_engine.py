"""E7 — timing behaviour: jitter vs buffering, out-of-order decode cost.

Two of the paper's engine-level claims, measured:

* §5: playback "jitter ... can be removed by the application just prior
  to presentation" — a prefetch-depth sweep shows underruns/jitter
  falling as buffering grows, at the cost of startup delay.
* §2.2: out-of-order key elements mean random access must decode back to
  the previous key; the sync-sample index bounds that work.
"""

import pytest

from repro.bench.workloads import figure2_capture
from repro.codecs.mpeg_like import MpegLikeCodec
from repro.engine import CostModel, Player
from repro.media import frames
from repro.storage.indexes import SyncSampleTable


@pytest.fixture(scope="module")
def starved_capture():
    """A capture whose required rate exceeds the simulated bandwidth."""
    return figure2_capture(width=160, height=120, seconds=2.0)


def test_jitter_vs_prefetch_depth(report, benchmark, starved_capture):
    interpretation = starved_capture.interpretation
    # Bandwidth at ~85% of required rate: jitter is inevitable without
    # buffering.
    required = float(
        interpretation.sequence("video1").media_descriptor["average_data_rate"]
        + interpretation.sequence("audio1").media_descriptor["average_data_rate"]
    )
    cost = CostModel(bandwidth=int(required * 1.02), seek_time="1/200")

    rows = []
    results = {}
    for depth in (1, 2, 4, 8, 16, 32):
        play = Player(cost, prefetch_depth=depth).play(interpretation)
        results[depth] = play
        rows.append((
            depth,
            f"{float(play.startup_delay) * 1000:.0f} ms",
            play.underruns,
            f"{play.underrun_fraction:.0%}",
            f"{float(play.jitter) * 1000:.1f} ms",
        ))
    report.table(
        "engine-jitter",
        ("prefetch depth", "startup delay", "underruns", "fraction",
         "jitter"),
        rows,
        title="§5 — jitter removed by buffering (bandwidth at ~102% of "
              "required rate)",
    )

    # Shape: underruns fall monotonically-ish with depth and reach zero;
    # startup delay grows.
    assert results[32].underruns <= results[1].underruns
    assert results[32].startup_delay > results[1].startup_delay
    assert results[32].underruns == 0

    benchmark(lambda: Player(cost, prefetch_depth=8).play(interpretation))


def test_seek_decode_work(report, benchmark):
    """Frames a seek must decode, per GOP pattern (the price of
    out-of-order/inter coding)."""
    rows = []
    for pattern in ("IPPP", "IBBP", "IPPPPPPP"):
        codec = MpegLikeCodec(quality=40, gop_pattern=pattern)
        shot = frames.scene(48, 32, 16, "orbit")
        encoded = codec.encode_sequence(shot)
        sync = SyncSampleTable(
            [f.display_index for f in encoded if f.is_key]
        )
        work = [
            sync.decode_span(display)[1] - sync.decode_span(display)[0] + 1
            for display in range(16)
        ]
        rows.append((
            pattern,
            len(sync.sync_samples),
            f"{sum(work) / len(work):.2f}",
            max(work),
        ))
    report.table(
        "engine-seek",
        ("GOP pattern", "key frames / 16", "mean decode work", "worst"),
        rows,
        title="§2.2 — random access cost under inter-frame coding",
    )
    # All-intra would be 1.0 everywhere; longer GOPs cost more.
    assert rows[2][3] > rows[0][3] or rows[2][2] > rows[0][2]

    codec = MpegLikeCodec(quality=40, gop_pattern="IBBP")
    shot = frames.scene(48, 32, 8, "orbit")
    encoded = codec.encode_sequence(shot)
    benchmark(lambda: codec.decode_sequence(encoded))


def test_interleaving_keeps_sync(report, benchmark, starved_capture):
    """Interleaved layout plays both streams without seeks; the same
    material laid out sequentially seeks constantly."""
    from repro.blob import MemoryBlob
    from repro.storage.layout import (
        TrackSpec, playback_schedule, read_cost_model, write_sequential,
    )

    interpretation = starved_capture.interpretation
    tracks = []
    # Track priority must match the recorded layout (video frames first,
    # "audio samples following the associated video frame").
    for name in ("video1", "audio1"):
        sequence = interpretation.sequence(name)
        track = TrackSpec(name, sequence.time_system)
        for entry in sequence:
            track.add(b"\x00" * entry.size, entry.start, entry.duration)
        tracks.append(track)
    schedule = playback_schedule(tracks)

    interleaved_placements = {
        name: list(interpretation.sequence(name).entries)
        for name in interpretation.names()
    }
    sequential_placements = write_sequential(MemoryBlob(), tracks)

    cost_interleaved = benchmark(
        lambda: read_cost_model(interleaved_placements, schedule)
    )
    cost_sequential = read_cost_model(sequential_placements, schedule)
    report.add(
        "engine-interleave",
        "[engine-interleave] synchronized read cost: interleaved "
        f"{cost_interleaved:,} vs sequential {cost_sequential:,} "
        f"({cost_sequential / cost_interleaved:.2f}x) — why §2.2 interleaves",
    )
    assert cost_interleaved < cost_sequential
