"""Durability cost — WAL write overhead and redo-recovery scaling.

Two questions the §13 design leaves open until measured:

* what does crash safety *cost* on the write path?  The durable store
  writes every committed page twice (full image into the WAL, then the
  main file), so the naive expectation is 2x.  But the second copy goes
  through the page cache while the plain store must fsync the data file
  in place per batch to promise anything — the WAL converts that into
  one *sequential* log fsync and defers the data-file fsync to the next
  checkpoint.  The sweep runs both on the real filesystem, where fsync
  has its true cost, and the ratio must stay under 2x;
* how does recovery scale with log length?  Redo recovery is one
  sequential scan plus one write per logged image, so elapsed time must
  grow roughly linearly in the number of committed transactions.  This
  half runs on a :class:`~repro.faults.SimulatedMedium` so the crash is
  a real crash (unsynced writes die), not a polite close.

Results land in ``benchmarks/results/durability.txt``.
"""

import os
import shutil
import time

from repro.blob.pages import FilePager, PageStore
from repro.durability import DurablePageStore, WriteAheadLog, recover_page_store
from repro.faults import SimulatedMedium

PAGE = 1024
PAGES_PER_TXN = 8
TXNS = 40
REPEATS = 3


def payload(txn, slot):
    return bytes([(txn * 37 + slot * 11) % 251]) * PAGE


def run_plain(root):
    """Naive durable writer: page writes, then fsync-in-place per batch."""
    path = os.path.join(root, "plain.pg")
    if os.path.exists(path):
        os.remove(path)
    pager = FilePager(path, page_size=PAGE)
    store = PageStore(pager, checksums=True)
    start = time.perf_counter()
    for txn in range(TXNS):
        for slot, page in enumerate(store.allocate_many(PAGES_PER_TXN)):
            store.write(page, payload(txn, slot))
        store.flush()
        pager.sync()
    elapsed = time.perf_counter() - start
    store.close()
    return elapsed


def run_durable(root):
    """WAL-backed store: same workload, one commit per batch."""
    path = os.path.join(root, "durable.pg")
    wal_dir = os.path.join(root, "wal")
    if os.path.exists(path):
        os.remove(path)
    shutil.rmtree(wal_dir, ignore_errors=True)
    pager = FilePager(path, page_size=PAGE)
    wal = WriteAheadLog(wal_dir, segment_bytes=1 << 22)
    store = DurablePageStore(pager, wal, checksums=True)
    start = time.perf_counter()
    for txn in range(TXNS):
        for slot in range(PAGES_PER_TXN):
            store.write(store.allocate(), payload(txn, slot))
        store.commit()
    elapsed = time.perf_counter() - start
    store.close()
    return elapsed


def test_wal_write_overhead(report, tmp_path):
    """Crash safety must cost less than 2x the naive durable writer."""
    root = str(tmp_path)
    plain_seconds = min(run_plain(root) for _ in range(REPEATS))
    durable_seconds = min(run_durable(root) for _ in range(REPEATS))
    overhead = durable_seconds / plain_seconds

    report.kv(
        "durability",
        [
            ("workload", f"{TXNS} txns x {PAGES_PER_TXN} pages x {PAGE} B"),
            ("plain store, fsync per batch", f"{plain_seconds:.4f} s"),
            ("WAL-backed durable store", f"{durable_seconds:.4f} s"),
            ("WAL overhead", f"{overhead:.2f}x"),
        ],
        title="write-path cost of crash safety (real filesystem)",
    )
    assert overhead < 2.0, f"WAL overhead {overhead:.2f}x breaches the 2x budget"


def build_log(txns):
    """Commit ``txns`` batches on a simulated disk, then pull the plug."""
    fs = SimulatedMedium()
    pager = FilePager("/bench/r.pg", page_size=PAGE, fs=fs)
    wal = WriteAheadLog("/bench/wal", fs=fs, segment_bytes=1 << 22)
    store = DurablePageStore(pager, wal, checksums=True)
    for txn in range(txns):
        for slot in range(PAGES_PER_TXN):
            store.write(store.allocate(), payload(txn, slot))
        store.commit()
    fs.crash()
    return fs


def timed_recovery(fs):
    pager = FilePager("/bench/r.pg", page_size=PAGE, fs=fs, repair=True)
    wal = WriteAheadLog("/bench/wal", fs=fs, segment_bytes=1 << 22)
    start = time.perf_counter()
    store, rec = recover_page_store(pager, wal, checksums=True)
    elapsed = time.perf_counter() - start
    store.close()
    return elapsed, rec


def test_recovery_time_scales_with_log_length(report):
    """Redo recovery is a linear scan: time per logged image must not
    grow as the log does."""
    rows = []
    per_txn = {}
    for txns in (8, 32, 128):
        # Recovery checkpoints (truncating the log), so each repeat
        # replays a freshly crashed medium.
        elapsed, rec = min(
            (timed_recovery(build_log(txns)) for _ in range(REPEATS)),
            key=lambda pair: pair[0],
        )
        assert rec.committed_txns == txns
        assert rec.pages_applied == txns * PAGES_PER_TXN
        per_txn[txns] = elapsed / txns
        rows.append((
            txns,
            rec.pages_applied,
            rec.bytes_scanned,
            f"{elapsed * 1000:.2f} ms",
            f"{elapsed / txns * 1e6:.0f} us",
        ))

    report.table(
        "durability",
        ("txns in log", "pages replayed", "log bytes", "recovery", "per txn"),
        rows,
        title="redo recovery time vs log length",
    )
    # Linear, not quadratic: unit cost at 128 txns stays within 4x of
    # the (fixed-cost dominated) unit cost at 8 txns.
    assert per_txn[128] < per_txn[8] * 4
