"""ANALYSIS — the static verification layer priced on the repo itself.

The gate is only usable in CI if it is fast: this benchmark runs the
full self-lint (every source file under ``src/repro``) and the graph
checker over the Figure-5 production pipeline inside fixed wall-clock
budgets, and records the sweep sizes so a regression in either engine's
cost is visible next to its coverage.
"""

import time

from test_bench_figure5_pipeline import build_stack

from repro.analysis import check_media_graph, lint_repo
from repro.analysis.lint import LintEngine
from repro.engine import CostModel

#: Wall-clock ceilings (seconds). Generous — a cold laptop run is well
#: under half of each — so only a real cost regression trips them.
LINT_BUDGET_SECONDS = 20.0
GRAPH_BUDGET_SECONDS = 10.0


def test_self_lint_within_budget(report, benchmark):
    started = time.perf_counter()
    lint = benchmark.pedantic(lint_repo, iterations=1, rounds=1)
    elapsed = time.perf_counter() - started
    files = len(LintEngine().files())

    report.kv(
        "analysis-self-lint",
        [
            ("files linted", files),
            ("findings", len(lint)),
            ("errors", len(lint.errors())),
            ("seconds", f"{elapsed:.3f}"),
            ("budget seconds", LINT_BUDGET_SECONDS),
        ],
        title="ANALYSIS — full-repo self-lint under a fixed budget",
    )
    assert lint.ok
    assert files > 40
    assert elapsed < LINT_BUDGET_SECONDS


def test_graph_check_within_budget(report, benchmark):
    blob, interpretation, editor, final, movie = build_stack()
    cost_model = CostModel(bandwidth=40_000_000)

    def check():
        return check_media_graph(movie, cost_model=cost_model)

    started = time.perf_counter()
    graph = benchmark.pedantic(check, iterations=1, rounds=1)
    elapsed = time.perf_counter() - started

    report.kv(
        "analysis-graph-check",
        [
            ("subject", graph.subject),
            ("findings", len(graph)),
            ("seconds", f"{elapsed:.3f}"),
            ("budget seconds", GRAPH_BUDGET_SECONDS),
        ],
        title="ANALYSIS — Figure-5 pipeline graph check under budget",
    )
    assert graph.ok
    assert elapsed < GRAPH_BUDGET_SECONDS
    # Static: checking must not have expanded the edited picture.
    assert not final.is_materialized
