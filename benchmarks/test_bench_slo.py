"""SLO — serving objectives, stage attribution and observability cost.

Three views of the QoS layer on the Figure-5 pipeline workload:

* SLO verdicts for a clean serve and a bandwidth-starved serve of the
  same title — the burn-rate ladder from all-OK to violated;
* the pipeline stage profile (where the simulated time went);
* the observability tax: wall-clock cost of the instrumented playback
  over the uninstrumented one, asserted under 2x (min-of-N timing).

Results land in ``benchmarks/results/slo.txt``.
"""

import time

from test_bench_figure5_pipeline import build_stack

from repro.engine import CostModel, Player
from repro.engine.vod import VodServer
from repro.obs import Observability, profile_stages, worst_verdicts

#: min-of-N repetitions for the overhead measurement.
TIMING_ROUNDS = 5


def serve_feature(interpretation, bandwidth, obs):
    server = VodServer(bandwidth=bandwidth, prefetch_depth=8, obs=obs)
    server.publish("feature", interpretation)
    server.serve([("c0", "feature"), ("c1", "feature")],
                 enforce_admission=False)
    return server


def test_slo_verdicts_and_stage_profile(report):
    _, interpretation, _, _, _ = build_stack()

    rows = []
    statuses = {}
    for label, bandwidth in (("clean", 40_000_000), ("starved", 20_000)):
        obs = Observability()
        server = serve_feature(interpretation, bandwidth, obs)
        health = server.health()
        statuses[label] = health
        verdicts = worst_verdicts(
            s.report.slo for r in server._reports for s in r.admitted
        )
        for verdict in verdicts:
            rows.append((
                label, verdict.slo,
                f"{verdict.measured:.6g}", f"{verdict.threshold:g}",
                f"{verdict.burn:.2f}",
                "OK" if verdict.ok else verdict.severity.name,
            ))
        rows.append((label, "(health)", health.status,
                     health.dominant_stage or "-", "", ""))
    assert statuses["clean"].status == "ok"
    assert statuses["starved"].status == "critical"
    assert any(not v.ok for v in statuses["starved"].slo)
    report.table(
        "slo",
        ("serve", "slo", "measured", "threshold", "burn", "verdict"),
        rows,
        title="SLO — serving objectives, clean vs. starved bandwidth",
    )

    obs = Observability()
    serve_feature(interpretation, 2_000_000, obs)
    profile = profile_stages(obs)
    report.table(
        "slo",
        ("stage", "count", "total s", "p50 ms", "p99 ms", "share"),
        profile.rows(),
        title="SLO — pipeline stage attribution at 2 MB/s",
    )
    assert profile.stages
    assert profile.dominant_stage() is not None


def test_observability_overhead_under_2x(report):
    """The instrumented figure-5 playback costs < 2x the bare one."""
    _, _, _, _, movie = build_stack()

    def timed(player):
        best = float("inf")
        for _ in range(TIMING_ROUNDS):
            start = time.perf_counter()
            player.play(movie)
            best = min(best, time.perf_counter() - start)
        return best

    bare = Player(CostModel(bandwidth=40_000_000), prefetch_depth=4)
    bare_seconds = timed(bare)

    obs = Observability()
    instrumented = Player(CostModel(bandwidth=40_000_000),
                          prefetch_depth=4, obs=obs)
    instrumented_seconds = timed(instrumented)

    overhead = instrumented_seconds / bare_seconds
    report.kv(
        "slo",
        [
            ("bare playback (min of %d)" % TIMING_ROUNDS,
             f"{bare_seconds * 1000:.3f} ms"),
            ("instrumented playback", f"{instrumented_seconds * 1000:.3f} ms"),
            ("overhead", f"{overhead:.2f}x"),
        ],
        title="SLO — observability overhead, Figure-5 playback",
    )
    assert overhead < 2.0, (
        f"observability overhead {overhead:.2f}x exceeds the 2x budget"
    )
