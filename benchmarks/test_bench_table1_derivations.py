"""E3 — Table 1 and Figure 3: the five derivations.

Regenerates Table 1 (derivation, argument types, result type, category)
from the live registry, then runs every Figure 3 derivation on real data,
measuring the storage economics the paper claims: derivation objects are
tiny relative to their expansions.
"""

import numpy as np
import pytest

from repro.core.derivation import derivation_registry
from repro.edit import MediaEditor
from repro.media import frames, signals
from repro.media.music import demo_score
from repro.media.objects import (
    audio_object,
    image_object,
    score_object,
    signal_of,
    video_object,
)

# Table 1's rows, exactly.
PAPER_TABLE1 = {
    "color-separation": ("image", "image", "change of content"),
    "audio-normalization": ("audio", "audio", "change of content"),
    "video-edit": ("video...", "video", "change of timing"),
    "video-transition": ("video, video", "video", "change of content"),
    "midi-synthesis": ("music", "audio", "change of type"),
}


def test_table1_registry(report, benchmark):
    rows = []
    registry_rows = {r[0]: r for r in benchmark(derivation_registry.table)}
    for name, expected in PAPER_TABLE1.items():
        actual = registry_rows[name][1:]
        rows.append((name, *actual, "ok" if actual == expected else "MISMATCH"))
    report.table(
        "table1",
        ("derivation", "argument type(s)", "result type", "category", "vs paper"),
        rows,
        title="Table 1 — examples of derivation (from the live registry)",
    )
    for name, expected in PAPER_TABLE1.items():
        assert registry_rows[name][1:] == expected


@pytest.fixture(scope="module")
def material():
    """The Figure 3 antecedent objects."""
    return {
        "image": image_object(frames.gradient_frame(320, 240), "photo"),
        "audio": audio_object(
            signals.sine(440, 1.0, 22050) * 0.15, "take1",
            sample_rate=22050, block_samples=882,
        ),
        "video_a": video_object(frames.scene(160, 120, 30, "orbit"), "scene1"),
        "video_b": video_object(frames.scene(160, 120, 30, "cut"), "scene2"),
        "music": score_object(demo_score(), "tune"),
    }


def _economics_row(name, derived, expanded_bytes):
    dobj = derived.derivation_object.storage_size()
    return (name, f"{dobj} B", f"{expanded_bytes:,} B",
            f"{expanded_bytes / dobj:,.0f}x")


def test_figure3_derivations_run(report, benchmark, material):
    """Run all five Figure 3 derivations; benchmark the full batch."""
    editor = MediaEditor()

    def run_all():
        separation = derivation_registry.get("color-separation")(
            [material["image"]], {"black_generation": 1.0},
        )
        cmyk = separation.expand().value()

        normalized = editor.normalize(material["audio"], name="take1-n")
        mastered = normalized.expand()

        edit = editor.cut(material["video_a"], 5, 25, name="scene1-cut")
        edited = edit.expand()

        fade = editor.transition(material["video_a"], material["video_b"],
                                 10, kind="fade", a_start=20, name="fadeAB")
        faded = fade.expand()

        synthesis = editor.synthesize(material["music"], sample_rate=22050,
                                      name="tune-audio")
        audio = synthesis.expand()
        return (separation, cmyk, normalized, mastered, edit, edited,
                fade, faded, synthesis, audio)

    (separation, cmyk, normalized, mastered, edit, edited,
     fade, faded, synthesis, audio) = benchmark.pedantic(
        run_all, iterations=1, rounds=1,
    )

    # Correctness of each expansion (Figure 3's right-hand sides).
    assert cmyk.shape == (240, 320, 4)
    assert np.abs(signal_of(mastered)).max() > 30000
    assert len(edited.stream()) == 20
    assert len(faded.stream()) == 10
    assert audio.kind.value == "audio"

    rows = [
        _economics_row("color separation", separation,
                       cmyk.nbytes),
        _economics_row("audio normalization", normalized,
                       signal_of(mastered).nbytes),
        _economics_row("video edit", edit,
                       edited.stream().total_size()),
        _economics_row("video transition", fade,
                       faded.stream().total_size()),
        _economics_row("MIDI synthesis", synthesis,
                       signal_of(audio).nbytes),
    ]
    report.table(
        "figure3",
        ("derivation (Figure 3)", "derivation object", "expanded object",
         "ratio"),
        rows,
        title="Figure 3 — derived media objects: storage economics",
    )

    # "Derived media objects and their associated derivation objects are
    # relatively small" — every ratio is at least 100x here.
    for row in rows:
        assert float(row[3].rstrip("x").replace(",", "")) > 100


def test_video_edit_expansion_speed(benchmark, material):
    """Expansion cost of the most common derivation (reference point for
    the real-time store-or-expand decision)."""
    editor = MediaEditor()
    edit = editor.cut(material["video_a"], 0, 30, name="whole")
    result = benchmark(edit.expand)
    assert len(result.stream()) == 30
