"""Fault sweep — graceful degradation under storage misbehaviour.

Sweeps fault severity against playback outcomes: a clean stack should
degrade *gradually* (retries, then glitches, then reduced delivered
quality) rather than fall off a cliff. The sweep exercises the claim
behind scalable streams (§4.1): when bandwidth degrades, fidelity is
traded before feasibility.
"""

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.core.rational import Rational
from repro.engine.player import AdaptationPolicy, CostModel, Player, RetryPolicy
from repro.engine.recorder import Recorder
from repro.engine.vod import VodServer
from repro.faults import FaultPlan
from repro.media import frames
from repro.media.objects import video_object

PAGE = 512


@pytest.fixture(scope="module")
def movie():
    video = video_object(frames.scene(64, 48, 50, "orbit"), "feature")
    return Recorder(MemoryBlob()).record(
        [video], encoders={"feature": JpegLikeCodec(quality=40).encode},
    )


def make_plan(severity: float) -> FaultPlan:
    """One knob scaling every fault class together."""
    return FaultPlan(
        seed=20260806, page_size=PAGE,
        transient_rate=0.4 * severity,
        bad_page_rate=0.1 * severity,
        corruption_rate=0.2 * severity,
        degraded_fraction=severity,
        degradation_span=8,
        degraded_bandwidth_factor=Rational(1, 3),
    )


def faulted_player(severity: float) -> Player:
    return Player(
        CostModel(bandwidth=200_000),
        prefetch_depth=8,
        fault_plan=make_plan(severity) if severity else None,
        retry_policy=RetryPolicy(max_retries=3, backoff=Rational(1, 250)),
        adaptation=AdaptationPolicy(levels=3),
    )


def test_fault_severity_sweep(report, benchmark, movie):
    rows = []
    reports = {}
    for severity in (0.0, 0.1, 0.25, 0.5, 0.75, 1.0):
        playback = faulted_player(severity).play(movie)
        assert playback == faulted_player(severity).play(movie)  # same seed
        reports[severity] = playback
        rows.append((
            f"{severity:.2f}",
            playback.retries,
            playback.skipped_elements,
            playback.glitches,
            playback.underruns,
            f"{float(playback.delivered_quality):.0%}",
            f"{float(playback.max_lateness) * 1000:.1f} ms",
        ))
    report.table(
        "faults",
        ("severity", "retries", "skipped", "glitches", "underruns",
         "delivered quality", "max lateness"),
        rows,
        title="fault rate -> degradation (seeded plan, 50-element title, "
              "3-layer adaptation)",
    )

    # Shape claims: zero severity is the clean happy path; rising
    # severity costs retries and quality but playback always completes.
    clean = reports[0.0]
    assert clean.retries == 0 and clean.skipped_elements == 0
    assert clean.delivered_quality == 1
    assert reports[1.0].retries > 0
    assert reports[1.0].delivered_quality < 1
    assert all(r.element_count + r.skipped_elements == clean.element_count
               for r in reports.values())

    benchmark(lambda: faulted_player(0.5).play(movie))


def test_vod_failover_sweep(report, movie):
    server = VodServer(bandwidth=800_000, prefetch_depth=8)
    server.publish("feature", movie)
    requests = [(f"c{i}", "feature") for i in range(4)]
    rows = []
    for severity in (0.0, 0.25, 0.5, 1.0):
        outcome = server.serve(
            requests,
            fault_plan=make_plan(severity) if severity else None,
            retry_policy=RetryPolicy(max_retries=3,
                                     abort_skip_fraction=0.25),
            adaptation=AdaptationPolicy(levels=3),
        )
        rows.append((
            f"{severity:.2f}",
            outcome.clean_sessions(),
            outcome.underrun_sessions(),
            outcome.degraded_sessions(),
            outcome.failed_sessions(),
            f"{outcome.mean_delivered_quality():.0%}",
        ))
        # Failover accounting: every admitted request is served or
        # explicitly failed, never silently dropped.
        assert outcome.admitted_count + outcome.failed_sessions() == 4
    report.table(
        "faults_vod",
        ("severity", "clean", "underrun", "degraded", "failed",
         "mean delivered quality"),
        rows,
        title="VOD failover under the same fault sweep (4 clients)",
    )
