"""E13 — event-kernel scale: a sharded fleet under 10⁵+ sessions.

The seed stepping loop pays full playback cost per session, so serving
N identical sessions is Θ(N·playback). The event kernel's whole-session
replay memo prices each *distinct* title once per shard batch and
replays the report for the rest, so wall-clock grows sub-linearly in
the session count — the property that lets one process stand in for a
fleet-scale workload. The second experiment shows the failover path at
scale: a shard killed mid-batch is absorbed with the deadline-miss SLO
still green.
"""

import gc
import time

import pytest

from repro.blob.blob import MemoryBlob
from repro.codecs.jpeg_like import JpegLikeCodec
from repro.engine.fleet import Fleet
from repro.engine.recorder import Recorder
from repro.engine.vod import SessionRequest
from repro.faults.crash import CrashInjector, CrashSite
from repro.faults.disk import SimulatedMedium
from repro.media import frames
from repro.media.objects import video_object
from repro.obs import Observability

TITLES = ("feature", "short", "news", "archive")


def make_title(name, frame_count=200):
    video = video_object(frames.scene(48, 36, frame_count, "orbit"), name)
    return Recorder(MemoryBlob()).record(
        [video], encoders={name: JpegLikeCodec(quality=40).encode},
    )


@pytest.fixture(scope="module")
def catalog():
    return {name: make_title(name) for name in TITLES}


def build_fleet(catalog, **kwargs):
    fleet = Fleet(bandwidth=2_000_000, shards=4, **kwargs)
    for name, interpretation in catalog.items():
        fleet.publish(name, interpretation)
    return fleet


def batch(n):
    return [
        SessionRequest(client=f"client-{i}", title=TITLES[i % len(TITLES)])
        for i in range(n)
    ]


def test_fleet_session_scaling(report, catalog):
    sweep = (1_000, 10_000, 100_000)
    rows = []
    timings = {}
    for sessions in sweep:
        fleet = build_fleet(catalog)
        requests = batch(sessions)
        # GC pauses scale with the live-object population, not with the
        # serving work; keep them out of the timed region.
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            merged = fleet.serve(requests, enforce_admission=False)
            elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        timings[sessions] = elapsed
        assert merged.admitted_count == sessions
        assert not merged.failed
        rows.append((
            f"{sessions:,}",
            f"{elapsed:.3f}s",
            f"{sessions / elapsed:,.0f}",
            f"{elapsed / timings[sweep[0]]:.1f}x",
        ))

    # Sub-linear wall-clock growth: the replay memo prices each title's
    # real playback once per shard batch, so 100x the sessions costs
    # well under 100x the time.
    growth = timings[100_000] / timings[1_000]
    rows.append(("growth 1k→100k", f"{growth:.1f}x vs 100x linear",
                 "", ""))
    report.table(
        "fleet",
        ("concurrent sessions", "wall-clock", "sessions/sec",
         "time vs 1k"),
        rows,
        title="E13a — kernel-scheduled fleet, 4 shards, "
              "uniform arrivals (replay memo active)",
    )
    assert growth < 60, f"wall-clock grew {growth:.1f}x for 100x sessions"


def test_fleet_failover_slo(report, catalog):
    owner = build_fleet(catalog).route("feature")
    fleet = build_fleet(
        catalog,
        obs=Observability(),
        checkpoint_fs=SimulatedMedium(),
        crash={owner: CrashInjector(CrashSite("vod.serve.session", 2))},
    )
    clients = 6
    merged = fleet.serve([
        SessionRequest(client=f"client-{i}", title="feature")
        for i in range(clients)
    ])
    health = fleet.health()

    assert owner in fleet.dead_shards
    assert merged.recovered + merged.admitted_count \
        + len(merged.failed) == clients
    deadline = [v for v in health.slo if v.slo == "deadline-miss-rate"]
    assert deadline and all(v.ok for v in deadline)

    report.kv(
        "fleet",
        [
            ("shards", "4 (1 killed mid-serve)"),
            ("dead shard", owner),
            ("sessions displaced", clients),
            ("recovered from checkpoint", merged.recovered),
            ("resumed on survivor", merged.admitted_count),
            ("failed", len(merged.failed)),
            ("deadline-miss SLO",
             "green" if all(v.ok for v in deadline) else "RED"),
            ("fleet status", health.status),
        ],
        title="E13b — shard failover keeps the deadline-miss SLO green",
    )
