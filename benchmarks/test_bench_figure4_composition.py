"""E4 — Figure 4: the composed multimedia object.

Rebuilds the instance diagram (4a) and timeline (4b) at 20% of the
paper's timings (the structure and proportions are exact: video3 =
cut1 + 10 s fade + cut2; audio1 spans everything; audio2 enters at 1:00
of 2:10) and regenerates both as tables. The benchmark measures the
cost of the *composition layer* itself — building the timeline and
querying relations — which the paper argues must be cheap because only
references are manipulated.
"""

import pytest

from repro.bench.workloads import figure4_production
from repro.core.intervals import IntervalRelation
from repro.core.rational import Rational


@pytest.fixture(scope="module")
def production():
    return figure4_production(width=96, height=72, scale=0.2)


def test_figure4_instance_diagram(report, benchmark, production):
    steps = benchmark(
        lambda: production.editor.steps(production.video3)
    )
    graph = production.editor.provenance
    rows = []
    for obj in graph.production_order():
        derived_from = ", ".join(o.name for o in graph.antecedents(obj)) or "-"
        rows.append((
            obj.name,
            "derived" if obj.is_derived else "non-derived",
            derived_from,
        ))
    report.table(
        "figure4a",
        ("object", "kind", "derived from"),
        rows,
        title="Figure 4(a) — instance diagram (production order)",
    )
    assert steps[-1].startswith("video3 = video-edit(")
    roots = {o.name for o in graph.roots()}
    assert roots == {"video1", "video2"}


def test_figure4_timeline(report, benchmark, production):
    multimedia = production.multimedia
    benchmark(multimedia.timeline)
    paper_times = {
        "video3": ("0:00", "2:10"),
        "audio1": ("0:00", "2:10"),
        "audio2": ("1:00", "2:10"),
    }
    rows = []
    for label, interval in multimedia.timeline():
        paper_start, paper_end = paper_times[label]
        rows.append((
            label,
            f"{paper_start} -> {paper_end}",
            f"{interval.start.to_timestamp()} -> {interval.end.to_timestamp()}",
        ))
    report.table(
        "figure4b",
        ("component", "paper (full scale)", "reproduced (scale 0.2)"),
        rows,
        title="Figure 4(b) — relative timing of the components of m",
    )
    # 2:10 * 0.2 = 26 s; audio2 enters at 1:00 * 0.2 = 12 s.
    assert multimedia.duration() == 26
    assert dict(multimedia.timeline())["audio2"].start == 12


def test_figure4_relations(benchmark, production):
    multimedia = production.multimedia
    benchmark(lambda: multimedia.relation("video3", "audio1"))
    assert multimedia.relation("video3", "audio1") is IntervalRelation.EQUAL
    assert multimedia.relation("audio2", "audio1") is IntervalRelation.FINISHES
    assert set(multimedia.simultaneous_at(13)) == {
        "video3", "audio1", "audio2",
    }
    assert set(multimedia.simultaneous_at(5)) == {"video3", "audio1"}


def test_composition_layer_is_cheap(benchmark, production):
    """Timeline + relation queries over the composition: no media data
    is touched, so this must run in microseconds."""
    multimedia = production.multimedia

    def query():
        timeline = multimedia.timeline()
        duration = multimedia.duration()
        relation = multimedia.relation("audio2", "audio1")
        return timeline, duration, relation

    timeline, duration, _ = benchmark(query)
    assert duration == 26
    assert len(timeline) == 3


def test_video3_expansion(benchmark, production):
    """Expanding the whole derived picture (cut + fade + cut)."""
    stream = benchmark.pedantic(
        lambda: production.video3.expand().stream(), iterations=1, rounds=1,
    )
    # 300 + 50 + 300 frames at scale 0.2 (subject to fade rounding).
    assert len(stream) == 650
    assert stream.is_continuous()
